//! Numerically stable binomial machinery.
//!
//! The dimensioning formulas of the paper involve binomial coefficients with
//! `n` in the tens of thousands (Figure 6(b) sweeps up to `n = 15 000`), far
//! beyond what direct factorial evaluation can represent. Everything here is
//! computed in log space.

/// Natural log of `n!`, via a table for small `n` and Stirling's series for
/// large `n` (absolute error below `1e-10` for all `n`).
///
/// # Example
///
/// ```
/// let ln120 = anomaly_analytic::ln_factorial(5);
/// assert!((ln120 - 120f64.ln()).abs() < 1e-12);
/// ```
pub fn ln_factorial(n: u64) -> f64 {
    const TABLE_SIZE: usize = 257;
    // Lazily built exact table for n < 257.
    fn table() -> &'static [f64; 257] {
        use std::sync::OnceLock;
        static TABLE: OnceLock<[f64; 257]> = OnceLock::new();
        TABLE.get_or_init(|| {
            let mut t = [0.0f64; 257];
            let mut acc = 0.0f64;
            for (i, slot) in t.iter_mut().enumerate().skip(1) {
                acc += (i as f64).ln();
                *slot = acc;
            }
            t
        })
    }
    if (n as usize) < TABLE_SIZE {
        return table()[n as usize];
    }
    // Stirling's series: ln n! = n ln n − n + ½ ln(2πn) + 1/(12n) − 1/(360n³) + 1/(1260 n^5)
    let x = n as f64;
    x * x.ln() - x + 0.5 * (2.0 * std::f64::consts::PI * x).ln() + 1.0 / (12.0 * x)
        - 1.0 / (360.0 * x.powi(3))
        + 1.0 / (1260.0 * x.powi(5))
}

/// Natural log of the binomial coefficient `C(n, k)`.
///
/// Returns `-inf` when `k > n` (the coefficient is zero).
pub fn ln_choose(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// Probability mass `P{X = k}` for `X ~ Binomial(n, p)`.
///
/// Computed in log space; exact at the boundary probabilities `p ∈ {0, 1}`.
///
/// # Panics
///
/// Panics if `p` is not in `[0,1]`.
pub fn binomial_pmf(n: u64, k: u64, p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
    if k > n {
        return 0.0;
    }
    if p == 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    if p == 1.0 {
        return if k == n { 1.0 } else { 0.0 };
    }
    // ln(1-p) computed as ln_1p(-p) for accuracy at small p.
    let ln_p = ln_choose(n, k) + k as f64 * p.ln() + (n - k) as f64 * (-p).ln_1p();
    ln_p.exp()
}

/// Cumulative probability `P{X ≤ k}` for `X ~ Binomial(n, p)`.
///
/// Sums the pmf from the smaller tail for accuracy, clamping to `[0,1]`.
///
/// # Panics
///
/// Panics if `p` is not in `[0,1]`.
///
/// # Example
///
/// ```
/// // A fair coin flipped twice: P{heads ≤ 1} = 3/4.
/// let c = anomaly_analytic::binomial_cdf(2, 1, 0.5);
/// assert!((c - 0.75).abs() < 1e-12);
/// ```
pub fn binomial_cdf(n: u64, k: u64, p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
    if k >= n {
        return 1.0;
    }
    let mean = n as f64 * p;
    if (k as f64) < mean {
        // Lower tail: sum directly.
        let mut acc = 0.0;
        for i in 0..=k {
            acc += binomial_pmf(n, i, p);
        }
        acc.min(1.0)
    } else {
        // Upper tail complement for accuracy near 1.
        let mut acc = 0.0;
        for i in (k + 1)..=n {
            acc += binomial_pmf(n, i, p);
        }
        (1.0 - acc).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn factorial_small_values_exact() {
        assert_eq!(ln_factorial(0), 0.0);
        assert_eq!(ln_factorial(1), 0.0);
        assert!((ln_factorial(4) - 24f64.ln()).abs() < 1e-12);
        assert!((ln_factorial(10) - 3628800f64.ln()).abs() < 1e-10);
    }

    #[test]
    fn factorial_stirling_matches_table_at_crossover() {
        // Value computed by summation vs Stirling at n = 300.
        let direct: f64 = (1..=300u64).map(|i| (i as f64).ln()).sum();
        assert!((ln_factorial(300) - direct).abs() < 1e-9);
    }

    #[test]
    fn choose_small_values() {
        assert!((ln_choose(5, 2).exp() - 10.0).abs() < 1e-9);
        assert!((ln_choose(10, 5).exp() - 252.0).abs() < 1e-7);
        assert_eq!(ln_choose(3, 5), f64::NEG_INFINITY);
    }

    #[test]
    fn pmf_degenerate_probabilities() {
        assert_eq!(binomial_pmf(10, 0, 0.0), 1.0);
        assert_eq!(binomial_pmf(10, 3, 0.0), 0.0);
        assert_eq!(binomial_pmf(10, 10, 1.0), 1.0);
        assert_eq!(binomial_pmf(10, 9, 1.0), 0.0);
        assert_eq!(binomial_pmf(4, 9, 0.5), 0.0);
    }

    #[test]
    fn pmf_known_value() {
        // Binomial(4, 0.5) at 2 = 6/16.
        assert!((binomial_pmf(4, 2, 0.5) - 0.375).abs() < 1e-12);
    }

    #[test]
    fn cdf_known_values() {
        assert!((binomial_cdf(2, 1, 0.5) - 0.75).abs() < 1e-12);
        assert_eq!(binomial_cdf(5, 5, 0.3), 1.0);
        assert_eq!(binomial_cdf(5, 9, 0.3), 1.0);
    }

    #[test]
    fn cdf_large_n_is_finite_and_monotone() {
        let n = 15_000;
        let p = 0.0144; // q for r = 0.03, d = 2
        let mut prev = 0.0;
        for k in [0u64, 10, 50, 100, 200, 400, 15_000] {
            let c = binomial_cdf(n, k, p);
            assert!(c.is_finite());
            assert!(c >= prev - 1e-12, "cdf must be monotone");
            prev = c;
        }
        assert!((binomial_cdf(n, 15_000, p) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "probability must be in [0,1]")]
    fn pmf_rejects_bad_probability() {
        binomial_pmf(3, 1, 1.5);
    }

    proptest! {
        /// pmf sums to 1 over the support.
        #[test]
        fn pmf_sums_to_one(n in 0u64..60, p in 0.0..=1.0f64) {
            let total: f64 = (0..=n).map(|k| binomial_pmf(n, k, p)).sum();
            prop_assert!((total - 1.0).abs() < 1e-9);
        }

        /// cdf equals the pmf prefix sum.
        #[test]
        fn cdf_is_prefix_sum(n in 1u64..50, p in 0.01..0.99f64, k in 0u64..50) {
            let k = k.min(n);
            let prefix: f64 = (0..=k).map(|i| binomial_pmf(n, i, p)).sum();
            prop_assert!((binomial_cdf(n, k, p) - prefix).abs() < 1e-9);
        }

        /// cdf is monotone in k.
        #[test]
        fn cdf_monotone(n in 1u64..40, p in 0.0..=1.0f64) {
            let mut prev = 0.0;
            for k in 0..=n {
                let c = binomial_cdf(n, k, p);
                prop_assert!(c + 1e-12 >= prev);
                prev = c;
            }
        }
    }
}
