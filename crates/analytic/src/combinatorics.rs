//! Partition-counting combinatorics.
//!
//! Section V of the paper observes that the naive approach — enumerating all
//! admissible anomaly partitions — is impractical because the number of
//! partitions of an `n`-set grows like the Bell numbers
//! `B_n = Σ_t S(n, t)` where `S(n, t)` are Stirling numbers of the second
//! kind. These functions quantify that blow-up (and are used by the
//! benchmark harness to report the search-space size the local conditions
//! avoid).

/// Stirling number of the second kind `S(n, t)`: the number of ways to
/// partition an `n`-set into `t` non-empty blocks.
///
/// Returns `None` on `u128` overflow (first occurs around `n ≈ 27` for
/// central `t`... comfortably beyond anything enumerable anyway).
///
/// # Example
///
/// ```
/// assert_eq!(anomaly_analytic::stirling2(4, 2), Some(7));
/// assert_eq!(anomaly_analytic::stirling2(5, 5), Some(1));
/// assert_eq!(anomaly_analytic::stirling2(5, 0), Some(0));
/// ```
pub fn stirling2(n: u32, t: u32) -> Option<u128> {
    if t > n {
        return Some(0);
    }
    if n == 0 {
        return Some(1); // S(0,0) = 1
    }
    if t == 0 {
        return Some(0);
    }
    let table = stirling2_table(n)?;
    Some(table[n as usize][t as usize])
}

/// Full triangle of Stirling numbers `S(i, j)` for `0 ≤ j ≤ i ≤ n`.
///
/// Row `i` has `i + 1` entries. Returns `None` on `u128` overflow.
pub fn stirling2_table(n: u32) -> Option<Vec<Vec<u128>>> {
    let n = n as usize;
    let mut table: Vec<Vec<u128>> = Vec::with_capacity(n + 1);
    table.push(vec![1]); // S(0,0) = 1
    for i in 1..=n {
        let mut row = vec![0u128; i + 1];
        for (j, slot) in row.iter_mut().enumerate().skip(1) {
            let keep = (j as u128).checked_mul(table[i - 1].get(j).copied().unwrap_or(0))?;
            let add = table[i - 1].get(j - 1).copied().unwrap_or(0);
            *slot = keep.checked_add(add)?;
        }
        table.push(row);
    }
    Some(table)
}

/// Bell number `B_n`: total number of partitions of an `n`-set.
///
/// Returns `None` on `u128` overflow (first overflow beyond `n = 49`).
///
/// # Example
///
/// ```
/// assert_eq!(anomaly_analytic::bell_number(5), Some(52));
/// assert_eq!(anomaly_analytic::bell_number(10), Some(115_975));
/// ```
pub fn bell_number(n: u32) -> Option<u128> {
    bell_numbers(n).map(|v| v[n as usize])
}

/// All Bell numbers `B_0 ..= B_n` via the Bell triangle.
///
/// Returns `None` on `u128` overflow.
pub fn bell_numbers(n: u32) -> Option<Vec<u128>> {
    let n = n as usize;
    let mut bells = Vec::with_capacity(n + 1);
    bells.push(1u128); // B_0
    let mut row = vec![1u128];
    for _ in 1..=n {
        let mut next = Vec::with_capacity(row.len() + 1);
        let mut acc = match row.last() {
            Some(&v) => v,
            None => unreachable!("row is never empty"),
        };
        // The first element of row i equals B_i (it is the last element of
        // row i-1 by construction of the Bell triangle).
        next.push(acc);
        bells.push(acc);
        for &v in &row {
            acc = acc.checked_add(v)?;
            next.push(acc);
        }
        row = next;
    }
    Some(bells)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn stirling_known_values() {
        assert_eq!(stirling2(0, 0), Some(1));
        assert_eq!(stirling2(1, 1), Some(1));
        assert_eq!(stirling2(4, 2), Some(7));
        assert_eq!(stirling2(5, 3), Some(25));
        assert_eq!(stirling2(6, 3), Some(90));
        assert_eq!(stirling2(10, 5), Some(42_525));
        assert_eq!(stirling2(3, 7), Some(0));
    }

    #[test]
    fn bell_known_values() {
        let b = bell_numbers(12).unwrap();
        assert_eq!(&b[..8], &[1, 1, 2, 5, 15, 52, 203, 877]);
        assert_eq!(b[10], 115_975);
        assert_eq!(b[12], 4_213_597);
    }

    #[test]
    fn bell_large_does_not_overflow_within_u128() {
        assert!(bell_number(40).is_some());
    }

    #[test]
    fn table_rows_have_expected_shapes() {
        let t = stirling2_table(5).unwrap();
        assert_eq!(t.len(), 6);
        for (i, row) in t.iter().enumerate() {
            assert_eq!(row.len(), i + 1);
        }
    }

    proptest! {
        /// Bell numbers are the row sums of the Stirling triangle.
        #[test]
        fn bell_is_stirling_row_sum(n in 0u32..15) {
            let bell = bell_number(n).unwrap();
            let sum: u128 = (0..=n).map(|t| stirling2(n, t).unwrap()).sum();
            prop_assert_eq!(bell, sum);
        }

        /// Recurrence S(n,t) = t·S(n−1,t) + S(n−1,t−1).
        #[test]
        fn stirling_recurrence(n in 2u32..15, t in 1u32..15) {
            prop_assume!(t <= n);
            let lhs = stirling2(n, t).unwrap();
            let rhs = t as u128 * stirling2(n - 1, t).unwrap()
                + stirling2(n - 1, t - 1).unwrap();
            prop_assert_eq!(lhs, rhs);
        }
    }
}
