//! Dimensioning of the consistency radius `r` and density threshold `τ`.
//!
//! Implements the probability models of Section VII-A:
//!
//! * `P{N_r(j) ≤ m}` — the cdf of the vicinity population (Figure 6(a)),
//!   where `N_r(j) ~ Binomial(n−1, q_j)`;
//! * `P{F_r(j) ≤ τ}` — the probability that at most `τ` *independent*
//!   isolated errors hit devices in the vicinity of `j` (Figure 6(b)), where
//!   `F_r(j) | N_r(j)=m ~ Binomial(m, b)`;
//! * a solver choosing the smallest `τ` that makes
//!   `P{F_r(j) > τ}` negligible for given `n`, `r`, `b`, `ε`.

use crate::binomial::{binomial_cdf, binomial_pmf};
use crate::vicinity::vicinity_probability_bulk;
use std::error::Error;
use std::fmt;

/// Errors from the dimensioning solvers.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DimensioningError {
    /// A probability parameter was outside `[0,1]`.
    InvalidProbability {
        /// Parameter name.
        name: &'static str,
        /// Offending value.
        value: f64,
    },
    /// No threshold up to the population size satisfies the target.
    NoFeasibleThreshold {
        /// The requested tolerance.
        epsilon: f64,
    },
}

impl fmt::Display for DimensioningError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DimensioningError::InvalidProbability { name, value } => {
                write!(f, "parameter {name} = {value} is not a probability")
            }
            DimensioningError::NoFeasibleThreshold { epsilon } => {
                write!(f, "no density threshold achieves tolerance {epsilon}")
            }
        }
    }
}

impl Error for DimensioningError {}

/// `P{N_r(j) ≤ m}` — probability that at most `m` of the other `n−1`
/// devices land in the vicinity of device `j` (Figure 6(a)).
///
/// Uses the bulk vicinity probability `q = (4r)^d` like the paper.
///
/// # Panics
///
/// Panics if `n == 0`, `r ∉ [0, 1/4)`, or `d == 0`.
///
/// # Example
///
/// ```
/// // n = 1000, r = 0.03, d = 2: the vicinity holds ~14.4 devices on average,
/// // so P{N ≤ 30} is close to 1.
/// let p = anomaly_analytic::prob_vicinity_at_most(1000, 0.03, 2, 30);
/// assert!(p > 0.99);
/// ```
pub fn prob_vicinity_at_most(n: u64, r: f64, d: usize, m: u64) -> f64 {
    assert!(n >= 1, "population must be at least 1");
    let q = vicinity_probability_bulk(r, d);
    binomial_cdf(n - 1, m, q)
}

/// `P{F_r(j) ≤ τ}` — probability that at most `τ` devices in the vicinity of
/// `j` are hit by independent isolated errors in one interval (Figure 6(b)).
///
/// Evaluated exactly as in the paper:
///
/// ```text
/// P{F ≤ τ} = Σ_m Σ_{ℓ≤τ} C(m,ℓ) b^ℓ (1−b)^{m−ℓ} · C(n−1,m) q^m (1−q)^{n−1−m}
/// ```
///
/// but computed through the equivalent thinned binomial
/// `F ~ Binomial(n−1, q·b)` (each of the `n−1` devices independently lands in
/// the vicinity *and* is hit with probability `q·b`), which is exact and
/// avoids the `O(n²)` double sum. The double sum is retained in tests as a
/// cross-check.
///
/// # Errors
///
/// Returns [`DimensioningError::InvalidProbability`] if `b ∉ [0,1]`.
///
/// # Panics
///
/// Panics if `n == 0`, `r ∉ [0, 1/4)`, or `d == 0`.
pub fn prob_false_dense_at_most(
    n: u64,
    r: f64,
    d: usize,
    b: f64,
    tau: u64,
) -> Result<f64, DimensioningError> {
    assert!(n >= 1, "population must be at least 1");
    if !(0.0..=1.0).contains(&b) || !b.is_finite() {
        return Err(DimensioningError::InvalidProbability {
            name: "b",
            value: b,
        });
    }
    let q = vicinity_probability_bulk(r, d);
    Ok(binomial_cdf(n - 1, tau, q * b))
}

/// `P{F_r(j) > τ}` — the complement of [`prob_false_dense_at_most`]; the
/// quantity the paper requires to be below a small `ε`.
///
/// # Errors
///
/// Returns [`DimensioningError::InvalidProbability`] if `b ∉ [0,1]`.
pub fn prob_false_dense_exceeds(
    n: u64,
    r: f64,
    d: usize,
    b: f64,
    tau: u64,
) -> Result<f64, DimensioningError> {
    Ok(1.0 - prob_false_dense_at_most(n, r, d, b, tau)?)
}

/// `P{F ≤ τ}` for an explicit vicinity probability `q`.
///
/// The paper's Figure 6(b) y-range (all curves above 0.997 up to
/// `n = 15 000`) is matched by a vicinity of radius `r` (`q = (2r)^d`)
/// rather than the `2r` used in the text (`q = (4r)^d`); exposing `q`
/// lets the reproduction harness print both variants. See EXPERIMENTS.md.
///
/// # Errors
///
/// Returns [`DimensioningError::InvalidProbability`] if `b` or `q` is not a
/// probability.
pub fn prob_false_dense_at_most_with_q(
    n: u64,
    q: f64,
    b: f64,
    tau: u64,
) -> Result<f64, DimensioningError> {
    assert!(n >= 1, "population must be at least 1");
    if !(0.0..=1.0).contains(&b) || !b.is_finite() {
        return Err(DimensioningError::InvalidProbability {
            name: "b",
            value: b,
        });
    }
    if !(0.0..=1.0).contains(&q) || !q.is_finite() {
        return Err(DimensioningError::InvalidProbability {
            name: "q",
            value: q,
        });
    }
    Ok(binomial_cdf(n - 1, tau, q * b))
}

/// Reference implementation of the paper's double sum (used by tests and the
/// figure harness to show the two formulations agree).
pub fn prob_false_dense_at_most_double_sum(n: u64, r: f64, d: usize, b: f64, tau: u64) -> f64 {
    let q = vicinity_probability_bulk(r, d);
    let mut total = 0.0;
    for m in 0..n {
        let pn = binomial_pmf(n - 1, m, q);
        if pn == 0.0 {
            continue;
        }
        let pf = binomial_cdf(m, tau, b);
        total += pf * pn;
    }
    total.clamp(0.0, 1.0)
}

/// Picks the smallest density threshold `τ` such that
/// `P{F_r(j) > τ} < ε` — the dimensioning rule of Section VII-A.
///
/// # Errors
///
/// * [`DimensioningError::InvalidProbability`] if `b` or `epsilon` is not a
///   probability;
/// * [`DimensioningError::NoFeasibleThreshold`] if even `τ = n−1` misses the
///   target (cannot happen for `ε > 0` since `P{F > n−1} = 0`, but guarded).
///
/// # Example
///
/// ```
/// // The paper settles on τ = 3 for n = 1000, r = 0.03, b = 0.005.
/// let tau = anomaly_analytic::solve_tau(1000, 0.03, 2, 0.005, 1e-4)?;
/// assert!(tau <= 3);
/// # Ok::<(), anomaly_analytic::DimensioningError>(())
/// ```
pub fn solve_tau(n: u64, r: f64, d: usize, b: f64, epsilon: f64) -> Result<u64, DimensioningError> {
    if !(0.0..=1.0).contains(&epsilon) || !epsilon.is_finite() {
        return Err(DimensioningError::InvalidProbability {
            name: "epsilon",
            value: epsilon,
        });
    }
    for tau in 0..n {
        if prob_false_dense_exceeds(n, r, d, b, tau)? < epsilon {
            return Ok(tau);
        }
    }
    Err(DimensioningError::NoFeasibleThreshold { epsilon })
}

/// Picks the largest radius `r` (on a fixed grid of step `grid_step`) whose
/// expected vicinity population stays at or below `target_mean` devices —
/// the "m logarithmic in n" sizing argument of Figure 6(a).
///
/// Returns the largest feasible `r` in `(0, 1/4)`, or `None` when even the
/// smallest grid radius exceeds the target.
///
/// # Panics
///
/// Panics if `grid_step` is not in `(0, 1/4)` or `target_mean < 0`.
///
/// # Example
///
/// ```
/// // For n = 1000 and a target vicinity of ~15 devices, the solver lands
/// // on the paper's r = 0.03.
/// let r = anomaly_analytic::dimensioning::solve_radius(1000, 2, 15.0, 0.005).unwrap();
/// assert!((r - 0.03).abs() < 1e-9);
/// ```
pub fn solve_radius(n: u64, d: usize, target_mean: f64, grid_step: f64) -> Option<f64> {
    assert!(
        grid_step > 0.0 && grid_step < 0.25,
        "grid step must be in (0, 1/4)"
    );
    assert!(target_mean >= 0.0, "target mean must be non-negative");
    let mut best = None;
    let mut r = grid_step;
    while r < 0.25 {
        let mean = vicinity_probability_bulk(r, d) * (n.saturating_sub(1)) as f64;
        if mean <= target_mean {
            best = Some(r);
        } else {
            break; // mean is monotone in r
        }
        r += grid_step;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn solve_radius_monotone_in_target() {
        let r_small = solve_radius(1000, 2, 5.0, 0.005).unwrap();
        let r_large = solve_radius(1000, 2, 50.0, 0.005).unwrap();
        assert!(r_small < r_large);
    }

    #[test]
    fn solve_radius_infeasible_target() {
        // Even r = 0.001 yields a positive mean; target 0 is infeasible.
        assert_eq!(solve_radius(100_000, 2, 0.0, 0.001), None);
    }

    #[test]
    fn solve_radius_respects_the_bound() {
        let r = solve_radius(1000, 2, 15.0, 0.005).unwrap();
        let mean = vicinity_probability_bulk(r, 2) * 999.0;
        assert!(mean <= 15.0);
        // And the next grid point would overshoot.
        let next = vicinity_probability_bulk(r + 0.005, 2) * 999.0;
        assert!(next > 15.0);
    }

    #[test]
    fn fig6a_shape_r_larger_means_bigger_vicinity() {
        // For fixed m, a larger r puts more devices in the vicinity, so the
        // cdf at m is smaller.
        let n = 1000;
        let m = 25;
        let p_small = prob_vicinity_at_most(n, 0.02, 2, m);
        let p_large = prob_vicinity_at_most(n, 0.1, 2, m);
        assert!(p_small > p_large);
        // r = 0.02 -> q = 0.0064 -> mean ~6.4, so P{N<=25} ~ 1.
        assert!(p_small > 0.999);
        // r = 0.1 -> q = 0.16 -> mean 160, so P{N<=25} ~ 0.
        assert!(p_large < 1e-6);
    }

    #[test]
    fn fig6a_paper_operating_point() {
        // r = 0.03, n = 1000: mean vicinity size 14.4, "logarithmic in n".
        // The cdf should cross ~0.5 near m = 14 and be ~1 by m = 30.
        let near_mean = prob_vicinity_at_most(1000, 0.03, 2, 14);
        assert!((0.3..0.7).contains(&near_mean), "got {near_mean}");
        assert!(prob_vicinity_at_most(1000, 0.03, 2, 30) > 0.999);
    }

    #[test]
    fn fig6b_paper_operating_point() {
        // r = 0.03, b = 0.005, τ = 3. With the text's vicinity (radius 2r,
        // q = (4r)^d) the exact probability sits slightly below the figure's
        // 0.997 floor at the far end of the sweep; the figure's band is
        // matched by a radius-r vicinity (q = (2r)^d). Assert both.
        for &n in &[1000u64, 5000, 10_000, 15_000] {
            let p_text = prob_false_dense_at_most(n, 0.03, 2, 0.005, 3).unwrap();
            assert!(p_text > 0.97, "text model, n = {n}: got {p_text}");
            let q_fig = (2.0 * 0.03f64).powi(2);
            let p_fig = prob_false_dense_at_most_with_q(n, q_fig, 0.005, 2).unwrap();
            assert!(p_fig > 0.997, "figure model, n = {n}: got {p_fig}");
        }
    }

    #[test]
    fn fig6b_monotone_in_tau() {
        let mut prev = 0.0;
        for tau in 2..=5 {
            let p = prob_false_dense_at_most(10_000, 0.03, 2, 0.005, tau).unwrap();
            assert!(p >= prev);
            prev = p;
        }
    }

    #[test]
    fn fig6b_decreasing_in_n() {
        let mut prev = 1.0;
        for n in [500u64, 2000, 8000, 15_000] {
            let p = prob_false_dense_at_most(n, 0.03, 2, 0.005, 2).unwrap();
            assert!(p <= prev + 1e-12);
            prev = p;
        }
    }

    #[test]
    fn thinning_matches_double_sum() {
        for &(n, r, b, tau) in &[
            (500u64, 0.03, 0.005, 2u64),
            (1000, 0.05, 0.01, 3),
            (2000, 0.02, 0.002, 4),
        ] {
            let fast = prob_false_dense_at_most(n, r, 2, b, tau).unwrap();
            let slow = prob_false_dense_at_most_double_sum(n, r, 2, b, tau);
            assert!(
                (fast - slow).abs() < 1e-9,
                "n={n} r={r} b={b} tau={tau}: {fast} vs {slow}"
            );
        }
    }

    #[test]
    fn solve_tau_matches_paper_choice() {
        // ε chosen at the resolution of Figure 6(b)'s y axis.
        let tau = solve_tau(1000, 0.03, 2, 0.005, 1e-4).unwrap();
        assert!(tau <= 3, "paper uses τ = 3, solver found {tau}");
        // Must actually satisfy the bound.
        assert!(prob_false_dense_exceeds(1000, 0.03, 2, 0.005, tau).unwrap() < 1e-4);
    }

    #[test]
    fn solve_tau_rejects_bad_epsilon() {
        assert!(solve_tau(100, 0.03, 2, 0.005, -1.0).is_err());
        assert!(solve_tau(100, 0.03, 2, 0.005, f64::NAN).is_err());
    }

    #[test]
    fn rejects_bad_b() {
        assert!(prob_false_dense_at_most(100, 0.03, 2, 1.5, 2).is_err());
    }

    #[test]
    fn errors_display() {
        let e = DimensioningError::InvalidProbability {
            name: "b",
            value: 2.0,
        };
        assert!(e.to_string().contains('b'));
        let e = DimensioningError::NoFeasibleThreshold { epsilon: 0.1 };
        assert!(e.to_string().contains("0.1"));
    }

    proptest! {
        /// The exceed probability is a valid probability and monotone in τ.
        #[test]
        fn exceeds_monotone(n in 2u64..3000, r in 0.005..0.24f64, b in 0.0..0.05f64) {
            let p2 = prob_false_dense_exceeds(n, r, 2, b, 2).unwrap();
            let p3 = prob_false_dense_exceeds(n, r, 2, b, 3).unwrap();
            prop_assert!((-1e-12..=1.0).contains(&p2));
            prop_assert!(p3 <= p2 + 1e-12);
        }

        /// solve_tau returns the minimal feasible threshold.
        #[test]
        fn solve_tau_minimal(n in 10u64..2000, b in 0.001..0.02f64) {
            let tau = solve_tau(n, 0.03, 2, b, 1e-3).unwrap();
            prop_assert!(prob_false_dense_exceeds(n, 0.03, 2, b, tau).unwrap() < 1e-3);
            if tau > 0 {
                prop_assert!(prob_false_dense_exceeds(n, 0.03, 2, b, tau - 1).unwrap() >= 1e-3);
            }
        }
    }
}
