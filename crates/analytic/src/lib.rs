//! Analytic toolbox for dimensioning the anomaly-characterization parameters.
//!
//! Section VII-A of the DSN 2014 paper tunes the consistency-impact radius
//! `r` and the density threshold `τ` so that the probability of more than `τ`
//! *independent* errors hitting devices within `2r` of each other is
//! negligible. This crate implements the exact probability models behind
//! Figure 6(a) and Figure 6(b):
//!
//! * [`binomial`] — numerically stable (log-space) binomial coefficients,
//!   pmf and cdf;
//! * [`vicinity`] — the probability `q` that a uniformly placed device falls
//!   in the vicinity `V = {x : ‖x − p(j)‖ ≤ 2r}` of a device `j`, with and
//!   without boundary correction;
//! * [`dimensioning`] — `P{N_r(j) ≤ m}` (Fig. 6a) and `P{F_r(j) ≤ τ}`
//!   (Fig. 6b), plus parameter solvers;
//! * [`combinatorics`] — Stirling numbers of the second kind and Bell numbers
//!   (the partition-count explosion that motivates the local conditions of
//!   Section V);
//! * [`stats`] — summary statistics used by the simulation harness.

#![forbid(unsafe_code)]
#![deny(warnings)]
#![warn(missing_docs)]

pub mod binomial;
pub mod combinatorics;
pub mod dimensioning;
pub mod order;
pub mod poisson;
pub mod stats;
pub mod vicinity;

pub use binomial::{binomial_cdf, binomial_pmf, ln_choose, ln_factorial};
pub use combinatorics::{bell_number, bell_numbers, stirling2, stirling2_table};
pub use dimensioning::{
    prob_false_dense_at_most, prob_false_dense_at_most_with_q, prob_false_dense_exceeds,
    prob_vicinity_at_most, solve_tau, DimensioningError,
};
pub use order::{total_f64, total_f64_by_key};
pub use poisson::{le_cam_bound, poisson_cdf, poisson_pmf, prob_false_dense_exceeds_poisson};
pub use stats::{mean_and_ci95, Histogram, OnlineStats};
pub use vicinity::{vicinity_probability, vicinity_probability_bulk};
