//! Total ordering for floats — the approved helper behind conformance lint
//! C5 (`float-total-order`).
//!
//! `partial_cmp(..).unwrap()` is how float comparisons used to be written
//! across this workspace. It has two failure modes the determinism gates
//! care about: a NaN panics at runtime (violating the panic-freedom
//! invariant, C1), and the *fallback* spellings people reach for instead —
//! `unwrap_or(Ordering::Equal)` — silently turn a sort into an
//! order-dependent one when NaN does appear, which is exactly the kind of
//! nondeterminism C2 exists to keep out of reports.
//!
//! [`f64::total_cmp`] (IEEE 754 `totalOrder`) fixes both: it is total,
//! panic-free, and deterministic — NaN sorts after every number, `-0.0`
//! before `+0.0`. This module wraps it in the comparator shapes the
//! workspace sorts with, and is the only place `partial_cmp` on floats may
//! be unwrapped should a future helper ever need the partial form (the
//! conformance pass exempts exactly this file).

use std::cmp::Ordering;

/// Total-order comparator for `f64`, shaped for `sort_by`/`min_by`:
/// `slice.sort_by(total_f64)`.
///
/// Behaves like `a.partial_cmp(&b).unwrap()` on ordinary numbers; on the
/// cases that made the unwrap spelling a hazard it is deterministic
/// instead of panicking or lying: NaN orders after +∞ (negative NaN before
/// −∞), and `-0.0 < +0.0`.
pub fn total_f64(a: &f64, b: &f64) -> Ordering {
    a.total_cmp(b)
}

/// [`total_f64`] over the first element of a keyed pair — the common
/// "sort values carrying a payload" shape.
pub fn total_f64_by_key<T>(a: &(f64, T), b: &(f64, T)) -> Ordering {
    a.0.total_cmp(&b.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_partial_cmp_on_ordinary_floats() {
        let pairs = [(1.0, 2.0), (2.0, 1.0), (3.5, 3.5), (-1.0, 1.0), (0.0, 5.0)];
        for (a, b) in pairs {
            assert_eq!(total_f64(&a, &b), a.partial_cmp(&b).unwrap());
        }
    }

    #[test]
    fn nan_and_signed_zero_are_ordered_deterministically() {
        assert_eq!(total_f64(&f64::NAN, &f64::INFINITY), Ordering::Greater);
        assert_eq!(total_f64(&-0.0, &0.0), Ordering::Less);
        // A sort containing NaN terminates and is reproducible.
        let mut v = [2.0, f64::NAN, 1.0];
        v.sort_by(total_f64);
        assert_eq!(&v[..2], &[1.0, 2.0]);
        assert!(v[2].is_nan());
    }

    #[test]
    fn keyed_form_sorts_by_the_float() {
        let mut v = [(2.0, 'b'), (1.0, 'a'), (3.0, 'c')];
        v.sort_by(total_f64_by_key);
        assert_eq!(v.iter().map(|&(_, c)| c).collect::<String>(), "abc");
    }
}
