//! Poisson approximations for the dimensioning models.
//!
//! At scale (`n` in the tens of thousands, `q·b` tiny) the thinned binomial
//! `F_r(j) ~ Binomial(n−1, q·b)` is numerically a Poisson with mean
//! `λ = (n−1)·q·b`. The Poisson form gives closed-view intuition (the
//! false-dense probability depends on the *product* `n·q·b` only) and an
//! O(τ) evaluation for interactive dimensioning dashboards. Le Cam's
//! inequality bounds the approximation error by `2·n·(q·b)²`, which this
//! module also exposes so callers can check the substitution is safe.

/// `P{X = k}` for `X ~ Poisson(λ)`, computed in log space.
///
/// # Panics
///
/// Panics if `lambda` is negative or not finite.
pub fn poisson_pmf(lambda: f64, k: u64) -> f64 {
    assert!(
        lambda.is_finite() && lambda >= 0.0,
        "lambda must be non-negative and finite"
    );
    if lambda == 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    let ln_p = k as f64 * lambda.ln() - lambda - crate::binomial::ln_factorial(k);
    ln_p.exp()
}

/// `P{X ≤ k}` for `X ~ Poisson(λ)`.
///
/// # Panics
///
/// Panics if `lambda` is negative or not finite.
///
/// # Example
///
/// ```
/// // Mean 0.72 (the paper's n = 10000 operating point): P{X <= 3} ≈ 0.9936.
/// let p = anomaly_analytic::poisson_cdf(0.72, 3);
/// assert!((p - 0.9936).abs() < 1e-3);
/// ```
pub fn poisson_cdf(lambda: f64, k: u64) -> f64 {
    (0..=k)
        .map(|i| poisson_pmf(lambda, i))
        .sum::<f64>()
        .min(1.0)
}

/// Poisson approximation of the false-dense probability
/// `P{F_r(j) > τ} ≈ 1 − PoissonCDF((n−1)·q·b, τ)`.
///
/// # Panics
///
/// Panics if `q` or `b` is not a probability.
pub fn prob_false_dense_exceeds_poisson(n: u64, q: f64, b: f64, tau: u64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "q must be a probability");
    assert!((0.0..=1.0).contains(&b), "b must be a probability");
    let lambda = (n.saturating_sub(1)) as f64 * q * b;
    1.0 - poisson_cdf(lambda, tau)
}

/// Le Cam bound on the total-variation distance between
/// `Binomial(n−1, q·b)` and its Poisson approximation: `2·(n−1)·(q·b)²`.
pub fn le_cam_bound(n: u64, q: f64, b: f64) -> f64 {
    let p = q * b;
    2.0 * (n.saturating_sub(1)) as f64 * p * p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dimensioning::prob_false_dense_at_most_with_q;
    use proptest::prelude::*;

    #[test]
    fn pmf_known_values() {
        // Poisson(1): P{0} = e^-1.
        assert!((poisson_pmf(1.0, 0) - (-1.0f64).exp()).abs() < 1e-12);
        assert!((poisson_pmf(2.0, 2) - 2.0 * (-2.0f64).exp()).abs() < 1e-12);
        assert_eq!(poisson_pmf(0.0, 0), 1.0);
        assert_eq!(poisson_pmf(0.0, 3), 0.0);
    }

    #[test]
    fn cdf_is_monotone_and_bounded() {
        let mut prev = 0.0;
        for k in 0..20 {
            let c = poisson_cdf(3.5, k);
            assert!(c >= prev && c <= 1.0);
            prev = c;
        }
        assert!(poisson_cdf(3.5, 50) > 0.999999);
    }

    #[test]
    fn matches_binomial_at_paper_scale() {
        // n = 10000, q = 0.0144, b = 0.005: Le Cam bound ~1e-4.
        let (n, q, b) = (10_000u64, 0.0144, 0.005);
        for tau in 1..6 {
            let exact = 1.0 - prob_false_dense_at_most_with_q(n, q, b, tau).unwrap();
            let approx = prob_false_dense_exceeds_poisson(n, q, b, tau);
            assert!(
                (exact - approx).abs() <= le_cam_bound(n, q, b),
                "tau {tau}: exact {exact} vs poisson {approx}"
            );
        }
    }

    #[test]
    fn le_cam_bound_is_tiny_at_operating_point() {
        assert!(le_cam_bound(15_000, 0.0144, 0.005) < 2e-4);
    }

    #[test]
    #[should_panic(expected = "lambda")]
    fn rejects_negative_lambda() {
        poisson_pmf(-1.0, 0);
    }

    proptest! {
        /// pmf sums to ~1 over a wide support.
        #[test]
        fn pmf_sums_to_one(lambda in 0.0..20.0f64) {
            let total: f64 = (0..200).map(|k| poisson_pmf(lambda, k)).sum();
            prop_assert!((total - 1.0).abs() < 1e-9);
        }

        /// The Poisson approximation respects the Le Cam bound against the
        /// exact binomial everywhere in the dimensioning regime.
        #[test]
        fn le_cam_holds(n in 100u64..5000, q in 0.001..0.05f64, b in 0.001..0.02f64,
                        tau in 0u64..6) {
            let exact = 1.0 - prob_false_dense_at_most_with_q(n, q, b, tau).unwrap();
            let approx = prob_false_dense_exceeds_poisson(n, q, b, tau);
            prop_assert!((exact - approx).abs() <= le_cam_bound(n, q, b) + 1e-12);
        }
    }
}
