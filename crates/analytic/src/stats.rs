//! Summary statistics for the simulation harness.
//!
//! The evaluation section reports averages over ~10 000 randomized settings
//! (Tables II/III) and ratio curves over parameter sweeps (Figures 7–9).
//! [`OnlineStats`] accumulates mean/variance in one pass (Welford),
//! [`Histogram`] bins observations, and [`mean_and_ci95`] reports a normal
//! 95% confidence interval.

/// Single-pass mean/variance accumulator (Welford's algorithm).
///
/// # Example
///
/// ```
/// use anomaly_analytic::OnlineStats;
/// let mut s = OnlineStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert_eq!(s.mean(), 5.0);
/// assert_eq!(s.population_variance(), 4.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (divides by `n`).
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (divides by `n − 1`; 0 when fewer than 2 samples).
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn sample_stddev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Smallest observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / total as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * self.count as f64 * other.count as f64 / total as f64;
        self.count = total;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl Extend<f64> for OnlineStats {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for OnlineStats {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = OnlineStats::new();
        s.extend(iter);
        s
    }
}

/// Mean and half-width of a normal-approximation 95% confidence interval.
///
/// Returns `(mean, half_width)`; the half-width is 0 for fewer than two
/// samples.
pub fn mean_and_ci95(stats: &OnlineStats) -> (f64, f64) {
    if stats.count() < 2 {
        return (stats.mean(), 0.0);
    }
    let half = 1.96 * stats.sample_stddev() / (stats.count() as f64).sqrt();
    (stats.mean(), half)
}

/// Fixed-range histogram with equal-width bins.
///
/// # Example
///
/// ```
/// use anomaly_analytic::Histogram;
/// let mut h = Histogram::new(0.0, 1.0, 4).unwrap();
/// h.push(0.1);
/// h.push(0.9);
/// h.push(2.0); // clamped into the last bin
/// assert_eq!(h.counts(), &[1, 0, 0, 2]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi]` with `bins` equal-width bins.
    ///
    /// Returns `None` if `bins == 0`, bounds are not finite, or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Option<Self> {
        if bins == 0 || !lo.is_finite() || !hi.is_finite() || lo >= hi {
            return None;
        }
        Some(Histogram {
            lo,
            hi,
            counts: vec![0; bins],
        })
    }

    /// Adds an observation, clamping values outside the range into the edge
    /// bins (NaN is ignored).
    pub fn push(&mut self, x: f64) {
        if x.is_nan() {
            return;
        }
        let bins = self.counts.len();
        let t = (x - self.lo) / (self.hi - self.lo);
        let bin = ((t * bins as f64) as isize).clamp(0, bins as isize - 1) as usize;
        self.counts[bin] += 1;
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of (non-NaN) observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Lower edge of bin `i`.
    pub fn bin_lo(&self, i: usize) -> f64 {
        self.lo + (self.hi - self.lo) * i as f64 / self.counts.len() as f64
    }

    /// Empirical cdf evaluated at the upper edge of each bin.
    pub fn cdf(&self) -> Vec<f64> {
        let total = self.total().max(1) as f64;
        let mut acc = 0u64;
        self.counts
            .iter()
            .map(|&c| {
                acc += c;
                acc as f64 / total
            })
            .collect()
    }
}

/// Percentile (0–100) of a slice via linear interpolation; `None` when empty
/// or `p` is out of range.
pub fn percentile(values: &[f64], p: f64) -> Option<f64> {
    if values.is_empty() || !(0.0..=100.0).contains(&p) {
        return None;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(crate::order::total_f64);
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn welford_known_values() {
        let s: OnlineStats = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert_eq!(s.count(), 8);
        assert_eq!(s.mean(), 5.0);
        assert_eq!(s.population_variance(), 4.0);
        assert!((s.sample_variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_stats_are_zeroish() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.population_variance(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
        let (m, ci) = mean_and_ci95(&s);
        assert_eq!((m, ci), (0.0, 0.0));
    }

    #[test]
    fn merge_equals_sequential() {
        let xs = [1.0, 2.0, 3.5, 9.0, -2.0];
        let ys = [0.5, 0.5, 8.0];
        let mut a: OnlineStats = xs.into_iter().collect();
        let b: OnlineStats = ys.into_iter().collect();
        a.merge(&b);
        let all: OnlineStats = xs.into_iter().chain(ys).collect();
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-12);
        assert!((a.sample_variance() - all.sample_variance()).abs() < 1e-12);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a: OnlineStats = [1.0, 2.0].into_iter().collect();
        let before = a;
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);
        let mut e = OnlineStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn histogram_bins_and_cdf() {
        let mut h = Histogram::new(0.0, 1.0, 4).unwrap();
        for x in [0.05, 0.3, 0.3, 0.8, 1.5, -0.2] {
            h.push(x);
        }
        assert_eq!(h.counts(), &[2, 2, 0, 2]);
        assert_eq!(h.total(), 6);
        let cdf = h.cdf();
        assert!((cdf[3] - 1.0).abs() < 1e-12);
        assert!((cdf[1] - 4.0 / 6.0).abs() < 1e-12);
        assert_eq!(h.bin_lo(2), 0.5);
    }

    #[test]
    fn histogram_rejects_bad_construction() {
        assert!(Histogram::new(0.0, 1.0, 0).is_none());
        assert!(Histogram::new(1.0, 0.0, 4).is_none());
        assert!(Histogram::new(f64::NAN, 1.0, 4).is_none());
    }

    #[test]
    fn histogram_ignores_nan() {
        let mut h = Histogram::new(0.0, 1.0, 2).unwrap();
        h.push(f64::NAN);
        assert_eq!(h.total(), 0);
    }

    #[test]
    fn percentile_known_values() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), Some(1.0));
        assert_eq!(percentile(&v, 100.0), Some(4.0));
        assert_eq!(percentile(&v, 50.0), Some(2.5));
        assert_eq!(percentile(&[], 50.0), None);
        assert_eq!(percentile(&v, 101.0), None);
    }

    proptest! {
        /// Welford mean matches the naive mean.
        #[test]
        fn mean_matches_naive(xs in proptest::collection::vec(-1e3..1e3f64, 1..100)) {
            let s: OnlineStats = xs.iter().copied().collect();
            let naive = xs.iter().sum::<f64>() / xs.len() as f64;
            prop_assert!((s.mean() - naive).abs() < 1e-6);
        }

        /// Merging any split of the data gives the same result.
        #[test]
        fn merge_any_split(xs in proptest::collection::vec(-100.0..100.0f64, 2..60),
                           split in 0usize..60) {
            let split = split.min(xs.len());
            let mut a: OnlineStats = xs[..split].iter().copied().collect();
            let b: OnlineStats = xs[split..].iter().copied().collect();
            a.merge(&b);
            let whole: OnlineStats = xs.iter().copied().collect();
            prop_assert_eq!(a.count(), whole.count());
            prop_assert!((a.mean() - whole.mean()).abs() < 1e-9);
            prop_assert!((a.sample_variance() - whole.sample_variance()).abs() < 1e-6);
        }

        /// Histogram total counts every non-NaN sample.
        #[test]
        fn histogram_counts_everything(xs in proptest::collection::vec(-2.0..3.0f64, 0..50)) {
            let mut h = Histogram::new(0.0, 1.0, 7).unwrap();
            for &x in &xs { h.push(x); }
            prop_assert_eq!(h.total(), xs.len() as u64);
        }
    }
}
