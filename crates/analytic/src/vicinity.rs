//! Probability that a uniformly placed device falls in another's vicinity.
//!
//! The vicinity of device `j` is `V = {x ∈ E : ‖x − p(j)‖ ≤ 2r}` (Section
//! VII-A), i.e. a hypercube of side `4r` centred at `p(j)` intersected with
//! the unit cube. With devices placed i.i.d. uniformly, the probability `q_j`
//! that another device lands in `V` is the volume of that intersection.

/// Bulk (interior) approximation of the vicinity probability: `(4r)^d`.
///
/// Exact when the whole vicinity box lies inside `E`, i.e. when `p(j)` is at
/// least `2r` away from every face. This is the value the paper uses (e.g.
/// `q = 0.0144` for `r = 0.03`, `d = 2`).
///
/// # Panics
///
/// Panics if `r` is not in `[0, 1/4)` or `d == 0`.
///
/// # Example
///
/// ```
/// let q = anomaly_analytic::vicinity_probability_bulk(0.03, 2);
/// assert!((q - 0.0144).abs() < 1e-12);
/// ```
pub fn vicinity_probability_bulk(r: f64, d: usize) -> f64 {
    assert!(d > 0, "dimension must be positive");
    assert!(
        r.is_finite() && (0.0..0.25).contains(&r),
        "radius must lie in [0, 1/4)"
    );
    (4.0 * r).powi(d as i32)
}

/// Boundary-corrected vicinity probability: the *expected* volume of
/// `V ∩ [0,1]^d` when `p(j)` is itself uniform on `[0,1]^d`.
///
/// Per dimension the expected overlap length of `[x − 2r, x + 2r] ∩ [0,1]`
/// for `x ~ U[0,1]` and half-width `w = 2r ≤ 1/2` is `2w − w²`; coordinates
/// are independent, so the expected volume is `(4r − 4r²)^d`.
///
/// Always at most the bulk value, converging to it as `r → 0`.
///
/// # Panics
///
/// Panics if `r` is not in `[0, 1/4)` or `d == 0`.
pub fn vicinity_probability(r: f64, d: usize) -> f64 {
    assert!(d > 0, "dimension must be positive");
    assert!(
        r.is_finite() && (0.0..0.25).contains(&r),
        "radius must lie in [0, 1/4)"
    );
    let w = 2.0 * r;
    (2.0 * w - w * w).powi(d as i32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_value_for_r_003_d2() {
        assert!((vicinity_probability_bulk(0.03, 2) - 0.0144).abs() < 1e-15);
    }

    #[test]
    fn corrected_below_bulk() {
        for &r in &[0.01, 0.03, 0.1, 0.2] {
            assert!(vicinity_probability(r, 2) < vicinity_probability_bulk(r, 2));
        }
    }

    #[test]
    fn zero_radius_gives_zero() {
        assert_eq!(vicinity_probability_bulk(0.0, 2), 0.0);
        assert_eq!(vicinity_probability(0.0, 3), 0.0);
    }

    #[test]
    #[should_panic(expected = "radius must lie in")]
    fn bulk_rejects_large_radius() {
        vicinity_probability_bulk(0.25, 2);
    }

    #[test]
    #[should_panic(expected = "dimension must be positive")]
    fn rejects_zero_dimension() {
        vicinity_probability(0.1, 0);
    }

    /// Monte-Carlo check of the boundary-corrected formula in 2D.
    #[test]
    fn corrected_matches_monte_carlo() {
        // Deterministic low-discrepancy-ish sampling: regular grid of centres
        // and a regular grid of probes.
        let r = 0.1;
        let w = 2.0 * r;
        let steps = 200;
        let mut total = 0.0;
        for i in 0..steps {
            let x = (i as f64 + 0.5) / steps as f64;
            let len = (x + w).min(1.0) - (x - w).max(0.0);
            total += len;
        }
        let expected_1d = total / steps as f64;
        let formula_1d = 2.0 * w - w * w;
        assert!((expected_1d - formula_1d).abs() < 1e-3);
        assert!((vicinity_probability(r, 2) - formula_1d * formula_1d).abs() < 1e-12);
    }

    proptest! {
        /// Both probabilities are valid probabilities and ordered.
        #[test]
        fn probabilities_valid(r in 0.0..0.249f64, d in 1usize..5) {
            let bulk = vicinity_probability_bulk(r, d);
            let corr = vicinity_probability(r, d);
            prop_assert!((0.0..=1.0).contains(&bulk));
            prop_assert!((0.0..=1.0).contains(&corr));
            prop_assert!(corr <= bulk + 1e-15);
        }

        /// Monotone in r.
        #[test]
        fn monotone_in_radius(r1 in 0.0..0.2f64, dr in 0.0..0.04f64, d in 1usize..4) {
            let r2 = r1 + dr;
            prop_assert!(vicinity_probability_bulk(r1, d) <= vicinity_probability_bulk(r2, d) + 1e-15);
            prop_assert!(vicinity_probability(r1, d) <= vicinity_probability(r2, d) + 1e-15);
        }
    }
}
