//! Scoring harness: baselines vs the paper's local algorithms on identical
//! simulated scenarios.
//!
//! Ground truth comes from the simulator's injected errors: a device is
//! truly massive when its error impacted more than `τ` devices. Baselines
//! answer massive/isolated; `anomaly-core` may also answer unresolved, which
//! the scoring counts separately (it is an honest "cannot know" rather than
//! a guess).

use crate::Classifier;
use anomaly_core::{Analyzer, AnomalyClass, TrajectoryTable};
use anomaly_qos::DeviceId;
use anomaly_simulator::score::{self, Confusion, Prediction, TruthClass};
use anomaly_simulator::{runner, ScenarioConfig, Simulation, StepOutcome};

/// Confusion counts for one method on one scenario — a named view over the
/// full [`Confusion`] matrix of `anomaly_simulator::score`, kept for the
/// established comparison workflow (`anomaly-eval` consumes the matrix
/// directly).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MethodScore {
    /// Method name.
    pub name: String,
    /// Devices classified correctly (massive as massive, isolated as
    /// isolated).
    pub correct: u64,
    /// Truly-isolated devices reported massive (false alarms towards the
    /// operator's "network event" side).
    pub false_massive: u64,
    /// Truly-massive devices reported isolated (each one needlessly calls
    /// the ISP help desk).
    pub false_isolated: u64,
    /// Devices the method declined to classify (unresolved; `anomaly-core`
    /// only).
    pub undecided: u64,
}

impl MethodScore {
    /// Collapses a confusion matrix into the four named counters.
    pub fn from_confusion(name: impl Into<String>, confusion: &Confusion) -> Self {
        MethodScore {
            name: name.into(),
            correct: confusion.correct(),
            false_massive: confusion.count(TruthClass::Isolated, Prediction::Massive),
            false_isolated: confusion.count(TruthClass::Massive, Prediction::Isolated),
            undecided: confusion.undecided(),
        }
    }

    /// Total devices scored.
    pub fn total(&self) -> u64 {
        self.correct + self.false_massive + self.false_isolated + self.undecided
    }

    /// Fraction of decided devices that were correct.
    pub fn accuracy(&self) -> f64 {
        let decided = self.total() - self.undecided;
        if decided == 0 {
            0.0
        } else {
            self.correct as f64 / decided as f64
        }
    }
}

/// Comparison of all methods over a batch of simulated steps.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ComparisonReport {
    /// One score per method, in the order supplied.
    pub scores: Vec<MethodScore>,
    /// Steps simulated.
    pub steps: u64,
    /// Total abnormal devices scored.
    pub abnormal: u64,
}

fn score_step(
    confusion: &mut Confusion,
    outcome: &StepOutcome,
    classes: &[(DeviceId, AnomalyClass)],
) {
    score::score_step_classes(
        confusion,
        &outcome.truth,
        outcome.config.params.tau(),
        classes,
    );
}

/// Runs `steps` simulation intervals and scores the paper's local algorithm
/// (first entry, named "local (this paper)") against every supplied
/// baseline on the same data.
///
/// # Errors
///
/// Propagates simulator configuration errors.
pub fn compare_on_scenario(
    config: &ScenarioConfig,
    baselines: &[&dyn Classifier],
    steps: u64,
) -> Result<ComparisonReport, anomaly_simulator::SimulationError> {
    let mut sim = Simulation::new(config.clone())?;
    let mut abnormal_total = 0u64;
    let mut confusions: Vec<Confusion> = vec![Confusion::new(); baselines.len() + 1];

    for _ in 0..steps {
        let outcome = sim.step();
        let abnormal: Vec<DeviceId> = outcome.abnormal().iter().collect();
        abnormal_total += abnormal.len() as u64;

        // The paper's local characterization (exact pipeline).
        let table = TrajectoryTable::from_state_pair(&outcome.pair, &abnormal);
        let analyzer = Analyzer::new(&table, outcome.config.params);
        let local: Vec<(DeviceId, AnomalyClass)> = abnormal
            .iter()
            .map(|&j| (j, analyzer.characterize_full(j).class()))
            .collect();
        score_step(&mut confusions[0], &outcome, &local);

        // Baselines.
        for (i, b) in baselines.iter().enumerate() {
            let classes = b.classify(&outcome.pair, &abnormal);
            score_step(&mut confusions[i + 1], &outcome, &classes);
        }
    }

    let names =
        std::iter::once("local (this paper)".to_string()).chain(baselines.iter().map(|b| b.name()));
    Ok(ComparisonReport {
        scores: names
            .zip(&confusions)
            .map(|(name, c)| MethodScore::from_confusion(name, c))
            .collect(),
        steps,
        abnormal: abnormal_total,
    })
}

// Re-exported convenience: run a step report for the local method only.
pub use runner::analyze_step as local_step_report;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{KMeansClassifier, TessellationClassifier};

    fn config() -> ScenarioConfig {
        let mut c = ScenarioConfig::paper_defaults(5);
        c.n = 400;
        c.errors_per_step = 8;
        c
    }

    #[test]
    fn report_covers_all_methods_and_devices() {
        let tess = TessellationClassifier::new(8, 3);
        let km = KMeansClassifier::new(8, 3, 1);
        let report = compare_on_scenario(&config(), &[&tess, &km], 2).unwrap();
        assert_eq!(report.scores.len(), 3);
        assert_eq!(report.scores[0].name, "local (this paper)");
        for s in &report.scores {
            assert_eq!(s.total(), report.abnormal, "{}", s.name);
        }
    }

    #[test]
    fn local_method_beats_degenerate_tessellation() {
        // A 1-cell tessellation calls everything massive; the local method
        // must be strictly more accurate on a mixed scenario.
        let mut c = config();
        c.isolated_prob = 0.6;
        let tess = TessellationClassifier::new(1, 3);
        let report = compare_on_scenario(&c, &[&tess], 3).unwrap();
        let local = &report.scores[0];
        let degenerate = &report.scores[1];
        assert!(
            local.accuracy() > degenerate.accuracy(),
            "local {:.3} vs degenerate {:.3}",
            local.accuracy(),
            degenerate.accuracy()
        );
    }

    #[test]
    fn baselines_never_abstain() {
        let tess = TessellationClassifier::new(16, 3);
        let report = compare_on_scenario(&config(), &[&tess], 2).unwrap();
        assert_eq!(report.scores[1].undecided, 0);
    }

    #[test]
    fn accuracy_handles_empty_score() {
        assert_eq!(MethodScore::default().accuracy(), 0.0);
    }
}
