use crate::Classifier;
use anomaly_core::AnomalyClass;
use anomaly_qos::{DeviceId, StatePair};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Centralized k-means classifier (reference \[15\] of the paper).
///
/// A management node collects every abnormal trajectory (as a point in the
/// concatenated `2d`-space), clusters them with Lloyd's algorithm seeded by
/// k-means++-style initialization, and declares a cluster massive when it
/// exceeds `τ`. This models the centralized clustering step the paper's
/// related work relies on and whose scalability it criticizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KMeansClassifier {
    k: usize,
    tau: usize,
    max_iterations: usize,
    seed: u64,
}

impl KMeansClassifier {
    /// Creates a classifier that clusters into `k` groups with density
    /// threshold `tau`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `tau == 0`.
    pub fn new(k: usize, tau: usize, seed: u64) -> Self {
        assert!(k > 0, "k must be positive");
        assert!(tau > 0, "density threshold must be positive");
        KMeansClassifier {
            k,
            tau,
            max_iterations: 50,
            seed,
        }
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Runs Lloyd's algorithm, returning the assignment of each point.
    fn cluster(&self, points: &[Vec<f64>]) -> Vec<usize> {
        let n = points.len();
        let k = self.k.min(n);
        if k == 0 {
            return Vec::new();
        }
        let dim = points[0].len();
        let mut rng = StdRng::seed_from_u64(self.seed);

        // k-means++ style seeding: first centroid uniform, then farthest-
        // biased choices (squared-distance weighting).
        let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
        centroids.push(points[rng.gen_range(0..n)].clone());
        while centroids.len() < k {
            let d2: Vec<f64> = points
                .iter()
                .map(|p| {
                    centroids
                        .iter()
                        .map(|c| sq_dist(p, c))
                        .fold(f64::INFINITY, f64::min)
                })
                .collect();
            let total: f64 = d2.iter().sum();
            let chosen = if total <= 0.0 {
                rng.gen_range(0..n)
            } else {
                let mut target = rng.gen::<f64>() * total;
                let mut idx = n - 1;
                for (i, &w) in d2.iter().enumerate() {
                    if target < w {
                        idx = i;
                        break;
                    }
                    target -= w;
                }
                idx
            };
            centroids.push(points[chosen].clone());
        }

        let mut assignment = vec![0usize; n];
        for _ in 0..self.max_iterations {
            // Assign.
            let mut changed = false;
            for (i, p) in points.iter().enumerate() {
                let best = (0..k)
                    .min_by(|&a, &b| {
                        sq_dist(p, &centroids[a]).total_cmp(&sq_dist(p, &centroids[b]))
                    })
                    .unwrap_or_else(|| unreachable!("k >= 1"));
                if assignment[i] != best {
                    assignment[i] = best;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
            // Update.
            let mut sums = vec![vec![0.0; dim]; k];
            let mut counts = vec![0usize; k];
            for (i, p) in points.iter().enumerate() {
                counts[assignment[i]] += 1;
                for (s, &c) in sums[assignment[i]].iter_mut().zip(p) {
                    *s += c;
                }
            }
            for (c, (sum, count)) in centroids.iter_mut().zip(sums.iter().zip(&counts)) {
                if *count > 0 {
                    *c = sum.iter().map(|s| s / *count as f64).collect();
                }
            }
        }
        assignment
    }
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

impl Classifier for KMeansClassifier {
    fn classify(&self, pair: &StatePair, abnormal: &[DeviceId]) -> Vec<(DeviceId, AnomalyClass)> {
        let points: Vec<Vec<f64>> = abnormal
            .iter()
            .map(|&id| {
                let mut v = pair.before().position(id).coords().to_vec();
                v.extend_from_slice(pair.after().position(id).coords());
                v
            })
            .collect();
        let assignment = self.cluster(&points);
        let k = self.k.min(points.len());
        let mut sizes = vec![0usize; k.max(1)];
        for &a in &assignment {
            sizes[a] += 1;
        }
        abnormal
            .iter()
            .zip(&assignment)
            .map(|(&id, &a)| {
                let class = if sizes[a] > self.tau {
                    AnomalyClass::Massive
                } else {
                    AnomalyClass::Isolated
                };
                (id, class)
            })
            .collect()
    }

    fn name(&self) -> String {
        format!("k-means(k={})", self.k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anomaly_qos::{QosSpace, Snapshot};

    fn pair(rows_before: Vec<Vec<f64>>, rows_after: Vec<Vec<f64>>) -> StatePair {
        let space = QosSpace::new(rows_before[0].len()).unwrap();
        StatePair::new(
            Snapshot::from_rows(&space, rows_before).unwrap(),
            Snapshot::from_rows(&space, rows_after).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn well_separated_groups_are_found() {
        // A tight group of 5 and a loner, k = 2, τ = 3.
        let before: Vec<Vec<f64>> = (0..5)
            .map(|i| vec![0.10 + i as f64 * 0.01])
            .chain([vec![0.9]])
            .collect();
        let after: Vec<Vec<f64>> = (0..5)
            .map(|i| vec![0.60 + i as f64 * 0.01])
            .chain([vec![0.2]])
            .collect();
        let p = pair(before, after);
        let ids: Vec<DeviceId> = (0..6).map(DeviceId).collect();
        let c = KMeansClassifier::new(2, 3, 7);
        let classes = c.classify(&p, &ids);
        for (id, class) in &classes[..5] {
            assert_eq!(*class, AnomalyClass::Massive, "device {id}");
        }
        assert_eq!(classes[5].1, AnomalyClass::Isolated);
    }

    #[test]
    fn wrong_k_merges_unrelated_devices() {
        // Four scattered isolated devices with k = 1: one big cluster,
        // everything misreported massive — the baseline's failure mode.
        let p = pair(
            vec![vec![0.1], vec![0.35], vec![0.6], vec![0.85]],
            vec![vec![0.9], vec![0.6], vec![0.3], vec![0.1]],
        );
        let ids: Vec<DeviceId> = (0..4).map(DeviceId).collect();
        let c = KMeansClassifier::new(1, 3, 7);
        for (_, class) in c.classify(&p, &ids) {
            assert_eq!(class, AnomalyClass::Massive);
        }
    }

    #[test]
    fn deterministic_for_a_seed() {
        let p = pair(
            (0..8).map(|i| vec![0.1 * i as f64]).collect(),
            (0..8).map(|i| vec![0.1 * i as f64]).collect(),
        );
        let ids: Vec<DeviceId> = (0..8).map(DeviceId).collect();
        let c = KMeansClassifier::new(3, 2, 11);
        assert_eq!(c.classify(&p, &ids), c.classify(&p, &ids));
    }

    #[test]
    fn handles_fewer_points_than_k() {
        let p = pair(vec![vec![0.5]], vec![vec![0.6]]);
        let c = KMeansClassifier::new(5, 3, 1);
        let classes = c.classify(&p, &[DeviceId(0)]);
        assert_eq!(classes.len(), 1);
        assert_eq!(classes[0].1, AnomalyClass::Isolated);
    }

    #[test]
    fn handles_empty_input() {
        let p = pair(vec![vec![0.5]], vec![vec![0.6]]);
        let c = KMeansClassifier::new(2, 3, 1);
        assert!(c.classify(&p, &[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn rejects_zero_k() {
        KMeansClassifier::new(0, 3, 1);
    }
}
