//! Related-work baselines the paper argues against (Section II).
//!
//! * [`TessellationClassifier`] — the FixMe-style approach of reference \[1\]
//!   (Anceaume et al., OPODIS 2012): the QoS space is tessellated into fixed
//!   buckets and an anomaly is massive when its bucket holds more than `τ`
//!   abnormal devices. The paper's critique: *"tessellating the space with
//!   large buckets sizes tends to identify each possible anomaly as a
//!   massive one, while considering small buckets sizes reduces drastically
//!   the probability of having a large number of devices in a single
//!   bucket, giving rise to the triggering of false alarms."* The
//!   comparison harness quantifies exactly that trade-off.
//! * [`KMeansClassifier`] — the centralized clustering of reference \[15\]
//!   (Zhao et al., ICAC 2009): a management node runs k-means over all
//!   abnormal trajectories and calls a cluster massive when it exceeds `τ`.
//!   Accurate when `k` matches the true anomaly count but requires global
//!   knowledge and a full clustering pass per snapshot — the scalability
//!   impediment Section II points out.
//!
//! Both implement [`Classifier`] so the [`comparison`] harness can score
//! them against `anomaly-core`'s local algorithms on identical scenarios.

#![forbid(unsafe_code)]
#![deny(warnings)]
#![warn(missing_docs)]

pub mod comparison;
mod kmeans;
mod tessellation;

pub use comparison::{compare_on_scenario, ComparisonReport, MethodScore};
pub use kmeans::KMeansClassifier;
pub use tessellation::TessellationClassifier;

use anomaly_core::AnomalyClass;
use anomaly_qos::{DeviceId, StatePair};

/// A massive/isolated classifier over one snapshot interval.
///
/// Baselines never output [`AnomalyClass::Unresolved`] — their models have
/// no notion of undecidability, which is precisely one of the paper's
/// contributions.
pub trait Classifier {
    /// Classifies each of `abnormal` given the two snapshots.
    fn classify(&self, pair: &StatePair, abnormal: &[DeviceId]) -> Vec<(DeviceId, AnomalyClass)>;

    /// Human-readable name for reports.
    fn name(&self) -> String;
}
