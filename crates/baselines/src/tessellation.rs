use crate::Classifier;
use anomaly_core::AnomalyClass;
use anomaly_qos::{DeviceId, StatePair};
use std::collections::BTreeMap;

/// FixMe-style fixed-tessellation classifier (reference \[1\] of the paper).
///
/// The unit QoS space is cut into `cells_per_axis^d` equal buckets. Each
/// abnormal device is keyed by the pair *(bucket before, bucket after)*; all
/// devices sharing a key are presumed to be one anomaly, massive when the
/// group exceeds `τ`.
///
/// The bucket width plays the role the consistency radius `r` plays in the
/// paper — but because buckets are anchored to a fixed grid, a tight group
/// straddling a bucket boundary is split (false isolated), while a large
/// bucket lumps unrelated devices together (false massive).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TessellationClassifier {
    cells_per_axis: usize,
    tau: usize,
}

impl TessellationClassifier {
    /// Creates a classifier with `cells_per_axis` buckets per axis and
    /// density threshold `tau`.
    ///
    /// # Panics
    ///
    /// Panics if `cells_per_axis == 0` or `tau == 0`.
    pub fn new(cells_per_axis: usize, tau: usize) -> Self {
        assert!(cells_per_axis > 0, "need at least one cell per axis");
        assert!(tau > 0, "density threshold must be positive");
        TessellationClassifier {
            cells_per_axis,
            tau,
        }
    }

    /// Buckets per axis.
    pub fn cells_per_axis(&self) -> usize {
        self.cells_per_axis
    }

    fn cell_key(&self, coords: &[f64]) -> Vec<usize> {
        coords
            .iter()
            .map(|&c| ((c * self.cells_per_axis as f64) as usize).min(self.cells_per_axis - 1))
            .collect()
    }
}

impl Classifier for TessellationClassifier {
    fn classify(&self, pair: &StatePair, abnormal: &[DeviceId]) -> Vec<(DeviceId, AnomalyClass)> {
        // Group by (cell at k-1, cell at k).
        let mut buckets: BTreeMap<(Vec<usize>, Vec<usize>), Vec<DeviceId>> = BTreeMap::new();
        for &id in abnormal {
            let key = (
                self.cell_key(pair.before().position(id).coords()),
                self.cell_key(pair.after().position(id).coords()),
            );
            buckets.entry(key).or_default().push(id);
        }
        let mut out: Vec<(DeviceId, AnomalyClass)> = Vec::with_capacity(abnormal.len());
        for (_, members) in buckets {
            let class = if members.len() > self.tau {
                AnomalyClass::Massive
            } else {
                AnomalyClass::Isolated
            };
            out.extend(members.into_iter().map(|id| (id, class)));
        }
        out.sort_by_key(|(id, _)| *id);
        out
    }

    fn name(&self) -> String {
        format!("tessellation({} cells/axis)", self.cells_per_axis)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anomaly_qos::{QosSpace, Snapshot};

    fn pair(rows_before: Vec<Vec<f64>>, rows_after: Vec<Vec<f64>>) -> StatePair {
        let space = QosSpace::new(rows_before[0].len()).unwrap();
        StatePair::new(
            Snapshot::from_rows(&space, rows_before).unwrap(),
            Snapshot::from_rows(&space, rows_after).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn group_in_one_bucket_is_massive() {
        // 5 devices inside one (coarse) bucket at both times; τ = 3.
        let p = pair(
            (0..5).map(|i| vec![0.10 + i as f64 * 0.01]).collect(),
            (0..5).map(|i| vec![0.60 + i as f64 * 0.01]).collect(),
        );
        let c = TessellationClassifier::new(4, 3);
        let ids: Vec<DeviceId> = (0..5).map(DeviceId).collect();
        for (_, class) in c.classify(&p, &ids) {
            assert_eq!(class, AnomalyClass::Massive);
        }
    }

    #[test]
    fn boundary_straddling_group_is_split_false_isolated() {
        // The same tight group, but placed across the 0.25 bucket boundary
        // of a 4-cell grid: the tessellation splits it and reports isolated.
        let p = pair(
            (0..5).map(|i| vec![0.23 + i as f64 * 0.01]).collect(),
            (0..5).map(|i| vec![0.73 + i as f64 * 0.01]).collect(),
        );
        let c = TessellationClassifier::new(4, 3);
        let ids: Vec<DeviceId> = (0..5).map(DeviceId).collect();
        let classes = c.classify(&p, &ids);
        assert!(
            classes.iter().all(|(_, cl)| *cl == AnomalyClass::Isolated),
            "a straddling group must be mis-split: {classes:?}"
        );
    }

    #[test]
    fn coarse_buckets_lump_unrelated_devices_false_massive() {
        // 4 genuinely isolated devices that happen to share the single
        // bucket of a 1-cell grid: all flagged massive.
        let p = pair(
            vec![vec![0.1], vec![0.3], vec![0.6], vec![0.9]],
            vec![vec![0.9], vec![0.7], vec![0.2], vec![0.4]],
        );
        let c = TessellationClassifier::new(1, 3);
        let ids: Vec<DeviceId> = (0..4).map(DeviceId).collect();
        for (_, class) in c.classify(&p, &ids) {
            assert_eq!(class, AnomalyClass::Massive);
        }
    }

    #[test]
    fn requires_same_bucket_at_both_times() {
        // Same bucket before, different buckets after: not grouped.
        let p = pair(
            vec![vec![0.10], vec![0.11], vec![0.12], vec![0.13]],
            vec![vec![0.1], vec![0.4], vec![0.6], vec![0.9]],
        );
        let c = TessellationClassifier::new(4, 3);
        let ids: Vec<DeviceId> = (0..4).map(DeviceId).collect();
        for (_, class) in c.classify(&p, &ids) {
            assert_eq!(class, AnomalyClass::Isolated);
        }
    }

    #[test]
    fn classification_is_invariant_under_input_permutation() {
        // Regression guard from the conformance C2 audit: grouping used to
        // iterate a HashMap — the only hash iteration anywhere in the
        // report path. The audit found no live bug (a device's class
        // depends only on its bucket's population, and the output is
        // id-sorted), but hash order reaching a loop is exactly how
        // determinism dies under refactoring; the BTreeMap grouping plus
        // this test pin it down. Classify the same abnormal set in several
        // input orders and require byte-identical results.
        let p = pair(
            vec![
                vec![0.10],
                vec![0.11],
                vec![0.12],
                vec![0.13],
                vec![0.60],
                vec![0.90],
            ],
            vec![
                vec![0.60],
                vec![0.61],
                vec![0.62],
                vec![0.63],
                vec![0.10],
                vec![0.40],
            ],
        );
        let c = TessellationClassifier::new(4, 3);
        let ids: Vec<DeviceId> = (0..6).map(DeviceId).collect();
        let baseline = c.classify(&p, &ids);
        assert!(baseline.iter().any(|&(_, cl)| cl == AnomalyClass::Massive));
        assert!(baseline.iter().any(|&(_, cl)| cl == AnomalyClass::Isolated));

        let mut reversed = ids.clone();
        reversed.reverse();
        assert_eq!(c.classify(&p, &reversed), baseline);

        let mut rotated = ids.clone();
        rotated.rotate_left(3);
        assert_eq!(c.classify(&p, &rotated), baseline);

        let interleaved: Vec<DeviceId> = [0u32, 5, 1, 4, 2, 3].map(DeviceId).to_vec();
        assert_eq!(c.classify(&p, &interleaved), baseline);
    }

    #[test]
    fn classification_is_stable_across_repeated_runs() {
        // Same process, repeated calls: the result must never depend on
        // allocation addresses or any other per-run state (the failure
        // mode randomized hashers introduce across *processes* shows up
        // here first when someone reintroduces per-call state).
        let p = pair(
            vec![vec![0.10], vec![0.11], vec![0.12], vec![0.13], vec![0.88]],
            vec![vec![0.60], vec![0.61], vec![0.62], vec![0.63], vec![0.22]],
        );
        let c = TessellationClassifier::new(4, 3);
        let ids: Vec<DeviceId> = (0..5).map(DeviceId).collect();
        let baseline = c.classify(&p, &ids);
        for _ in 0..10 {
            assert_eq!(c.classify(&p, &ids), baseline);
        }
    }

    #[test]
    fn name_mentions_resolution() {
        assert!(TessellationClassifier::new(8, 3).name().contains('8'));
    }

    #[test]
    #[should_panic(expected = "cell")]
    fn rejects_zero_cells() {
        TessellationClassifier::new(0, 3);
    }
}
