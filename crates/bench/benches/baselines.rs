//! Benchmarks the related-work baselines against the local characterization
//! on identical simulated steps (cost side of the Section II comparison).

use anomaly_baselines::{Classifier, KMeansClassifier, TessellationClassifier};
use anomaly_core::{Analyzer, TrajectoryTable};
use anomaly_qos::DeviceId;
use anomaly_simulator::{ScenarioConfig, Simulation};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn bench_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("baselines");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let config = ScenarioConfig::paper_defaults(505);
    let mut sim = Simulation::new(config).expect("valid scenario");
    let outcome = sim.step();
    let abnormal: Vec<DeviceId> = outcome.abnormal().iter().collect();
    let params = outcome.config.params;

    let tess = TessellationClassifier::new(16, params.tau());
    group.bench_function("tessellation_16", |b| {
        b.iter(|| black_box(tess.classify(&outcome.pair, &abnormal)))
    });

    let km = KMeansClassifier::new(20, params.tau(), 9);
    group.bench_function("kmeans_k20", |b| {
        b.iter(|| black_box(km.classify(&outcome.pair, &abnormal)))
    });

    group.bench_function("local_full_pipeline", |b| {
        b.iter(|| {
            let table = TrajectoryTable::from_state_pair(&outcome.pair, &abnormal);
            let analyzer = Analyzer::new(&table, params);
            black_box(analyzer.classify_all_full())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
