//! Benchmarks the per-step characterization pipeline (Algorithm 3 and the
//! full NSC) on simulated paper-default scenarios.

use anomaly_core::{Analyzer, TrajectoryTable};
use anomaly_qos::DeviceId;
use anomaly_simulator::{ScenarioConfig, Simulation};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn bench_characterize(c: &mut Criterion) {
    let mut group = c.benchmark_group("characterize");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for a in [10usize, 20] {
        let config = ScenarioConfig::paper_defaults(101).with_errors_per_step(a);
        let mut sim = Simulation::new(config).expect("valid scenario");
        let outcome = sim.step();
        let abnormal: Vec<DeviceId> = outcome.abnormal().iter().collect();
        let table = TrajectoryTable::from_state_pair(&outcome.pair, &abnormal);
        let params = outcome.config.params;

        group.bench_with_input(BenchmarkId::new("analyzer_build", a), &a, |b, _| {
            b.iter(|| black_box(Analyzer::new(&table, params)))
        });
        let analyzer = Analyzer::new(&table, params);
        group.bench_with_input(BenchmarkId::new("classify_all_quick", a), &a, |b, _| {
            b.iter(|| black_box(analyzer.classify_all()))
        });
        group.bench_with_input(BenchmarkId::new("classify_all_full", a), &a, |b, _| {
            b.iter(|| black_box(analyzer.classify_all_full()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_characterize);
criterion_main!(benches);
