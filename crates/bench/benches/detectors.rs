//! Throughput of the error-detection functions `a_k(j)` (the per-sample
//! cost every monitored device pays).

use anomaly_detectors::{
    CusumDetector, Detector, EwmaDetector, HoltWintersDetector, KalmanDetector,
    PageHinkleyDetector, ThresholdDetector, VectorDetector,
};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

/// A QoS-like signal: stable with a level shift near the end.
fn signal() -> Vec<f64> {
    (0..1000)
        .map(|i| {
            let base = if i < 900 { 0.92 } else { 0.4 };
            base + 0.004 * ((i as f64) * 2.399963).sin()
        })
        .collect()
}

fn run<D: Detector>(mut det: D, sig: &[f64]) -> usize {
    sig.iter()
        .filter(|&&v| det.observe(v).is_anomalous())
        .count()
}

fn bench_detectors(c: &mut Criterion) {
    let mut group = c.benchmark_group("detectors/1k_samples");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(1));
    let sig = signal();
    group.bench_function("threshold", |b| {
        b.iter(|| black_box(run(ThresholdDetector::with_delta(0.2), &sig)))
    });
    group.bench_function("ewma", |b| {
        b.iter(|| black_box(run(EwmaDetector::new(0.3, 4.0), &sig)))
    });
    group.bench_function("holt_winters", |b| {
        b.iter(|| black_box(run(HoltWintersDetector::new(0.5, 0.2, 4.0), &sig)))
    });
    group.bench_function("cusum", |b| {
        b.iter(|| black_box(run(CusumDetector::new(0.02, 0.3), &sig)))
    });
    group.bench_function("page_hinkley", |b| {
        b.iter(|| black_box(run(PageHinkleyDetector::new(0.01, 0.5), &sig)))
    });
    group.bench_function("kalman", |b| {
        b.iter(|| black_box(run(KalmanDetector::new(1e-4, 1e-3, 5.0), &sig)))
    });
    group.bench_function("vector_2_services", |b| {
        b.iter(|| {
            let mut dev = VectorDetector::homogeneous(2, || EwmaDetector::new(0.3, 4.0));
            let mut alarms = 0usize;
            for pair in sig.windows(2) {
                if dev.observe_vector(pair).is_anomalous() {
                    alarms += 1;
                }
            }
            black_box(alarms)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_detectors);
criterion_main!(benches);
