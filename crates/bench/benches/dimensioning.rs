//! Cost of the analytic dimensioning computations (Figure 6) and the
//! combinatorics that motivate the local conditions.

use anomaly_analytic::dimensioning::prob_false_dense_at_most_double_sum;
use anomaly_analytic::{bell_numbers, prob_false_dense_at_most, prob_vicinity_at_most};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn bench_dimensioning(c: &mut Criterion) {
    let mut group = c.benchmark_group("dimensioning");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(1));
    group.bench_function("fig6a_curve_point", |b| {
        b.iter(|| black_box(prob_vicinity_at_most(1000, 0.03, 2, 30)))
    });
    group.bench_function("fig6b_thinned", |b| {
        b.iter(|| black_box(prob_false_dense_at_most(15_000, 0.03, 2, 0.005, 3)))
    });
    group.bench_function("fig6b_double_sum", |b| {
        b.iter(|| {
            black_box(prob_false_dense_at_most_double_sum(
                15_000, 0.03, 2, 0.005, 3,
            ))
        })
    });
    group.bench_function("bell_numbers_40", |b| {
        b.iter(|| black_box(bell_numbers(40)))
    });
    group.finish();
}

criterion_group!(benches, bench_dimensioning);
criterion_main!(benches);
