//! Benchmarks Algorithm 2 (sliding-window maximal-motion enumeration)
//! against the exponential brute-force reference, and its scaling on
//! clustered populations.

use anomaly_core::{maximal_motions, maximal_motions_brute, DeviceSet, TrajectoryTable};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::time::Duration;

/// Clustered 1-service population: `n` devices spread over `clusters`
/// co-moving groups plus background noise.
fn clustered_table(n: usize, clusters: usize, seed: u64) -> TrajectoryTable {
    let mut rng = StdRng::seed_from_u64(seed);
    let rows: Vec<(u32, f64, f64)> = (0..n)
        .map(|i| {
            let c = rng.gen_range(0..clusters) as f64 / clusters as f64;
            let jitter = rng.gen_range(0.0..0.04);
            let before = (c + jitter).min(1.0);
            let after = (c * 0.7 + jitter).min(1.0);
            (i as u32, before, after)
        })
        .collect();
    TrajectoryTable::from_pairs_1d(&rows)
}

fn bench_fast_vs_brute(c: &mut Criterion) {
    let mut group = c.benchmark_group("maximal_motions/fast_vs_brute");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(1));
    let table = clustered_table(10, 2, 42);
    let universe: DeviceSet = table.device_set();
    group.bench_function("sliding_window_n10", |b| {
        b.iter(|| {
            let mut ops = Default::default();
            black_box(maximal_motions(&table, &universe, 0.1, &mut ops))
        })
    });
    group.bench_function("brute_force_n10", |b| {
        b.iter(|| black_box(maximal_motions_brute(&table, &universe, 0.1)))
    });
    group.finish();
}

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("maximal_motions/scaling");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for n in [50usize, 100, 200] {
        let table = clustered_table(n, 8, 7);
        let universe = table.device_set();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut ops = Default::default();
                black_box(maximal_motions(&table, &universe, 0.06, &mut ops))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fast_vs_brute, bench_scaling);
criterion_main!(benches);
