//! Benchmarks Algorithm 1 (anomaly-partition construction) and the
//! exhaustive enumeration it replaces (Section V's Bell-number blow-up).

use anomaly_core::observer::enumerate_anomaly_partitions;
use anomaly_core::partition::build_partition_greedy;
use anomaly_core::{Params, TrajectoryTable};
use anomaly_qos::DeviceId;
use anomaly_simulator::{ScenarioConfig, Simulation};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn bench_partition(c: &mut Criterion) {
    let mut group = c.benchmark_group("partition");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));

    // Algorithm 1 on a realistic simulated A_k (~95 devices).
    let config = ScenarioConfig::paper_defaults(303);
    let mut sim = Simulation::new(config).expect("valid scenario");
    let outcome = sim.step();
    let abnormal: Vec<DeviceId> = outcome.abnormal().iter().collect();
    let table = TrajectoryTable::from_state_pair(&outcome.pair, &abnormal);
    let params = outcome.config.params;
    group.bench_function("algorithm1_simulated_ak", |b| {
        b.iter(|| black_box(build_partition_greedy(&table, &params)))
    });

    // Exhaustive enumeration on a small Figure-3-like chain (what the
    // local conditions save us from at scale).
    let chain = TrajectoryTable::from_pairs_1d(&[
        (1, 0.10, 0.10),
        (2, 0.14, 0.14),
        (3, 0.16, 0.16),
        (4, 0.18, 0.18),
        (5, 0.22, 0.22),
        (6, 0.26, 0.26),
        (7, 0.30, 0.30),
        (8, 0.34, 0.34),
    ]);
    let small_params = Params::new(0.05, 3).unwrap();
    group.bench_function("exhaustive_enumeration_n8", |b| {
        b.iter(|| {
            black_box(enumerate_anomaly_partitions(
                &chain,
                &small_params,
                1_000_000,
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_partition);
criterion_main!(benches);
