//! Benchmarks the Theorem 7 / Corollary 8 collection search on the paper's
//! Figure 5 ring — the configuration where Theorem 6 is silent — comparing
//! the cheap Algorithm 3 path against the full NSC (the Table III cost gap).

use anomaly_core::{Analyzer, Params, TrajectoryTable};
use anomaly_qos::DeviceId;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

/// The Figure 5 diamond generalized to `pairs` co-located pairs on a ring:
/// adjacent pairs share motions, opposite ones do not, so Theorem 6 stays
/// silent and the collection search has work to do.
fn ring_table(pairs: usize) -> TrajectoryTable {
    let mut rows = Vec::new();
    for p in 0..pairs {
        let angle = 2.0 * std::f64::consts::PI * p as f64 / pairs as f64;
        let x = 0.5 + 0.1 * angle.cos();
        let y = 0.5 + 0.1 * angle.sin();
        rows.push(((2 * p) as u32, x, y));
        rows.push(((2 * p + 1) as u32, x, y));
    }
    TrajectoryTable::from_pairs_1d(&rows)
}

fn bench_theorem7(c: &mut Criterion) {
    let mut group = c.benchmark_group("theorem7");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let params = Params::new(0.05, 3).unwrap();
    let table = ring_table(4);
    let analyzer = Analyzer::new(&table, params);
    group.bench_function("quick_path_fig5", |b| {
        b.iter(|| black_box(analyzer.characterize(DeviceId(0))))
    });
    group.bench_function("full_nsc_fig5", |b| {
        b.iter(|| black_box(analyzer.characterize_full(DeviceId(0))))
    });
    group.finish();
}

criterion_group!(benches, bench_theorem7);
criterion_main!(benches);
