//! Ablation sweeps beyond the paper's published grid: sensitivity of the
//! characterization to the radius `r`, the threshold `τ`, the destination
//! model, and the rigid-motion assumption (R2).
//!
//! Run with `cargo run --release -p anomaly-bench --bin ablation`
//! (`REPRO_STEPS` scales the Monte-Carlo effort).

use anomaly_bench::repro_steps;
use anomaly_core::Params;
use anomaly_simulator::{runner::analyze_step, DestinationModel, ScenarioConfig, Simulation};

struct Row {
    label: String,
    abnormal: f64,
    isolated_pct: f64,
    massive_pct: f64,
    unresolved_pct: f64,
}

fn measure(config: &ScenarioConfig, steps: u64) -> Row {
    let mut sim = Simulation::new(config.clone()).expect("valid config");
    let (mut a, mut i, mut m, mut u) = (0u64, 0u64, 0u64, 0u64);
    for _ in 0..steps {
        let r = analyze_step(&sim.step(), true);
        a += r.abnormal as u64;
        i += r.isolated as u64;
        m += (r.massive_thm6 + r.massive_thm7) as u64;
        u += r.unresolved as u64;
    }
    let pct = |x: u64| 100.0 * x as f64 / a.max(1) as f64;
    Row {
        label: String::new(),
        abnormal: a as f64 / steps as f64,
        isolated_pct: pct(i),
        massive_pct: pct(m),
        unresolved_pct: pct(u),
    }
}

fn print_rows(title: &str, rows: &[Row]) {
    println!("# {title}");
    println!(
        "  {:<34} {:>8} {:>10} {:>9} {:>12}",
        "variant", "|A_k|", "isolated%", "massive%", "unresolved%"
    );
    for r in rows {
        println!(
            "  {:<34} {:>8.1} {:>9.2}% {:>8.2}% {:>11.2}%",
            r.label, r.abnormal, r.isolated_pct, r.massive_pct, r.unresolved_pct
        );
    }
    println!();
}

fn main() {
    let steps = repro_steps();
    let base = ScenarioConfig::paper_defaults(555);

    // Radius sensitivity: r too small splits real anomalies (isolated
    // inflation); r too large merges unrelated ones (unresolved inflation).
    let mut rows = Vec::new();
    for r in [0.01, 0.02, 0.03, 0.05, 0.08] {
        let mut c = base.clone();
        c.params = Params::new(r, c.params.tau()).expect("valid radius");
        let mut row = measure(&c, steps);
        row.label = format!("r = {r}");
        rows.push(row);
    }
    print_rows("Ablation: consistency radius r (tau = 3, A = 20)", &rows);

    // Threshold sensitivity.
    let mut rows = Vec::new();
    for tau in [1usize, 2, 3, 5, 8] {
        let mut c = base.clone();
        c.params = Params::new(c.params.radius(), tau).expect("valid tau");
        let mut row = measure(&c, steps);
        row.label = format!("tau = {tau}");
        rows.push(row);
    }
    print_rows("Ablation: density threshold tau (r = 0.03, A = 20)", &rows);

    // Destination model: the uniform model of the paper's text vs the
    // degradation-biased model used for calibration (see EXPERIMENTS.md).
    let mut rows = Vec::new();
    for (label, model) in [
        ("uniform destinations", DestinationModel::Uniform),
        (
            "degradation scale 0.15",
            DestinationModel::Degradation { scale: 0.15 },
        ),
        (
            "degradation scale 0.28",
            DestinationModel::Degradation { scale: 0.28 },
        ),
        (
            "degradation scale 0.50",
            DestinationModel::Degradation { scale: 0.50 },
        ),
    ] {
        let mut c = base.clone();
        c.destination = model;
        let mut row = measure(&c, steps);
        row.label = label.to_string();
        rows.push(row);
    }
    print_rows(
        "Ablation: destination model (r = 0.03, tau = 3, A = 20)",
        &rows,
    );
}
