//! The paper's future-work experiment (Section VIII), realized: how many
//! colluding devices does it take to suppress an honest isolated report?
//!
//! For each density threshold τ, sweeps coalition sizes until the victim's
//! isolated verdict flips — the attack cost the characterization imposes.
//!
//! Run with `cargo run --release -p anomaly-bench --bin adversary`.

use anomaly_core::Params;
use anomaly_simulator::adversary::minimum_winning_coalition;
use anomaly_simulator::{DestinationModel, ScenarioConfig};

fn main() {
    println!("# Adversary — minimum colluding devices to suppress an isolated report");
    println!("  (n = 400, A = 6, shadow trajectories within r/2 of the victim)");
    println!("  {:<8} {:>24}", "tau", "min winning coalition");
    for tau in [1usize, 2, 3, 4, 6, 8] {
        let mut config = ScenarioConfig::paper_defaults(1_000 + tau as u64);
        config.n = 400;
        config.errors_per_step = 6;
        config.isolated_prob = 0.9;
        config.destination = DestinationModel::Uniform;
        config.params = Params::new(0.03, tau).expect("valid tau");
        let min = minimum_winning_coalition(&config, 2 * tau + 4, 99).expect("valid scenario");
        match min {
            Some(c) => println!("  {tau:<8} {c:>24}"),
            None => println!("  {tau:<8} {:>24}", "no victim / not found"),
        }
    }
    println!("\n  expected: the coalition must reach tau — the threshold is the defence.");
}
