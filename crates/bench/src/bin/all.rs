//! Runs every table and figure reproduction in sequence.
use anomaly_bench::{experiments, repro_steps};

fn main() {
    let steps = repro_steps();
    experiments::fig6a();
    println!();
    experiments::fig6b();
    println!();
    experiments::table2_and_3(steps);
    println!();
    experiments::fig7(steps);
    println!();
    experiments::fig8(steps);
    println!();
    experiments::fig9(steps);
    println!();
    experiments::baselines(steps);
}
