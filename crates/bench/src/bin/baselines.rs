//! Baseline comparison: tessellation / k-means vs the local algorithms.
fn main() {
    anomaly_bench::experiments::baselines(anomaly_bench::repro_steps());
}
