//! Engine benchmark: sequential vs threaded characterization, full-rebuild
//! vs incremental grid maintenance, on a large generated fleet.
//!
//! Feeds the same deterministic [`FleetSpec`] trace to four monitor
//! configurations and reports wall-clock per configuration, writing the
//! result to `BENCH_engine.json` (override with `ENGINE_BENCH_OUT`). All
//! four configurations must produce identical verdicts — the run aborts
//! otherwise — so the timings compare equal work.
//!
//! Knobs (environment variables):
//!
//! * `ENGINE_BENCH_DEVICES` — fleet size (default 100000)
//! * `ENGINE_BENCH_STEPS` — anomalous instants fed (default 8)
//! * `ENGINE_BENCH_WORKERS` — threaded worker count (default: cores)
//! * `ENGINE_BENCH_REPS` — repetitions per configuration; the minimum
//!   wall-clock is reported (default 3)
//! * `ENGINE_BENCH_OUT` — output path (default `BENCH_engine.json`)

use anomaly_characterization::pipeline::{Engine, GridMaintenance, MonitorBuilder};
use anomaly_detectors::{ThresholdDetector, VectorDetector};
use anomaly_simulator::fleet::{generate_fleet, FleetInstant, FleetSpec};
use std::time::Instant;

/// One monitor configuration under test.
struct Config {
    name: &'static str,
    engine: Engine,
    grid: GridMaintenance,
}

/// Timing and verdict counters of one configuration's run.
struct Outcome {
    name: &'static str,
    total_millis: f64,
    characterization_millis: f64,
    verdicts: usize,
    isolated: usize,
    massive: usize,
    unresolved: usize,
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn run(spec: &FleetSpec, trace: &[FleetInstant], config: &Config) -> Outcome {
    let services = spec.services;
    // Delta detector between jitter and shift: calm devices never flag,
    // anomalous jumps always do.
    let delta = (spec.jitter + spec.shift) / 2.0;
    let mut monitor = MonitorBuilder::new()
        .services(services)
        .engine(config.engine)
        .grid_maintenance(config.grid)
        .detector_factory(move |_| {
            Box::new(VectorDetector::homogeneous(services, || {
                ThresholdDetector::with_delta(delta)
            }))
        })
        .fleet(spec.devices)
        .build()
        .expect("bench monitor configuration is valid");

    let start = Instant::now();
    let mut characterization_millis = 0.0;
    let (mut verdicts, mut isolated, mut massive, mut unresolved) = (0, 0, 0, 0);
    for instant in trace {
        let report = monitor
            .observe(instant.snapshot.clone())
            .expect("trace snapshots match the fleet");
        characterization_millis += report.characterization_time().as_secs_f64() * 1e3;
        let s = report.summary();
        verdicts += s.abnormal;
        isolated += s.isolated;
        massive += s.massive;
        unresolved += s.unresolved;
    }
    Outcome {
        name: config.name,
        total_millis: start.elapsed().as_secs_f64() * 1e3,
        characterization_millis,
        verdicts,
        isolated,
        massive,
        unresolved,
    }
}

fn main() {
    let devices = env_usize("ENGINE_BENCH_DEVICES", 100_000);
    let steps = env_usize("ENGINE_BENCH_STEPS", 8);
    let workers = env_usize(
        "ENGINE_BENCH_WORKERS",
        std::thread::available_parallelism().map_or(4, |n| n.get()),
    );
    let out_path =
        std::env::var("ENGINE_BENCH_OUT").unwrap_or_else(|_| "BENCH_engine.json".to_string());

    let mut spec = FleetSpec::large(42);
    spec.devices = devices;
    // Scale the anomaly mix down with the fleet so smoke runs stay tiny.
    if devices < 100_000 {
        let scale = (devices as f64 / 100_000.0).max(0.01);
        spec.massive_clusters = ((spec.massive_clusters as f64 * scale) as usize).max(1);
        spec.isolated = ((spec.isolated as f64 * scale) as usize).max(1);
    }
    eprintln!(
        "generating fleet: {} devices, {} services, {} flagged/instant, {} steps",
        spec.devices,
        spec.services,
        spec.flagged_per_instant(),
        steps
    );
    let trace = generate_fleet(&spec, steps).expect("bench spec is valid");

    let configs = [
        Config {
            name: "sequential+rebuild",
            engine: Engine::Sequential,
            grid: GridMaintenance::FullRebuild,
        },
        Config {
            name: "sequential+incremental",
            engine: Engine::Sequential,
            grid: GridMaintenance::Incremental,
        },
        Config {
            name: "threaded+rebuild",
            engine: Engine::Threaded { workers },
            grid: GridMaintenance::FullRebuild,
        },
        Config {
            name: "threaded+incremental",
            engine: Engine::Threaded { workers },
            grid: GridMaintenance::Incremental,
        },
    ];

    let reps = env_usize("ENGINE_BENCH_REPS", 3).max(1);
    let outcomes: Vec<Outcome> = configs
        .iter()
        .map(|c| {
            // Min-of-reps: each run does identical deterministic work, so
            // the minimum is the least-noisy estimate of its cost.
            let o = (0..reps)
                .map(|_| run(&spec, &trace, c))
                .min_by(|a, b| a.total_millis.total_cmp(&b.total_millis))
                .expect("at least one repetition");
            eprintln!(
                "{:>24}: total {:>9.1} ms, characterization {:>9.1} ms, {} verdicts (min of {reps})",
                o.name, o.total_millis, o.characterization_millis, o.verdicts
            );
            o
        })
        .collect();

    // Equal work or the comparison is meaningless.
    let reference = &outcomes[0];
    for o in &outcomes[1..] {
        assert_eq!(
            (o.verdicts, o.isolated, o.massive, o.unresolved),
            (
                reference.verdicts,
                reference.isolated,
                reference.massive,
                reference.unresolved
            ),
            "engine configurations disagree on verdicts ({} vs {})",
            o.name,
            reference.name,
        );
    }

    let baseline = outcomes[0].total_millis;
    let best = outcomes
        .last()
        .expect("four configurations ran")
        .total_millis;
    let speedup = baseline / best.max(1e-9);
    eprintln!("threaded+incremental speedup over sequential+rebuild: {speedup:.2}x");

    let configs_json: Vec<String> = outcomes
        .iter()
        .map(|o| {
            format!(
                concat!(
                    "{{\"name\":\"{}\",\"total_millis\":{:.3},",
                    "\"characterization_millis\":{:.3},\"verdicts\":{},",
                    "\"isolated\":{},\"massive\":{},\"unresolved\":{}}}"
                ),
                o.name,
                o.total_millis,
                o.characterization_millis,
                o.verdicts,
                o.isolated,
                o.massive,
                o.unresolved,
            )
        })
        .collect();
    let json = format!(
        concat!(
            "{{\"bench\":\"engine\",\"devices\":{},\"services\":{},",
            "\"flagged_per_instant\":{},\"steps\":{},\"workers\":{},",
            "\"seed\":{},\"configs\":[{}],",
            "\"speedup_threaded_incremental_vs_sequential_rebuild\":{:.3}}}"
        ),
        spec.devices,
        spec.services,
        spec.flagged_per_instant(),
        steps,
        workers,
        spec.seed,
        configs_json.join(","),
        speedup,
    );
    std::fs::write(&out_path, format!("{json}\n")).expect("write bench output");
    eprintln!("wrote {out_path}");
}
