//! Regenerates Figure 6(a) of the paper. See `anomaly-bench` docs.
fn main() {
    anomaly_bench::experiments::fig6a();
}
