//! Regenerates Figure 6(b) of the paper.
fn main() {
    anomaly_bench::experiments::fig6b();
}
