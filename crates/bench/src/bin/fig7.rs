//! Regenerates Figure 7: |U_k|/|A_k| vs A and G, R3 enforced.
fn main() {
    anomaly_bench::experiments::fig7(anomaly_bench::repro_steps());
}
