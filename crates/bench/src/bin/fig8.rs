//! Regenerates Figure 8: missed detections vs A and G, R3 not enforced.
fn main() {
    anomaly_bench::experiments::fig8(anomaly_bench::repro_steps());
}
