//! Regenerates Figure 9: |U_k|/|A_k| vs A and G, R3 not enforced.
fn main() {
    anomaly_bench::experiments::fig9(anomaly_bench::repro_steps());
}
