//! Section VII-C experiment: the effect of the (locally tunable) sampling
//! frequency on unresolved configurations. A fixed epoch workload of 60
//! errors is observed at increasing snapshot frequencies; the unresolved
//! ratio should shrink toward zero as each interval carries fewer
//! concomitant errors.
//!
//! Run with `cargo run --release -p anomaly-bench --bin granularity`.

use anomaly_bench::repro_steps;
use anomaly_simulator::{sweep::granularity_sweep, ScenarioConfig};

fn main() {
    let epochs = repro_steps().max(2);
    println!("# Sampling granularity — 60 errors per epoch, G = 0 (massive-heavy)");
    println!("  (n = 1000, r = 0.03, tau = 3, {epochs} epochs per point)");
    let mut base = ScenarioConfig::paper_defaults(20141);
    base.isolated_prob = 0.0;
    let points = granularity_sweep(&base, 60, &[1, 2, 4, 6, 12, 30, 60], epochs, true)
        .expect("valid scenario");
    println!(
        "  {:>10} {:>18} {:>14}",
        "freq/epoch", "errors/interval", "|U|/|A| (%)"
    );
    for p in &points {
        println!(
            "  {:>10} {:>18} {:>14.2}",
            p.frequency, p.errors_per_interval, p.unresolved_pct
        );
    }
    println!("\n  expected: the ratio shrinks as sampling gets finer (Section VII-C).");
}
