//! Ingest benchmark: seal latency of the streaming front-end.
//!
//! Workload: a persistent anomalous cluster jumps once during warm-up and
//! then goes silent — bridged rows freeze detector state and verdict (see
//! the `StalenessPolicy` docs), so every later epoch characterizes the
//! same abnormal set. Each measured epoch ingests updates for a rotating
//! window of `changed` calm devices far from the cluster and seals. The
//! run asserts the structural guarantees behind the O(changed +
//! dirty-neighbourhood) seal claim: steady-state epochs maintain the
//! vicinity grid incrementally (no rebuild) and keep the frozen cluster
//! flagged without re-feeding it.
//!
//! The first characterized epoch — grid build plus the first full
//! characterization — is cold by construction and is reported separately
//! as `warmup_seal_micros`, so it cannot pollute the steady-state
//! statistics (`seal_micros_min`/`median`/`max` cover steady epochs only).
//! A fleet-size sweep at fixed churn records how flat the steady-state
//! seal stays as the population grows; `sweep_flat_ratio` is the largest
//! sweep median over the smallest. Each sweep point runs
//! `INGEST_BENCH_REPS` independent repetitions and reports the **minimum
//! of the per-repetition medians** — the noise-robust lower envelope — so
//! one slow repetition (scheduler jitter, a page-cache miss) cannot make
//! the sweep look non-monotone.
//!
//! For the headline ratio the same workload shape is also driven through
//! the batch `observe` path with full snapshots (the cluster re-jumps
//! every epoch there, since batch epochs feed every detector).
//!
//! Knobs (environment variables):
//!
//! * `INGEST_BENCH_DEVICES` — fleet size (default 50000)
//! * `INGEST_BENCH_STEPS` — measured steady-state epochs (default 12)
//! * `INGEST_BENCH_CHANGED_PERMILLE` — changed devices per epoch, in ‰ of
//!   the fleet (default 10 = 1%)
//! * `INGEST_BENCH_SWEEP` — comma-separated fleet sizes swept at a fixed
//!   500-device churn (default `10000,50000,100000`; empty disables)
//! * `INGEST_BENCH_REPS` — repetitions per sweep point; the reported
//!   median is the minimum per-repetition median (default 3)
//! * `INGEST_BENCH_OUT` — output path (default `BENCH_ingest.json`)

use anomaly_characterization::pipeline::{
    GridMaintenance, Monitor, MonitorBuilder, StalenessPolicy,
};
use anomaly_detectors::{ThresholdDetector, VectorDetector};
use anomaly_qos::{GridUpdate, QosSpace, Snapshot};
use std::time::Instant;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

const SERVICES: usize = 2;
/// Devices in the persistent anomalous cluster.
const CLUSTER: usize = 64;
/// Fixed churn of every sweep run, per the O(changed) claim: the same 500
/// devices' worth of work regardless of fleet size.
const SWEEP_CHANGED: usize = 500;

/// Calm base position of device `k`: a deterministic spread over the
/// region `[0.55, 0.85]^2`, far (> 4r) from the cluster's corner.
fn base_row(k: usize) -> Vec<f64> {
    vec![
        0.55 + 0.3 * ((k % 97) as f64 / 97.0),
        0.55 + 0.3 * ((k % 89) as f64 / 89.0),
    ]
}

/// Anomalous cluster position of device `k`; `phase` flips between two
/// corners 0.2 apart so the batch path (which re-feeds every detector each
/// epoch) keeps the cluster flagged epoch after epoch.
fn jump_row(k: usize, phase: usize) -> Vec<f64> {
    let corner = if phase.is_multiple_of(2) { 0.10 } else { 0.30 };
    vec![corner + 0.02 * ((k % 7) as f64 / 7.0), 0.12]
}

/// Small in-region wiggle of a churn device: below the detector delta
/// (stays calm), but real motion the grid and the cache must absorb.
fn wiggled_row(k: usize, step: usize) -> Vec<f64> {
    let delta = if step.is_multiple_of(2) {
        0.004
    } else {
        -0.004
    };
    let mut row = base_row(k);
    row[0] += delta;
    row
}

fn monitor(devices: usize) -> Monitor {
    MonitorBuilder::new()
        .services(SERVICES)
        .staleness(StalenessPolicy::CarryForward {
            max_age: u64::MAX - 1,
        })
        .grid_maintenance(GridMaintenance::Incremental)
        .detector_factory(|_| {
            Box::new(VectorDetector::homogeneous(SERVICES, || {
                ThresholdDetector::with_delta(0.15)
            }))
        })
        .capacity(devices)
        .fleet(devices)
        .build()
        .expect("bench monitor configuration is valid")
}

struct EpochStats {
    ingest_micros: u64,
    seal_micros: u64,
    verdicts: usize,
}

struct RunStats {
    /// The cold, first characterized epoch: grid build + full
    /// characterization of the cluster. Reported apart from the steady
    /// epochs so it cannot pollute their statistics.
    warmup_seal_micros: u64,
    epochs: Vec<EpochStats>,
}

impl RunStats {
    fn steady_seals(&self) -> Vec<u64> {
        self.epochs.iter().map(|e| e.seal_micros).collect()
    }
}

fn min(xs: &[u64]) -> u64 {
    xs.iter().copied().min().unwrap_or(0)
}

fn max(xs: &[u64]) -> u64 {
    xs.iter().copied().max().unwrap_or(0)
}

fn median(xs: &[u64]) -> u64 {
    if xs.is_empty() {
        return 0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_unstable();
    sorted[sorted.len() / 2]
}

/// Streams the workload through one monitor: calm warm-up, the cluster's
/// jump (cold characterized epoch, timed separately), then `steps` steady
/// delta epochs of `changed` rotating calm updates.
fn run_streaming(devices: usize, steps: usize, changed: usize) -> RunStats {
    assert!(
        devices > CLUSTER + changed,
        "fleet of {devices} too small for cluster {CLUSTER} + churn {changed}"
    );
    let mut m = monitor(devices);
    // Two calm full epochs: detectors learn the base rows.
    for _ in 0..2 {
        m.ingest_many((0..devices).map(|k| (k as u64, base_row(k))))
            .expect("baseline rows are valid");
        m.seal().expect("full calm epochs seal");
    }
    // The cold epoch: the cluster jumps (a full epoch — everyone else
    // re-reports base). Builds the grid and characterizes from scratch.
    m.ingest_many((0..devices).map(|k| {
        let row = if k < CLUSTER {
            jump_row(k, 0)
        } else {
            base_row(k)
        };
        (k as u64, row)
    }))
    .expect("jump rows are valid");
    let warm_start = Instant::now();
    let report = m.seal().expect("the jump epoch seals");
    let warmup_seal_micros = warm_start.elapsed().as_micros() as u64;
    assert_eq!(report.verdicts().len(), CLUSTER, "the cluster must flag");
    assert_eq!(
        m.last_grid_update(),
        Some(GridUpdate::Rebuilt),
        "the first characterized epoch builds the grid"
    );

    // Steady state: the cluster stays silent (frozen flags keep it
    // abnormal); a rotating window of `changed` calm devices reports a
    // small wiggle each epoch.
    let calm = devices - CLUSTER;
    let mut epochs: Vec<EpochStats> = Vec::with_capacity(steps);
    for step in 0..steps {
        let start = (step * changed) % calm;
        let ingest_start = Instant::now();
        m.ingest_many((0..changed).map(|i| {
            let k = CLUSTER + (start + i) % calm;
            (k as u64, wiggled_row(k, step))
        }))
        .expect("churn rows are valid");
        let ingest_micros = ingest_start.elapsed().as_micros() as u64;
        let seal_start = Instant::now();
        let report = m.seal().expect("steady epochs seal");
        let seal_micros = seal_start.elapsed().as_micros() as u64;
        // The structural claims: no rebuild, re-bucketing bounded by the
        // actual movers (the first steady epoch also absorbs the staged
        // cluster jump), and the frozen cluster stays flagged without
        // being re-fed.
        match m.last_grid_update() {
            Some(GridUpdate::Incremental { rebucketed }) => {
                let movers = changed + if step == 0 { CLUSTER } else { 0 };
                assert!(
                    rebucketed <= movers,
                    "epoch {step}: rebucketed {rebucketed} for {movers} movers"
                );
            }
            other => panic!("epoch {step}: expected incremental grid maintenance, got {other:?}"),
        }
        assert_eq!(
            report.verdicts().len(),
            CLUSTER,
            "epoch {step}: the frozen cluster must stay abnormal"
        );
        assert_eq!(report.straggler_count(), devices - changed);
        epochs.push(EpochStats {
            ingest_micros,
            seal_micros,
            verdicts: report.verdicts().len(),
        });
    }
    RunStats {
        warmup_seal_micros,
        epochs,
    }
}

/// Drives the same workload shape through full-snapshot `observe` calls
/// for the headline ratio. Batch epochs feed every detector, so the
/// cluster re-jumps between its two corners each epoch to stay flagged.
fn run_batch(devices: usize, steps: usize, changed: usize) -> Vec<u64> {
    let mut b = monitor(devices);
    let space = QosSpace::new(SERVICES).expect("two services");
    let calm = devices - CLUSTER;
    let snapshot_at = |phase: usize, window: Option<usize>| -> Snapshot {
        let rows: Vec<Vec<f64>> = (0..devices)
            .map(|k| {
                if k < CLUSTER {
                    jump_row(k, phase)
                } else if let Some(step) = window {
                    let start = (step * changed) % calm;
                    let offset = (k - CLUSTER + calm - start) % calm;
                    if offset < changed {
                        wiggled_row(k, step)
                    } else {
                        base_row(k)
                    }
                } else {
                    base_row(k)
                }
            })
            .collect();
        Snapshot::from_rows(&space, rows).expect("rows are valid")
    };
    let base = Snapshot::from_rows(&space, (0..devices).map(base_row).collect())
        .expect("base rows are valid");
    for _ in 0..2 {
        b.observe(base.clone()).expect("warm-up");
    }
    b.observe(snapshot_at(0, None)).expect("the jump epoch");
    let mut observe_micros = Vec::with_capacity(steps);
    for step in 0..steps {
        let snapshot = snapshot_at(step + 1, Some(step));
        let t = Instant::now();
        let report = b.observe(snapshot).expect("batch epochs observe");
        observe_micros.push(t.elapsed().as_micros() as u64);
        assert_eq!(
            report.verdicts().len(),
            CLUSTER,
            "step {step}: the re-jumping cluster must stay flagged in batch"
        );
    }
    observe_micros
}

fn main() {
    let devices = env_usize("INGEST_BENCH_DEVICES", 50_000);
    let steps = env_usize("INGEST_BENCH_STEPS", 12).max(1);
    let permille = env_usize("INGEST_BENCH_CHANGED_PERMILLE", 10);
    let changed = ((devices * permille) / 1000).max(1);
    let reps = env_usize("INGEST_BENCH_REPS", 3).max(1);
    let sweep_sizes: Vec<usize> = std::env::var("INGEST_BENCH_SWEEP")
        .unwrap_or_else(|_| "10000,50000,100000".to_string())
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect();
    let out_path =
        std::env::var("INGEST_BENCH_OUT").unwrap_or_else(|_| "BENCH_ingest.json".to_string());
    eprintln!(
        "ingest bench: {devices} devices, {steps} steady epochs, {changed} changed/epoch ({permille}‰)"
    );

    // --- Headline run: streaming deltas, then the batch comparison.
    let headline = run_streaming(devices, steps, changed);
    let observe_micros = run_batch(devices, steps, changed);

    let seals = headline.steady_seals();
    eprintln!(
        "seal (delta, {changed} changed): warm-up {} µs, steady min {} / median {} / max {} µs | observe (full {devices}): min {} µs",
        headline.warmup_seal_micros,
        min(&seals),
        median(&seals),
        max(&seals),
        min(&observe_micros),
    );

    // --- Fleet-size sweep at fixed churn: the flatness evidence. Every
    // point runs `reps` independent repetitions; the reported median is
    // the minimum per-repetition median, so a single noisy repetition
    // cannot fake a slope (or hide one — the envelope is per-point).
    struct SweepPoint {
        devices: usize,
        changed: usize,
        warmup_seal_micros: u64,
        steady_min: u64,
        steady_median: u64,
        steady_max: u64,
    }
    let mut sweep_points: Vec<SweepPoint> = Vec::new();
    for &size in &sweep_sizes {
        eprintln!("sweep: {size} devices at {SWEEP_CHANGED} changed/epoch, {reps} reps");
        let runs: Vec<RunStats> = (0..reps)
            .map(|_| run_streaming(size, steps, SWEEP_CHANGED))
            .collect();
        let medians: Vec<u64> = runs.iter().map(|r| median(&r.steady_seals())).collect();
        let all_seals: Vec<u64> = runs.iter().flat_map(|r| r.steady_seals()).collect();
        sweep_points.push(SweepPoint {
            devices: size,
            changed: SWEEP_CHANGED,
            warmup_seal_micros: min(&runs
                .iter()
                .map(|r| r.warmup_seal_micros)
                .collect::<Vec<_>>()),
            steady_min: min(&all_seals),
            steady_median: min(&medians),
            steady_max: max(&all_seals),
        });
    }
    sweep_points.sort_by_key(|r| r.devices);
    let sweep_flat_ratio = match (sweep_points.first(), sweep_points.last()) {
        (Some(small), Some(large)) if small.devices < large.devices => {
            large.steady_median as f64 / small.steady_median.max(1) as f64
        }
        _ => 1.0,
    };
    for r in &sweep_points {
        eprintln!(
            "sweep {} devices: warm-up {} µs, steady median {} µs (min of {reps} medians)",
            r.devices, r.warmup_seal_micros, r.steady_median
        );
    }
    eprintln!("sweep flat ratio (largest/smallest steady median): {sweep_flat_ratio:.2}");

    let epochs_json: Vec<String> = headline
        .epochs
        .iter()
        .map(|e| {
            format!(
                "{{\"ingest_micros\":{},\"seal_micros\":{},\"verdicts\":{}}}",
                e.ingest_micros, e.seal_micros, e.verdicts
            )
        })
        .collect();
    let sweep_json: Vec<String> = sweep_points
        .iter()
        .map(|r| {
            format!(
                concat!(
                    "{{\"devices\":{},\"changed\":{},\"warmup_seal_micros\":{},",
                    "\"steady_seal_micros_min\":{},\"steady_seal_micros_median\":{},",
                    "\"steady_seal_micros_max\":{}}}"
                ),
                r.devices,
                r.changed,
                r.warmup_seal_micros,
                r.steady_min,
                r.steady_median,
                r.steady_max,
            )
        })
        .collect();
    let json = format!(
        concat!(
            "{{\"bench\":\"ingest\",\"devices\":{},\"services\":{},",
            "\"cluster\":{},\"changed_per_epoch\":{},\"steps\":{},",
            "\"warmup_seal_micros\":{},",
            "\"seal_micros_min\":{},\"seal_micros_median\":{},\"seal_micros_max\":{},",
            "\"ingest_micros_min\":{},",
            "\"observe_full_micros_min\":{},",
            "\"sweep_reps\":{},\"sweep\":[{}],\"sweep_flat_ratio\":{:.3},",
            "\"epochs\":[{}]}}\n"
        ),
        devices,
        SERVICES,
        CLUSTER,
        changed,
        steps,
        headline.warmup_seal_micros,
        min(&seals),
        median(&seals),
        max(&seals),
        min(&headline
            .epochs
            .iter()
            .map(|e| e.ingest_micros)
            .collect::<Vec<_>>()),
        min(&observe_micros),
        reps,
        sweep_json.join(","),
        sweep_flat_ratio,
        epochs_json.join(","),
    );
    std::fs::write(&out_path, json).expect("write bench output");
    eprintln!("wrote {out_path}");
}
