//! Ingest benchmark: seal latency of the streaming front-end.
//!
//! A large calm fleet is established once; then each measured epoch
//! ingests updates for only a small changed fraction of the devices (the
//! rest are bridged by `CarryForward`), seals, and records the wall-clock
//! of the seal. For comparison the same fleet is also driven through the
//! batch `observe` path with full snapshots. The run asserts that every
//! measured delta seal maintained the vicinity grid incrementally (no
//! rebuild) — the structural guarantee that sealing is O(changed devices)
//! — and writes the numbers as JSON.
//!
//! Knobs (environment variables):
//!
//! * `INGEST_BENCH_DEVICES` — fleet size (default 50000)
//! * `INGEST_BENCH_STEPS` — measured epochs (default 12)
//! * `INGEST_BENCH_CHANGED_PERMILLE` — changed devices per epoch, in ‰ of
//!   the fleet (default 10 = 1%)
//! * `INGEST_BENCH_OUT` — output path (default `BENCH_ingest.json`)

use anomaly_characterization::pipeline::{
    GridMaintenance, Monitor, MonitorBuilder, StalenessPolicy,
};
use anomaly_detectors::{ThresholdDetector, VectorDetector};
use anomaly_qos::{GridUpdate, QosSpace, Snapshot};
use std::time::Instant;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

const SERVICES: usize = 2;

/// Calm base position of device `k`: a deterministic spread over the cube.
fn base_row(k: usize) -> Vec<f64> {
    vec![
        0.55 + 0.3 * ((k % 97) as f64 / 97.0),
        0.55 + 0.3 * ((k % 89) as f64 / 89.0),
    ]
}

/// Anomalous position of device `k` during a measured epoch.
fn jump_row(k: usize) -> Vec<f64> {
    vec![0.10 + 0.02 * ((k % 7) as f64 / 7.0), 0.12]
}

fn monitor(devices: usize) -> Monitor {
    MonitorBuilder::new()
        .services(SERVICES)
        .staleness(StalenessPolicy::CarryForward {
            max_age: u64::MAX - 1,
        })
        .grid_maintenance(GridMaintenance::Incremental)
        .detector_factory(|_| {
            Box::new(VectorDetector::homogeneous(SERVICES, || {
                ThresholdDetector::with_delta(0.15)
            }))
        })
        .capacity(devices)
        .fleet(devices)
        .build()
        .expect("bench monitor configuration is valid")
}

struct EpochStats {
    ingest_micros: u64,
    seal_micros: u64,
    verdicts: usize,
}

fn main() {
    let devices = env_usize("INGEST_BENCH_DEVICES", 50_000);
    let steps = env_usize("INGEST_BENCH_STEPS", 12);
    let permille = env_usize("INGEST_BENCH_CHANGED_PERMILLE", 10);
    let changed = ((devices * permille) / 1000).max(1);
    let out_path =
        std::env::var("INGEST_BENCH_OUT").unwrap_or_else(|_| "BENCH_ingest.json".to_string());
    eprintln!(
        "ingest bench: {devices} devices, {steps} epochs, {changed} changed/epoch ({permille}‰)"
    );

    // --- Streaming path: establish, then measure delta seals.
    let mut m = monitor(devices);
    for _ in 0..2 {
        m.ingest_many((0..devices).map(|k| (k as u64, base_row(k))))
            .expect("baseline rows are valid");
        m.seal().expect("full epochs seal");
    }
    let mut epochs: Vec<EpochStats> = Vec::with_capacity(steps);
    for step in 0..steps {
        // A rotating window of devices jumps out on even epochs and back
        // on odd ones: every measured epoch stages exactly `changed`
        // updates, and every epoch produces real motion.
        let start = ((step / 2) * changed) % devices;
        let jumping = step.is_multiple_of(2);
        let ingest_start = Instant::now();
        for i in 0..changed {
            let k = (start + i) % devices;
            let row = if jumping { jump_row(k) } else { base_row(k) };
            m.ingest(k as u64, row).expect("update rows are valid");
        }
        let ingest_micros = ingest_start.elapsed().as_micros() as u64;
        let seal_start = Instant::now();
        let report = m.seal().expect("delta epochs seal");
        let seal_micros = seal_start.elapsed().as_micros() as u64;
        // The structural claim: a small epoch never rebuilds the grid.
        // (The very first measured epoch builds it once.)
        match m.last_grid_update() {
            Some(GridUpdate::Incremental { rebucketed }) => assert!(
                rebucketed <= 2 * changed,
                "epoch {step}: rebucketed {rebucketed} for {changed} changed"
            ),
            Some(GridUpdate::Rebuilt) => assert_eq!(step, 0, "late grid rebuild at epoch {step}"),
            None => panic!("epoch {step}: characterization did not run"),
        }
        epochs.push(EpochStats {
            ingest_micros,
            seal_micros,
            verdicts: report.verdicts().len(),
        });
    }

    // --- Batch path on the same workload shape, for the headline ratio.
    let mut b = monitor(devices);
    let space = QosSpace::new(SERVICES).expect("two services");
    let full_rows = |step: usize| -> Snapshot {
        let start = ((step / 2) * changed) % devices;
        let jumping = step.is_multiple_of(2);
        let rows: Vec<Vec<f64>> = (0..devices)
            .map(|k| {
                let in_window = (k + devices - start) % devices < changed;
                if in_window && jumping {
                    jump_row(k)
                } else {
                    base_row(k)
                }
            })
            .collect();
        Snapshot::from_rows(&space, rows).expect("rows are valid")
    };
    let base_snapshot = Snapshot::from_rows(&space, (0..devices).map(base_row).collect())
        .expect("base rows are valid");
    for _ in 0..2 {
        b.observe(base_snapshot.clone()).expect("warm-up");
    }
    let mut observe_micros: Vec<u64> = Vec::with_capacity(steps);
    for (step, epoch) in epochs.iter().enumerate() {
        let snapshot = full_rows(step);
        let t = Instant::now();
        let report = b.observe(snapshot).expect("batch epochs observe");
        observe_micros.push(t.elapsed().as_micros() as u64);
        assert_eq!(
            report.verdicts().len(),
            epoch.verdicts,
            "step {step}: batch and streaming paths disagree on verdicts"
        );
    }

    let min = |xs: &[u64]| xs.iter().copied().min().unwrap_or(0);
    let seal_min = min(&epochs.iter().map(|e| e.seal_micros).collect::<Vec<_>>());
    let ingest_min = min(&epochs.iter().map(|e| e.ingest_micros).collect::<Vec<_>>());
    let observe_min = min(&observe_micros);
    eprintln!(
        "seal (delta, {changed} changed): min {seal_min} µs (+{ingest_min} µs ingest) | observe (full {devices}): min {observe_min} µs"
    );

    let epochs_json: Vec<String> = epochs
        .iter()
        .map(|e| {
            format!(
                "{{\"ingest_micros\":{},\"seal_micros\":{},\"verdicts\":{}}}",
                e.ingest_micros, e.seal_micros, e.verdicts
            )
        })
        .collect();
    let json = format!(
        concat!(
            "{{\"bench\":\"ingest\",\"devices\":{},\"services\":{},",
            "\"changed_per_epoch\":{},\"steps\":{},",
            "\"seal_micros_min\":{},\"ingest_micros_min\":{},",
            "\"observe_full_micros_min\":{},",
            "\"epochs\":[{}]}}\n"
        ),
        devices,
        SERVICES,
        changed,
        steps,
        seal_min,
        ingest_min,
        observe_min,
        epochs_json.join(","),
    );
    std::fs::write(&out_path, json).expect("write bench output");
    eprintln!("wrote {out_path}");
}
