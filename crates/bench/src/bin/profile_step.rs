//! Ad-hoc profiling helper: times build/quick/full characterization on
//! consecutive heavy steps (A = 60, all-massive) to guard against
//! neighbourhood blow-ups over long runs.
use anomaly_core::{Analyzer, TrajectoryTable};
use anomaly_qos::DeviceId;
use anomaly_simulator::{ScenarioConfig, Simulation};
use std::time::Instant;

fn main() {
    let config = ScenarioConfig::paper_defaults(2014)
        .with_errors_per_step(60)
        .with_isolated_prob(0.0);
    let mut sim = Simulation::new(config).unwrap();
    for step in 0..12 {
        let outcome = sim.step();
        let abnormal: Vec<DeviceId> = outcome.abnormal().iter().collect();
        let t0 = Instant::now();
        let table = TrajectoryTable::from_state_pair(&outcome.pair, &abnormal);
        let analyzer = Analyzer::new(&table, outcome.config.params);
        let t1 = Instant::now();
        let full = analyzer.classify_all_full();
        let t2 = Instant::now();
        println!(
            "step {step}: |A_k|={} build={:?} full={:?}",
            abnormal.len(),
            t1 - t0,
            t2 - t1
        );
        let _ = full;
    }
}
