//! Regenerates Table II (and Table III, which shares the runs).
fn main() {
    anomaly_bench::experiments::table2_and_3(anomaly_bench::repro_steps());
}
