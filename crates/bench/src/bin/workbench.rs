//! Scenario workbench: the full accuracy matrix — every workload scenario
//! × every engine and baseline — scored against ground truth and written
//! to `BENCH_eval.json`.
//!
//! For each scenario the paper's pipeline runs under both the sequential
//! and the threaded engine (their metrics must agree byte-for-byte — the
//! run aborts otherwise) and the k-means and tessellation baselines are
//! scored on the *same* generated steps. On scenarios whose name starts
//! with `network`, the paper engine's macro F1 must meet or beat both
//! baselines; the run aborts otherwise.
//!
//! Knobs (environment variables):
//!
//! * `EVAL_BENCH_OUT` — output path (default `BENCH_eval.json`)
//! * `EVAL_BENCH_BASELINE` — path to a previously committed
//!   `BENCH_eval.json`; when set, every (scenario, method) cell present in
//!   both runs must not regress in macro F1, event-level F1, or alert
//!   page F1 (tolerance 1e-6) or the run aborts. When unset the gate is skipped for local
//!   exploratory runs — unless `CI` is set, in which case the run fails
//!   loudly instead of letting the gate go silently vacuous
//! * `EVAL_BENCH_WORKERS` — threaded worker count (default 4)
//! * `EVAL_BENCH_FLEET_DEVICES` — fleet-scenario population (default
//!   20000; the scenario name embeds the value, so reduced runs are never
//!   compared against full ones)

use anomaly_baselines::{Classifier, KMeansClassifier, TessellationClassifier};
use anomaly_characterization::pipeline::Engine;
use anomaly_core::Params;
use anomaly_eval::{
    evaluate_classifier_on, evaluate_monitor_alerts_on, evaluate_monitor_on,
    evaluate_monitor_streaming_on, AdversaryScenario, ChurnScenario, FleetScenario,
    NetworkFaultScenario, PersistentAnomalyScenario, RecordedScenario, Scenario, ScenarioScore,
    SimScenario,
};
use anomaly_simulator::trace::Trace;
use anomaly_simulator::{DestinationModel, FleetSpec, ScenarioConfig};

/// One row of the matrix: a scenario plus the baseline knobs that give the
/// baselines their best shot (k close to the true event count).
struct Entry {
    scenario: Box<dyn Scenario>,
    kmeans_k: usize,
    tess_cells: usize,
    /// ISP-tree shape for alert-quality scoring; `Some` only on the
    /// network scenarios, whose dense device ids are gateway indices.
    alert_shape: Option<(usize, usize, usize, usize)>,
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn scenarios() -> Vec<Entry> {
    let mut entries: Vec<Entry> = Vec::new();

    // The paper's Section VII-A operating point: mostly-massive errors.
    entries.push(Entry {
        scenario: Box::new(SimScenario::paper("sim-paper", 42, 6)),
        kmeans_k: 20,
        tess_cells: 16,
        alert_shape: None,
    });

    // Isolated-heavy variant: the regime where false massives hurt most.
    let mut isolated_heavy = ScenarioConfig::paper_defaults(43);
    isolated_heavy.isolated_prob = 0.6;
    entries.push(Entry {
        scenario: Box::new(SimScenario {
            name: "sim-isolated-heavy".into(),
            config: isolated_heavy,
            steps: 6,
            detector_delta: 0.02,
        }),
        kmeans_k: 20,
        tess_cells: 16,
        alert_shape: None,
    });

    // ISP tree, network-level outages only.
    let mut dslam_only = NetworkFaultScenario::small_mixed("network-dslam-outages", 7, 6);
    dslam_only.dslam_faults_per_step = 2;
    dslam_only.cpe_faults_per_step = 0;
    let dslam_shape = dslam_only.config.shape;
    entries.push(Entry {
        scenario: Box::new(dslam_only),
        kmeans_k: 2,
        tess_cells: 16,
        alert_shape: Some(dslam_shape),
    });

    // ISP tree, mixed network and CPE faults.
    let mut mixed = NetworkFaultScenario::small_mixed("network-mixed-faults", 8, 6);
    mixed.cpe_faults_per_step = 2;
    let mixed_shape = mixed.config.shape;
    entries.push(Entry {
        scenario: Box::new(mixed),
        kmeans_k: 3,
        tess_cells: 16,
        alert_shape: Some(mixed_shape),
    });

    // Collusion: a τ-strong coalition shadows isolated victims.
    let mut adversary_config = ScenarioConfig::paper_defaults(5);
    adversary_config.n = 400;
    adversary_config.errors_per_step = 6;
    adversary_config.isolated_prob = 0.9;
    adversary_config.destination = DestinationModel::Uniform;
    let coalition = adversary_config.params.tau();
    entries.push(Entry {
        scenario: Box::new(AdversaryScenario {
            name: "adversary-collusion".into(),
            config: adversary_config,
            coalition,
            steps: 6,
            detector_delta: 0.02,
            shadow_seed: 11,
        }),
        kmeans_k: 7,
        tess_cells: 16,
        alert_shape: None,
    });

    // Large fleet: cluster/loner mix over a calm jittering population.
    let devices = env_usize("EVAL_BENCH_FLEET_DEVICES", 20_000);
    let fleet = FleetSpec {
        devices,
        services: 2,
        massive_clusters: (devices / 2000).max(1),
        cluster_size: 10,
        isolated: (devices / 400).max(1),
        cohesion: 0.05,
        calm_activity: 0.1,
        jitter: 0.02,
        shift: 0.3,
        seed: 17,
    };
    let fleet_events = fleet.massive_clusters + fleet.isolated;
    entries.push(Entry {
        scenario: Box::new(FleetScenario {
            name: format!("fleet-{devices}"),
            fleet,
            steps: 3,
            params: Params::new(0.03, 3).expect("valid fleet operating point"),
        }),
        kmeans_k: fleet_events,
        tess_cells: 16,
        alert_shape: None,
    });

    // Membership churn over a mid-size fleet.
    let churn_fleet = FleetSpec {
        devices: 2000,
        services: 2,
        massive_clusters: 3,
        cluster_size: 8,
        isolated: 10,
        cohesion: 0.05,
        calm_activity: 0.3,
        jitter: 0.02,
        shift: 0.3,
        seed: 19,
    };
    entries.push(Entry {
        scenario: Box::new(ChurnScenario {
            fleet: FleetScenario {
                name: "churn-fleet".into(),
                fleet: churn_fleet,
                steps: 6,
                params: Params::new(0.03, 3).expect("valid fleet operating point"),
            },
            churn_devices: 100,
            churn_every: 2,
        }),
        kmeans_k: 13,
        tess_cells: 16,
        alert_shape: None,
    });

    // Long-lived anomalies + flapping devices: the event-tracker workload.
    // A multi-step cluster outage and recurring isolated faults must
    // surface as correlated events, not per-instant verdict confetti.
    entries.push(Entry {
        scenario: Box::new(PersistentAnomalyScenario::standard(
            "persistent-anomaly",
            61,
        )),
        kmeans_k: 12,
        tess_cells: 16,
        alert_shape: None,
    });

    // Recorded trace: a Section VII-A scenario through the text format.
    let recorded_source = SimScenario::paper("recorded-source", 42, 2);
    let run = recorded_source
        .generate()
        .expect("the paper operating point generates");
    let mut trace = Trace::new(
        recorded_source.config.n,
        recorded_source.config.dim,
        recorded_source.config.params,
    );
    trace.steps = run.steps;
    let text = trace.to_text();
    entries.push(Entry {
        scenario: Box::new(
            RecordedScenario::from_text("recorded-replay", &text, 0.02)
                .expect("a freshly serialized trace parses"),
        ),
        kmeans_k: 20,
        tess_cells: 16,
        alert_shape: None,
    });

    entries
}

/// Extracts `(scenario, method) -> metric` triplets for one numeric JSON
/// key from a workbench JSON file (the exact format this binary writes).
/// Keys absent from a cell (e.g. `event_f1` in a pre-event baseline file)
/// are simply skipped, so the gate stays backward compatible.
fn parse_metric(text: &str, key: &str) -> Vec<(String, String, f64)> {
    let needle = format!("\"{key}\":");
    let mut out = Vec::new();
    for chunk in text.split("{\"scenario\":\"").skip(1) {
        let Some(scenario) = chunk.split('"').next() else {
            continue;
        };
        let Some(method) = chunk
            .split("\"method\":\"")
            .nth(1)
            .and_then(|rest| rest.split('"').next())
        else {
            continue;
        };
        let Some(value) = chunk
            .split(needle.as_str())
            .nth(1)
            .and_then(|rest| rest.split([',', '}']).next())
            .and_then(|num| num.parse::<f64>().ok())
        else {
            continue;
        };
        out.push((scenario.to_string(), method.to_string(), value));
    }
    out
}

fn main() {
    let out_path =
        std::env::var("EVAL_BENCH_OUT").unwrap_or_else(|_| "BENCH_eval.json".to_string());
    let workers = env_usize("EVAL_BENCH_WORKERS", 4);

    let mut scores: Vec<ScenarioScore> = Vec::new();
    for entry in scenarios() {
        let scenario = entry.scenario.as_ref();
        let spec = scenario.spec();
        let tau = spec.params.tau();
        // One generation per scenario: all four methods score the same run.
        let run = scenario.generate().expect("the scenario generates");

        // Network scenarios additionally score the serve crate's alert
        // pipeline (page precision/recall against the truth spans); the
        // engine byte-equality assertion below then covers the alert fold.
        let (paper, threaded) = match entry.alert_shape {
            Some(shape) => (
                evaluate_monitor_alerts_on(&spec, &run, Engine::Sequential, shape)
                    .expect("sequential evaluation succeeds"),
                evaluate_monitor_alerts_on(&spec, &run, Engine::Threaded { workers }, shape)
                    .expect("threaded evaluation succeeds"),
            ),
            None => (
                evaluate_monitor_on(&spec, &run, Engine::Sequential)
                    .expect("sequential evaluation succeeds"),
                evaluate_monitor_on(&spec, &run, Engine::Threaded { workers })
                    .expect("threaded evaluation succeeds"),
            ),
        };
        assert_eq!(
            paper.metrics_json(),
            threaded.metrics_json(),
            "engines disagree on {}",
            spec.name
        );
        if let Some(quality) = &paper.alerts {
            eprintln!(
                "{:>22}: alerts {} / truth {} (page F1 {:.3}, {} recurrences, {} signatures)",
                spec.name,
                quality.alerts,
                quality.truth_events,
                quality.page_f1(),
                quality.recurrences,
                quality.distinct_signatures,
            );
            assert!(
                quality.page_f1() > 0.0,
                "{}: the alert pipeline paged nothing real: {quality:?}",
                spec.name
            );
        }

        let kmeans = KMeansClassifier::new(entry.kmeans_k, tau, 1);
        let tess = TessellationClassifier::new(entry.tess_cells, tau);
        let km_score = evaluate_classifier_on(&spec, &run, &kmeans);
        let tess_score = evaluate_classifier_on(&spec, &run, &tess);

        eprintln!(
            concat!(
                "{:>22}: paper F1 {:.3} (event F1 {:.3}, latency {:.2}) | ",
                "{} F1 {:.3} | {} F1 {:.3} ({} truth devices, {} events, {} spurious)"
            ),
            spec.name,
            paper.macro_f1(),
            paper.events.f1(),
            paper.events.mean_latency(),
            kmeans.name(),
            km_score.macro_f1(),
            tess.name(),
            tess_score.macro_f1(),
            paper.confusion.total(),
            paper.events.truth_events,
            paper.confusion.spurious_total(),
        );

        // The acceptance gate: on network-fault scenarios the paper's
        // pipeline must meet or beat both centralized baselines.
        if spec.name.starts_with("network") {
            for baseline in [&km_score, &tess_score] {
                assert!(
                    paper.macro_f1() + 1e-9 >= baseline.macro_f1(),
                    "{}: paper F1 {:.4} lost to {} F1 {:.4}",
                    spec.name,
                    paper.macro_f1(),
                    baseline.method,
                    baseline.macro_f1()
                );
            }
        }

        // The event-tracker gate: on the long-lived-anomaly workload the
        // multi-step cluster outage and every flapper recurrence must be
        // found as correlated events — perfectly, with no invented events
        // and no detection lag.
        if spec.name.starts_with("persistent") {
            assert_eq!(
                (paper.events.recall(), paper.events.precision()),
                (1.0, 1.0),
                "{}: event tracking degraded: {:?}",
                spec.name,
                paper.events
            );
            assert_eq!(
                paper.events.mean_latency(),
                0.0,
                "{}: detection latency appeared: {:?}",
                spec.name,
                paper.events
            );
        }

        scores.extend([paper, threaded, km_score, tess_score]);
    }

    // Streaming-replay gate: one scenario driven through the ingest/seal
    // front-end with a seed-fixed shuffled arrival order must score
    // byte-identically to the batch path.
    {
        let mut streamed_scenario = NetworkFaultScenario::small_mixed("network-mixed-faults", 8, 6);
        streamed_scenario.cpe_faults_per_step = 2;
        let spec = streamed_scenario.spec();
        let run = streamed_scenario
            .generate()
            .expect("the scenario generates");
        let batch = evaluate_monitor_on(&spec, &run, Engine::Sequential)
            .expect("batch evaluation succeeds");
        let streamed = evaluate_monitor_streaming_on(&spec, &run, Engine::Sequential, 4242, 0.0, 1)
            .expect("streaming evaluation succeeds");
        assert_eq!(
            batch.metrics_json(),
            streamed.metrics_json(),
            "streaming replay diverged from the batch path on {}",
            spec.name
        );
        eprintln!(
            "streaming gate: {} replayed through ingest/seal, scores byte-identical (F1 {:.3})",
            spec.name,
            streamed.macro_f1()
        );
    }

    let entries_json: Vec<String> = scores.iter().map(ScenarioScore::to_json).collect();
    let json = format!(
        "{{\"bench\":\"eval\",\"workers\":{},\"entries\":[\n{}\n]}}\n",
        workers,
        entries_json.join(",\n")
    );

    // Accuracy-regression gate against a committed run, on both the
    // device-level macro F1 and the event-level F1. In CI the gate is
    // mandatory: a missing EVAL_BENCH_BASELINE must fail the job loudly
    // instead of silently skipping the comparison.
    match std::env::var("EVAL_BENCH_BASELINE") {
        Ok(baseline_path) => {
            let committed =
                std::fs::read_to_string(&baseline_path).expect("read the committed baseline file");
            for key in ["macro_f1", "event_f1", "page_f1"] {
                let old = parse_metric(&committed, key);
                let new = parse_metric(&json, key);
                if key == "macro_f1" {
                    assert!(!old.is_empty(), "no entries parsed from {baseline_path}");
                } else if old.is_empty() {
                    // A pre-event baseline file: nothing to compare yet.
                    eprintln!("regression gate: {baseline_path} has no {key} cells, skipping");
                    continue;
                }
                let mut compared = 0usize;
                for (scenario, method, old_value) in &old {
                    let Some((_, _, new_value)) =
                        new.iter().find(|(s, m, _)| s == scenario && m == method)
                    else {
                        continue; // reduced runs skip cells (e.g. a smaller fleet)
                    };
                    compared += 1;
                    assert!(
                        *new_value + 1e-6 >= *old_value,
                        "{key} regression on ({scenario}, {method}): \
                         {new_value:.6} < {old_value:.6}"
                    );
                }
                // The gate must not go vacuous: only deliberately re-shaped
                // cells (a resized fleet, a renamed worker count) may be
                // skipped. If fewer than half the committed cells matched,
                // something drifted — a scenario rename or a serialization
                // change — and the "none worse" claim would be hollow.
                assert!(
                    compared * 2 >= old.len(),
                    "regression gate went vacuous: only {compared}/{} committed {key} cells \
                     matched",
                    old.len()
                );
                eprintln!(
                    "regression gate: {compared} {key} cells compared against {baseline_path}, \
                     none worse"
                );
            }
        }
        Err(_) if std::env::var("CI").is_ok() => {
            panic!(
                "EVAL_BENCH_BASELINE is not set but CI is: the accuracy-regression gate would \
                 silently skip. Point it at the committed BENCH_eval.json (or unset CI for a \
                 local exploratory run)."
            );
        }
        Err(_) => {
            eprintln!("regression gate: EVAL_BENCH_BASELINE not set, skipping (local run)");
        }
    }

    std::fs::write(&out_path, json).expect("write workbench output");
    eprintln!("wrote {out_path}");
}
