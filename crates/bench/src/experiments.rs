//! The experiment implementations. Each function regenerates one table or
//! figure of the paper and writes rows to stdout.

use anomaly_analytic::{
    prob_false_dense_at_most, prob_false_dense_at_most_with_q, prob_vicinity_at_most,
};
use anomaly_baselines::{
    compare_on_scenario, Classifier, KMeansClassifier, TessellationClassifier,
};
use anomaly_simulator::{runner::analyze_step, sweep::sweep_grid, ScenarioConfig, Simulation};

/// The `A` grid of Figures 7–9.
pub const A_VALUES: [usize; 7] = [1, 10, 20, 30, 40, 50, 60];
/// The `G` grid of Figures 7–9.
pub const G_VALUES: [f64; 5] = [0.0, 0.3, 0.5, 0.7, 1.0];

/// Figure 6(a): `P{N_r(j) ≤ m}` as a function of `m` for several radii,
/// `n = 1000`, `d = 2`.
pub fn fig6a() {
    println!("# Figure 6(a) — P{{N_r(j) <= m}} vs m (n = 1000, d = 2)");
    let radii = [0.1, 0.05, 0.033, 0.025, 0.02];
    print!("{:>6}", "m");
    for r in radii {
        print!("  r={r:<7}");
    }
    println!();
    for m in (0..=200).step_by(10) {
        print!("{m:>6}");
        for r in radii {
            print!("  {:<9.5}", prob_vicinity_at_most(1000, r, 2, m));
        }
        println!();
    }
}

/// Figure 6(b): `P{F_r(j) ≤ τ}` as a function of `n` for `τ ∈ {2,…,5}`,
/// `r = 0.03`, `b = 0.005`. Prints both the text model (vicinity radius
/// `2r`, `q = (4r)^d`) and the figure-matching model (radius `r`,
/// `q = (2r)^d`) — see EXPERIMENTS.md for the discrepancy note.
pub fn fig6b() {
    println!("# Figure 6(b) — P{{F_r(j) <= tau}} vs n (r = 0.03, b = 0.005, d = 2)");
    let taus = [2u64, 3, 4, 5];
    for (label, q) in [
        ("text model  q=(4r)^2", (4.0 * 0.03f64).powi(2)),
        ("figure model q=(2r)^2", (2.0 * 0.03f64).powi(2)),
    ] {
        println!("## {label}");
        print!("{:>7}", "n");
        for t in taus {
            print!("  tau={t:<9}");
        }
        println!();
        for n in (1000..=15_000).step_by(2000) {
            print!("{n:>7}");
            for t in taus {
                let p = prob_false_dense_at_most_with_q(n, q, 0.005, t).expect("valid parameters");
                print!("  {:<13.6}", p);
            }
            println!();
        }
    }
    // Cross-check: the generic-q function at q=(4r)^2 equals the text API.
    let a = prob_false_dense_at_most(5000, 0.03, 2, 0.005, 3).unwrap();
    let b = prob_false_dense_at_most_with_q(5000, 0.0144, 0.005, 3).unwrap();
    assert!((a - b).abs() < 1e-12);
}

/// Tables II and III: repartition of `A_k` across `I_k` (Theorem 5),
/// `M_k` (Theorem 6), `U_k` (Corollary 8) and the extra `M_k` devices only
/// Theorem 7 finds — plus the average per-device costs.
///
/// Paper settings: `A = 20`, `n = 1000`, `r = 0.03`, `τ = 3`, `G = ε`,
/// `|A_k| ≈ 95.7`.
pub fn table2_and_3(steps: u64) {
    let config = ScenarioConfig::paper_defaults(20140623); // DSN 2014 dates
    let mut sim = Simulation::new(config).expect("paper defaults are valid");
    let mut tot_abnormal = 0u64;
    let (mut tot_i, mut tot_m6, mut tot_u, mut tot_m7) = (0u64, 0u64, 0u64, 0u64);
    let (mut sum_mi, mut sum_d6, mut sum_cu, mut sum_c7) = (0.0, 0.0, 0.0, 0.0);
    for _ in 0..steps {
        let report = analyze_step(&sim.step(), true);
        tot_abnormal += report.abnormal as u64;
        tot_i += report.isolated as u64;
        tot_m6 += report.massive_thm6 as u64;
        tot_u += report.unresolved as u64;
        tot_m7 += report.massive_thm7 as u64;
        sum_mi += report.avg_motions_isolated * report.isolated as f64;
        sum_d6 += report.avg_dense_massive6 * report.massive_thm6 as f64;
        sum_cu += report.avg_collections_unresolved * report.unresolved as f64;
        sum_c7 += report.avg_collections_massive7 * report.massive_thm7 as f64;
    }
    let pct = |x: u64| 100.0 * x as f64 / tot_abnormal.max(1) as f64;
    println!("# Table II — repartition of A_k (A = 20, n = 1000, r = 0.03, tau = 3)");
    println!(
        "  steps = {steps}, mean |A_k| = {:.1}",
        tot_abnormal as f64 / steps as f64
    );
    println!("  {:<28} {:>10} {:>10}", "set (rule)", "ours", "paper");
    println!(
        "  {:<28} {:>9.2}% {:>10}",
        "I_k (Theorem 5)",
        pct(tot_i),
        "2.54%"
    );
    println!(
        "  {:<28} {:>9.2}% {:>10}",
        "M_k (Theorem 6)",
        pct(tot_m6),
        "88.34%"
    );
    println!(
        "  {:<28} {:>9.2}% {:>10}",
        "U_k (Corollary 8)",
        pct(tot_u),
        "8.72%"
    );
    println!(
        "  {:<28} {:>9.2}% {:>10}",
        "M_k extra (Theorem 7)",
        pct(tot_m7),
        "0.4%"
    );

    let avg = |sum: f64, n: u64| if n == 0 { 0.0 } else { sum / n as f64 };
    println!();
    println!("# Table III — average computational cost per device");
    println!("  {:<34} {:>12} {:>12}", "cost (meaning)", "ours", "paper");
    println!(
        "  {:<34} {:>12.2} {:>12}",
        "I_k: maximal motions |M(j)|",
        avg(sum_mi, tot_i),
        "1.85"
    );
    println!(
        "  {:<34} {:>12.2} {:>12}",
        "M_k: dense motions |Wbar(j)|",
        avg(sum_d6, tot_m6),
        "1.17"
    );
    println!(
        "  {:<34} {:>12.1} {:>12}",
        "U_k: collections tested",
        avg(sum_cu, tot_u),
        "31107.9"
    );
    println!(
        "  {:<34} {:>12.1} {:>12}",
        "M_k via Thm 7: collections tested",
        avg(sum_c7, tot_m7),
        "2450150"
    );
}

/// Shared driver for the Figures 7–9 sweeps; prints a `(A × G)` grid of one
/// pooled percentage.
fn print_sweep(title: &str, ylabel: &str, enforce_r3: bool, steps: u64, missed: bool) {
    println!("# {title} (n = 1000, r = 0.03, tau = 3, {steps} steps/point)");
    let base = ScenarioConfig::paper_defaults(2014).with_enforce_r3(enforce_r3);
    let points =
        sweep_grid(&base, &A_VALUES, &G_VALUES, steps, true).expect("paper defaults are valid");
    print!("{:>4}", "A");
    for g in G_VALUES {
        print!("  G={g:<6}");
    }
    println!("   ({ylabel}, %)");
    for (ai, &a) in A_VALUES.iter().enumerate() {
        print!("{a:>4}");
        for gi in 0..G_VALUES.len() {
            let p = &points[ai * G_VALUES.len() + gi];
            let v = if missed {
                p.pooled_missed_pct()
            } else {
                p.pooled_u_ratio_pct()
            };
            print!("  {v:<7.2}");
        }
        println!();
    }
}

/// Figure 7: `|U_k|/|A_k|` vs `A` and `G`, restriction R3 enforced.
pub fn fig7(steps: u64) {
    print_sweep(
        "Figure 7 — |U_k|/|A_k| vs A and G (R3 enforced)",
        "|U|/|A|",
        true,
        steps,
        false,
    );
}

/// Figure 8: missed-detection proportion (isolated errors classified
/// massive) vs `A` and `G`, restriction R3 **not** enforced.
pub fn fig8(steps: u64) {
    print_sweep(
        "Figure 8 — missed detections vs A and G (R3 not enforced)",
        "isolated classified massive",
        false,
        steps,
        true,
    );
}

/// Figure 9: `|U_k|/|A_k|` vs `A` and `G`, restriction R3 **not** enforced.
pub fn fig9(steps: u64) {
    print_sweep(
        "Figure 9 — |U_k|/|A_k| vs A and G (R3 not enforced)",
        "|U|/|A|",
        false,
        steps,
        false,
    );
}

/// Baseline comparison (the Section II critique, quantified): the local
/// algorithm vs tessellation at several bucket resolutions vs centralized
/// k-means, on a mixed isolated/massive scenario.
pub fn baselines(steps: u64) {
    println!("# Baselines — accuracy vs the paper's local characterization");
    let mut config = ScenarioConfig::paper_defaults(777);
    config.isolated_prob = 0.5;
    let tess4 = TessellationClassifier::new(4, 3);
    let tess16 = TessellationClassifier::new(16, 3);
    let tess64 = TessellationClassifier::new(64, 3);
    let km20 = KMeansClassifier::new(20, 3, 99);
    let km40 = KMeansClassifier::new(40, 3, 99);
    let methods: Vec<&dyn Classifier> = vec![&tess4, &tess16, &tess64, &km20, &km40];
    let report = compare_on_scenario(&config, &methods, steps).expect("valid scenario");
    println!(
        "  {:<28} {:>9} {:>14} {:>15} {:>10}",
        "method", "accuracy", "false-massive", "false-isolated", "undecided"
    );
    for s in &report.scores {
        println!(
            "  {:<28} {:>8.1}% {:>14} {:>15} {:>10}",
            s.name,
            100.0 * s.accuracy(),
            s.false_massive,
            s.false_isolated,
            s.undecided
        );
    }
    println!(
        "  ({} abnormal devices over {} steps)",
        report.abnormal, report.steps
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_functions_run() {
        fig6a();
        fig6b();
    }

    #[test]
    fn tables_run_on_a_tiny_budget() {
        table2_and_3(1);
    }

    #[test]
    fn sweeps_run_on_a_tiny_budget() {
        print_sweep("smoke", "u", true, 1, false);
    }
}
