//! Reproduction harness: one function (and one binary) per table and figure
//! of the paper's evaluation section, plus Criterion micro-benchmarks.
//!
//! Every experiment prints the same rows/series the paper reports, next to
//! the paper's published values where applicable. Run them all with
//!
//! ```text
//! cargo run -p anomaly-bench --bin all
//! ```
//!
//! or individually (`fig6a`, `fig6b`, `table2`, `table3`, `fig7`, `fig8`,
//! `fig9`, `baselines`). The `REPRO_STEPS` environment variable scales the
//! Monte-Carlo effort (default 20 steps per grid point; the paper averaged
//! ~10 000 settings — raise it when you have the time).

#![forbid(unsafe_code)]
#![deny(warnings)]
#![warn(missing_docs)]

pub mod experiments;

/// Number of simulated steps per configuration, from `REPRO_STEPS`
/// (default 20, minimum 1).
pub fn repro_steps() -> u64 {
    std::env::var("REPRO_STEPS")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .map(|v| v.max(1))
        .unwrap_or(20)
}

#[cfg(test)]
mod tests {
    #[test]
    fn repro_steps_has_a_sane_default() {
        // The env var is not set under `cargo test`.
        if std::env::var("REPRO_STEPS").is_err() {
            assert_eq!(super::repro_steps(), 20);
        }
    }
}
