//! A hand-rolled, loss-free Rust lexer.
//!
//! The conformance lints need exactly one thing from a lexer: to tell code
//! from non-code. `unwrap` inside a string literal or a doc comment is not a
//! violation; `HashMap` in a `use` path is. So this lexer's contract is
//! *tiling*, not semantics:
//!
//! * every byte of the input belongs to exactly one token
//!   ([`Token::start`]`..`[`Token::end`], half-open),
//! * tokens are emitted in source order with no gaps and no overlaps, and
//! * concatenating the token texts reproduces the input byte-for-byte.
//!
//! Those invariants are property-tested against every `.rs` file in the
//! repository (see `tests/lexer_roundtrip.rs`). The token classification is
//! intentionally coarse — keywords are [`TokenKind::Ident`], every operator
//! is a single-character [`TokenKind::Punct`] — because the lint pass works
//! on small token patterns, never on a parse tree.
//!
//! The constructs that actually require care (and get it below):
//!
//! * nested block comments (`/* /* */ */`),
//! * raw strings with arbitrary hash fences (`r##"..."##`), raw byte
//!   strings, and raw identifiers (`r#match`),
//! * char literals vs. lifetimes (`'a'` vs. `'a`), including escapes
//!   (`'\u{1F600}'`),
//! * float exponents (`1e-3`) vs. range/method syntax (`1..2`, `1.min(2)`).

/// Coarse classification of one source span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Horizontal and vertical whitespace.
    Whitespace,
    /// `// ...` (including `///` and `//!` doc comments), newline excluded.
    LineComment,
    /// `/* ... */`, nesting respected; unterminated comments run to EOF.
    BlockComment,
    /// Identifier or keyword (`foo`, `match`, `self`).
    Ident,
    /// Raw identifier (`r#type`).
    RawIdent,
    /// Lifetime (`'a`, `'static`, `'_`).
    Lifetime,
    /// Char literal (`'x'`, `'\n'`, `'\u{1F600}'`) or byte char (`b'x'`).
    CharLit,
    /// String literal (`"..."`) or byte string (`b"..."`).
    StrLit,
    /// Raw (byte) string literal (`r"..."`, `r#"..."#`, `br#"..."#`).
    RawStrLit,
    /// Numeric literal, including suffix and exponent (`0xfe`, `1e-3_f64`).
    Number,
    /// One punctuation character (`.`, `[`, `!`, `:`; never compound).
    Punct,
    /// Anything the lexer does not understand; still exactly tiled.
    Unknown,
}

/// One token: a kind plus its byte span and 1-based start line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// Classification.
    pub kind: TokenKind,
    /// Byte offset of the first byte, inclusive.
    pub start: usize,
    /// Byte offset one past the last byte, exclusive.
    pub end: usize,
    /// 1-based line of `start`.
    pub line: u32,
}

impl Token {
    /// The token's text within `src` (the string it was lexed from).
    pub fn text<'s>(&self, src: &'s str) -> &'s str {
        &src[self.start..self.end]
    }
}

/// Character cursor with byte-offset and line tracking.
struct Cursor<'s> {
    src: &'s str,
    pos: usize,
    line: u32,
}

impl<'s> Cursor<'s> {
    fn new(src: &'s str) -> Self {
        Cursor {
            src,
            pos: 0,
            line: 1,
        }
    }

    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn peek2(&self) -> Option<char> {
        let mut it = self.src[self.pos..].chars();
        it.next();
        it.next()
    }

    fn peek3(&self) -> Option<char> {
        let mut it = self.src[self.pos..].chars();
        it.next();
        it.next();
        it.next()
    }

    /// Consumes one char, keeping the line count in step.
    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn bump_while(&mut self, pred: impl Fn(char) -> bool) {
        while matches!(self.peek(), Some(c) if pred(c)) {
            self.bump();
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Tokenizes `src` completely. Infallible: unrecognized bytes come back as
/// [`TokenKind::Unknown`] tokens, and unterminated literals or comments
/// extend to end of input — the tiling invariants hold regardless.
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor::new(src);
    let mut out = Vec::new();
    while let Some(c) = cur.peek() {
        let start = cur.pos;
        let line = cur.line;
        let kind = next_kind(&mut cur, c);
        debug_assert!(cur.pos > start, "lexer must always make progress");
        out.push(Token {
            kind,
            start,
            end: cur.pos,
            line,
        });
    }
    out
}

/// Lexes one token starting at `c`; the cursor is advanced past it.
fn next_kind(cur: &mut Cursor<'_>, c: char) -> TokenKind {
    match c {
        _ if c.is_whitespace() => {
            cur.bump_while(|c| c.is_whitespace());
            TokenKind::Whitespace
        }
        '/' if cur.peek2() == Some('/') => {
            cur.bump_while(|c| c != '\n');
            TokenKind::LineComment
        }
        '/' if cur.peek2() == Some('*') => block_comment(cur),
        'r' if matches!(cur.peek2(), Some('"' | '#')) => raw_prefixed(cur, false),
        'b' => byte_prefixed(cur),
        '"' => {
            cur.bump();
            string_body(cur);
            TokenKind::StrLit
        }
        '\'' => char_or_lifetime(cur),
        _ if is_ident_start(c) => {
            cur.bump_while(is_ident_continue);
            TokenKind::Ident
        }
        _ if c.is_ascii_digit() => number(cur),
        _ if c.is_ascii_punctuation() => {
            cur.bump();
            TokenKind::Punct
        }
        _ => {
            cur.bump();
            TokenKind::Unknown
        }
    }
}

/// `/* ... */` with nesting; the opening `/*` is still unconsumed.
fn block_comment(cur: &mut Cursor<'_>) -> TokenKind {
    cur.bump();
    cur.bump();
    let mut depth = 1usize;
    while depth > 0 {
        match (cur.peek(), cur.peek2()) {
            (Some('/'), Some('*')) => {
                cur.bump();
                cur.bump();
                depth += 1;
            }
            (Some('*'), Some('/')) => {
                cur.bump();
                cur.bump();
                depth -= 1;
            }
            (Some(_), _) => {
                cur.bump();
            }
            (None, _) => break, // unterminated: runs to EOF
        }
    }
    TokenKind::BlockComment
}

/// At `r` followed by `"` or `#`: raw string, raw identifier, or — for
/// `r#` fences that never open a quote — a plain ident. `byte` marks an
/// already-consumed `b` prefix.
fn raw_prefixed(cur: &mut Cursor<'_>, byte: bool) -> TokenKind {
    cur.bump(); // the `r`
    let mut hashes = 0usize;
    while cur.peek() == Some('#') {
        // `r#ident` (raw identifier) — only at exactly one `#` and only
        // when a quote never follows.
        if hashes == 0 && matches!(cur.peek2(), Some(c) if is_ident_start(c)) {
            cur.bump();
            cur.bump_while(is_ident_continue);
            return TokenKind::RawIdent;
        }
        cur.bump();
        hashes += 1;
    }
    if cur.peek() != Some('"') {
        // `r` or `br` that never opened a string: treat what we consumed
        // as an identifier-ish token (the `#`s were already eaten; this
        // does not occur in valid Rust, and tiling is all that matters).
        cur.bump_while(is_ident_continue);
        return if byte {
            TokenKind::Unknown
        } else {
            TokenKind::Ident
        };
    }
    cur.bump(); // opening quote
                // Scan for `"` followed by `hashes` fence hashes.
    'scan: while let Some(c) = cur.bump() {
        if c == '"' {
            let rest = &cur.src[cur.pos..];
            let mut it = rest.chars();
            for _ in 0..hashes {
                if it.next() != Some('#') {
                    continue 'scan;
                }
            }
            for _ in 0..hashes {
                cur.bump();
            }
            break;
        }
    }
    TokenKind::RawStrLit
}

/// At `b`: byte string `b"..."`, byte char `b'x'`, raw byte string
/// `br#"..."#`, or just an identifier starting with `b`.
fn byte_prefixed(cur: &mut Cursor<'_>) -> TokenKind {
    match cur.peek2() {
        Some('"') => {
            cur.bump();
            cur.bump();
            string_body(cur);
            TokenKind::StrLit
        }
        Some('\'') => {
            cur.bump();
            char_body(cur);
            TokenKind::CharLit
        }
        Some('r') if matches!(cur.peek3(), Some('"' | '#')) => {
            cur.bump(); // the `b`; raw_prefixed eats the `r`
            raw_prefixed(cur, true);
            TokenKind::RawStrLit
        }
        _ => {
            cur.bump_while(is_ident_continue);
            TokenKind::Ident
        }
    }
}

/// Body of a `"` string, opening quote already consumed.
fn string_body(cur: &mut Cursor<'_>) {
    while let Some(c) = cur.bump() {
        match c {
            '\\' => {
                cur.bump(); // the escaped char, whatever it is
            }
            '"' => break,
            _ => {}
        }
    }
}

/// Body of a `'` char literal, opening quote already consumed.
fn char_body(cur: &mut Cursor<'_>) {
    cur.bump(); // opening `'`
    while let Some(c) = cur.bump() {
        match c {
            '\\' => {
                cur.bump();
            }
            '\'' => break,
            _ => {}
        }
    }
}

/// At `'`: a char literal when a close quote is in reach, else a lifetime.
fn char_or_lifetime(cur: &mut Cursor<'_>) -> TokenKind {
    match (cur.peek2(), cur.peek3()) {
        // `'\...'` — escapes only occur in char literals.
        (Some('\\'), _) => {
            char_body(cur);
            TokenKind::CharLit
        }
        // `'x'` — exactly one char then a close quote.
        (Some(c), Some('\'')) if c != '\'' => {
            char_body(cur);
            TokenKind::CharLit
        }
        // `'ident` — a lifetime (covers `'static`, `'a`, `'_`).
        (Some(c), _) if is_ident_start(c) => {
            cur.bump();
            cur.bump_while(is_ident_continue);
            TokenKind::Lifetime
        }
        // Stray quote (`''`, `'` at EOF): a single punct keeps the tiling.
        _ => {
            cur.bump();
            TokenKind::Punct
        }
    }
}

/// At an ASCII digit: integer / float / prefixed literal with suffix.
fn number(cur: &mut Cursor<'_>) -> TokenKind {
    cur.bump();
    // Digits, underscores, hex digits, and alphabetic suffixes (`u32`,
    // `f64`, `0x1f`) are all just "word characters" here.
    cur.bump_while(is_ident_continue);
    // Fraction: `.` only joins the number when a digit follows (so `1..2`
    // and `1.min(2)` leave the dot to punctuation).
    if cur.peek() == Some('.') && matches!(cur.peek2(), Some(c) if c.is_ascii_digit()) {
        cur.bump();
        cur.bump_while(is_ident_continue);
    }
    // Exponent sign: `1e-3` / `2.5E+10`. The `e` was consumed as a word
    // character; a trailing sign-then-digit continues the literal.
    if matches!(cur.peek(), Some('+' | '-'))
        && matches!(cur.peek2(), Some(c) if c.is_ascii_digit())
        && cur.src[..cur.pos].ends_with(['e', 'E'])
    {
        cur.bump();
        cur.bump_while(is_ident_continue);
    }
    TokenKind::Number
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src)
            .into_iter()
            .filter(|t| !matches!(t.kind, TokenKind::Whitespace))
            .map(|t| (t.kind, t.text(src)))
            .collect()
    }

    fn tiles(src: &str) {
        let toks = lex(src);
        let mut pos = 0;
        for t in &toks {
            assert_eq!(t.start, pos, "gap before {t:?} in {src:?}");
            assert!(t.end > t.start);
            pos = t.end;
        }
        assert_eq!(pos, src.len(), "trailing gap in {src:?}");
    }

    #[test]
    fn strings_and_comments_hide_their_contents() {
        let src = r##"let x = "unwrap() // not a comment"; // trailing.unwrap()"##;
        tiles(src);
        let ids: Vec<&str> = kinds(src)
            .into_iter()
            .filter(|(k, _)| *k == TokenKind::Ident)
            .map(|(_, s)| s)
            .collect();
        assert_eq!(ids, vec!["let", "x"]);
    }

    #[test]
    fn raw_strings_with_fences() {
        for src in [
            "r\"plain\"",
            "r#\"one \" inside\"#",
            "r##\"trap \"# still inside\"##",
            "br#\"bytes\"#",
            "b\"bytes\"",
        ] {
            tiles(src);
            let toks = lex(src);
            assert_eq!(toks.len(), 1, "{src:?} lexed as {toks:?}");
            assert!(matches!(
                toks[0].kind,
                TokenKind::RawStrLit | TokenKind::StrLit
            ));
        }
    }

    #[test]
    fn raw_ident_is_not_a_string() {
        let src = "let r#type = 1;";
        tiles(src);
        assert!(kinds(src).contains(&(TokenKind::RawIdent, "r#type")));
    }

    #[test]
    fn char_vs_lifetime() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; let u = '\\u{1F600}'; }";
        tiles(src);
        let ks = kinds(src);
        assert_eq!(
            ks.iter().filter(|(k, _)| *k == TokenKind::Lifetime).count(),
            2
        );
        assert_eq!(
            ks.iter().filter(|(k, _)| *k == TokenKind::CharLit).count(),
            3
        );
    }

    #[test]
    fn nested_block_comments() {
        let src = "a /* outer /* inner */ still out */ b";
        tiles(src);
        let ids: Vec<&str> = kinds(src)
            .into_iter()
            .filter(|(k, _)| *k == TokenKind::Ident)
            .map(|(_, s)| s)
            .collect();
        assert_eq!(ids, vec!["a", "b"]);
    }

    #[test]
    fn numbers_keep_exponents_and_split_ranges() {
        tiles("1e-3 + 2.5E+10_f64 - 0x1f");
        let ks = kinds("1e-3 2.5E+10_f64 0x1f 1..2 1.min(2)");
        let nums: Vec<&str> = ks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Number)
            .map(|&(_, s)| s)
            .collect();
        assert_eq!(
            nums,
            vec!["1e-3", "2.5E+10_f64", "0x1f", "1", "2", "1", "2"]
        );
    }

    #[test]
    fn lines_are_one_based_and_tracked() {
        let src = "a\nbb\n\nccc";
        let lines: Vec<(u32, &str)> = lex(src)
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| (t.line, t.text(src)))
            .collect();
        assert_eq!(lines, vec![(1, "a"), (2, "bb"), (4, "ccc")]);
    }

    #[test]
    fn unterminated_constructs_run_to_eof() {
        for src in ["\"never closed", "/* never closed", "r#\"never closed"] {
            tiles(src);
            assert_eq!(lex(src).len(), 1);
        }
    }
}
