//! Workspace-native static analysis for the anomaly-characterization
//! reproduction: a dependency-free lexer plus five project-invariant lints
//! (C1–C5) that prove, at the source level, the determinism and
//! panic-freedom guarantees the dynamic equality gates only sample.
//!
//! Run it as a binary — `cargo run -p anomaly-conformance` — or use
//! [`workspace::analyze_root`] / [`lints::analyze_source`] directly (the
//! test suites do). Findings are machine-readable (`file:line`, lint id)
//! and the versioned JSON report is committed as `CONFORMANCE.json`; CI
//! runs deny-by-default and also fails when the committed report drifts
//! from a fresh run.
//!
//! The lint charter, scopes, and the suppression pragma grammar live in
//! [`lints`]; the loss-free tokenizer in [`lexer`]; walking, rendering, and
//! drift checking in [`workspace`].

#![forbid(unsafe_code)]
#![deny(warnings)]
#![deny(missing_docs)]

pub mod lexer;
pub mod lints;
pub mod workspace;
