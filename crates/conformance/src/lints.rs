//! The five project-invariant lints (C1–C5) and the pragma machinery.
//!
//! Every hard guarantee the pipeline sells — byte-identical reports across
//! engines, grid modes, and streaming-vs-batch — is enforced dynamically by
//! equality gates over sampled seeds. These lints enforce the *source-level*
//! discipline those gates rely on, so a refactor cannot silently reintroduce
//! a panic path or an order-dependent iteration between two CI samples:
//!
//! | id | invariant |
//! |----|-----------|
//! | C1 | panic-free library: no `unwrap`/`expect`/`panic!`-family macros or direct `[...]` indexing in non-test pipeline code — typed `MonitorError` instead |
//! | C2 | deterministic iteration: no `HashMap`/`HashSet` in modules feeding `Report`s, events, JSON summaries, or scoring — `BTreeMap`/sorted vectors instead |
//! | C3 | no wall clock: `Instant::now`/`SystemTime` only in the designated timings module (and the bench crate) |
//! | C4 | crate hygiene: every `lib.rs` carries `#![forbid(unsafe_code)]` and `#![deny(warnings)]` |
//! | C5 | float total order: no `partial_cmp(..).unwrap()` — `f64::total_cmp` (or the approved helper module) instead |
//!
//! A finding is suppressed only by an inline pragma on the same line or the
//! line directly above:
//!
//! ```text
//! // conformance: allow(C2, reason = "lookup-only index; never iterated")
//! ```
//!
//! Pragmas are themselves checked: a malformed pragma (unknown lint, missing
//! or empty reason) and a pragma that suppresses nothing are both findings —
//! stale allows rot into folklore otherwise. Everything here is line- and
//! token-based on the loss-free [`lexer`](crate::lexer) stream; `#[cfg(test)]`
//! items are skipped wholesale, string literals and comments can never fire.

use crate::lexer::{lex, Token, TokenKind};

/// Bumped whenever a lint's definition, scope, or the pragma grammar
/// changes; committed into `CONFORMANCE.json` so drift is visible.
///
/// Version history:
/// * 1 — initial C1–C5 set over `src/` and the report/scoring crates.
/// * 2 — alerting daemon in scope: C1 and C2 also cover
///   `crates/serve/src/` (the alert fold is on the determinism-critical
///   path and must stay panic-free).
/// * 3 — persistence layer in scope: C1 and C2 also cover
///   `crates/store/src/` (corrupt checkpoints and logs must surface as
///   typed errors, never panics, and record iteration must be
///   deterministic). C4 covered it already via its `lib.rs`.
pub const LINT_SET_VERSION: u32 = 3;

/// Static description of one lint, for reports and docs.
#[derive(Debug, Clone, Copy)]
pub struct LintSpec {
    /// Stable id (`C1`..`C5`, plus the internal `pragma` hygiene lint).
    pub id: &'static str,
    /// Short kebab-case name.
    pub name: &'static str,
    /// One-sentence invariant statement.
    pub invariant: &'static str,
}

/// The lint table, in report order.
pub const LINTS: &[LintSpec] = &[
    LintSpec {
        id: "C1",
        name: "panic-free-library",
        invariant: "pipeline library code must not panic: no unwrap/expect, \
                    no panic!/unreachable!/todo!/unimplemented!, no direct \
                    indexing; fallibility is a typed MonitorError",
    },
    LintSpec {
        id: "C2",
        name: "deterministic-iteration",
        invariant: "modules feeding reports, events, JSON summaries, or \
                    scoring must not use HashMap/HashSet; BTreeMap or sorted \
                    vectors keep iteration order deterministic",
    },
    LintSpec {
        id: "C3",
        name: "no-wallclock",
        invariant: "Instant::now/SystemTime only in the designated timings \
                    module and the bench crate; reports must be a pure \
                    function of their inputs",
    },
    LintSpec {
        id: "C4",
        name: "crate-hygiene",
        invariant: "every lib.rs carries #![forbid(unsafe_code)] and \
                    #![deny(warnings)]",
    },
    LintSpec {
        id: "C5",
        name: "float-total-order",
        invariant: "no bare partial_cmp(..).unwrap()/.expect(); use \
                    f64::total_cmp or the approved helper \
                    (crates/analytic/src/order.rs)",
    },
    LintSpec {
        id: "pragma",
        name: "pragma-hygiene",
        invariant: "every conformance pragma parses, names a known lint, \
                    carries a non-empty reason, and suppresses something",
    },
];

/// Modules on the report/event/scoring path — the C2 scope. A file is in
/// scope when its normalized repo-relative path starts with one of these.
const C2_SCOPE: &[&str] = &[
    "src/pipeline/",
    "crates/baselines/src/",
    "crates/eval/src/",
    "crates/simulator/src/score.rs",
    "crates/simulator/src/runner.rs",
    "crates/core/src/characterize.rs",
    "crates/core/src/table.rs",
    "crates/network/src/report.rs",
    "crates/serve/src/",
    "crates/store/src/",
];

/// The only places allowed to read the wall clock.
const C3_ALLOWED: &[&str] = &["src/pipeline/timings.rs", "crates/bench/"];

/// The approved total-order helper module (C5).
const C5_ALLOWED: &[&str] = &["crates/analytic/src/order.rs"];

/// Panicking macros forbidden by C1 (each must be followed by `!`).
const C1_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Keywords that may legally precede a `[` without forming an index
/// expression (`let [a, b] = ...`, `in [1, 2]`, `return [x]`).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "let", "mut", "ref", "in", "if", "else", "match", "return", "as", "move", "static", "const",
    "break", "continue", "await", "dyn", "where", "impl", "for", "fn", "use", "pub", "struct",
    "enum", "union", "type", "trait", "unsafe", "extern", "crate", "box", "yield",
];

/// One violation, pointing at a file, line, and lint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Repo-relative path, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Lint id (`C1`..`C5`, `pragma`).
    pub lint: &'static str,
    /// Human-readable description of this occurrence.
    pub message: String,
}

/// One *used* suppression pragma, counted and reported.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// Repo-relative path, `/`-separated.
    pub file: String,
    /// 1-based line of the pragma comment.
    pub line: u32,
    /// Lint id it suppresses.
    pub lint: &'static str,
    /// The written justification.
    pub reason: String,
}

/// Which lints apply to a path. Everything under `src/` and `crates/*/src/`
/// is scanned; shim crates only participate in C4 (they stand in for
/// external dependencies and keep their own idioms).
#[derive(Debug, Clone, Copy)]
struct Scope {
    c1: bool,
    c2: bool,
    c3: bool,
    c4: bool,
    c5: bool,
}

fn scope_of(path: &str) -> Scope {
    let shim = path.starts_with("shims/");
    Scope {
        c1: path.starts_with("src/")
            || path.starts_with("crates/serve/src/")
            || path.starts_with("crates/store/src/"),
        c2: !shim && C2_SCOPE.iter().any(|p| path.starts_with(p)),
        c3: !shim && !C3_ALLOWED.iter().any(|p| path.starts_with(p)),
        c4: path.ends_with("lib.rs"),
        c5: !shim && !C5_ALLOWED.iter().any(|p| path.starts_with(p)),
    }
}

/// A parsed `// conformance: allow(...)` pragma.
#[derive(Debug)]
struct Pragma {
    line: u32,
    lint: &'static str,
    reason: String,
    used: bool,
}

/// Analyzes one file; returns its findings (already pragma-filtered) and
/// the pragmas that earned their keep.
pub fn analyze_source(path: &str, src: &str) -> (Vec<Finding>, Vec<Allow>) {
    let scope = scope_of(path);
    let tokens = lex(src);
    // Indices of code tokens (everything the lints may fire on).
    let code: Vec<usize> = (0..tokens.len())
        .filter(|&i| {
            !matches!(
                tokens[i].kind,
                TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
            )
        })
        .collect();
    let in_test = test_regions(src, &tokens, &code);

    let mut findings: Vec<Finding> = Vec::new();
    let mut pragmas = collect_pragmas(path, src, &tokens, &mut findings);

    let mut fire = |findings: &mut Vec<Finding>, line: u32, lint: &'static str, message: String| {
        findings.push(Finding {
            file: path.to_string(),
            line,
            lint,
            message,
        });
    };

    for (ci, &ti) in code.iter().enumerate() {
        if in_test[ci] {
            continue;
        }
        let tok = &tokens[ti];
        let t = tok.text(src);

        if scope.c1 {
            check_c1(&mut findings, &code, &tokens, src, ci, tok, t, &mut fire);
        }
        if scope.c2 && tok.kind == TokenKind::Ident && (t == "HashMap" || t == "HashSet") {
            fire(
                &mut findings,
                tok.line,
                "C2",
                format!(
                    "{t} in a determinism-critical module; use BTreeMap/BTreeSet or sorted vectors"
                ),
            );
        }
        if scope.c3 && tok.kind == TokenKind::Ident {
            if t == "SystemTime" {
                fire(
                    &mut findings,
                    tok.line,
                    "C3",
                    "SystemTime outside the designated timings module".to_string(),
                );
            } else if t == "Instant"
                && text_eq(&code, &tokens, src, ci + 1, ":")
                && text_eq(&code, &tokens, src, ci + 2, ":")
                && text_eq(&code, &tokens, src, ci + 3, "now")
            {
                fire(
                    &mut findings,
                    tok.line,
                    "C3",
                    "Instant::now outside the designated timings module".to_string(),
                );
            }
        }
        if scope.c5 && tok.kind == TokenKind::Ident && t == "partial_cmp" {
            if let Some(line) = c5_unwrapped_partial_cmp(&code, &tokens, src, ci) {
                fire(
                    &mut findings,
                    line,
                    "C5",
                    "partial_cmp(..).unwrap()/.expect(); use f64::total_cmp (NaN-total, deterministic)"
                        .to_string(),
                );
            }
        }
    }

    if scope.c4 {
        if !has_attr_call(&code, &tokens, src, "forbid", "unsafe_code") {
            fire(
                &mut findings,
                1,
                "C4",
                "lib.rs is missing #![forbid(unsafe_code)]".to_string(),
            );
        }
        if !has_attr_call(&code, &tokens, src, "deny", "warnings") {
            fire(
                &mut findings,
                1,
                "C4",
                "lib.rs is missing #![deny(warnings)]".to_string(),
            );
        }
    }

    // Pragma application: a pragma covers its own line and the next one.
    findings.retain(|f| {
        !pragmas.iter_mut().any(|p| {
            let hits = p.lint == f.lint && (p.line == f.line || p.line + 1 == f.line);
            if hits {
                p.used = true;
            }
            hits
        })
    });
    for p in &pragmas {
        if !p.used {
            findings.push(Finding {
                file: path.to_string(),
                line: p.line,
                lint: "pragma",
                message: format!(
                    "unused allow({}) pragma — nothing to suppress on this or the next line",
                    p.lint
                ),
            });
        }
    }

    let allows = pragmas
        .into_iter()
        .filter(|p| p.used)
        .map(|p| Allow {
            file: path.to_string(),
            line: p.line,
            lint: p.lint,
            reason: p.reason,
        })
        .collect();
    (findings, allows)
}

/// C1 checks at one code token: panicking calls, macros, and indexing.
#[allow(clippy::too_many_arguments)]
fn check_c1(
    findings: &mut Vec<Finding>,
    code: &[usize],
    tokens: &[Token],
    src: &str,
    ci: usize,
    tok: &Token,
    t: &str,
    fire: &mut impl FnMut(&mut Vec<Finding>, u32, &'static str, String),
) {
    match tok.kind {
        TokenKind::Ident if (t == "unwrap" || t == "expect") => {
            let after_dot = ci > 0 && text_eq(code, tokens, src, ci - 1, ".");
            let called = text_eq(code, tokens, src, ci + 1, "(");
            if after_dot && called {
                fire(
                    findings,
                    tok.line,
                    "C1",
                    format!(".{t}() in pipeline library code; return a typed MonitorError"),
                );
            }
        }
        TokenKind::Ident if C1_MACROS.contains(&t) && text_eq(code, tokens, src, ci + 1, "!") => {
            fire(
                findings,
                tok.line,
                "C1",
                format!("{t}! in pipeline library code; return a typed MonitorError"),
            );
        }
        TokenKind::Punct if t == "[" && ci > 0 => {
            let prev = &tokens[code[ci - 1]];
            let p = prev.text(src);
            let indexes = match prev.kind {
                TokenKind::Ident | TokenKind::RawIdent => !NON_INDEX_KEYWORDS.contains(&p),
                TokenKind::Punct => p == ")" || p == "]" || p == "?",
                _ => false,
            };
            if indexes {
                fire(
                    findings,
                    tok.line,
                    "C1",
                    format!("direct indexing `{p}[..]` in pipeline library code; use .get() with a typed error"),
                );
            }
        }
        _ => {}
    }
}

/// `code[ci]` exists and its text equals `s`.
fn text_eq(code: &[usize], tokens: &[Token], src: &str, ci: usize, s: &str) -> bool {
    code.get(ci).is_some_and(|&ti| tokens[ti].text(src) == s)
}

/// C5: at an ident `partial_cmp`, skip its balanced argument list and
/// report the line when `.unwrap(` / `.expect(` follows.
fn c5_unwrapped_partial_cmp(code: &[usize], tokens: &[Token], src: &str, ci: usize) -> Option<u32> {
    let mut i = ci + 1;
    if !text_eq(code, tokens, src, i, "(") {
        return None; // bare path mention, not a call
    }
    let mut depth = 0usize;
    while let Some(&ti) = code.get(i) {
        match tokens[ti].text(src) {
            "(" => depth += 1,
            ")" => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    break;
                }
            }
            _ => {}
        }
        i += 1;
    }
    let dot = i + 1;
    if text_eq(code, tokens, src, dot, ".")
        && (text_eq(code, tokens, src, dot + 1, "unwrap")
            || text_eq(code, tokens, src, dot + 1, "expect"))
        && text_eq(code, tokens, src, dot + 2, "(")
    {
        return Some(tokens[code[ci]].line);
    }
    None
}

/// Whether the token stream contains `name ( .. arg .. )` — the loose shape
/// of `#![name(arg)]`, tolerant of multi-argument attribute lists.
fn has_attr_call(code: &[usize], tokens: &[Token], src: &str, name: &str, arg: &str) -> bool {
    for (ci, &ti) in code.iter().enumerate() {
        if tokens[ti].kind != TokenKind::Ident || tokens[ti].text(src) != name {
            continue;
        }
        if !text_eq(code, tokens, src, ci + 1, "(") {
            continue;
        }
        let mut depth = 0usize;
        let mut i = ci + 1;
        while let Some(&tj) = code.get(i) {
            match tokens[tj].text(src) {
                "(" => depth += 1,
                ")" => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        break;
                    }
                }
                t if tokens[tj].kind == TokenKind::Ident && t == arg => return true,
                _ => {}
            }
            i += 1;
        }
    }
    false
}

/// Marks, per code token, whether it sits inside a `#[cfg(test)]` item
/// (attribute included). The scan finds the exact token sequence
/// `# [ cfg ( test ) ]`, skips any further attributes, then swallows the
/// annotated item: up to the matching `}` of its first brace block, or to
/// the terminating `;` for braceless items.
fn test_regions(src: &str, tokens: &[Token], code: &[usize]) -> Vec<bool> {
    let mut mask = vec![false; code.len()];
    let t = |ci: usize| code.get(ci).map(|&ti| tokens[ti].text(src));
    let mut ci = 0;
    while ci < code.len() {
        let is_cfg_test = t(ci) == Some("#")
            && t(ci + 1) == Some("[")
            && t(ci + 2) == Some("cfg")
            && t(ci + 3) == Some("(")
            && t(ci + 4) == Some("test")
            && t(ci + 5) == Some(")")
            && t(ci + 6) == Some("]");
        if !is_cfg_test {
            ci += 1;
            continue;
        }
        let start = ci;
        let mut i = ci + 7;
        // Skip further attributes on the same item.
        while t(i) == Some("#") && t(i + 1) == Some("[") {
            let mut depth = 0usize;
            i += 1;
            while let Some(tok) = t(i) {
                match tok {
                    "[" => depth += 1,
                    "]" => {
                        depth = depth.saturating_sub(1);
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                i += 1;
            }
            i += 1;
        }
        // Swallow the item: first `{ .. }` block at depth 0, or up to `;`.
        let mut brace = 0usize;
        while let Some(tok) = t(i) {
            match tok {
                "{" => brace += 1,
                "}" => {
                    brace = brace.saturating_sub(1);
                    if brace == 0 {
                        break;
                    }
                }
                ";" if brace == 0 => break,
                _ => {}
            }
            i += 1;
        }
        let end = i.min(code.len().saturating_sub(1));
        for m in &mut mask[start..=end] {
            *m = true;
        }
        ci = i + 1;
    }
    mask
}

/// Extracts pragmas from line comments; malformed ones become `pragma`
/// findings immediately.
fn collect_pragmas(
    path: &str,
    src: &str,
    tokens: &[Token],
    findings: &mut Vec<Finding>,
) -> Vec<Pragma> {
    let mut out = Vec::new();
    for tok in tokens {
        if tok.kind != TokenKind::LineComment {
            continue;
        }
        let body = tok.text(src).trim_start_matches('/').trim();
        let Some(rest) = body.strip_prefix("conformance:") else {
            continue;
        };
        match parse_allow(rest.trim()) {
            Ok((lint, reason)) => out.push(Pragma {
                line: tok.line,
                lint,
                reason,
                used: false,
            }),
            Err(why) => findings.push(Finding {
                file: path.to_string(),
                line: tok.line,
                lint: "pragma",
                message: format!("malformed conformance pragma: {why}"),
            }),
        }
    }
    out
}

/// Parses `allow(<lint>, reason = "...")`.
fn parse_allow(s: &str) -> Result<(&'static str, String), String> {
    let s = s
        .strip_prefix("allow(")
        .ok_or_else(|| "expected `allow(<lint>, reason = \"...\")`".to_string())?;
    let s = s
        .strip_suffix(')')
        .ok_or_else(|| "missing closing `)`".to_string())?;
    let (lint_raw, rest) = s
        .split_once(',')
        .ok_or_else(|| "missing `, reason = \"...\"`".to_string())?;
    let lint_raw = lint_raw.trim();
    let lint = LINTS
        .iter()
        .map(|l| l.id)
        .find(|id| *id == lint_raw)
        .ok_or_else(|| format!("unknown lint `{lint_raw}`"))?;
    let rest = rest.trim();
    let rest = rest
        .strip_prefix("reason")
        .ok_or_else(|| "missing `reason`".to_string())?
        .trim_start()
        .strip_prefix('=')
        .ok_or_else(|| "missing `=` after `reason`".to_string())?
        .trim_start();
    let reason = rest
        .strip_prefix('"')
        .and_then(|r| r.strip_suffix('"'))
        .ok_or_else(|| "reason must be a \"quoted\" string".to_string())?;
    if reason.trim().is_empty() {
        return Err("reason must not be empty".to_string());
    }
    Ok((lint, reason.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lints_fired(path: &str, src: &str) -> Vec<(&'static str, u32)> {
        let (findings, _) = analyze_source(path, src);
        findings.into_iter().map(|f| (f.lint, f.line)).collect()
    }

    #[test]
    fn scope_gates_by_path() {
        let src = "fn f(v: &Vec<u32>) -> u32 { v.first().copied().unwrap() }";
        assert_eq!(lints_fired("src/pipeline/monitor.rs", src), vec![("C1", 1)]);
        // The alerting daemon folds reports on the hot path: C1 applies.
        assert_eq!(
            lints_fired("crates/serve/src/sink.rs", src),
            vec![("C1", 1)]
        );
        // The persistence layer decodes untrusted bytes: C1 applies.
        assert_eq!(
            lints_fired("crates/store/src/codec.rs", src),
            vec![("C1", 1)]
        );
        // Outside the pipeline, C1 does not apply.
        assert_eq!(lints_fired("crates/core/src/observer.rs", src), vec![]);
    }

    #[test]
    fn store_is_in_the_c2_scope() {
        let src = "use std::collections::HashSet;\n";
        assert_eq!(lints_fired("crates/store/src/log.rs", src), vec![("C2", 1)]);
    }

    #[test]
    fn serve_is_in_the_c2_scope() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(
            lints_fired("crates/serve/src/alerts.rs", src),
            vec![("C2", 1)]
        );
    }

    #[test]
    fn cfg_test_items_are_exempt() {
        let src =
            "fn ok() {}\n#[cfg(test)]\nmod tests {\n    fn f() { None::<u32>.unwrap(); }\n}\n";
        assert_eq!(lints_fired("src/pipeline/monitor.rs", src), vec![]);
    }

    #[test]
    fn pragma_suppresses_and_is_counted_once() {
        let src =
            "// conformance: allow(C2, reason = \"lookup-only\")\nuse std::collections::HashMap;\n";
        let (findings, allows) = analyze_source("src/pipeline/monitor.rs", src);
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(allows.len(), 1);
        assert_eq!(allows[0].lint, "C2");
        assert_eq!(allows[0].reason, "lookup-only");
    }

    #[test]
    fn unused_and_malformed_pragmas_are_findings() {
        let unused = "// conformance: allow(C1, reason = \"nothing here\")\nfn ok() {}\n";
        assert_eq!(
            lints_fired("src/pipeline/monitor.rs", unused),
            vec![("pragma", 1)]
        );
        let malformed = "// conformance: allow(C9, reason = \"no such lint\")\n";
        assert_eq!(
            lints_fired("src/pipeline/monitor.rs", malformed),
            vec![("pragma", 1)]
        );
        let reasonless = "// conformance: allow(C1)\n";
        assert_eq!(
            lints_fired("src/pipeline/monitor.rs", reasonless),
            vec![("pragma", 1)]
        );
    }

    #[test]
    fn vec_macro_and_attributes_are_not_indexing() {
        let src = "#[derive(Debug)]\nstruct S;\nfn f(n: usize) -> Vec<bool> { vec![false; n] }\n";
        assert_eq!(lints_fired("src/pipeline/events.rs", src), vec![]);
    }

    #[test]
    fn slice_patterns_are_not_indexing_but_chained_calls_are() {
        assert_eq!(
            lints_fired(
                "src/pipeline/events.rs",
                "fn f(a: (u8, u8)) { let [_x, _y] = [a.0, a.1]; }"
            ),
            vec![]
        );
        assert_eq!(
            lints_fired(
                "src/pipeline/events.rs",
                "fn f(v: Vec<u8>) -> u8 { v.to_vec()[0] }"
            ),
            vec![("C1", 1)]
        );
    }

    #[test]
    fn c5_fires_on_unwrapped_partial_cmp_only() {
        let bad = "fn f(a: f64, b: f64) -> std::cmp::Ordering { a.partial_cmp(&b).unwrap() }";
        assert_eq!(
            lints_fired("crates/core/src/maximal.rs", bad),
            vec![("C5", 1)]
        );
        let good = "fn f(a: f64, b: f64) -> std::cmp::Ordering { a.total_cmp(&b) }";
        assert_eq!(lints_fired("crates/core/src/maximal.rs", good), vec![]);
        let fallback = "fn f(a: f64, b: f64) -> Option<std::cmp::Ordering> { a.partial_cmp(&b) }";
        assert_eq!(lints_fired("crates/core/src/maximal.rs", fallback), vec![]);
        // The approved helper module is exempt.
        assert_eq!(lints_fired("crates/analytic/src/order.rs", bad), vec![]);
    }

    #[test]
    fn c3_allows_the_timings_module_and_bench() {
        let src = "fn f() { let _t = std::time::Instant::now(); }";
        assert_eq!(lints_fired("crates/qos/src/grid.rs", src), vec![("C3", 1)]);
        assert_eq!(lints_fired("src/pipeline/timings.rs", src), vec![]);
        assert_eq!(lints_fired("crates/bench/src/bin/engine.rs", src), vec![]);
    }

    #[test]
    fn c4_requires_both_attributes() {
        let both = "#![forbid(unsafe_code)]\n#![deny(warnings)]\n";
        assert_eq!(lints_fired("crates/qos/src/lib.rs", both), vec![]);
        let one = "#![forbid(unsafe_code)]\n";
        assert_eq!(lints_fired("crates/qos/src/lib.rs", one), vec![("C4", 1)]);
        // Non-lib files carry no such requirement.
        assert_eq!(lints_fired("crates/qos/src/grid.rs", ""), vec![]);
    }

    #[test]
    fn strings_and_comments_never_fire() {
        let src = "// HashMap in prose, .unwrap() in prose\nfn f() -> &'static str { \"panic! HashMap Instant::now SystemTime\" }\n";
        assert_eq!(lints_fired("src/pipeline/monitor.rs", src), vec![]);
    }
}
