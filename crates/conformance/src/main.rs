//! `anomaly-conformance` — deny-by-default static analysis runner.
//!
//! ```text
//! cargo run -p anomaly-conformance              # analyze + drift-check, exit 1 on findings/drift
//! cargo run -p anomaly-conformance -- --write   # analyze + rewrite CONFORMANCE.json
//! cargo run -p anomaly-conformance -- --root D  # analyze the tree rooted at D
//! ```
//!
//! Exit codes: `0` clean and in sync, `1` findings or drift, `2` usage or
//! I/O failure.

use anomaly_conformance::lints::LINTS;
use anomaly_conformance::workspace::{analyze_root, check_drift, write_report, REPORT_FILE};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: anomaly-conformance [--write] [--root <dir>]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut write = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--write" => write = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    // Default root: the workspace containing this crate (two levels above
    // the crate manifest), overridable for out-of-tree runs.
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("..")
            .join("..")
    });

    let analysis = match analyze_root(&root) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("conformance: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    println!(
        "conformance: {} files scanned, {} findings, {} allows",
        analysis.files.len(),
        analysis.findings.len(),
        analysis.allows.len()
    );
    for l in LINTS {
        let nf = analysis.findings.iter().filter(|f| f.lint == l.id).count();
        let na = analysis.allows.iter().filter(|a| a.lint == l.id).count();
        if nf + na > 0 {
            println!("  {:>6} ({}): {} findings, {} allows", l.id, l.name, nf, na);
        }
    }
    for f in &analysis.findings {
        println!("{}:{}: [{}] {}", f.file, f.line, f.lint, f.message);
    }

    if write {
        if let Err(e) = write_report(&root, &analysis) {
            eprintln!("conformance: failed to write {REPORT_FILE}: {e}");
            return ExitCode::from(2);
        }
        println!("conformance: wrote {REPORT_FILE}");
    } else {
        match check_drift(&root, &analysis) {
            Ok(None) => {}
            Ok(Some(msg)) => {
                eprintln!("conformance: {msg}");
                return ExitCode::from(1);
            }
            Err(e) => {
                eprintln!("conformance: failed to read {REPORT_FILE}: {e}");
                return ExitCode::from(2);
            }
        }
    }

    if analysis.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
