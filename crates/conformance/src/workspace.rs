//! Workspace walking, report assembly, and the versioned JSON rendering
//! committed as `CONFORMANCE.json`.
//!
//! The scan set is fixed by the lint charter: every `.rs` file under `src/`
//! and `crates/*/src/`, plus `shims/*/src/lib.rs` (shims participate only in
//! the C4 hygiene check — see [`lints`](crate::lints)). Directory traversal
//! is sorted, findings and allows are sorted, and the JSON carries no
//! timestamps — two runs over the same tree render byte-identical reports,
//! which is what lets CI fail on drift with a plain string compare.

use crate::lints::{analyze_source, Allow, Finding, LINTS, LINT_SET_VERSION};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Name of the committed report at the workspace root.
pub const REPORT_FILE: &str = "CONFORMANCE.json";

/// Outcome of one full workspace scan.
#[derive(Debug)]
pub struct Analysis {
    /// Files scanned, sorted repo-relative paths.
    pub files: Vec<String>,
    /// Unsuppressed findings, sorted by (file, line, lint).
    pub findings: Vec<Finding>,
    /// Used pragmas, sorted by (file, line, lint).
    pub allows: Vec<Allow>,
}

impl Analysis {
    /// Process exit code the analysis maps to: non-zero iff any finding
    /// survived pragma filtering.
    pub fn exit_code(&self) -> i32 {
        i32::from(!self.findings.is_empty())
    }
}

/// Collects the scan set under `root`, sorted for determinism.
fn scan_set(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    collect_rs(&root.join("src"), &mut files)?;
    for member in sorted_dir(&root.join("crates"))? {
        collect_rs(&member.join("src"), &mut files)?;
    }
    for shim in sorted_dir(&root.join("shims"))? {
        let lib = shim.join("src").join("lib.rs");
        if lib.is_file() {
            files.push(lib);
        }
    }
    files.sort();
    Ok(files)
}

/// Subdirectories of `dir`, sorted by name; empty when `dir` is absent.
fn sorted_dir(dir: &Path) -> io::Result<Vec<PathBuf>> {
    if !dir.is_dir() {
        return Ok(Vec::new());
    }
    let mut out: Vec<PathBuf> = fs::read_dir(dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    out.sort();
    Ok(out)
}

/// Recursively collects `.rs` files under `dir` (absent dirs are fine).
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Runs every lint over the workspace rooted at `root`.
pub fn analyze_root(root: &Path) -> io::Result<Analysis> {
    let mut files = Vec::new();
    let mut findings = Vec::new();
    let mut allows = Vec::new();
    for path in scan_set(root)? {
        let rel = relative_slash(root, &path);
        let src = fs::read_to_string(&path)?;
        let (mut f, mut a) = analyze_source(&rel, &src);
        findings.append(&mut f);
        allows.append(&mut a);
        files.push(rel);
    }
    findings.sort_by(|a, b| (&a.file, a.line, a.lint).cmp(&(&b.file, b.line, b.lint)));
    allows.sort_by(|a, b| (&a.file, a.line, a.lint).cmp(&(&b.file, b.line, b.lint)));
    Ok(Analysis {
        files,
        findings,
        allows,
    })
}

/// `path` relative to `root`, `/`-separated whatever the platform.
fn relative_slash(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the versioned, deterministic report. Committed as
/// [`REPORT_FILE`]; CI fails when a fresh render differs.
pub fn render_json(a: &Analysis) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"tool\": \"anomaly-conformance\",\n");
    s.push_str(&format!("  \"lint_set_version\": {LINT_SET_VERSION},\n"));
    s.push_str("  \"lints\": [\n");
    for (i, l) in LINTS.iter().enumerate() {
        let sep = if i + 1 == LINTS.len() { "" } else { "," };
        s.push_str(&format!(
            "    {{\"id\": \"{}\", \"name\": \"{}\", \"invariant\": \"{}\"}}{sep}\n",
            l.id,
            l.name,
            json_escape(l.invariant)
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&format!("  \"files_scanned\": {},\n", a.files.len()));
    s.push_str("  \"summary\": {");
    s.push_str(&format!(
        "\"findings\": {}, \"allows\": {}, \"per_lint\": {{",
        a.findings.len(),
        a.allows.len()
    ));
    for (i, l) in LINTS.iter().enumerate() {
        let nf = a.findings.iter().filter(|f| f.lint == l.id).count();
        let na = a.allows.iter().filter(|x| x.lint == l.id).count();
        let sep = if i + 1 == LINTS.len() { "" } else { ", " };
        s.push_str(&format!(
            "\"{}\": {{\"findings\": {nf}, \"allows\": {na}}}{sep}",
            l.id
        ));
    }
    s.push_str("}},\n");
    s.push_str("  \"findings\": [\n");
    for (i, f) in a.findings.iter().enumerate() {
        let sep = if i + 1 == a.findings.len() { "" } else { "," };
        s.push_str(&format!(
            "    {{\"file\": \"{}\", \"line\": {}, \"lint\": \"{}\", \"message\": \"{}\"}}{sep}\n",
            json_escape(&f.file),
            f.line,
            f.lint,
            json_escape(&f.message)
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"allows\": [\n");
    for (i, x) in a.allows.iter().enumerate() {
        let sep = if i + 1 == a.allows.len() { "" } else { "," };
        s.push_str(&format!(
            "    {{\"file\": \"{}\", \"line\": {}, \"lint\": \"{}\", \"reason\": \"{}\"}}{sep}\n",
            json_escape(&x.file),
            x.line,
            x.lint,
            json_escape(&x.reason)
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Compares a fresh render with the committed report. `Ok(None)` — in sync;
/// `Ok(Some(diff-message))` — drift; missing file counts as drift.
pub fn check_drift(root: &Path, a: &Analysis) -> io::Result<Option<String>> {
    let path = root.join(REPORT_FILE);
    let fresh = render_json(a);
    match fs::read_to_string(&path) {
        Ok(committed) if committed == fresh => Ok(None),
        Ok(_) => Ok(Some(format!(
            "{REPORT_FILE} is stale: regenerate with `cargo run -p anomaly-conformance -- --write`"
        ))),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(Some(format!(
            "{REPORT_FILE} is missing: generate it with `cargo run -p anomaly-conformance -- --write`"
        ))),
        Err(e) => Err(e),
    }
}

/// Writes the report to `root/CONFORMANCE.json`.
pub fn write_report(root: &Path, a: &Analysis) -> io::Result<()> {
    fs::write(root.join(REPORT_FILE), render_json(a))
}
