//! The lexer's tiling contract, checked two ways: against every `.rs` file
//! in the repository (the corpus the lints actually run on), and against
//! randomized concatenations of tricky fragments (raw strings, nested
//! comments, unterminated literals, multi-byte text).
//!
//! Tiling means: tokens start at byte 0, are contiguous and non-empty,
//! end exactly at `src.len()`, concatenate back to the input
//! byte-for-byte, and carry correct 1-based line numbers. Every lint
//! depends on these invariants — a gap or overlap would silently hide
//! code from the scan.

use anomaly_conformance::lexer::lex;
use proptest::prelude::*;
use std::fs;
use std::path::{Path, PathBuf};

/// Asserts the full tiling contract for one input.
fn assert_tiles(src: &str, origin: &str) {
    let tokens = lex(src);
    let mut pos = 0usize;
    let mut rebuilt = String::with_capacity(src.len());
    for tok in &tokens {
        assert_eq!(tok.start, pos, "{origin}: gap or overlap at byte {pos}");
        assert!(tok.end > tok.start, "{origin}: empty token at byte {pos}");
        let expected_line = 1 + src[..tok.start].matches('\n').count() as u32;
        assert_eq!(
            tok.line, expected_line,
            "{origin}: wrong line number for token at byte {}",
            tok.start
        );
        rebuilt.push_str(tok.text(src));
        pos = tok.end;
    }
    assert_eq!(pos, src.len(), "{origin}: trailing bytes left untokenized");
    assert_eq!(
        rebuilt, src,
        "{origin}: concatenated token texts differ from the input"
    );
}

/// Every `.rs` file in the repository, skipping build output and VCS dirs.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

#[test]
fn every_repo_source_file_tiles_exactly() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let mut files = Vec::new();
    collect_rs(&root, &mut files);
    assert!(
        files.len() >= 80,
        "expected a substantial corpus, found only {} files",
        files.len()
    );
    for path in files {
        let src = fs::read_to_string(&path).unwrap();
        assert_tiles(&src, &path.display().to_string());
    }
}

#[test]
fn empty_and_trivial_inputs_tile() {
    assert_tiles("", "empty");
    assert_tiles("\n", "one newline");
    assert_tiles("x", "one ident");
    assert_tiles("\u{feff}fn f() {}", "BOM prefix");
}

/// Fragments chosen to exercise every tricky lexer path: fences, nesting,
/// char-vs-lifetime, exponents vs ranges, unterminated literals (legal —
/// they must run to EOF, still tiling), and multi-byte characters that
/// would break any byte-offset arithmetic done carelessly.
const FRAGMENTS: &[&str] = &[
    "fn main() {}",
    "// line comment",
    "/// doc with `code` and \"quotes\"",
    "/* block /* nested */ still open */",
    "\"string with \\\" escape\"",
    "r\"raw no fence\"",
    "r#\"raw \" fence\"#",
    "r##\"double \"# fence\"##",
    "b\"bytes\"",
    "br#\"raw bytes\"#",
    "r#match",
    "'x'",
    "'\\n'",
    "'\\u{1F600}'",
    "b'q'",
    "'a",
    "'static",
    "'_",
    "1e-3",
    "2.5E+7_f64",
    "0xfe_u32",
    "1..2",
    "3.14",
    "1.min(2)",
    "v[0]",
    "let [a, b] = x;",
    "#[cfg(test)]",
    "#![deny(warnings)]",
    "::",
    "=>",
    "..=",
    ";",
    "{",
    "}",
    " ",
    "\t",
    "\n",
    "日本語のコメント",
    "émoji🚀",
    "/* unterminated",
    "\"unterminated",
    "r#\"unterminated raw",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Any concatenation of fragments — including ones that glue into new
    /// constructs or leave literals unterminated — must still tile.
    #[test]
    fn random_fragment_soup_tiles_exactly(
        picks in collection::vec(0usize..FRAGMENTS.len(), 0..40),
    ) {
        let src: String = picks.iter().map(|&i| FRAGMENTS[i]).collect();
        assert_tiles(&src, "fragment soup");
    }

    /// Separator-joined variant: fragments in fresh token positions.
    #[test]
    fn spaced_fragment_soup_tiles_exactly(
        picks in collection::vec(0usize..FRAGMENTS.len(), 1..30),
        sep in 0usize..3,
    ) {
        let sep = [" ", "\n", ""][sep];
        let src = picks
            .iter()
            .map(|&i| FRAGMENTS[i])
            .collect::<Vec<_>>()
            .join(sep);
        assert_tiles(&src, "spaced fragment soup");
    }
}
