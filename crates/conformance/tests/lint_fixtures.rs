//! Per-lint fixtures — fire, no-fire, and pragma-suppressed — plus
//! end-to-end exit-code checks of the CLI binary: a seeded violation of
//! each lint must fail the tool, and the repository as shipped must pass
//! with the committed `CONFORMANCE.json` in sync.

use anomaly_conformance::lints::analyze_source;
use anomaly_conformance::workspace::{analyze_root, check_drift, render_json};
use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

/// Lint ids fired for `src` at `path` (pragma-filtered, like the tool).
fn fired(path: &str, src: &str) -> Vec<&'static str> {
    let (findings, _) = analyze_source(path, src);
    findings.into_iter().map(|f| f.lint).collect()
}

// ---------------------------------------------------------------- fixtures

#[test]
fn c1_fires_on_panics_not_on_fallible_idioms() {
    let path = "src/pipeline/monitor.rs";
    // Fire: the full panic menu.
    assert_eq!(
        fired(path, "fn f(x: Option<u8>) -> u8 { x.unwrap() }"),
        ["C1"]
    );
    assert_eq!(
        fired(path, "fn f(x: Option<u8>) -> u8 { x.expect(\"set\") }"),
        ["C1"]
    );
    assert_eq!(fired(path, "fn f() { panic!(\"boom\") }"), ["C1"]);
    assert_eq!(fired(path, "fn f() { unreachable!() }"), ["C1"]);
    assert_eq!(fired(path, "fn f() { todo!() }"), ["C1"]);
    assert_eq!(fired(path, "fn f(v: &[u8]) -> u8 { v[0] }"), ["C1"]);
    // No fire: the typed-error idioms the burn-down replaced them with.
    assert_eq!(
        fired(path, "fn f(x: Option<u8>) -> u8 { x.unwrap_or(0) }"),
        [""; 0]
    );
    assert_eq!(
        fired(
            path,
            "fn f(x: Option<u8>) -> Result<u8, E> { x.ok_or(E::Internal)? }"
        ),
        [""; 0]
    );
    assert_eq!(
        fired(path, "fn f(v: &[u8]) -> Option<u8> { v.get(0).copied() }"),
        [""; 0]
    );
    // Pragma: suppressed and counted.
    let pragmad = "// conformance: allow(C1, reason = \"slot vectors are index-aligned\")\nfn f(v: &[u8]) -> u8 { v[0] }\n";
    let (findings, allows) = analyze_source(path, pragmad);
    assert!(findings.is_empty(), "{findings:?}");
    assert_eq!(allows.len(), 1);
    assert_eq!(allows[0].lint, "C1");
}

#[test]
fn c2_fires_only_in_report_path_modules() {
    let src = "use std::collections::HashMap;\n";
    assert_eq!(fired("src/pipeline/report.rs", src), ["C2"]);
    assert_eq!(fired("crates/eval/src/runner.rs", src), ["C2"]);
    // Outside the report path, hashing is fine.
    assert_eq!(fired("crates/qos/src/grid.rs", src), [""; 0]);
    // The deterministic replacement never fires.
    assert_eq!(
        fired(
            "src/pipeline/report.rs",
            "use std::collections::BTreeMap;\n"
        ),
        [""; 0]
    );
    let pragmad = "// conformance: allow(C2, reason = \"lookup-only; never iterated\")\nuse std::collections::HashMap;\n";
    let (findings, allows) = analyze_source("src/pipeline/report.rs", pragmad);
    assert!(findings.is_empty(), "{findings:?}");
    assert_eq!(allows[0].lint, "C2");
}

#[test]
fn c3_fires_outside_the_designated_timings_module() {
    let src = "fn f() { let _ = std::time::Instant::now(); }";
    assert_eq!(fired("src/pipeline/monitor.rs", src), ["C3"]);
    assert_eq!(fired("src/pipeline/timings.rs", src), [""; 0]);
    assert_eq!(fired("crates/bench/src/bin/engine.rs", src), [""; 0]);
    // SystemTime is banned even without ::now.
    assert_eq!(
        fired(
            "crates/core/src/characterize.rs",
            "use std::time::SystemTime;\n"
        ),
        ["C3"]
    );
    // Duration arithmetic is not wall-clock access.
    assert_eq!(
        fired("src/pipeline/monitor.rs", "use std::time::Duration;\n"),
        [""; 0]
    );
    let pragmad = "// conformance: allow(C3, reason = \"telemetry only\")\nfn f() { let _ = std::time::Instant::now(); }\n";
    let (findings, allows) = analyze_source("src/pipeline/monitor.rs", pragmad);
    assert!(findings.is_empty(), "{findings:?}");
    assert_eq!(allows[0].lint, "C3");
}

#[test]
fn c4_requires_both_hygiene_attributes_on_lib_roots() {
    let both = "#![forbid(unsafe_code)]\n#![deny(warnings)]\npub fn ok() {}\n";
    assert_eq!(fired("crates/qos/src/lib.rs", both), [""; 0]);
    assert_eq!(fired("shims/rand/src/lib.rs", both), [""; 0]);
    assert_eq!(
        fired("crates/qos/src/lib.rs", "#![deny(warnings)]\n"),
        ["C4"]
    );
    assert_eq!(fired("crates/qos/src/lib.rs", ""), ["C4", "C4"]);
    // Only lib roots carry the requirement.
    assert_eq!(fired("crates/qos/src/grid.rs", ""), [""; 0]);
}

#[test]
fn c5_fires_on_unwrapped_partial_cmp_everywhere_but_the_helper() {
    let bad = "fn f(a: f64, b: f64) -> std::cmp::Ordering { a.partial_cmp(&b).unwrap() }";
    assert_eq!(fired("crates/analytic/src/stats.rs", bad), ["C5"]);
    let expected =
        "fn f(a: f64, b: f64) -> std::cmp::Ordering { a.partial_cmp(&b).expect(\"no NaN\") }";
    assert_eq!(fired("crates/baselines/src/kmeans.rs", expected), ["C5"]);
    // The replacements: total_cmp, or an un-unwrapped partial_cmp.
    assert_eq!(
        fired(
            "crates/analytic/src/stats.rs",
            "fn f(a: f64, b: f64) -> std::cmp::Ordering { a.total_cmp(&b) }"
        ),
        [""; 0]
    );
    assert_eq!(
        fired(
            "crates/analytic/src/stats.rs",
            "fn f(a: f64, b: f64) -> Option<std::cmp::Ordering> { a.partial_cmp(&b) }"
        ),
        [""; 0]
    );
    // The approved helper module is exempt by charter.
    assert_eq!(fired("crates/analytic/src/order.rs", bad), [""; 0]);
}

// ------------------------------------------------- seeded workspaces + CLI

/// A throwaway workspace root under the system temp dir.
struct TempRoot(PathBuf);

impl TempRoot {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("anomaly-conformance-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        TempRoot(dir)
    }

    fn write(&self, rel: &str, contents: &str) -> &Self {
        let path = self.0.join(rel);
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(path, contents).unwrap();
        self
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempRoot {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

/// Runs the actual CLI binary against `root`; returns (exit code, stdout).
fn run_tool(root: &Path, write: bool) -> (i32, String) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_anomaly-conformance"));
    cmd.arg("--root").arg(root);
    if write {
        cmd.arg("--write");
    }
    let out = cmd.output().unwrap();
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

#[test]
fn seeded_c1_violation_fails_the_tool() {
    let root = TempRoot::new("c1");
    root.write(
        "src/pipeline/bad.rs",
        "pub fn f(v: Vec<u32>) -> u32 { v.first().copied().unwrap() }\n",
    );
    let (code, out) = run_tool(root.path(), false);
    assert_eq!(code, 1, "{out}");
    assert!(out.contains("[C1]"), "{out}");
}

#[test]
fn seeded_c2_violation_fails_the_tool() {
    let root = TempRoot::new("c2");
    root.write(
        "src/pipeline/bad.rs",
        "use std::collections::HashMap;\npub type Index = HashMap<u64, u32>;\n",
    );
    let (code, out) = run_tool(root.path(), false);
    assert_eq!(code, 1, "{out}");
    assert!(out.contains("[C2]"), "{out}");
}

#[test]
fn seeded_c3_violation_fails_the_tool() {
    let root = TempRoot::new("c3");
    root.write(
        "src/pipeline/bad.rs",
        "pub fn f() -> std::time::Instant { std::time::Instant::now() }\n",
    );
    let (code, out) = run_tool(root.path(), false);
    assert_eq!(code, 1, "{out}");
    assert!(out.contains("[C3]"), "{out}");
}

#[test]
fn seeded_c4_violation_fails_the_tool() {
    let root = TempRoot::new("c4");
    root.write("src/lib.rs", "pub fn ok() {}\n");
    let (code, out) = run_tool(root.path(), false);
    assert_eq!(code, 1, "{out}");
    assert!(out.contains("[C4]"), "{out}");
}

#[test]
fn seeded_c5_violation_fails_the_tool() {
    let root = TempRoot::new("c5");
    root.write(
        "crates/core/src/bad.rs",
        "pub fn f(a: f64, b: f64) -> std::cmp::Ordering { a.partial_cmp(&b).unwrap() }\n",
    );
    let (code, out) = run_tool(root.path(), false);
    assert_eq!(code, 1, "{out}");
    assert!(out.contains("[C5]"), "{out}");
}

#[test]
fn write_then_check_roundtrips_and_detects_drift() {
    let root = TempRoot::new("roundtrip");
    root.write(
        "src/pipeline/ok.rs",
        "// conformance: allow(C2, reason = \"lookup-only index\")\nuse std::collections::HashMap;\n",
    );
    // --write: clean (the pragma suppresses the one finding), exits 0.
    let (code, out) = run_tool(root.path(), true);
    assert_eq!(code, 0, "{out}");
    // Default mode now finds the committed report in sync.
    let (code, out) = run_tool(root.path(), false);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("1 allows"), "{out}");
    // A missing or stale report is drift.
    fs::write(root.path().join("CONFORMANCE.json"), "{}\n").unwrap();
    let (code, _) = run_tool(root.path(), false);
    assert_eq!(code, 1);
    fs::remove_file(root.path().join("CONFORMANCE.json")).unwrap();
    let (code, _) = run_tool(root.path(), false);
    assert_eq!(code, 1);
}

#[test]
fn unused_pragmas_fail_even_a_violation_free_tree() {
    let root = TempRoot::new("stale-pragma");
    root.write(
        "src/pipeline/ok.rs",
        "// conformance: allow(C1, reason = \"nothing here anymore\")\npub fn ok() {}\n",
    );
    let (code, out) = run_tool(root.path(), false);
    assert_eq!(code, 1, "{out}");
    assert!(out.contains("[pragma]"), "{out}");
}

// ------------------------------------------------------- the shipped repo

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..")
}

#[test]
fn the_repository_as_shipped_is_clean_and_in_sync() {
    let root = repo_root();
    let analysis = analyze_root(&root).unwrap();
    assert_eq!(
        analysis.exit_code(),
        0,
        "unexpected findings: {:#?}",
        analysis.findings
    );
    // Every surviving pragma carries a written reason.
    for allow in &analysis.allows {
        assert!(
            !allow.reason.trim().is_empty(),
            "{}:{} has an empty reason",
            allow.file,
            allow.line
        );
    }
    // The committed report matches a fresh render byte-for-byte.
    assert_eq!(check_drift(&root, &analysis).unwrap(), None);
}

#[test]
fn reports_render_deterministically() {
    let root = repo_root();
    let a = analyze_root(&root).unwrap();
    let b = analyze_root(&root).unwrap();
    assert_eq!(render_json(&a), render_json(&b));
}
