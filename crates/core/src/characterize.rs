//! Local characterization (Algorithms 3–5; Theorems 5–7; Corollary 8).
//!
//! [`Analyzer`] precomputes, for every abnormal device, the family of
//! maximal r-consistent motions it belongs to (Algorithm 2) and then decides
//! per device:
//!
//! * [`Analyzer::characterize`] — Algorithm 3: Theorem 5 (no dense motion ⇒
//!   isolated), Theorem 6 (a dense motion inside `J_k(j)` ⇒ massive), else
//!   tentatively unresolved. Cheap, misses ~0.4% of massive devices.
//! * [`Analyzer::characterize_full`] — Algorithms 4–5: additionally runs the
//!   necessary-and-sufficient condition of Theorem 7, searching collections
//!   of pairwise-disjoint dense motions of the `L_k(j)` devices; the verdict
//!   is exact (massive via Theorem 7, or unresolved via Corollary 8).
//!
//! The [`Cost`] attached to every verdict exposes the operation counts
//! reported in Table III of the paper.

use crate::families::Families;
use crate::maximal::{maximal_motions_involving_bounded, MotionOps};
use crate::motion::extends_consistently;
use crate::params::Params;
use crate::set::DeviceSet;
use crate::table::TrajectoryTable;
use anomaly_qos::DeviceId;
use std::collections::BTreeMap;
use std::fmt;

/// The three possible verdicts for an abnormal device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AnomalyClass {
    /// Certainly impacted by an isolated anomaly (`j ∈ I_k`).
    Isolated,
    /// Certainly impacted by a massive anomaly (`j ∈ M_k`).
    Massive,
    /// Unresolved configuration: both readings admissible (`j ∈ U_k`).
    Unresolved,
}

impl fmt::Display for AnomalyClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AnomalyClass::Isolated => "isolated",
            AnomalyClass::Massive => "massive",
            AnomalyClass::Unresolved => "unresolved",
        };
        f.write_str(s)
    }
}

/// Which result of the paper produced the verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// Theorem 5: `W̄_k(j) = ∅ ⇔ j ∈ I_k`.
    Theorem5,
    /// Theorem 6: a dense motion within `J_k(j)` (sufficient for `M_k`).
    Theorem6,
    /// Theorem 7: the NSC for `M_k` (collection search succeeded for all).
    Theorem7,
    /// Corollary 8: a witness collection proves `j ∈ U_k`.
    Corollary8,
    /// Algorithm 3's fast path labelled the device unresolved without
    /// running the full NSC — may misclassify ~0.4% of massive devices.
    Algorithm3,
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Rule::Theorem5 => "Theorem 5",
            Rule::Theorem6 => "Theorem 6",
            Rule::Theorem7 => "Theorem 7",
            Rule::Corollary8 => "Corollary 8",
            Rule::Algorithm3 => "Algorithm 3",
        };
        f.write_str(s)
    }
}

/// Operation counts behind one verdict (Table III's columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Cost {
    /// `|M(j)|` — maximal motions the device belongs to (Table III, col. 1).
    pub maximal_motions: usize,
    /// `|W̄_k(j)|` — maximal dense motions (Table III, col. 2).
    pub dense_motions: usize,
    /// Collections of disjoint dense motions tested by the Theorem 7 /
    /// Corollary 8 search (Table III, cols. 3–4). Zero when the search was
    /// not needed.
    pub collections_tested: u64,
    /// Sliding-window placements performed on behalf of this device.
    pub window_moves: u64,
}

/// Result of the collection search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SearchOutcome {
    /// Every collection satisfied relation (4) or (5): the device is massive.
    Exhausted,
    /// A witness collection violated both relations: unresolved.
    Violated,
    /// The budget ran out before a conclusion: conservatively unresolved.
    BudgetSpent,
}

/// A verdict with its provenance and cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Characterization {
    class: AnomalyClass,
    rule: Rule,
    cost: Cost,
}

impl Characterization {
    /// The verdict.
    pub fn class(&self) -> AnomalyClass {
        self.class
    }

    /// The theorem/corollary that produced it.
    pub fn rule(&self) -> Rule {
        self.rule
    }

    /// Operation counters.
    pub fn cost(&self) -> Cost {
        self.cost
    }
}

/// Default bound on the number of collections the Theorem 7 search visits
/// per device before giving up and reporting the device unresolved.
///
/// The collection space is exponential in the number of disjoint escape
/// motions around the device; a pathological superposition of many
/// anomalies could otherwise stall a monitoring round indefinitely. Giving
/// up is *conservative*: an unresolved verdict never asserts something
/// false (the device defers and re-samples, per Section VII-C).
pub const DEFAULT_COLLECTION_BUDGET: u64 = 2_000_000;

/// Largest base motion whose dense sub-motions are enumerated by the
/// Theorem 7 search; beyond this the verdict degrades conservatively (the
/// subset count is `2^|M|`).
pub const MAX_BASE_MOTION_FOR_SUBSETS: usize = 16;

/// Default budget on sliding-window placements per device when
/// precomputing maximal motions. Pathological configurations (hundreds of
/// devices inside a few windows) have exponentially many maximal motions;
/// devices whose enumeration exceeds this budget are conservatively
/// reported unresolved instead of stalling the monitoring round.
pub const DEFAULT_ENUMERATION_BUDGET: u64 = 500_000;

/// The per-device slice of an [`Analyzer`]'s precomputation: `M(j)`,
/// `W̄_k(j)`, and the enumeration cost, for one device.
///
/// Produced by [`Analyzer::precompute_device`] — a pure function of the
/// table, the parameters, and one device id, so a pool of workers can
/// compute the slices of disjoint device shards in parallel (each device's
/// computation only reads its `2r`-neighbourhood; Definition 1's locality
/// is what makes this embarrassingly parallel) — and merged back into a
/// full engine by [`Analyzer::from_parts`].
#[derive(Debug, Clone)]
pub struct DevicePrecompute {
    motions: Vec<DeviceSet>,
    dense: Vec<DeviceSet>,
    window_moves: u64,
    overflowed: bool,
}

impl DevicePrecompute {
    /// True when the device's motion enumeration exceeded its budget (the
    /// merged analyzer will conservatively report it unresolved).
    pub fn overflowed(&self) -> bool {
        self.overflowed
    }

    /// `W̄_k(j)` as precomputed: the maximal τ-dense motions containing the
    /// device. Callers that cache slices across instants feed these into
    /// [`ComponentPartition::from_dense_sets`] to recover the epoch's
    /// spatial partition without rebuilding an engine.
    pub fn dense(&self) -> &[DeviceSet] {
        &self.dense
    }
}

/// The spatial identity of an epoch's massive verdicts: connected
/// components of overlapping maximal τ-dense motions.
///
/// Two devices share a component iff some chain of τ-dense motions links
/// them (each consecutive pair of motions sharing at least one device).
/// A massive verdict always carries a component — Theorems 6/7 both
/// require a dense motion through the device — while an isolated device
/// (Theorem 5: `W̄_k(j) = ∅`) never does. Components are the unit of
/// "one outage": two simultaneous anomalies whose dense motions never
/// touch land in different components even when both are massive.
///
/// Numbering is deterministic and order-free: components are sorted by
/// their smallest member device id and numbered `0..count`, so any
/// permutation of the input parts — sequential loops, shard workers,
/// cached slices — yields byte-identical ids. The ids are **epoch-local**:
/// they are ranks within one instant's partition and must not be compared
/// or cached across instants (a component vanishing elsewhere shifts every
/// later rank).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ComponentPartition {
    /// Device → component rank, for every device in at least one dense set.
    component: BTreeMap<DeviceId, u32>,
    /// Number of distinct components.
    count: usize,
}

impl ComponentPartition {
    /// Builds the partition from per-device dense-motion slices, in any
    /// order. Every member of every set is assigned to a component; the
    /// slices may be freshly computed, cached, or a mixture, exactly as
    /// with [`AnalyzerCore::from_parts`]. Duplicate device entries are
    /// harmless (their sets just union again).
    pub fn from_dense_sets<'a>(
        parts: impl IntoIterator<Item = (DeviceId, &'a [DeviceSet])>,
    ) -> Self {
        // Union-find over device ids, path-halving on lookup.
        let mut parent: BTreeMap<DeviceId, DeviceId> = BTreeMap::new();
        fn find(parent: &mut BTreeMap<DeviceId, DeviceId>, mut x: DeviceId) -> DeviceId {
            loop {
                let p = parent[&x];
                if p == x {
                    return x;
                }
                let gp = parent[&p];
                parent.insert(x, gp);
                x = gp;
            }
        }
        for (j, sets) in parts {
            for set in sets {
                // j belongs to each of its dense motions by construction,
                // but anchor on the set's own members so slices merged for
                // a device absent from its set still partition correctly.
                let mut anchor: Option<DeviceId> = None;
                for member in set.iter().chain(std::iter::once(j)) {
                    parent.entry(member).or_insert(member);
                    match anchor {
                        None => anchor = Some(member),
                        Some(a) => {
                            let ra = find(&mut parent, a);
                            let rb = find(&mut parent, member);
                            if ra != rb {
                                // Root toward the smaller id: keeps the
                                // forest independent of union order.
                                let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
                                parent.insert(hi, lo);
                            }
                        }
                    }
                }
            }
        }
        // Number components by smallest member id: iterate devices in
        // ascending order and hand each unseen root the next rank.
        let devices: Vec<DeviceId> = parent.keys().copied().collect();
        let mut rank_of_root: BTreeMap<DeviceId, u32> = BTreeMap::new();
        let mut component = BTreeMap::new();
        let mut count = 0u32;
        for j in devices {
            let root = find(&mut parent, j);
            let rank = *rank_of_root.entry(root).or_insert_with(|| {
                let r = count;
                count += 1;
                r
            });
            component.insert(j, rank);
        }
        ComponentPartition {
            component,
            count: count as usize,
        }
    }

    /// The component of `j`, or `None` when `j` is in no dense motion
    /// (every isolated device; massive devices always resolve to `Some`).
    pub fn component_of(&self, j: DeviceId) -> Option<u32> {
        self.component.get(&j).copied()
    }

    /// Number of distinct components this epoch.
    pub fn count(&self) -> usize {
        self.count
    }

    /// True when no device belongs to any dense motion.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Every (device, component) assignment in ascending device order.
    pub fn iter(&self) -> impl Iterator<Item = (DeviceId, u32)> + '_ {
        self.component.iter().map(|(&j, &c)| (j, c))
    }
}

/// The owned data half of an [`Analyzer`]: every per-device precompute
/// slice merged into id-keyed maps, with no borrow of the table.
///
/// The split from the borrowing [`Analyzer`] wrapper serves two callers:
///
/// * a **persistent worker pool**, which must ship one engine to `'static`
///   worker threads (`Arc<AnalyzerCore>` beside an `Arc<TrajectoryTable>`)
///   where a lifetime-carrying `Analyzer<'t>` cannot go;
/// * an **incremental monitor**, which merges cached slices of unchanged
///   devices with freshly computed ones —
///   [`AnalyzerCore::from_parts`] is indifferent to where each
///   [`DevicePrecompute`] came from, as long as the slice is valid for the
///   table it is queried against.
///
/// Every query takes the table the parts were computed from; handing a
/// different table is a logic error (verdicts would be meaningless or the
/// lookup panics on an unknown id), though never memory-unsafe.
#[derive(Debug, Clone)]
pub struct AnalyzerCore {
    params: Params,
    /// All maximal motions containing each device.
    motions: BTreeMap<DeviceId, Vec<DeviceSet>>,
    /// The dense (`> τ`) subset of `motions`.
    wbar: BTreeMap<DeviceId, Vec<DeviceSet>>,
    /// Window moves spent per device during precomputation.
    precompute_moves: BTreeMap<DeviceId, u64>,
    /// Devices whose motion enumeration exceeded the budget; their verdict
    /// degrades conservatively to unresolved.
    overflowed: std::collections::BTreeSet<DeviceId>,
    /// Bound on collections visited per NSC search.
    collection_budget: u64,
}

/// Per-population characterization engine.
///
/// Precomputes `M(j)` and `W̄_k(j)` for every device of the table (each
/// computation is local to the device's `2r`-neighbourhood) and answers
/// per-device queries. See the crate docs for an end-to-end example.
///
/// `Analyzer` is a thin borrow-carrying wrapper over [`AnalyzerCore`],
/// which owns the merged precompute maps; use the core directly when the
/// engine must outlive a borrow of the table (worker pools, caches).
#[derive(Debug, Clone)]
pub struct Analyzer<'t> {
    table: &'t TrajectoryTable,
    core: AnalyzerCore,
}

impl<'t> Analyzer<'t> {
    /// Builds the engine over all devices of `table` (conceptually `A_k`).
    ///
    /// Devices whose neighbourhood is so pathological that enumerating its
    /// maximal motions exceeds [`DEFAULT_ENUMERATION_BUDGET`] window moves
    /// are recorded as overflowed and later reported unresolved (a
    /// conservative, never-wrong verdict) instead of stalling.
    pub fn new(table: &'t TrajectoryTable, params: Params) -> Self {
        Analyzer::with_enumeration_budget(table, params, DEFAULT_ENUMERATION_BUDGET)
    }

    /// Sets the bound on collections visited per Theorem 7 search; when the
    /// budget is exhausted the device is conservatively reported
    /// unresolved (with `Rule::Corollary8` provenance).
    pub fn with_collection_budget(mut self, budget: u64) -> Self {
        self.core = self.core.with_collection_budget(budget);
        self
    }

    /// Rebuilds the engine with a custom per-device enumeration budget
    /// (window moves). Devices exceeding it are reported unresolved.
    pub fn with_enumeration_budget(
        table: &'t TrajectoryTable,
        params: Params,
        max_window_moves: u64,
    ) -> Self {
        let parts: Vec<(DeviceId, DevicePrecompute)> = table
            .ids()
            .iter()
            .map(|&j| {
                (
                    j,
                    Self::precompute_device(table, &params, j, max_window_moves),
                )
            })
            .collect();
        Self::from_parts(table, params, parts)
    }

    /// The embarrassingly-parallel phase: precomputes one device's slice of
    /// the engine (`M(j)`, `W̄_k(j)`, enumeration cost).
    ///
    /// Reads only `j`'s `2r`-neighbourhood of `table`, takes no `&mut`
    /// anywhere, and depends on nothing but its arguments — workers may call
    /// it concurrently for disjoint (or even overlapping) device shards and
    /// obtain results identical to the sequential [`Analyzer::new`] loop.
    /// Because the result depends only on the trajectories of the
    /// `2r`-neighbourhood, a caller may also cache it across instants and
    /// reuse it verbatim while that neighbourhood is unchanged.
    pub fn precompute_device(
        table: &TrajectoryTable,
        params: &Params,
        j: DeviceId,
        max_window_moves: u64,
    ) -> DevicePrecompute {
        AnalyzerCore::precompute_device(table, params, j, max_window_moves)
    }

    /// The merge phase: assembles an engine from per-device slices.
    ///
    /// The result is identical to [`Analyzer::new`] whatever order the
    /// parts arrive in — the internal maps are keyed by device id and the
    /// overflow set is ordered — so a parallel driver may merge shard
    /// results as workers finish. Parts may equally be a mix of freshly
    /// computed and cached slices; see [`AnalyzerCore::from_parts`].
    ///
    /// # Panics
    ///
    /// Panics unless `parts` covers exactly the devices of `table` (one
    /// part per id, no strangers).
    pub fn from_parts(
        table: &'t TrajectoryTable,
        params: Params,
        parts: impl IntoIterator<Item = (DeviceId, DevicePrecompute)>,
    ) -> Self {
        Analyzer {
            table,
            core: AnalyzerCore::from_parts(table, params, parts),
        }
    }

    /// Wraps an owned engine back around a table borrow. The caller is
    /// responsible for handing the table the core's parts were computed
    /// from (same devices, same trajectories).
    pub fn from_core(table: &'t TrajectoryTable, core: AnalyzerCore) -> Self {
        Analyzer { table, core }
    }

    /// The owned half of the engine, e.g. to ship to worker threads.
    pub fn core(&self) -> &AnalyzerCore {
        &self.core
    }

    /// Unwraps the owned half of the engine, dropping the table borrow.
    pub fn into_core(self) -> AnalyzerCore {
        self.core
    }

    /// Devices whose enumeration overflowed (conservatively unresolved).
    pub fn overflowed_devices(&self) -> impl Iterator<Item = DeviceId> + '_ {
        self.core.overflowed_devices()
    }

    /// The parameters in force.
    pub fn params(&self) -> &Params {
        self.core.params()
    }

    /// The table under analysis.
    pub fn table(&self) -> &TrajectoryTable {
        self.table
    }

    /// `M(j)`: all maximal motions containing `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is not in the table.
    pub fn motions_of(&self, j: DeviceId) -> &[DeviceSet] {
        self.core.motions_of(j)
    }

    /// `W̄_k(j)`: maximal τ-dense motions containing `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is not in the table.
    pub fn wbar_of(&self, j: DeviceId) -> &[DeviceSet] {
        self.core.wbar_of(j)
    }

    /// The epoch's spatial [`ComponentPartition`] over all dense motions.
    pub fn component_partition(&self) -> ComponentPartition {
        self.core.component_partition()
    }

    /// The Section V families of `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is not in the table.
    pub fn families_of(&self, j: DeviceId) -> Families {
        self.core.families_of(j)
    }

    /// Algorithm 3: Theorem 5 / Theorem 6 / tentative unresolved.
    ///
    /// # Panics
    ///
    /// Panics if `j` is not in the table.
    pub fn characterize(&self, j: DeviceId) -> Characterization {
        self.core.characterize(self.table, j)
    }

    /// Algorithm 3 + Algorithms 4–5: exact verdict via the Theorem 7 NSC
    /// when the fast path is inconclusive.
    ///
    /// # Panics
    ///
    /// Panics if `j` is not in the table.
    pub fn characterize_full(&self, j: DeviceId) -> Characterization {
        self.core.characterize_full(self.table, j)
    }

    /// Characterizes every device with the fast path (Algorithm 3).
    pub fn classify_all(&self) -> Vec<(DeviceId, Characterization)> {
        self.table
            .ids()
            .iter()
            .map(|&j| (j, self.characterize(j)))
            .collect()
    }

    /// Characterizes every device exactly (with the Theorem 7 NSC).
    pub fn classify_all_full(&self) -> Vec<(DeviceId, Characterization)> {
        self.table
            .ids()
            .iter()
            .map(|&j| (j, self.characterize_full(j)))
            .collect()
    }
}

impl AnalyzerCore {
    /// Owned form of [`Analyzer::precompute_device`] — same function, same
    /// guarantees (pure, local to `j`'s `2r`-neighbourhood).
    pub fn precompute_device(
        table: &TrajectoryTable,
        params: &Params,
        j: DeviceId,
        max_window_moves: u64,
    ) -> DevicePrecompute {
        let mut ops = MotionOps::default();
        let m = maximal_motions_involving_bounded(
            table,
            j,
            params.window(),
            &mut ops,
            max_window_moves,
        );
        let (motions, overflowed) = match m {
            Some(m) => (m, false),
            None => (Vec::new(), true),
        };
        let dense: Vec<DeviceSet> = motions
            .iter()
            .filter(|s| params.is_dense(s.len()))
            .cloned()
            .collect();
        DevicePrecompute {
            motions,
            dense,
            window_moves: ops.window_moves,
            overflowed,
        }
    }

    /// Assembles an owned engine from per-device slices, in any order.
    ///
    /// The slices may come from anywhere — a sequential loop, parallel
    /// shard workers, or a cache of previous instants' parts for devices
    /// whose `2r`-neighbourhood did not change — as long as together they
    /// cover exactly the devices of `table`. The merge result is
    /// independent of part order and provenance: the maps are keyed by
    /// device id and the overflow set is ordered.
    ///
    /// # Panics
    ///
    /// Panics unless `parts` covers exactly the devices of `table` (one
    /// part per id, no strangers).
    pub fn from_parts(
        table: &TrajectoryTable,
        params: Params,
        parts: impl IntoIterator<Item = (DeviceId, DevicePrecompute)>,
    ) -> Self {
        let mut motions = BTreeMap::new();
        let mut wbar = BTreeMap::new();
        let mut precompute_moves = BTreeMap::new();
        let mut overflowed = std::collections::BTreeSet::new();
        for (j, part) in parts {
            assert!(table.contains(j), "part for unknown device {j:?}");
            if part.overflowed {
                overflowed.insert(j);
            }
            precompute_moves.insert(j, part.window_moves);
            assert!(
                motions.insert(j, part.motions).is_none(),
                "duplicate part for device {j:?}"
            );
            wbar.insert(j, part.dense);
        }
        assert_eq!(
            motions.len(),
            table.len(),
            "parts must cover every device of the table exactly once"
        );
        AnalyzerCore {
            params,
            motions,
            wbar,
            precompute_moves,
            overflowed,
            collection_budget: DEFAULT_COLLECTION_BUDGET,
        }
    }

    /// Sets the bound on collections visited per Theorem 7 search.
    pub fn with_collection_budget(mut self, budget: u64) -> Self {
        self.collection_budget = budget.max(1);
        self
    }

    /// Devices whose enumeration overflowed (conservatively unresolved).
    pub fn overflowed_devices(&self) -> impl Iterator<Item = DeviceId> + '_ {
        self.overflowed.iter().copied()
    }

    /// The parameters in force.
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// `M(j)`: all maximal motions containing `j`.
    ///
    /// # Panics
    ///
    /// Panics if no part was merged for `j`.
    pub fn motions_of(&self, j: DeviceId) -> &[DeviceSet] {
        &self.motions[&j]
    }

    /// `W̄_k(j)`: maximal τ-dense motions containing `j`.
    ///
    /// # Panics
    ///
    /// Panics if no part was merged for `j`.
    pub fn wbar_of(&self, j: DeviceId) -> &[DeviceSet] {
        &self.wbar[&j]
    }

    /// The epoch's [`ComponentPartition`]: connected components of the
    /// merged `W̄_k` dense motions, numbered by smallest member id. The
    /// result is a pure function of the merged parts, so Sequential and
    /// any Threaded merge agree byte-for-byte.
    pub fn component_partition(&self) -> ComponentPartition {
        ComponentPartition::from_dense_sets(self.wbar.iter().map(|(&j, v)| (j, v.as_slice())))
    }

    /// The Section V families of `j`.
    ///
    /// # Panics
    ///
    /// Panics if no part was merged for `j`.
    pub fn families_of(&self, j: DeviceId) -> Families {
        Families::build(j, &self.wbar[&j], |id| {
            self.wbar.get(&id).map(|v| v.as_slice()).unwrap_or(&[])
        })
    }

    /// Algorithm 3 against `table`, which must be the table the parts were
    /// computed from.
    ///
    /// # Panics
    ///
    /// Panics if no part was merged for `j`.
    pub fn characterize(&self, _table: &TrajectoryTable, j: DeviceId) -> Characterization {
        let mut cost = Cost {
            maximal_motions: self.motions[&j].len(),
            dense_motions: self.wbar[&j].len(),
            collections_tested: 0,
            window_moves: self.precompute_moves[&j],
        };
        // Enumeration overflow: the neighbourhood was too pathological to
        // analyze within budget — conservatively unresolved.
        if self.overflowed.contains(&j) {
            return Characterization {
                class: AnomalyClass::Unresolved,
                rule: Rule::Algorithm3,
                cost,
            };
        }
        // Theorem 5: no dense motion at all.
        if self.wbar[&j].is_empty() {
            return Characterization {
                class: AnomalyClass::Isolated,
                rule: Rule::Theorem5,
                cost,
            };
        }
        let families = self.families_of(j);
        // If any neighbour consulted by the families overflowed its own
        // enumeration, its escape motions are unknown — degrade to
        // unresolved rather than decide from incomplete data.
        if !self.overflowed.is_empty()
            && families.d_set.iter().any(|m| self.overflowed.contains(&m))
        {
            return Characterization {
                class: AnomalyClass::Unresolved,
                rule: Rule::Algorithm3,
                cost,
            };
        }
        // Theorem 6 via Algorithm 3 line 17: a maximal dense motion whose
        // intersection with J_k(j) is itself dense. (That intersection is a
        // motion — subset of one — and contains j.)
        let tau = self.params.tau();
        if self.wbar[&j]
            .iter()
            .any(|m| m.intersection_len(&families.j_set) > tau)
        {
            return Characterization {
                class: AnomalyClass::Massive,
                rule: Rule::Theorem6,
                cost,
            };
        }
        cost.collections_tested = 0;
        Characterization {
            class: AnomalyClass::Unresolved,
            rule: Rule::Algorithm3,
            cost,
        }
    }

    /// Algorithm 3 + Algorithms 4–5 against `table`: exact verdict via the
    /// Theorem 7 NSC when the fast path is inconclusive.
    ///
    /// # Panics
    ///
    /// Panics if no part was merged for `j`.
    pub fn characterize_full(&self, table: &TrajectoryTable, j: DeviceId) -> Characterization {
        let quick = self.characterize(table, j);
        if quick.rule != Rule::Algorithm3 {
            return quick;
        }
        // Overflowed neighbourhoods stay conservatively unresolved; the
        // NSC cannot run on incomplete motion families.
        if self.overflowed.contains(&j) {
            return quick;
        }
        let families = self.families_of(j);
        if !self.overflowed.is_empty()
            && families.d_set.iter().any(|m| self.overflowed.contains(&m))
        {
            return quick;
        }
        let (massive, tested) = self.nsc_massive(table, j, &families);
        let mut cost = quick.cost;
        cost.collections_tested = tested;
        if massive {
            Characterization {
                class: AnomalyClass::Massive,
                rule: Rule::Theorem7,
                cost,
            }
        } else {
            Characterization {
                class: AnomalyClass::Unresolved,
                rule: Rule::Corollary8,
                cost,
            }
        }
    }

    /// Theorem 7 search: returns `(j ∈ M_k, collections tested)`.
    ///
    /// The candidate pool is `{B ∈ W_k(ℓ) | ℓ ∈ L_k(j), j ∉ B}` — **all**
    /// τ-dense motions of the escape devices, not only maximal ones: a
    /// non-maximal sub-motion can be pairwise disjoint from another block
    /// where its maximal extension is not, and such shrunken blocks are
    /// exactly how a valid partition keeps `j` sparse. Every such `B` is a
    /// dense subset of some `M' ∈ W̄_k(ℓ)`; when `j ∈ M'`, `B ∪ {j} ⊆ M'`
    /// is consistent, so relation (5) holds and `B` can never witness a
    /// violation — those are pruned. The search enumerates every collection
    /// `C` of pairwise-disjoint pool sets (including the empty one) and
    /// checks
    ///
    /// * relation (4): some `A ∈ W_k(j)` avoids `∪C` — by subset-closure of
    ///   consistency this holds iff `|M \ ∪C| > τ` for some `M ∈ W̄_k(j)`
    ///   (then `A = M \ ∪C` is a dense motion containing `j`);
    /// * relation (5): some `B ∈ C` extends with `j` into a dense motion —
    ///   pruned at pool construction as argued above.
    ///
    /// `j ∈ M_k` iff every collection satisfies (4) or (5); the first
    /// violating collection is a Corollary 8 witness for `j ∈ U_k` and stops
    /// the search. When the pool or the collection count exceeds the
    /// budget, the verdict degrades conservatively to "not provably
    /// massive" (unresolved).
    fn nsc_massive(
        &self,
        table: &TrajectoryTable,
        j: DeviceId,
        families: &Families,
    ) -> (bool, u64) {
        // Deduplicated base motions: maximal dense motions of the escape
        // devices, avoiding j.
        let mut bases: Vec<DeviceSet> = Vec::new();
        for member in &families.l_set {
            for motion in &self.wbar[&member] {
                if !motion.contains(j) && !bases.contains(motion) {
                    bases.push(motion.clone());
                }
            }
        }
        // Expand each base into its useful dense sub-motions.
        let tau = self.params.tau();
        let window = self.params.window();
        let mut pool: std::collections::BTreeSet<DeviceSet> = std::collections::BTreeSet::new();
        let mut overflow = false;
        for base in &bases {
            let ids: Vec<DeviceId> = base.iter().collect();
            if ids.len() > MAX_BASE_MOTION_FOR_SUBSETS {
                overflow = true;
                continue;
            }
            for mask in 1u32..(1 << ids.len()) {
                if (mask.count_ones() as usize) <= tau {
                    continue; // not dense
                }
                let candidate: DeviceSet = (0..ids.len())
                    .filter(|i| mask & (1 << i) != 0)
                    .map(|i| ids[i])
                    .collect();
                // Must contain an escape device and must not absorb j
                // (relation (5) would otherwise hold trivially).
                if candidate.is_disjoint(&families.l_set) {
                    continue;
                }
                if extends_consistently(table, &candidate, j, window) {
                    continue;
                }
                pool.insert(candidate);
                if pool.len() as u64 > self.collection_budget {
                    overflow = true;
                    break;
                }
            }
        }
        let pool: Vec<DeviceSet> = pool.into_iter().collect();
        let mut tested = 0u64;
        let mut chosen: Vec<usize> = Vec::new();
        let outcome =
            self.search_collections(table, j, families, &pool, 0, &mut chosen, &mut tested);
        // Budget/size overflow means the violation search was incomplete:
        // conservatively not provably massive.
        let massive = outcome == SearchOutcome::Exhausted && !overflow;
        (massive, tested)
    }

    /// Depth-first enumeration of disjoint collections.
    #[allow(clippy::too_many_arguments)]
    fn search_collections(
        &self,
        table: &TrajectoryTable,
        j: DeviceId,
        families: &Families,
        pool: &[DeviceSet],
        start: usize,
        chosen: &mut Vec<usize>,
        tested: &mut u64,
    ) -> SearchOutcome {
        *tested += 1;
        if *tested > self.collection_budget {
            return SearchOutcome::BudgetSpent;
        }
        if self.collection_violates(table, j, families, pool, chosen) {
            return SearchOutcome::Violated;
        }
        for i in start..pool.len() {
            if chosen.iter().all(|&c| pool[c].is_disjoint(&pool[i])) {
                chosen.push(i);
                let sub = self.search_collections(table, j, families, pool, i + 1, chosen, tested);
                chosen.pop();
                if sub != SearchOutcome::Exhausted {
                    return sub;
                }
            }
        }
        SearchOutcome::Exhausted
    }

    /// True when the collection satisfies **neither** relation (4) nor (5).
    fn collection_violates(
        &self,
        table: &TrajectoryTable,
        j: DeviceId,
        families: &Families,
        pool: &[DeviceSet],
        chosen: &[usize],
    ) -> bool {
        let window = self.params.window();
        let tau = self.params.tau();
        // Relation (5): some chosen dense motion absorbs j consistently.
        for &c in chosen {
            if extends_consistently(table, &pool[c], j, window) {
                return false;
            }
        }
        // Relation (4): some maximal dense motion of j survives the removal
        // of the chosen sets with more than τ members.
        for m in &families.dense {
            let mut survivors = m.len();
            for &c in chosen {
                survivors -= m.intersection_len(&pool[c]);
            }
            if survivors > tau {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(tau: usize) -> Params {
        Params::new(0.05, tau).unwrap()
    }

    /// Five co-movers and a loner (window 0.1).
    fn simple_table() -> TrajectoryTable {
        TrajectoryTable::from_pairs_1d(&[
            (0, 0.10, 0.50),
            (1, 0.11, 0.51),
            (2, 0.12, 0.52),
            (3, 0.13, 0.53),
            (4, 0.14, 0.54),
            (5, 0.80, 0.20),
        ])
    }

    #[test]
    fn loner_is_isolated_by_theorem_5() {
        let t = simple_table();
        let a = Analyzer::new(&t, params(3));
        let c = a.characterize(DeviceId(5));
        assert_eq!(c.class(), AnomalyClass::Isolated);
        assert_eq!(c.rule(), Rule::Theorem5);
        assert_eq!(c.cost().maximal_motions, 1);
        assert_eq!(c.cost().dense_motions, 0);
    }

    #[test]
    fn group_is_massive_by_theorem_6() {
        let t = simple_table();
        let a = Analyzer::new(&t, params(3));
        for id in 0..5 {
            let c = a.characterize(DeviceId(id));
            assert_eq!(c.class(), AnomalyClass::Massive, "device {id}");
            assert_eq!(c.rule(), Rule::Theorem6);
        }
    }

    #[test]
    fn full_agrees_with_quick_on_clear_cases() {
        let t = simple_table();
        let a = Analyzer::new(&t, params(3));
        for &j in t.ids() {
            assert_eq!(a.characterize(j).class(), a.characterize_full(j).class());
        }
    }

    #[test]
    fn sparse_group_is_isolated() {
        // Three co-movers with τ = 3: the motion is sparse.
        let t =
            TrajectoryTable::from_pairs_1d(&[(0, 0.10, 0.50), (1, 0.11, 0.51), (2, 0.12, 0.52)]);
        let a = Analyzer::new(&t, params(3));
        for &j in t.ids() {
            assert_eq!(a.characterize(j).class(), AnomalyClass::Isolated);
        }
    }

    #[test]
    fn figure_3_shape_is_unresolved_at_the_edges() {
        // Five devices, maximal motions {1,2,3,4} and {2,3,4,5}, τ = 3:
        // devices 1 and 5 are unresolved, 2–4 massive (see figures.rs for
        // the full treatment).
        let t = TrajectoryTable::from_pairs_1d(&[
            (1, 0.10, 0.10),
            (2, 0.14, 0.14),
            (3, 0.16, 0.16),
            (4, 0.18, 0.18),
            (5, 0.22, 0.22),
        ]);
        let a = Analyzer::new(&t, params(3));
        let c1 = a.characterize_full(DeviceId(1));
        assert_eq!(c1.class(), AnomalyClass::Unresolved);
        assert_eq!(c1.rule(), Rule::Corollary8);
        assert!(c1.cost().collections_tested >= 1);
        let c3 = a.characterize_full(DeviceId(3));
        assert_eq!(c3.class(), AnomalyClass::Massive);
    }

    #[test]
    fn classify_all_reports_every_device() {
        let t = simple_table();
        let a = Analyzer::new(&t, params(3));
        assert_eq!(a.classify_all().len(), 6);
        assert_eq!(a.classify_all_full().len(), 6);
    }

    #[test]
    fn display_impls() {
        assert_eq!(AnomalyClass::Massive.to_string(), "massive");
        assert_eq!(Rule::Corollary8.to_string(), "Corollary 8");
    }

    #[test]
    fn enumeration_overflow_degrades_to_unresolved() {
        // A starving budget: everything overflows, nothing stalls, and
        // every verdict is the conservative Unresolved.
        let t = simple_table();
        let a = Analyzer::with_enumeration_budget(&t, params(3), 1);
        assert_eq!(a.overflowed_devices().count(), t.len());
        for &j in t.ids() {
            let quick = a.characterize(j);
            assert_eq!(quick.class(), AnomalyClass::Unresolved);
            assert_eq!(quick.rule(), Rule::Algorithm3);
            let full = a.characterize_full(j);
            assert_eq!(full.class(), AnomalyClass::Unresolved);
        }
    }

    #[test]
    fn generous_budget_matches_unbounded() {
        let t = simple_table();
        let bounded = Analyzer::with_enumeration_budget(&t, params(3), 1_000_000);
        let unbounded = Analyzer::new(&t, params(3));
        assert_eq!(bounded.overflowed_devices().count(), 0);
        for &j in t.ids() {
            assert_eq!(
                bounded.characterize_full(j).class(),
                unbounded.characterize_full(j).class()
            );
        }
    }

    #[test]
    fn from_parts_matches_sequential_construction_in_any_order() {
        let t = simple_table();
        let sequential = Analyzer::new(&t, params(3));
        // Parts computed out of order, as shard workers would deliver them.
        let mut parts: Vec<(DeviceId, DevicePrecompute)> = t
            .ids()
            .iter()
            .map(|&j| {
                (
                    j,
                    Analyzer::precompute_device(&t, &params(3), j, DEFAULT_ENUMERATION_BUDGET),
                )
            })
            .collect();
        parts.reverse();
        let merged = Analyzer::from_parts(&t, params(3), parts);
        for &j in t.ids() {
            assert_eq!(sequential.characterize_full(j), merged.characterize_full(j));
        }
        assert_eq!(
            sequential.overflowed_devices().count(),
            merged.overflowed_devices().count()
        );
    }

    #[test]
    #[should_panic(expected = "cover every device")]
    fn from_parts_rejects_incomplete_coverage() {
        let t = simple_table();
        let one = Analyzer::precompute_device(&t, &params(3), DeviceId(0), 1_000);
        let _ = Analyzer::from_parts(&t, params(3), vec![(DeviceId(0), one)]);
    }

    #[test]
    #[should_panic(expected = "duplicate part")]
    fn from_parts_rejects_duplicate_parts() {
        let t = simple_table();
        let one = Analyzer::precompute_device(&t, &params(3), DeviceId(0), 1_000);
        let _ = Analyzer::from_parts(
            &t,
            params(3),
            vec![(DeviceId(0), one.clone()), (DeviceId(0), one)],
        );
    }

    #[test]
    fn precompute_device_reports_overflow() {
        let t = simple_table();
        let part = Analyzer::precompute_device(&t, &params(3), DeviceId(0), 1);
        assert!(part.overflowed());
    }

    /// Two spatially disjoint co-moving groups and a loner.
    fn two_group_table() -> TrajectoryTable {
        TrajectoryTable::from_pairs_1d(&[
            (0, 0.10, 0.50),
            (1, 0.11, 0.51),
            (2, 0.12, 0.52),
            (3, 0.13, 0.53),
            (10, 0.70, 0.10),
            (11, 0.71, 0.11),
            (12, 0.72, 0.12),
            (13, 0.73, 0.13),
            (20, 0.40, 0.90),
        ])
    }

    #[test]
    fn disjoint_groups_get_distinct_components_numbered_by_smallest_id() {
        let t = two_group_table();
        let a = Analyzer::new(&t, params(3));
        let p = a.component_partition();
        assert_eq!(p.count(), 2);
        for id in [0, 1, 2, 3] {
            assert_eq!(p.component_of(DeviceId(id)), Some(0), "device {id}");
        }
        for id in [10, 11, 12, 13] {
            assert_eq!(p.component_of(DeviceId(id)), Some(1), "device {id}");
        }
        // The loner has no dense motion, hence no component.
        assert_eq!(p.component_of(DeviceId(20)), None);
        assert_eq!(p.iter().count(), 8);
    }

    #[test]
    fn overlapping_dense_motions_merge_into_one_component() {
        // Figure-3 shape: {1,2,3,4} and {2,3,4,5} overlap, so all five
        // devices share one component.
        let t = TrajectoryTable::from_pairs_1d(&[
            (1, 0.10, 0.10),
            (2, 0.14, 0.14),
            (3, 0.16, 0.16),
            (4, 0.18, 0.18),
            (5, 0.22, 0.22),
        ]);
        let a = Analyzer::new(&t, params(3));
        let p = a.component_partition();
        assert_eq!(p.count(), 1);
        for id in 1..=5 {
            assert_eq!(p.component_of(DeviceId(id)), Some(0), "device {id}");
        }
    }

    #[test]
    fn component_partition_is_independent_of_part_order() {
        let t = two_group_table();
        let sequential = Analyzer::new(&t, params(3)).component_partition();
        let mut parts: Vec<(DeviceId, DevicePrecompute)> = t
            .ids()
            .iter()
            .map(|&j| {
                (
                    j,
                    Analyzer::precompute_device(&t, &params(3), j, DEFAULT_ENUMERATION_BUDGET),
                )
            })
            .collect();
        parts.reverse();
        let dense_slices: Vec<(DeviceId, &[DeviceSet])> =
            parts.iter().map(|(j, part)| (*j, part.dense())).collect();
        let from_slices = ComponentPartition::from_dense_sets(dense_slices);
        assert_eq!(sequential, from_slices);
        let merged = Analyzer::from_parts(&t, params(3), parts).component_partition();
        assert_eq!(sequential, merged);
    }

    #[test]
    fn empty_partition_reports_empty() {
        let p = ComponentPartition::from_dense_sets(std::iter::empty());
        assert!(p.is_empty());
        assert_eq!(p.count(), 0);
        assert_eq!(p.component_of(DeviceId(0)), None);
    }

    #[test]
    fn bounded_enumeration_signals_truncation() {
        use crate::maximal::{maximal_motions_bounded, MotionOps};
        let t = simple_table();
        let mut ops = MotionOps::default();
        let out = maximal_motions_bounded(&t, &t.device_set(), 0.1, &mut ops, 1);
        assert!(out.is_none());
        assert!(ops.truncated);
    }
}
