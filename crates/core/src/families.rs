//! The neighbourhood families of Section V: `W̄_k(j)`, `D_k(j)`, `J_k(j)`,
//! `L_k(j)`.
//!
//! For a device `j` with at least one τ-dense motion, the devices that share
//! dense motions with `j` (`D_k(j)`) split into
//!
//! * `J_k(j)` — devices **all** of whose maximal dense motions contain `j`
//!   (they cannot be "pulled away" from `j` by any anomaly partition), and
//! * `L_k(j)` — devices with at least one maximal dense motion avoiding `j`
//!   (a partition may group them elsewhere).
//!
//! Theorem 6 needs only this split; Theorem 7 additionally explores the
//! dense motions of the `L_k(j)` devices.

use crate::set::DeviceSet;
use anomaly_qos::DeviceId;

/// The families of Section V for one device `j`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Families {
    /// `W̄_k(j)`: maximal τ-dense motions containing `j`.
    pub dense: Vec<DeviceSet>,
    /// `D_k(j) = ∪ W̄_k(j)`: devices sharing a dense motion with `j`.
    pub d_set: DeviceSet,
    /// `J_k(j)`: members of `D_k(j)` whose every maximal dense motion
    /// contains `j` (includes `j` itself).
    pub j_set: DeviceSet,
    /// `L_k(j) = D_k(j) \ J_k(j)`.
    pub l_set: DeviceSet,
}

impl Families {
    /// Builds the families for `j` from `j`'s maximal dense motions and a
    /// lookup for the maximal dense motions of any neighbour.
    ///
    /// `dense_of(ℓ)` must return `W̄_k(ℓ)`; it is only called for members of
    /// `D_k(j)`. When `W̄_k(j)` is empty (Theorem 5 applies) all families
    /// are empty.
    pub fn build<'a>(
        j: DeviceId,
        wbar_j: &[DeviceSet],
        mut dense_of: impl FnMut(DeviceId) -> &'a [DeviceSet],
    ) -> Families {
        let dense: Vec<DeviceSet> = wbar_j.to_vec();
        let mut d_set = DeviceSet::new();
        for motion in &dense {
            d_set.extend(motion.iter());
        }
        let mut j_set = DeviceSet::new();
        let mut l_set = DeviceSet::new();
        for member in &d_set {
            if member == j {
                // j belongs to J_k(j) by definition.
                j_set.insert(member);
                continue;
            }
            let escapes = dense_of(member).iter().any(|m| !m.contains(j));
            if escapes {
                l_set.insert(member);
            } else {
                j_set.insert(member);
            }
        }
        Families {
            dense,
            d_set,
            j_set,
            l_set,
        }
    }

    /// True when `j` has no dense motion at all (Theorem 5 ⇒ isolated).
    pub fn is_isolated(&self) -> bool {
        self.dense.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn lookup<'m>(
        map: &'m HashMap<DeviceId, Vec<DeviceSet>>,
    ) -> impl FnMut(DeviceId) -> &'m [DeviceSet] + 'm {
        move |id| map.get(&id).map(|v| v.as_slice()).unwrap_or(&[])
    }

    #[test]
    fn empty_wbar_means_isolated() {
        let map = HashMap::new();
        let f = Families::build(DeviceId(0), &[], lookup(&map));
        assert!(f.is_isolated());
        assert!(f.d_set.is_empty());
        assert!(f.j_set.is_empty());
        assert!(f.l_set.is_empty());
    }

    #[test]
    fn figure_4a_all_in_j() {
        // W̄(4) = {{1,2,3,4},{2,4,5}}; every member's dense motions all
        // contain 4 -> J = D, L = ∅.
        let j = DeviceId(4);
        let c1 = DeviceSet::from([1, 2, 3, 4]);
        let c2 = DeviceSet::from([2, 4, 5]);
        let mut map: HashMap<DeviceId, Vec<DeviceSet>> = HashMap::new();
        map.insert(DeviceId(1), vec![c1.clone()]);
        map.insert(DeviceId(2), vec![c1.clone(), c2.clone()]);
        map.insert(DeviceId(3), vec![c1.clone()]);
        map.insert(DeviceId(5), vec![c2.clone()]);
        let f = Families::build(j, &[c1, c2], lookup(&map));
        assert_eq!(f.d_set, DeviceSet::from([1, 2, 3, 4, 5]));
        assert_eq!(f.j_set, DeviceSet::from([1, 2, 3, 4, 5]));
        assert!(f.l_set.is_empty());
    }

    #[test]
    fn figure_4b_device_5_escapes() {
        // Device 5 also belongs to C3 = {5,6,7} which avoids 4 -> 5 ∈ L(4).
        let j = DeviceId(4);
        let c1 = DeviceSet::from([1, 2, 3, 4]);
        let c2 = DeviceSet::from([2, 4, 5]);
        let c3 = DeviceSet::from([5, 6, 7]);
        let mut map: HashMap<DeviceId, Vec<DeviceSet>> = HashMap::new();
        map.insert(DeviceId(1), vec![c1.clone()]);
        map.insert(DeviceId(2), vec![c1.clone(), c2.clone()]);
        map.insert(DeviceId(3), vec![c1.clone()]);
        map.insert(DeviceId(5), vec![c2.clone(), c3.clone()]);
        let f = Families::build(j, &[c1, c2], lookup(&map));
        assert_eq!(f.j_set, DeviceSet::from([1, 2, 3, 4]));
        assert_eq!(f.l_set, DeviceSet::from([5]));
    }

    #[test]
    fn j_always_contains_itself() {
        let j = DeviceId(9);
        let c = DeviceSet::from([8, 9, 10, 11]);
        let mut map: HashMap<DeviceId, Vec<DeviceSet>> = HashMap::new();
        // Every other member escapes via a disjoint motion.
        for other in [8u32, 10, 11] {
            map.insert(
                DeviceId(other),
                vec![c.clone(), DeviceSet::from([other, 20, 21, 22])],
            );
        }
        let f = Families::build(j, &[c], lookup(&map));
        assert!(f.j_set.contains(j));
        assert_eq!(f.j_set.len(), 1);
        assert_eq!(f.l_set, DeviceSet::from([8, 10, 11]));
    }
}
