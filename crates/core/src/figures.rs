//! The worked examples of the paper, reproduced as tests.
//!
//! Every figure of Sections III–V is rebuilt as a concrete configuration
//! (1-service QoS space; the figures plot QoS at `k` against QoS at `k−1`)
//! and the claims made in the text are asserted against our implementation:
//!
//! * Figure 1 — overlapping maximal r-consistent sets;
//! * Figure 2 — non-uniqueness of anomaly partitions (Lemma 2);
//! * Figure 3 — the ACP impossibility configuration (Theorem 3);
//! * Figure 4(a)/(b) — the `J_k(j)` / `L_k(j)` neighbourhood split;
//! * Figure 5 — the ring where Theorem 6 misses but Theorem 7 decides.

use crate::characterize::{Analyzer, AnomalyClass, Rule};
use crate::maximal::{maximal_motions, MotionOps};
use crate::observer::{brute_force_classes, enumerate_anomaly_partitions};
use crate::params::Params;
use crate::set::DeviceSet;
use crate::table::TrajectoryTable;
use anomaly_qos::DeviceId;

fn motions(table: &TrajectoryTable, window: f64) -> Vec<DeviceSet> {
    maximal_motions(
        table,
        &table.device_set(),
        window,
        &mut MotionOps::default(),
    )
}

/// Figure 1: six devices in a 1-D QoS space; `B1 = {1,2,3,4}` and
/// `B2 = {1,2,3,5,6}` are the two maximal r-consistent sets containing
/// device 1. (A static-positions figure: we give every device a stationary
/// trajectory so consistent sets and consistent motions coincide.)
#[test]
fn figure_1_two_maximal_sets_containing_device_1() {
    let stay = |id: u32, x: f64| (id, x, x);
    let t = TrajectoryTable::from_pairs_1d(&[
        stay(1, 0.10),
        stay(2, 0.12),
        stay(3, 0.14),
        stay(4, 0.05), // pulls B1 left, excludes 5 and 6
        stay(5, 0.155),
        stay(6, 0.16),
    ]);
    let found = motions(&t, 0.1);
    assert!(
        found.contains(&DeviceSet::from([1, 2, 3, 4])),
        "B1 missing: {found:?}"
    );
    assert!(
        found.contains(&DeviceSet::from([1, 2, 3, 5, 6])),
        "B2 missing: {found:?}"
    );
    // Any subset of B1 or B2 is r-consistent but NOT maximal, so exactly
    // these two sets contain device 1.
    let containing_1: Vec<_> = found.iter().filter(|m| m.contains(DeviceId(1))).collect();
    assert_eq!(containing_1.len(), 2);
}

/// Figure 2: ten devices, four maximal motions `C1 = {1,2,3}`,
/// `C2 = {2,3,4}`, `C3 = {5,…,9}`, `C4 = {10}`; with τ = 3 Algorithm 1
/// yields different anomaly partitions depending on its choices (Lemma 2).
#[test]
fn figure_2_partition_non_uniqueness() {
    let params = Params::new(0.05, 3).unwrap();
    let t = TrajectoryTable::from_pairs_1d(&[
        (1, 0.10, 0.10),
        (2, 0.14, 0.14),
        (3, 0.16, 0.16),
        (4, 0.22, 0.22),
        (5, 0.50, 0.80),
        (6, 0.51, 0.81),
        (7, 0.52, 0.82),
        (8, 0.53, 0.83),
        (9, 0.54, 0.84),
        (10, 0.90, 0.20),
    ]);
    let found = motions(&t, params.window());
    assert!(found.contains(&DeviceSet::from([1, 2, 3])));
    assert!(found.contains(&DeviceSet::from([2, 3, 4])));
    assert!(found.contains(&DeviceSet::from([5, 6, 7, 8, 9])));
    assert!(found.contains(&DeviceSet::from([10])));
    assert_eq!(found.len(), 4);

    // Both partitions from the text of Lemma 2 are valid anomaly partitions.
    let p_first = crate::partition::AnomalyPartition::from_blocks(vec![
        DeviceSet::from([1, 2, 3]),
        DeviceSet::from([4]),
        DeviceSet::from([5, 6, 7, 8, 9]),
        DeviceSet::from([10]),
    ]);
    assert!(p_first.validate(&t, &params).is_ok());
    let p_second = crate::partition::AnomalyPartition::from_blocks(vec![
        DeviceSet::from([1]),
        DeviceSet::from([2, 3, 4]),
        DeviceSet::from([5, 6, 7, 8, 9]),
        DeviceSet::from([10]),
    ]);
    assert!(p_second.validate(&t, &params).is_ok());
    assert_ne!(p_first, p_second);

    // And the exhaustive observer finds both (and only partitions that
    // contain the dense block {5..9} intact).
    let all = enumerate_anomaly_partitions(&t, &params, 10_000);
    assert!(all.contains(&p_first));
    assert!(all.contains(&p_second));
    for p in &all {
        assert_eq!(
            p.block_of(DeviceId(5)),
            Some(&DeviceSet::from([5, 6, 7, 8, 9]))
        );
    }
}

/// Figure 3 / Theorem 3: maximal motions `C1 = {1,2,3,4}` and
/// `C2 = {2,3,4,5}` with τ = 3. Exactly two anomaly partitions exist and
/// they disagree on devices 1 and 5 — ACP cannot be solved.
#[test]
fn figure_3_acp_impossibility() {
    let params = Params::new(0.05, 3).unwrap();
    let t = TrajectoryTable::from_pairs_1d(&[
        (1, 0.10, 0.10),
        (2, 0.14, 0.14),
        (3, 0.16, 0.16),
        (4, 0.18, 0.18),
        (5, 0.22, 0.22),
    ]);
    let found = motions(&t, params.window());
    assert_eq!(found.len(), 2);
    assert!(found.contains(&DeviceSet::from([1, 2, 3, 4])));
    assert!(found.contains(&DeviceSet::from([2, 3, 4, 5])));

    let all = enumerate_anomaly_partitions(&t, &params, 1000);
    assert_eq!(all.len(), 2, "exactly the two partitions of the proof");
    let m1: DeviceSet = all[0].massive_devices(&params);
    let m2: DeviceSet = all[1].massive_devices(&params);
    assert_ne!(m1, m2, "the observer cannot tell which scenario is real");

    // The relaxed problem: M_k = {2,3,4}, U_k = {1,5}, I_k = ∅.
    let classes = brute_force_classes(&t, &params, 1000);
    assert_eq!(classes.massive, DeviceSet::from([2, 3, 4]));
    assert_eq!(classes.unresolved, DeviceSet::from([1, 5]));
    assert!(classes.isolated.is_empty());

    // The local algorithms agree with the omniscient observer.
    let analyzer = Analyzer::new(&t, params);
    for &j in t.ids() {
        assert_eq!(
            analyzer.characterize_full(j).class(),
            classes.class_of(j).unwrap(),
            "device {j}"
        );
    }
}

/// Figure 4(a): `S = {1,2,3,4,5}`, τ = 2; `W̄(4) = {C1, C2}` with
/// `C1 = {1,2,3,4}`, `C2 = {2,4,5}`; `J(4) = {1,2,3,4,5}`, `L(4) = ∅`.
#[test]
fn figure_4a_neighbourhood_split_all_j() {
    let params = Params::new(0.05, 2).unwrap();
    let t = TrajectoryTable::from_pairs_1d(&[
        (1, 0.10, 0.10),
        (2, 0.16, 0.12),
        (3, 0.10, 0.14),
        (4, 0.18, 0.12),
        (5, 0.26, 0.12),
    ]);
    let found = motions(&t, params.window());
    assert!(found.contains(&DeviceSet::from([1, 2, 3, 4])), "{found:?}");
    assert!(found.contains(&DeviceSet::from([2, 4, 5])), "{found:?}");

    let analyzer = Analyzer::new(&t, params);
    let fam = analyzer.families_of(DeviceId(4));
    assert_eq!(fam.d_set, DeviceSet::from([1, 2, 3, 4, 5]));
    assert_eq!(fam.j_set, DeviceSet::from([1, 2, 3, 4, 5]));
    assert!(fam.l_set.is_empty());
    // Theorem 6 applies: device 4 is massive.
    let c = analyzer.characterize(DeviceId(4));
    assert_eq!(c.class(), AnomalyClass::Massive);
    assert_eq!(c.rule(), Rule::Theorem6);
}

/// Figure 4(b): devices 6 and 7 give 5 an escape motion `C3 = {5,6,7}`,
/// so `J(4) = {1,2,3,4}` and `L(4) = {5}`.
#[test]
fn figure_4b_neighbourhood_split_with_l() {
    let params = Params::new(0.05, 2).unwrap();
    let t = TrajectoryTable::from_pairs_1d(&[
        (1, 0.10, 0.10),
        (2, 0.16, 0.12),
        (3, 0.10, 0.14),
        (4, 0.18, 0.12),
        (5, 0.26, 0.12),
        (6, 0.30, 0.12),
        (7, 0.30, 0.16),
    ]);
    let found = motions(&t, params.window());
    assert!(found.contains(&DeviceSet::from([5, 6, 7])), "{found:?}");

    let analyzer = Analyzer::new(&t, params);
    let fam = analyzer.families_of(DeviceId(4));
    assert_eq!(fam.d_set, DeviceSet::from([1, 2, 3, 4, 5]));
    assert_eq!(fam.j_set, DeviceSet::from([1, 2, 3, 4]));
    assert_eq!(fam.l_set, DeviceSet::from([5]));
    // |C1 ∩ J| = 4 > τ = 2: still massive by Theorem 6.
    assert_eq!(
        analyzer.characterize(DeviceId(4)).class(),
        AnomalyClass::Massive
    );
}

/// Figure 5: the diamond of pairs where Theorem 6 is silent but Theorem 7
/// proves every device massive. τ = 3; maximal motions are the four
/// adjacent-pair quadruples `{1,2,3,4}`, `{3,4,5,6}`, `{5,6,7,8}`,
/// `{7,8,1,2}`.
#[test]
fn figure_5_theorem_7_catches_what_theorem_6_misses() {
    let params = Params::new(0.05, 3).unwrap();
    // Pairs at the four corners of an L∞ diamond: adjacent corners are 0.1
    // apart, opposite corners 0.2 apart.
    let t = TrajectoryTable::from_pairs_1d(&[
        (1, 0.10, 0.20),
        (2, 0.10, 0.20),
        (3, 0.20, 0.10),
        (4, 0.20, 0.10),
        (5, 0.30, 0.20),
        (6, 0.30, 0.20),
        (7, 0.20, 0.30),
        (8, 0.20, 0.30),
    ]);
    let found = motions(&t, params.window());
    assert_eq!(found.len(), 4, "{found:?}");
    for quad in [[1u32, 2, 3, 4], [3, 4, 5, 6], [5, 6, 7, 8], [1, 2, 7, 8]] {
        assert!(found.contains(&DeviceSet::from(quad)), "missing {quad:?}");
    }

    let analyzer = Analyzer::new(&t, params);
    // W̄(1) = {{1,2,3,4},{1,2,7,8}}; J(1) = {1,2}; L(1) = {3,4,7,8}.
    let fam = analyzer.families_of(DeviceId(1));
    assert_eq!(fam.j_set, DeviceSet::from([1, 2]));
    assert_eq!(fam.l_set, DeviceSet::from([3, 4, 7, 8]));

    for id in 1..=8 {
        let quick = analyzer.characterize(DeviceId(id));
        assert_eq!(
            quick.class(),
            AnomalyClass::Unresolved,
            "Theorem 6 must be silent on device {id}"
        );
        let full = analyzer.characterize_full(DeviceId(id));
        assert_eq!(full.class(), AnomalyClass::Massive, "device {id}");
        assert_eq!(full.rule(), Rule::Theorem7);
        assert!(full.cost().collections_tested >= 2);
    }

    // The omniscient observer agrees: only the two partitions of the text
    // exist and every device is massive in both.
    let classes = brute_force_classes(&t, &params, 10_000);
    assert_eq!(classes.massive.len(), 8);
    assert!(classes.unresolved.is_empty());
}
