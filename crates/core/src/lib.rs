//! Anomaly characterization core — the primary contribution of the DSN 2014
//! paper "Anomaly Characterization in Large Scale Networks" (Anceaume,
//! Busnel, Le Merrer, Ludinard, Marchand, Sericola).
//!
//! Given two successive snapshots of a device population in the QoS space
//! and the set `A_k` of devices whose trajectory was flagged abnormal, this
//! crate decides **locally, per device** whether the device was hit by
//!
//! * an **isolated** anomaly (at most `τ` devices impacted),
//! * a **massive** anomaly (more than `τ` devices impacted), or
//! * whether it sits in an **unresolved configuration** — one where even an
//!   omniscient observer cannot tell (Theorem 3, the ACP impossibility).
//!
//! # Map from paper to code
//!
//! | Paper | Code |
//! |---|---|
//! | r-consistent set / motion (Defs. 1–3) | [`motion`] predicates on a [`TrajectoryTable`] |
//! | Algorithm 2 (`maxMotions`) | [`maximal_motions`] / [`maximal_motions_involving`] |
//! | Anomaly partition, Algorithm 1 (Lemma 2) | [`partition::build_partition`], [`partition::AnomalyPartition`] |
//! | Families `W̄_k(j)`, `D_k(j)`, `J_k(j)`, `L_k(j)` | [`families::Families`] |
//! | Theorem 5 (NSC for `I_k`) | [`Analyzer::characterize`] fast path |
//! | Theorem 6 (sufficient for `M_k`), Algorithm 3 | [`Analyzer::characterize`] |
//! | Theorem 7 (NSC for `M_k`), Algorithms 4–5 | [`Analyzer::characterize_full`] |
//! | Corollary 8 (NSC for `U_k`) | [`Analyzer::characterize_full`] |
//! | Omniscient observer, Relations (2)–(3) | [`observer::brute_force_classes`] |
//!
//! # Example
//!
//! Five devices move together while a sixth jumps on its own; with `τ = 3`
//! the group is characterized as massive and the loner as isolated:
//!
//! ```
//! use anomaly_core::{Analyzer, AnomalyClass, Params, TrajectoryTable};
//! use anomaly_qos::{DeviceId, QosSpace, Snapshot, StatePair};
//!
//! let space = QosSpace::new(1)?;
//! let before = Snapshot::from_rows(&space, vec![
//!     vec![0.10], vec![0.11], vec![0.12], vec![0.13], vec![0.14], // the group
//!     vec![0.80],                                                 // the loner
//! ])?;
//! let after = Snapshot::from_rows(&space, vec![
//!     vec![0.50], vec![0.51], vec![0.52], vec![0.53], vec![0.54],
//!     vec![0.20],
//! ])?;
//! let pair = StatePair::new(before, after)?;
//! let abnormal: Vec<DeviceId> = (0..6).map(DeviceId).collect();
//! let params = Params::new(0.03, 3)?;
//! let table = TrajectoryTable::from_state_pair(&pair, &abnormal);
//! let analyzer = Analyzer::new(&table, params);
//!
//! assert_eq!(analyzer.characterize(DeviceId(0)).class(), AnomalyClass::Massive);
//! assert_eq!(analyzer.characterize(DeviceId(5)).class(), AnomalyClass::Isolated);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![deny(warnings)]
#![warn(missing_docs)]

mod characterize;
pub mod families;
pub mod local;
mod maximal;
pub mod motion;
pub mod observer;
mod params;
pub mod partition;
mod set;
mod shard;
mod table;

#[cfg(test)]
mod figures;

pub use characterize::{
    Analyzer, AnalyzerCore, AnomalyClass, Characterization, ComponentPartition, Cost,
    DevicePrecompute, Rule, DEFAULT_COLLECTION_BUDGET, DEFAULT_ENUMERATION_BUDGET,
};
pub use families::Families;
pub use local::LocalContext;
pub use maximal::{
    maximal_motions, maximal_motions_bounded, maximal_motions_brute, maximal_motions_involving,
    maximal_motions_involving_bounded, MotionOps,
};
pub use params::{Params, ParamsError};
pub use partition::{build_partition, AnomalyPartition, PartitionError};
pub use set::DeviceSet;
pub use shard::ShardPlan;
pub use table::{TableError, TrajectoryTable};
