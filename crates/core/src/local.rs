//! Device-side characterization from strictly local knowledge.
//!
//! Section V closes with the paper's locality result: a device `j` only
//! needs the trajectories of devices within motion distance `4r` of itself —
//! its own maximal motions live within `2r`, and the escape motions of its
//! `L_k(j)` neighbours within another `2r`. *"A larger radius of knowledge —
//! as the one got by an omniscient observer — does not bring any additional
//! information and thus does not provide a higher error detection
//! accuracy."*
//!
//! [`LocalContext`] packages exactly that knowledge (what a gateway would
//! learn from one gossip round with its QoS neighbours), and
//! [`LocalContext::characterize`] produces the verdict. The property test
//! at the bottom machine-checks the locality claim: the verdict from the
//! `4r` ball always equals the verdict computed from the full system state.

use crate::characterize::{Analyzer, Characterization};
use crate::params::Params;
use crate::table::TrajectoryTable;
use anomaly_qos::{DeviceId, StatePair};

/// The knowledge a single device needs to self-characterize: its own
/// trajectory plus those of all flagged devices within motion distance `4r`.
#[derive(Debug, Clone)]
pub struct LocalContext {
    device: DeviceId,
    table: TrajectoryTable,
    params: Params,
}

impl LocalContext {
    /// Extracts `j`'s `4r`-neighbourhood view from the global state — the
    /// helper a simulator or test harness uses; a real device would receive
    /// the same rows from its neighbours directly.
    ///
    /// `abnormal` is the flagged set `A_k`; only flagged devices matter for
    /// characterization.
    ///
    /// # Panics
    ///
    /// Panics if `j` is not in `abnormal` (only flagged devices
    /// characterize themselves) or ids are out of bounds.
    pub fn from_state_pair(
        pair: &StatePair,
        abnormal: &[DeviceId],
        j: DeviceId,
        params: Params,
    ) -> Self {
        assert!(
            abnormal.contains(&j),
            "only flagged devices run the characterization"
        );
        let reach = 2.0 * params.window(); // 4r
        let neighbours: Vec<DeviceId> = abnormal
            .iter()
            .copied()
            .filter(|&o| o == j || pair.pairwise_motion_distance(j, o) <= reach)
            .collect();
        LocalContext {
            device: j,
            table: TrajectoryTable::from_state_pair(pair, &neighbours),
            params,
        }
    }

    /// Builds a context directly from neighbour trajectories (the
    /// device-side constructor).
    ///
    /// # Panics
    ///
    /// Panics if `j` is missing from the table.
    pub fn from_table(table: TrajectoryTable, j: DeviceId, params: Params) -> Self {
        assert!(table.contains(j), "the device itself must be in its view");
        LocalContext {
            device: j,
            table,
            params,
        }
    }

    /// The device this context belongs to.
    pub fn device(&self) -> DeviceId {
        self.device
    }

    /// Number of neighbour trajectories held (including the device itself).
    pub fn knowledge_size(&self) -> usize {
        self.table.len()
    }

    /// Runs the exact characterization (Algorithms 3–5) on the local view.
    pub fn characterize(&self) -> Characterization {
        Analyzer::new(&self.table, self.params).characterize_full(self.device)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characterize::AnomalyClass;
    use anomaly_qos::{QosSpace, Snapshot};
    use proptest::prelude::*;

    fn pair_from(rows: &[(f64, f64)]) -> StatePair {
        let space = QosSpace::new(1).unwrap();
        let before = Snapshot::from_rows(&space, rows.iter().map(|r| vec![r.0]).collect()).unwrap();
        let after = Snapshot::from_rows(&space, rows.iter().map(|r| vec![r.1]).collect()).unwrap();
        StatePair::new(before, after).unwrap()
    }

    #[test]
    fn local_view_prunes_distant_devices() {
        let pair = pair_from(&[
            (0.10, 0.10),
            (0.12, 0.12),
            (0.90, 0.90), // far away
        ]);
        let abnormal: Vec<DeviceId> = (0..3).map(DeviceId).collect();
        let params = Params::new(0.05, 2).unwrap();
        let ctx = LocalContext::from_state_pair(&pair, &abnormal, DeviceId(0), params);
        assert_eq!(ctx.knowledge_size(), 2, "device 2 is outside the 4r ball");
        assert_eq!(ctx.device(), DeviceId(0));
    }

    #[test]
    fn figure_3_verdicts_from_local_views() {
        // The ACP configuration, decided device-by-device from 4r views.
        let pair = pair_from(&[
            (0.10, 0.10),
            (0.14, 0.14),
            (0.16, 0.16),
            (0.18, 0.18),
            (0.22, 0.22),
        ]);
        let abnormal: Vec<DeviceId> = (0..5).map(DeviceId).collect();
        let params = Params::new(0.05, 3).unwrap();
        let expect = [
            AnomalyClass::Unresolved,
            AnomalyClass::Massive,
            AnomalyClass::Massive,
            AnomalyClass::Massive,
            AnomalyClass::Unresolved,
        ];
        for (i, want) in expect.iter().enumerate() {
            let ctx = LocalContext::from_state_pair(&pair, &abnormal, DeviceId(i as u32), params);
            assert_eq!(ctx.characterize().class(), *want, "device {i}");
        }
    }

    #[test]
    #[should_panic(expected = "flagged devices")]
    fn rejects_unflagged_device() {
        let pair = pair_from(&[(0.1, 0.1), (0.2, 0.2)]);
        LocalContext::from_state_pair(
            &pair,
            &[DeviceId(0)],
            DeviceId(1),
            Params::new(0.05, 2).unwrap(),
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// **The locality claim of Section V**: the verdict computed from
        /// the 4r ball equals the verdict computed from the full state.
        #[test]
        fn four_r_knowledge_suffices(
            seeds in proptest::collection::vec(
                (0.0..0.2f64, 0.0..0.2f64, 0u8..4), 1..12),
            tau in 1usize..4,
        ) {
            let rows: Vec<(f64, f64)> = seeds
                .into_iter()
                .map(|(b, a, c)| {
                    let base = 0.22 * c as f64;
                    (base + b, base + a)
                })
                .collect();
            let pair = pair_from(&rows);
            let abnormal: Vec<DeviceId> =
                (0..rows.len() as u32).map(DeviceId).collect();
            let params = Params::new(0.04, tau).unwrap();

            // Global verdicts.
            let table = TrajectoryTable::from_state_pair(&pair, &abnormal);
            let analyzer = Analyzer::new(&table, params);

            for &j in &abnormal {
                let local = LocalContext::from_state_pair(&pair, &abnormal, j, params);
                prop_assert_eq!(
                    local.characterize().class(),
                    analyzer.characterize_full(j).class(),
                    "device {} local != global", j
                );
            }
        }
    }
}
