//! Enumeration of maximal r-consistent motions (Algorithm 2 of the paper).
//!
//! A set has an r-consistent motion iff its L∞ diameter in the concatenated
//! `2d`-space is at most `2r`, i.e. iff it fits in an axis-aligned hypercube
//! of side `2r`. The maximal motions are therefore the maximal subsets
//! coverable by such a box. Algorithm 2 slides, dimension by dimension, a
//! window of width `2r` anchored at each distinct point coordinate — the
//! paper's two sliding windows `W_{k−1}` and `W_k` are the first `d` and the
//! last `d` axes of this recursion — and keeps the maximal candidate sets.
//!
//! Correctness: a maximal motion `B` is recovered by anchoring the window in
//! every axis at `B`'s minimum coordinate; the candidate then equals the set
//! of all points inside the resulting box, which is a consistent motion
//! containing `B`, hence equals `B` by maximality. Conversely, every
//! candidate is a consistent motion (it fits a `2r`-box) and subsumption
//! filtering keeps only maximal ones. Property tests validate this against
//! [`maximal_motions_brute`], an exponential subset-enumeration reference.

use crate::motion::{extends_consistently, is_consistent_motion, CONSISTENCY_EPS};
use crate::set::DeviceSet;
use crate::table::TrajectoryTable;
use anomaly_qos::DeviceId;

/// Operation counters for the enumeration (feeds Table III of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MotionOps {
    /// Sliding-window placements examined across all axes.
    pub window_moves: u64,
    /// Candidate sets that reached the maximality filter.
    pub candidates: u64,
    /// True when a bounded enumeration hit its budget and returned a
    /// truncated (incomplete) family.
    pub truncated: bool,
}

/// All maximal r-consistent motions among `candidates`.
///
/// `window` is the box side `2r`. Singletons count: an isolated point forms
/// a maximal motion of size 1. Results are sorted for determinism.
///
/// # Panics
///
/// Panics if a candidate id is not in the table.
pub fn maximal_motions(
    table: &TrajectoryTable,
    candidates: &DeviceSet,
    window: f64,
    ops: &mut MotionOps,
) -> Vec<DeviceSet> {
    maximal_motions_bounded(table, candidates, window, ops, u64::MAX)
        .unwrap_or_else(|| unreachable!("unlimited budget cannot truncate"))
}

/// [`maximal_motions`] with a budget on sliding-window placements.
///
/// Pathological configurations (hundreds of devices crammed inside a few
/// windows) can have exponentially many maximal motions — no exact
/// algorithm escapes that. Bounding the enumeration keeps monitoring
/// rounds total: on budget exhaustion the function returns `None`
/// (and sets the [`MotionOps`] `truncated` flag) so the caller can degrade
/// conservatively instead of stalling.
pub fn maximal_motions_bounded(
    table: &TrajectoryTable,
    candidates: &DeviceSet,
    window: f64,
    ops: &mut MotionOps,
    max_window_moves: u64,
) -> Option<Vec<DeviceSet>> {
    if candidates.is_empty() {
        return Some(Vec::new());
    }
    let axes = 2 * table.dim();
    let ids: Vec<DeviceId> = candidates.iter().collect();
    let mut out: Vec<DeviceSet> = Vec::new();
    recurse(table, axes, 0, ids, window, &mut out, ops, max_window_moves);
    if ops.truncated {
        return None;
    }
    out.sort_unstable();
    Some(out)
}

/// All maximal r-consistent motions **containing `j`**, enumerated over
/// `j`'s own neighbourhood only — this is the locally computable family
/// `M(j)` built by Algorithm 2 (any motion containing `j` lives within
/// motion distance `2r` of `j`, so restricting to the neighbourhood is
/// exact, and a `j`-containing set maximal there is maximal globally).
///
/// # Panics
///
/// Panics if `j` is not in the table.
pub fn maximal_motions_involving(
    table: &TrajectoryTable,
    j: DeviceId,
    window: f64,
    ops: &mut MotionOps,
) -> Vec<DeviceSet> {
    maximal_motions_involving_bounded(table, j, window, ops, u64::MAX)
        .unwrap_or_else(|| unreachable!("unlimited budget cannot truncate"))
}

/// [`maximal_motions_involving`] with an enumeration budget; `None` on
/// exhaustion (see [`maximal_motions_bounded`]).
pub fn maximal_motions_involving_bounded(
    table: &TrajectoryTable,
    j: DeviceId,
    window: f64,
    ops: &mut MotionOps,
    max_window_moves: u64,
) -> Option<Vec<DeviceSet>> {
    let mut neighborhood: DeviceSet = table.neighborhood(j, window).into_iter().collect();
    neighborhood.insert(j);
    maximal_motions_bounded(table, &neighborhood, window, ops, max_window_moves)
        .map(|sets| sets.into_iter().filter(|m| m.contains(j)).collect())
}

#[allow(clippy::too_many_arguments)]
fn recurse(
    table: &TrajectoryTable,
    axes: usize,
    axis: usize,
    candidates: Vec<DeviceId>,
    window: f64,
    out: &mut Vec<DeviceSet>,
    ops: &mut MotionOps,
    max_window_moves: u64,
) {
    if candidates.is_empty() || ops.truncated {
        return;
    }
    if axis == axes {
        ops.candidates += 1;
        insert_maximal(out, candidates.into_iter().collect());
        return;
    }
    // Sort candidates by their coordinate along this axis.
    let mut vals: Vec<(f64, DeviceId)> = candidates
        .into_iter()
        .map(|id| (table.concatenated(id)[axis], id))
        .collect();
    vals.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));

    let mut prev: Option<Vec<DeviceId>> = None;
    for i in 0..vals.len() {
        // Anchor the window at each *distinct* coordinate.
        if i > 0 && vals[i].0 == vals[i - 1].0 {
            continue;
        }
        let lo = vals[i].0;
        let hi = lo + window + CONSISTENCY_EPS;
        ops.window_moves += 1;
        if ops.window_moves > max_window_moves {
            ops.truncated = true;
            return;
        }
        let subset: Vec<DeviceId> = vals[i..]
            .iter()
            .take_while(|(c, _)| *c <= hi)
            .map(|(_, id)| *id)
            .collect();
        // Identical window content as the previous anchor: same sub-tree.
        if prev.as_ref() == Some(&subset) {
            continue;
        }
        // A window whose content is a strict subset of the previous one's
        // (nothing new entered on the right) can only produce non-maximal
        // candidates along this axis; it is still recursed because deeper
        // axes may break the inclusion... except when the previous window
        // covers it entirely — then every deeper refinement of this window
        // is a refinement of the previous one too, and subsumption filtering
        // would discard it. Detect that cheap case: same last element.
        if let Some(p) = &prev {
            if subset.len() < p.len() && p.last() == subset.last() {
                prev = Some(subset);
                continue;
            }
        }
        prev = Some(subset.clone());
        recurse(
            table,
            axes,
            axis + 1,
            subset,
            window,
            out,
            ops,
            max_window_moves,
        );
    }
}

/// Inserts `cand` keeping `out` an antichain under inclusion.
fn insert_maximal(out: &mut Vec<DeviceSet>, cand: DeviceSet) {
    if out.iter().any(|existing| cand.is_subset(existing)) {
        return;
    }
    out.retain(|existing| !existing.is_subset(&cand));
    out.push(cand);
}

/// Exponential reference implementation: enumerates every subset of
/// `candidates` (so `|candidates|` must stay small), keeps consistent
/// motions, and filters to maximal ones *within `candidates`*.
///
/// Exists to property-test [`maximal_motions`]; also used by the benchmark
/// harness to show the sliding-window algorithm's advantage.
///
/// # Panics
///
/// Panics if `candidates` holds more than 20 devices, or an id is missing
/// from the table.
pub fn maximal_motions_brute(
    table: &TrajectoryTable,
    candidates: &DeviceSet,
    window: f64,
) -> Vec<DeviceSet> {
    let ids: Vec<DeviceId> = candidates.iter().collect();
    let n = ids.len();
    assert!(n <= 20, "brute-force enumeration is capped at 20 devices");
    let mut consistent: Vec<DeviceSet> = Vec::new();
    for mask in 1u32..(1 << n) {
        let set: DeviceSet = (0..n)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| ids[i])
            .collect();
        if is_consistent_motion(table, &set, window) {
            consistent.push(set);
        }
    }
    let mut maximal: Vec<DeviceSet> = Vec::new();
    'outer: for set in &consistent {
        // Maximal iff no candidate outside extends it consistently.
        for &id in &ids {
            if !set.contains(id) && extends_consistently(table, set, id, window) {
                continue 'outer;
            }
        }
        maximal.push(set.clone());
    }
    maximal.sort_unstable();
    maximal.dedup();
    maximal
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ops() -> MotionOps {
        MotionOps::default()
    }

    #[test]
    fn single_point_is_a_maximal_motion() {
        let t = TrajectoryTable::from_pairs_1d(&[(0, 0.5, 0.5)]);
        let m = maximal_motions(&t, &t.device_set(), 0.1, &mut ops());
        assert_eq!(m, vec![DeviceSet::from([0])]);
    }

    #[test]
    fn two_overlapping_maximal_sets() {
        // The Figure 1 shape in motion form: 1..4 consistent, 1,2,3,5,6
        // consistent, but 4 with 5 or 6 is not.
        let t = TrajectoryTable::from_pairs_1d(&[
            (1, 0.10, 0.10),
            (2, 0.12, 0.12),
            (3, 0.14, 0.14),
            (4, 0.05, 0.05),
            (5, 0.155, 0.155),
            (6, 0.165, 0.165),
        ]);
        let m = maximal_motions(&t, &t.device_set(), 0.1, &mut ops());
        assert_eq!(m.len(), 2);
        assert!(m.contains(&DeviceSet::from([1, 2, 3, 4])));
        assert!(m.contains(&DeviceSet::from([1, 2, 3, 5, 6])));
    }

    #[test]
    fn separated_clusters_are_separate_motions() {
        let t = TrajectoryTable::from_pairs_1d(&[
            (0, 0.1, 0.1),
            (1, 0.12, 0.12),
            (2, 0.8, 0.8),
            (3, 0.82, 0.82),
        ]);
        let m = maximal_motions(&t, &t.device_set(), 0.1, &mut ops());
        assert_eq!(m.len(), 2);
        assert!(m.contains(&DeviceSet::from([0, 1])));
        assert!(m.contains(&DeviceSet::from([2, 3])));
    }

    #[test]
    fn motion_requires_consistency_at_both_times() {
        // Close before, far after: no common motion.
        let t = TrajectoryTable::from_pairs_1d(&[(0, 0.1, 0.1), (1, 0.12, 0.9)]);
        let m = maximal_motions(&t, &t.device_set(), 0.1, &mut ops());
        assert_eq!(m.len(), 2, "each point is its own maximal motion");
    }

    #[test]
    fn involving_filters_to_j() {
        let t = TrajectoryTable::from_pairs_1d(&[
            (0, 0.10, 0.10),
            (1, 0.15, 0.15),
            (2, 0.22, 0.22),
            (3, 0.80, 0.80),
        ]);
        let m = maximal_motions_involving(&t, DeviceId(1), 0.1, &mut ops());
        assert_eq!(m.len(), 2);
        assert!(m.contains(&DeviceSet::from([0, 1])));
        assert!(m.contains(&DeviceSet::from([1, 2])));
        // Device 3 is alone.
        let m3 = maximal_motions_involving(&t, DeviceId(3), 0.1, &mut ops());
        assert_eq!(m3, vec![DeviceSet::from([3])]);
    }

    #[test]
    fn exact_boundary_2r_is_included() {
        let t = TrajectoryTable::from_pairs_1d(&[(0, 0.1, 0.1), (1, 0.2, 0.2)]);
        let m = maximal_motions(&t, &t.device_set(), 0.1, &mut ops());
        assert_eq!(m, vec![DeviceSet::from([0, 1])]);
    }

    #[test]
    fn duplicate_positions_group_together() {
        let t = TrajectoryTable::from_pairs_1d(&[(0, 0.3, 0.3), (1, 0.3, 0.3), (2, 0.3, 0.3)]);
        let m = maximal_motions(&t, &t.device_set(), 0.05, &mut ops());
        assert_eq!(m, vec![DeviceSet::from([0, 1, 2])]);
    }

    #[test]
    fn two_dimensional_services() {
        // d = 2 -> concatenated space has 4 axes. Two groups moving
        // together, split on the *second* service only.
        let t = TrajectoryTable::from_concatenated(
            2,
            vec![
                (DeviceId(0), vec![0.1, 0.1, 0.5, 0.5]),
                (DeviceId(1), vec![0.1, 0.12, 0.5, 0.52]),
                (DeviceId(2), vec![0.1, 0.4, 0.5, 0.8]),
            ],
        );
        let m = maximal_motions(&t, &t.device_set(), 0.1, &mut ops());
        assert_eq!(m.len(), 2);
        assert!(m.contains(&DeviceSet::from([0, 1])));
        assert!(m.contains(&DeviceSet::from([2])));
    }

    #[test]
    fn agrees_with_brute_force_on_figure_like_config() {
        let t = TrajectoryTable::from_pairs_1d(&[
            (1, 0.10, 0.10),
            (2, 0.14, 0.14),
            (3, 0.16, 0.16),
            (4, 0.18, 0.18),
            (5, 0.22, 0.22),
        ]);
        let fast = maximal_motions(&t, &t.device_set(), 0.1, &mut ops());
        let brute = maximal_motions_brute(&t, &t.device_set(), 0.1);
        assert_eq!(fast, brute);
    }

    #[test]
    fn ops_are_counted() {
        let t = TrajectoryTable::from_pairs_1d(&[(0, 0.1, 0.1), (1, 0.5, 0.5)]);
        let mut counter = ops();
        maximal_motions(&t, &t.device_set(), 0.1, &mut counter);
        assert!(counter.window_moves > 0);
        assert!(counter.candidates > 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(512))]

        /// The sliding-window enumeration agrees with brute force on random
        /// 1-service configurations.
        #[test]
        fn matches_brute_force_1d(
            rows in proptest::collection::vec((0.0..1.0f64, 0.0..1.0f64), 1..11),
            window in 0.02..0.3f64,
        ) {
            let rows: Vec<(u32, f64, f64)> = rows
                .into_iter()
                .enumerate()
                .map(|(i, (b, a))| (i as u32, b, a))
                .collect();
            let t = TrajectoryTable::from_pairs_1d(&rows);
            let fast = maximal_motions(&t, &t.device_set(), window, &mut MotionOps::default());
            let brute = maximal_motions_brute(&t, &t.device_set(), window);
            prop_assert_eq!(fast, brute);
        }

        /// Same in a 2-service space (4 concatenated axes).
        #[test]
        fn matches_brute_force_2d(
            rows in proptest::collection::vec(
                proptest::collection::vec(0.0..1.0f64, 4), 1..9),
            window in 0.05..0.4f64,
        ) {
            let rows: Vec<(DeviceId, Vec<f64>)> = rows
                .into_iter()
                .enumerate()
                .map(|(i, r)| (DeviceId(i as u32), r))
                .collect();
            let t = TrajectoryTable::from_concatenated(2, rows);
            let fast = maximal_motions(&t, &t.device_set(), window, &mut MotionOps::default());
            let brute = maximal_motions_brute(&t, &t.device_set(), window);
            prop_assert_eq!(fast, brute);
        }

        /// Clustered points (the regime the paper operates in): many near-
        /// coincident trajectories stress the window dedup logic.
        #[test]
        fn matches_brute_force_clustered(
            seeds in proptest::collection::vec((0.0..0.2f64, 0.0..0.2f64, 0u8..3), 1..11),
        ) {
            let rows: Vec<(u32, f64, f64)> = seeds
                .into_iter()
                .enumerate()
                .map(|(i, (b, a, c))| {
                    // Three coarse cluster anchors.
                    let base = 0.3 * c as f64;
                    (i as u32, base + b, base + a)
                })
                .collect();
            let t = TrajectoryTable::from_pairs_1d(&rows);
            let fast = maximal_motions(&t, &t.device_set(), 0.1, &mut MotionOps::default());
            let brute = maximal_motions_brute(&t, &t.device_set(), 0.1);
            prop_assert_eq!(fast, brute);
        }

        /// `maximal_motions_involving` returns exactly the j-containing
        /// maximal motions of the full enumeration.
        #[test]
        fn involving_matches_global_filter(
            rows in proptest::collection::vec((0.0..0.5f64, 0.0..0.5f64), 2..10),
        ) {
            let rows: Vec<(u32, f64, f64)> = rows
                .into_iter()
                .enumerate()
                .map(|(i, (b, a))| (i as u32, b, a))
                .collect();
            let t = TrajectoryTable::from_pairs_1d(&rows);
            let all = maximal_motions(&t, &t.device_set(), 0.1, &mut MotionOps::default());
            for &id in t.ids() {
                let local = maximal_motions_involving(&t, id, 0.1, &mut MotionOps::default());
                let expected: Vec<DeviceSet> = all
                    .iter()
                    .filter(|m| m.contains(id))
                    .cloned()
                    .collect();
                prop_assert_eq!(local, expected);
            }
        }
    }
}
