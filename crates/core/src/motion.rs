//! Consistency predicates (Definitions 1–4 of the paper).
//!
//! A subset `B` is *r-consistent at time t* when all pairwise uniform
//! distances at `t` are at most `2r`; it has an *r-consistent motion* in
//! `[k−1, k]` when it is r-consistent at both times, which over the
//! [`TrajectoryTable`]'s concatenated coordinates is a single L∞-diameter
//! check. Floating-point comparisons use a small relative slack so that
//! configurations placed exactly `2r` apart (as in the paper's figures) are
//! classified stably.

use crate::set::DeviceSet;
use crate::table::TrajectoryTable;

/// Absolute slack applied to all `≤ 2r` comparisons.
///
/// Coordinates live in `[0,1]`, so an absolute epsilon is appropriate; it
/// tolerates the rounding of a handful of f64 operations without ever
/// conflating distinct configurations at realistic radii.
pub const CONSISTENCY_EPS: f64 = 1e-9;

/// L∞ diameter of `set` in the concatenated `2d`-space: the largest motion
/// distance between any two members. Empty and singleton sets have diameter
/// zero.
///
/// # Panics
///
/// Panics if a member of `set` is not in the table.
pub fn motion_diameter(table: &TrajectoryTable, set: &DeviceSet) -> f64 {
    let ids = set.as_slice();
    let mut diameter = 0.0f64;
    for (i, &a) in ids.iter().enumerate() {
        for &b in &ids[i + 1..] {
            diameter = diameter.max(table.motion_distance(a, b));
        }
    }
    diameter
}

/// True when `set` has an r-consistent motion in `[k−1, k]` (Definition 3):
/// pairwise distances at both times are at most `2r` (up to
/// [`CONSISTENCY_EPS`]).
///
/// # Panics
///
/// Panics if a member of `set` is not in the table.
pub fn is_consistent_motion(table: &TrajectoryTable, set: &DeviceSet, window: f64) -> bool {
    let ids = set.as_slice();
    for (i, &a) in ids.iter().enumerate() {
        for &b in &ids[i + 1..] {
            if table.motion_distance(a, b) > window + CONSISTENCY_EPS {
                return false;
            }
        }
    }
    true
}

/// True when `set ∪ {extra}` has an r-consistent motion, checked
/// incrementally assuming `set` itself is already consistent.
///
/// # Panics
///
/// Panics if a device is not in the table.
pub fn extends_consistently(
    table: &TrajectoryTable,
    set: &DeviceSet,
    extra: anomaly_qos::DeviceId,
    window: f64,
) -> bool {
    set.iter()
        .all(|m| table.motion_distance(m, extra) <= window + CONSISTENCY_EPS)
}

/// True when `set` has a *maximal* r-consistent motion within `universe`
/// (Definition 3): it is a consistent motion and no device of
/// `universe \ set` extends it consistently.
///
/// # Panics
///
/// Panics if a device is not in the table.
pub fn is_maximal_motion(
    table: &TrajectoryTable,
    set: &DeviceSet,
    universe: &DeviceSet,
    window: f64,
) -> bool {
    if !is_consistent_motion(table, set, window) {
        return false;
    }
    universe
        .iter()
        .filter(|id| !set.contains(*id))
        .all(|id| !extends_consistently(table, set, id, window))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> TrajectoryTable {
        // 1-D QoS; window 2r = 0.1 in the tests below.
        TrajectoryTable::from_pairs_1d(&[
            (0, 0.10, 0.50),
            (1, 0.15, 0.55),
            (2, 0.20, 0.60),
            (3, 0.40, 0.60), // far before
            (4, 0.15, 0.90), // far after
        ])
    }

    #[test]
    fn diameter_of_small_sets() {
        let t = table();
        assert_eq!(motion_diameter(&t, &DeviceSet::new()), 0.0);
        assert_eq!(motion_diameter(&t, &DeviceSet::from([0])), 0.0);
        assert!((motion_diameter(&t, &DeviceSet::from([0, 2])) - 0.1).abs() < 1e-12);
        assert!((motion_diameter(&t, &DeviceSet::from([0, 3])) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn consistency_requires_both_times() {
        let t = table();
        assert!(is_consistent_motion(&t, &DeviceSet::from([0, 1, 2]), 0.1));
        // Device 3 is close after but 0.3 away before.
        assert!(!is_consistent_motion(&t, &DeviceSet::from([0, 3]), 0.1));
        // Device 4 is close before but 0.4 away after.
        assert!(!is_consistent_motion(&t, &DeviceSet::from([0, 4]), 0.1));
    }

    #[test]
    fn exact_window_boundary_is_consistent() {
        let t = table();
        // Devices 0 and 2 are exactly 0.1 apart at both times.
        assert!(is_consistent_motion(&t, &DeviceSet::from([0, 2]), 0.1));
    }

    #[test]
    fn extends_consistently_matches_full_check() {
        let t = table();
        let base = DeviceSet::from([0, 1]);
        assert!(extends_consistently(
            &t,
            &base,
            anomaly_qos::DeviceId(2),
            0.1
        ));
        assert!(!extends_consistently(
            &t,
            &base,
            anomaly_qos::DeviceId(3),
            0.1
        ));
    }

    #[test]
    fn maximality_within_universe() {
        let t = table();
        let universe = t.device_set();
        // {0,1,2} cannot be extended by 3 or 4.
        assert!(is_maximal_motion(
            &t,
            &DeviceSet::from([0, 1, 2]),
            &universe,
            0.1
        ));
        // {0,1} extends by 2.
        assert!(!is_maximal_motion(
            &t,
            &DeviceSet::from([0, 1]),
            &universe,
            0.1
        ));
        // An inconsistent set is never maximal.
        assert!(!is_maximal_motion(
            &t,
            &DeviceSet::from([0, 3]),
            &universe,
            0.1
        ));
    }

    #[test]
    fn empty_set_is_consistent() {
        let t = table();
        assert!(is_consistent_motion(&t, &DeviceSet::new(), 0.1));
    }
}
