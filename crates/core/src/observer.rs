//! The omniscient observer: exhaustive enumeration of anomaly partitions.
//!
//! Relations (2) and (3) of the paper define `I_k` and `M_k` by
//! quantification over *all* anomaly partitions, and Definition 8 defines
//! `U_k` as the devices whose block is sparse in one partition and dense in
//! another. This module enumerates every anomaly partition directly — the
//! approach Section V dismisses as impractical (the count grows with the
//! Bell numbers) — to serve as ground truth for testing the local
//! conditions of Theorems 5–7, and as the reference "omniscient observer"
//! in the evaluation harness.

use crate::maximal::{maximal_motions, MotionOps};
use crate::motion::extends_consistently;
use crate::params::Params;
use crate::partition::AnomalyPartition;
use crate::set::DeviceSet;
use crate::table::TrajectoryTable;
use crate::AnomalyClass;
use anomaly_qos::DeviceId;

/// Result of the exhaustive classification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObserverClasses {
    /// `I_k`: sparse in every anomaly partition.
    pub isolated: DeviceSet,
    /// `M_k`: dense in every anomaly partition.
    pub massive: DeviceSet,
    /// `U_k`: sparse in some partition, dense in another (Definition 8).
    pub unresolved: DeviceSet,
    /// Number of anomaly partitions enumerated.
    pub partitions: usize,
}

impl ObserverClasses {
    /// The class of one device, or `None` if it was not part of `A_k`.
    pub fn class_of(&self, j: DeviceId) -> Option<AnomalyClass> {
        if self.isolated.contains(j) {
            Some(AnomalyClass::Isolated)
        } else if self.massive.contains(j) {
            Some(AnomalyClass::Massive)
        } else if self.unresolved.contains(j) {
            Some(AnomalyClass::Unresolved)
        } else {
            None
        }
    }
}

/// Enumerates **all** anomaly partitions of the table's devices.
///
/// Recursively assigns devices (in id order) either to an existing block —
/// when consistency is preserved — or to a fresh block, then keeps the leaf
/// assignments satisfying conditions C1 and C2 of Definition 6.
///
/// # Panics
///
/// Panics if more than `cap` partitions would be produced, protecting tests
/// against combinatorial blow-ups (the count grows like the Bell numbers;
/// keep populations below ~12).
pub fn enumerate_anomaly_partitions(
    table: &TrajectoryTable,
    params: &Params,
    cap: usize,
) -> Vec<AnomalyPartition> {
    let ids: Vec<DeviceId> = table.ids().to_vec();
    let mut blocks: Vec<DeviceSet> = Vec::new();
    let mut out: Vec<AnomalyPartition> = Vec::new();
    assign(table, params, &ids, 0, &mut blocks, &mut out, cap);
    out
}

fn assign(
    table: &TrajectoryTable,
    params: &Params,
    ids: &[DeviceId],
    next: usize,
    blocks: &mut Vec<DeviceSet>,
    out: &mut Vec<AnomalyPartition>,
    cap: usize,
) {
    if next == ids.len() {
        let candidate = AnomalyPartition::from_blocks(blocks.clone());
        if candidate.validate(table, params).is_ok() {
            assert!(
                out.len() < cap,
                "partition enumeration exceeded cap of {cap}"
            );
            out.push(candidate);
        }
        return;
    }
    let id = ids[next];
    let window = params.window();
    // Join an existing block (only if the block stays a consistent motion).
    for i in 0..blocks.len() {
        if extends_consistently(table, &blocks[i], id, window) {
            blocks[i].insert(id);
            assign(table, params, ids, next + 1, blocks, out, cap);
            blocks[i].remove(id);
        }
    }
    // Open a new block.
    blocks.push(DeviceSet::singleton(id));
    assign(table, params, ids, next + 1, blocks, out, cap);
    blocks.pop();
}

/// Ground-truth `I_k`, `M_k`, `U_k` via Relations (2)–(3) and Definition 8.
///
/// # Panics
///
/// Panics if the table is non-empty but admits no anomaly partition — that
/// would contradict Lemma 2 — or if enumeration exceeds `cap`.
pub fn brute_force_classes(
    table: &TrajectoryTable,
    params: &Params,
    cap: usize,
) -> ObserverClasses {
    let partitions = enumerate_anomaly_partitions(table, params, cap);
    assert!(
        table.is_empty() || !partitions.is_empty(),
        "Lemma 2: at least one anomaly partition must exist"
    );
    let mut isolated = DeviceSet::new();
    let mut massive = DeviceSet::new();
    let mut unresolved = DeviceSet::new();
    for &j in table.ids() {
        let mut ever_sparse = false;
        let mut ever_dense = false;
        for p in &partitions {
            let Some(block) = p.block_of(j) else {
                unreachable!("partitions cover all devices")
            };
            if params.is_dense(block.len()) {
                ever_dense = true;
            } else {
                ever_sparse = true;
            }
        }
        match (ever_sparse, ever_dense) {
            (true, false) => {
                isolated.insert(j);
            }
            (false, true) => {
                massive.insert(j);
            }
            (true, true) => {
                unresolved.insert(j);
            }
            (false, false) => unreachable!("device must appear in every partition"),
        }
    }
    ObserverClasses {
        isolated,
        massive,
        unresolved,
        partitions: partitions.len(),
    }
}

/// Size of the dense-motion structure of the whole configuration: the
/// maximal motions among **all** devices of the table, as an omniscient
/// observer would compute them. Exposed for the harness and benches.
pub fn global_maximal_motions(table: &TrajectoryTable, params: &Params) -> Vec<DeviceSet> {
    let mut ops = MotionOps::default();
    maximal_motions(table, &table.device_set(), params.window(), &mut ops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characterize::Analyzer;
    use proptest::prelude::*;

    fn params(tau: usize) -> Params {
        Params::new(0.05, tau).unwrap()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// **The paper's headline claim** (Section I): the local algorithms'
        /// decisions are as accurate as an omniscient observer's. We verify
        /// that `characterize_full` (Theorems 5/7, Corollary 8) matches the
        /// exhaustive enumeration of all anomaly partitions on random
        /// clustered configurations.
        #[test]
        fn local_decisions_match_omniscient_observer(
            seeds in proptest::collection::vec(
                (0.0..0.15f64, 0.0..0.15f64, 0u8..3), 1..9),
            tau in 1usize..4,
        ) {
            let rows: Vec<(u32, f64, f64)> = seeds
                .into_iter()
                .enumerate()
                .map(|(i, (b, a, c))| {
                    let base = 0.35 * c as f64;
                    (i as u32, base + b, base + a)
                })
                .collect();
            let t = TrajectoryTable::from_pairs_1d(&rows);
            let pr = params(tau);
            let truth = brute_force_classes(&t, &pr, 2_000_000);
            let analyzer = Analyzer::new(&t, pr);
            for &j in t.ids() {
                let local = analyzer.characterize_full(j).class();
                prop_assert_eq!(
                    Some(local),
                    truth.class_of(j),
                    "device {} disagrees with the observer", j
                );
            }
        }

        /// Theorem 6 never contradicts the observer: when the quick path
        /// says Massive or Isolated, the observer agrees (it may only be
        /// conservative on Unresolved).
        #[test]
        fn quick_path_is_sound(
            seeds in proptest::collection::vec(
                (0.0..0.12f64, 0.0..0.12f64, 0u8..2), 1..9),
        ) {
            let rows: Vec<(u32, f64, f64)> = seeds
                .into_iter()
                .enumerate()
                .map(|(i, (b, a, c))| {
                    let base = 0.4 * c as f64;
                    (i as u32, base + b, base + a)
                })
                .collect();
            let t = TrajectoryTable::from_pairs_1d(&rows);
            let pr = params(2);
            let truth = brute_force_classes(&t, &pr, 2_000_000);
            let analyzer = Analyzer::new(&t, pr);
            for &j in t.ids() {
                match analyzer.characterize(j).class() {
                    AnomalyClass::Isolated => prop_assert!(truth.isolated.contains(j)),
                    AnomalyClass::Massive => prop_assert!(truth.massive.contains(j)),
                    AnomalyClass::Unresolved => {} // may actually be massive
                }
            }
        }
    }

    #[test]
    fn empty_table_has_no_partitions_and_no_classes() {
        let t = TrajectoryTable::from_pairs_1d(&[]);
        let c = brute_force_classes(&t, &params(3), 100);
        assert_eq!(c.partitions, 1, "the empty partition is valid");
        assert!(c.isolated.is_empty());
        assert!(c.massive.is_empty());
        assert!(c.unresolved.is_empty());
    }

    #[test]
    fn single_device_is_isolated() {
        let t = TrajectoryTable::from_pairs_1d(&[(0, 0.5, 0.7)]);
        let c = brute_force_classes(&t, &params(3), 100);
        assert_eq!(c.isolated, DeviceSet::from([0]));
        assert_eq!(c.class_of(DeviceId(0)), Some(AnomalyClass::Isolated));
        assert_eq!(c.class_of(DeviceId(9)), None);
    }

    #[test]
    fn figure_3_exact_partitions() {
        // Maximal motions {1,2,3,4} and {2,3,4,5}, τ = 3: exactly the two
        // partitions of the ACP impossibility proof.
        let t = TrajectoryTable::from_pairs_1d(&[
            (1, 0.10, 0.10),
            (2, 0.14, 0.14),
            (3, 0.16, 0.16),
            (4, 0.18, 0.18),
            (5, 0.22, 0.22),
        ]);
        let ps = enumerate_anomaly_partitions(&t, &params(3), 1000);
        assert_eq!(ps.len(), 2);
        let c = brute_force_classes(&t, &params(3), 1000);
        assert_eq!(c.massive, DeviceSet::from([2, 3, 4]));
        assert_eq!(c.unresolved, DeviceSet::from([1, 5]));
        assert!(c.isolated.is_empty());
    }

    #[test]
    fn co_moving_group_is_unambiguously_massive() {
        let t = TrajectoryTable::from_pairs_1d(&[
            (0, 0.10, 0.50),
            (1, 0.11, 0.51),
            (2, 0.12, 0.52),
            (3, 0.13, 0.53),
            (4, 0.14, 0.54),
        ]);
        let c = brute_force_classes(&t, &params(3), 10_000);
        assert_eq!(c.massive.len(), 5);
        assert!(c.unresolved.is_empty());
    }

    #[test]
    fn global_maximal_motions_cover_all_devices() {
        let t = TrajectoryTable::from_pairs_1d(&[(0, 0.1, 0.1), (1, 0.12, 0.12), (2, 0.8, 0.8)]);
        let motions = global_maximal_motions(&t, &params(3));
        let covered: DeviceSet = motions.iter().flat_map(|m| m.iter()).collect();
        assert_eq!(covered, t.device_set());
    }

    #[test]
    #[should_panic(expected = "exceeded cap")]
    fn cap_guards_against_blowup() {
        // 8 co-located devices with τ = 8: no block can be dense, so every
        // set partition is a valid anomaly partition — Bell(8) = 4140 of
        // them, far beyond the cap of 3.
        let rows: Vec<(u32, f64, f64)> = (0..8).map(|i| (i, 0.5, 0.5)).collect();
        let t = TrajectoryTable::from_pairs_1d(&rows);
        enumerate_anomaly_partitions(&t, &params(8), 3);
    }
}
