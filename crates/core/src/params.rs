use std::error::Error;
use std::fmt;

/// The two tuning knobs of the characterization (Section III).
///
/// * `r` — the consistency-impact radius, `r ∈ [0, 1/4)` (Definition 1);
///   devices of one anomaly stay within uniform distance `2r` of each other.
/// * `tau` — the density threshold (Definition 4); a motion with more than
///   `τ` devices is *dense* (massive anomaly), otherwise *sparse* (isolated).
///
/// Section VII-A dimensions these so that the probability of more than `τ`
/// independent errors hitting a `2r`-vicinity is negligible; the
/// `anomaly-analytic` crate implements that computation.
///
/// # Example
///
/// ```
/// use anomaly_core::Params;
/// let params = Params::new(0.03, 3)?; // the paper's operating point
/// assert_eq!(params.radius(), 0.03);
/// assert_eq!(params.tau(), 3);
/// assert_eq!(params.window(), 0.06); // 2r
/// # Ok::<(), anomaly_core::ParamsError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Params {
    r: f64,
    tau: usize,
}

/// Validation errors for [`Params`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ParamsError {
    /// `r` was outside `[0, 1/4)` or not finite.
    InvalidRadius {
        /// The offending radius.
        radius: f64,
    },
    /// `τ` was zero (Definition 4 requires `τ ∈ [[1, n−1]]`).
    ZeroTau,
}

impl fmt::Display for ParamsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamsError::InvalidRadius { radius } => {
                write!(f, "radius {radius} is outside the valid range [0, 1/4)")
            }
            ParamsError::ZeroTau => write!(f, "density threshold tau must be at least 1"),
        }
    }
}

impl Error for ParamsError {}

impl Params {
    /// Validates and creates a parameter set.
    ///
    /// # Errors
    ///
    /// * [`ParamsError::InvalidRadius`] if `r ∉ [0, 1/4)`;
    /// * [`ParamsError::ZeroTau`] if `tau == 0`.
    pub fn new(r: f64, tau: usize) -> Result<Self, ParamsError> {
        if !r.is_finite() || !(0.0..0.25).contains(&r) {
            return Err(ParamsError::InvalidRadius { radius: r });
        }
        if tau == 0 {
            return Err(ParamsError::ZeroTau);
        }
        Ok(Params { r, tau })
    }

    /// The consistency-impact radius `r`.
    pub fn radius(&self) -> f64 {
        self.r
    }

    /// The density threshold `τ`.
    pub fn tau(&self) -> usize {
        self.tau
    }

    /// The sliding-window width `2r` used by all consistency checks.
    pub fn window(&self) -> f64 {
        2.0 * self.r
    }

    /// True if a motion of `size` devices is τ-dense (`size > τ`).
    pub fn is_dense(&self, size: usize) -> bool {
        size > self.tau
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_paper_operating_point() {
        let p = Params::new(0.03, 3).unwrap();
        assert_eq!(p.radius(), 0.03);
        assert_eq!(p.tau(), 3);
        assert!((p.window() - 0.06).abs() < 1e-15);
    }

    #[test]
    fn rejects_radius_out_of_range() {
        assert!(matches!(
            Params::new(0.25, 3),
            Err(ParamsError::InvalidRadius { .. })
        ));
        assert!(Params::new(-0.1, 3).is_err());
        assert!(Params::new(f64::NAN, 3).is_err());
    }

    #[test]
    fn rejects_zero_tau() {
        assert_eq!(Params::new(0.03, 0), Err(ParamsError::ZeroTau));
    }

    #[test]
    fn density_threshold_is_strict() {
        let p = Params::new(0.03, 3).unwrap();
        assert!(!p.is_dense(3));
        assert!(p.is_dense(4));
    }

    #[test]
    fn errors_display() {
        assert!(Params::new(0.9, 1).unwrap_err().to_string().contains("0.9"));
        assert!(Params::new(0.1, 0).unwrap_err().to_string().contains("tau"));
    }
}
