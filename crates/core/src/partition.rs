//! Anomaly partitions (Definition 6, Algorithm 1, Lemma 2).
//!
//! An *anomaly partition* `P_k` splits the abnormal devices `A_k` into
//! disjoint r-consistent motions `B_1, …, B_ℓ` under two conditions:
//!
//! * **C1** — no subset of the union of sparse blocks (`|B_i| ≤ τ`) forms a
//!   τ-dense motion. Since consistency is closed under subsets, this is
//!   equivalent to: every maximal motion within that union has size `≤ τ`.
//! * **C2** — no subset of the sparse union merges with a dense block into a
//!   motion; by the same closure it suffices that **no single sparse-union
//!   device** extends a dense block consistently.
//!
//! [`build_partition`] implements Algorithm 1: repeatedly pick a remaining
//! device and peel off a maximal motion (within the remaining devices)
//! containing it. Lemma 2 proves every such run yields a valid anomaly
//! partition, and that partitions are not unique in general — both facts are
//! tested here and in `figures.rs`.

use crate::maximal::{maximal_motions, maximal_motions_involving, MotionOps};
use crate::motion::{extends_consistently, is_consistent_motion};
use crate::params::Params;
use crate::set::DeviceSet;
use crate::table::TrajectoryTable;
use anomaly_qos::DeviceId;
use std::error::Error;
use std::fmt;

/// A partition of the abnormal devices into anomalies (Definition 6).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnomalyPartition {
    blocks: Vec<DeviceSet>,
}

/// Violations of Definition 6 reported by [`AnomalyPartition::validate`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PartitionError {
    /// A block is empty.
    EmptyBlock,
    /// Two blocks share a device.
    Overlap {
        /// A device present in two blocks.
        device: DeviceId,
    },
    /// The blocks do not cover the expected device set.
    Coverage,
    /// A block is not an r-consistent motion.
    InconsistentBlock {
        /// Index of the offending block.
        index: usize,
    },
    /// Condition C1 fails: a dense motion hides inside the sparse union.
    C1Violated {
        /// A dense motion found within the union of sparse blocks.
        witness: DeviceSet,
    },
    /// Condition C2 fails: a sparse-union device extends a dense block.
    C2Violated {
        /// The offending device.
        device: DeviceId,
        /// Index of the dense block it extends.
        block: usize,
    },
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::EmptyBlock => write!(f, "partition contains an empty block"),
            PartitionError::Overlap { device } => {
                write!(f, "device {device} belongs to two blocks")
            }
            PartitionError::Coverage => write!(f, "blocks do not cover the abnormal device set"),
            PartitionError::InconsistentBlock { index } => {
                write!(f, "block {index} is not an r-consistent motion")
            }
            PartitionError::C1Violated { witness } => {
                write!(f, "condition C1 violated by dense motion {witness}")
            }
            PartitionError::C2Violated { device, block } => {
                write!(
                    f,
                    "condition C2 violated: {device} extends dense block {block}"
                )
            }
        }
    }
}

impl Error for PartitionError {}

impl AnomalyPartition {
    /// Wraps blocks without validation (use [`AnomalyPartition::validate`]).
    pub fn from_blocks(blocks: Vec<DeviceSet>) -> Self {
        AnomalyPartition { blocks }
    }

    /// The blocks (anomalies) of the partition.
    pub fn blocks(&self) -> &[DeviceSet] {
        &self.blocks
    }

    /// Number of anomalies.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True when the partition has no blocks.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// The block `P_k(j)` containing `j`, if any.
    pub fn block_of(&self, j: DeviceId) -> Option<&DeviceSet> {
        self.blocks.iter().find(|b| b.contains(j))
    }

    /// True when `j`'s block is a massive anomaly (`|P_k(j)| > τ`).
    ///
    /// Returns `None` if `j` is not covered.
    pub fn is_massive(&self, j: DeviceId, params: &Params) -> Option<bool> {
        self.block_of(j).map(|b| params.is_dense(b.len()))
    }

    /// Devices in massive anomalies (`M_{P_k}` of Definition 7).
    pub fn massive_devices(&self, params: &Params) -> DeviceSet {
        self.blocks
            .iter()
            .filter(|b| params.is_dense(b.len()))
            .flat_map(|b| b.iter())
            .collect()
    }

    /// Devices in isolated anomalies (`I_{P_k}` of Definition 7).
    pub fn isolated_devices(&self, params: &Params) -> DeviceSet {
        self.blocks
            .iter()
            .filter(|b| !params.is_dense(b.len()))
            .flat_map(|b| b.iter())
            .collect()
    }

    /// Checks Definition 6 against `table` (whose device set must equal the
    /// partition's coverage).
    ///
    /// # Errors
    ///
    /// The first violation found, as a [`PartitionError`].
    pub fn validate(&self, table: &TrajectoryTable, params: &Params) -> Result<(), PartitionError> {
        let window = params.window();
        // Structure: non-empty, disjoint, covering.
        let mut seen = DeviceSet::new();
        for block in &self.blocks {
            if block.is_empty() {
                return Err(PartitionError::EmptyBlock);
            }
            for id in block {
                if !seen.insert(id) {
                    return Err(PartitionError::Overlap { device: id });
                }
            }
        }
        if seen != table.device_set() {
            return Err(PartitionError::Coverage);
        }
        // Every block is an r-consistent motion.
        for (index, block) in self.blocks.iter().enumerate() {
            if !is_consistent_motion(table, block, window) {
                return Err(PartitionError::InconsistentBlock { index });
            }
        }
        // C1: no dense motion within the union of sparse blocks.
        let sparse_union: DeviceSet = self
            .blocks
            .iter()
            .filter(|b| !params.is_dense(b.len()))
            .flat_map(|b| b.iter())
            .collect();
        if !sparse_union.is_empty() {
            let mut ops = MotionOps::default();
            for motion in maximal_motions(table, &sparse_union, window, &mut ops) {
                if params.is_dense(motion.len()) {
                    return Err(PartitionError::C1Violated { witness: motion });
                }
            }
        }
        // C2: no sparse-union device extends a dense block.
        for (index, block) in self.blocks.iter().enumerate() {
            if params.is_dense(block.len()) {
                for device in &sparse_union {
                    if extends_consistently(table, block, device, window) {
                        return Err(PartitionError::C2Violated {
                            device,
                            block: index,
                        });
                    }
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for AnomalyPartition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, b) in self.blocks.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{b}")?;
        }
        write!(f, "}}")
    }
}

/// Builds an anomaly partition with Algorithm 1: while devices remain, take
/// the smallest remaining id and peel off a maximal r-consistent motion
/// (within the remaining devices) containing it.
///
/// `pick` selects which of the available maximal motions to peel when
/// several exist — Lemma 2's non-uniqueness lever. The returned partition is
/// always valid (Lemma 2); `debug_assert`s enforce this in test builds.
pub fn build_partition(
    table: &TrajectoryTable,
    params: &Params,
    mut pick: impl FnMut(&[DeviceSet]) -> usize,
) -> AnomalyPartition {
    let window = params.window();
    let mut remaining = table.device_set();
    let mut blocks = Vec::new();
    let mut ops = MotionOps::default();
    while let Some(j) = remaining.as_slice().first().copied() {
        let restricted = table.restricted_to(&remaining);
        let motions = maximal_motions_involving(&restricted, j, window, &mut ops);
        debug_assert!(
            !motions.is_empty(),
            "a device always has its singleton motion"
        );
        let choice = pick(&motions).min(motions.len() - 1);
        let block = motions[choice].clone();
        remaining = remaining.difference(&block);
        blocks.push(block);
    }
    let partition = AnomalyPartition { blocks };
    debug_assert!(
        partition.validate(table, params).is_ok(),
        "Algorithm 1 must produce a valid anomaly partition (Lemma 2)"
    );
    partition
}

/// [`build_partition`] picking the largest available motion (deterministic).
pub fn build_partition_greedy(table: &TrajectoryTable, params: &Params) -> AnomalyPartition {
    build_partition(table, params, |motions| {
        motions
            .iter()
            .enumerate()
            .max_by_key(|(_, m)| m.len())
            .map(|(i, _)| i)
            .unwrap_or(0)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> Params {
        Params::new(0.05, 3).unwrap()
    }

    /// Five co-moving devices plus one loner.
    fn simple_table() -> TrajectoryTable {
        TrajectoryTable::from_pairs_1d(&[
            (0, 0.10, 0.50),
            (1, 0.11, 0.51),
            (2, 0.12, 0.52),
            (3, 0.13, 0.53),
            (4, 0.14, 0.54),
            (5, 0.80, 0.20),
        ])
    }

    #[test]
    fn greedy_partition_peels_the_group_then_the_loner() {
        let t = simple_table();
        let p = build_partition_greedy(&t, &params());
        assert_eq!(p.len(), 2);
        assert_eq!(
            p.block_of(DeviceId(0)),
            Some(&DeviceSet::from([0, 1, 2, 3, 4]))
        );
        assert_eq!(p.block_of(DeviceId(5)), Some(&DeviceSet::from([5])));
        assert!(p.validate(&t, &params()).is_ok());
    }

    #[test]
    fn massive_and_isolated_devices() {
        let t = simple_table();
        let p = build_partition_greedy(&t, &params());
        let pr = params();
        assert_eq!(p.is_massive(DeviceId(0), &pr), Some(true));
        assert_eq!(p.is_massive(DeviceId(5), &pr), Some(false));
        assert_eq!(p.is_massive(DeviceId(9), &pr), None);
        assert_eq!(p.massive_devices(&pr), DeviceSet::from([0, 1, 2, 3, 4]));
        assert_eq!(p.isolated_devices(&pr), DeviceSet::from([5]));
    }

    #[test]
    fn validate_rejects_overlap() {
        let t = simple_table();
        let p = AnomalyPartition::from_blocks(vec![
            DeviceSet::from([0, 1, 2, 3, 4]),
            DeviceSet::from([4, 5]),
        ]);
        assert!(matches!(
            p.validate(&t, &params()),
            Err(PartitionError::Overlap { .. })
        ));
    }

    #[test]
    fn validate_rejects_bad_coverage() {
        let t = simple_table();
        let p = AnomalyPartition::from_blocks(vec![DeviceSet::from([0, 1, 2, 3, 4])]);
        assert_eq!(p.validate(&t, &params()), Err(PartitionError::Coverage));
    }

    #[test]
    fn validate_rejects_inconsistent_block() {
        let t = simple_table();
        let p = AnomalyPartition::from_blocks(vec![
            DeviceSet::from([0, 1, 2, 3, 5]),
            DeviceSet::from([4]),
        ]);
        assert!(matches!(
            p.validate(&t, &params()),
            Err(PartitionError::InconsistentBlock { .. })
        ));
    }

    #[test]
    fn validate_rejects_c1_violation() {
        // Splitting the dense group into sparse fragments hides a dense
        // motion inside the sparse union.
        let t = simple_table();
        let p = AnomalyPartition::from_blocks(vec![
            DeviceSet::from([0, 1]),
            DeviceSet::from([2, 3, 4]),
            DeviceSet::from([5]),
        ]);
        assert!(matches!(
            p.validate(&t, &params()),
            Err(PartitionError::C1Violated { .. })
        ));
    }

    #[test]
    fn validate_rejects_c2_violation() {
        // A dense block of 4 whose fifth co-mover is left sparse.
        let t = simple_table();
        let pr = Params::new(0.05, 3).unwrap();
        let p = AnomalyPartition::from_blocks(vec![
            DeviceSet::from([0, 1, 2, 3]),
            DeviceSet::from([4]),
            DeviceSet::from([5]),
        ]);
        assert!(matches!(
            p.validate(&t, &pr),
            Err(PartitionError::C2Violated { .. })
        ));
    }

    #[test]
    fn validate_rejects_empty_block() {
        let t = simple_table();
        let p = AnomalyPartition::from_blocks(vec![DeviceSet::new(), t.device_set()]);
        assert_eq!(p.validate(&t, &params()), Err(PartitionError::EmptyBlock));
    }

    #[test]
    fn pick_argument_changes_the_partition() {
        // Device 1 belongs to two maximal motions, {1,2,3,4} and {1,3,4,5};
        // picking different ones at device 1's turn yields different
        // partitions (Lemma 2 non-uniqueness).
        let t = TrajectoryTable::from_pairs_1d(&[
            (1, 0.14, 0.14),
            (2, 0.10, 0.10),
            (3, 0.16, 0.16),
            (4, 0.18, 0.18),
            (5, 0.22, 0.22),
        ]);
        let pr = Params::new(0.05, 3).unwrap();
        let first = build_partition(&t, &pr, |_| 0);
        let last = build_partition(&t, &pr, |m| m.len() - 1);
        assert!(first.validate(&t, &pr).is_ok());
        assert!(last.validate(&t, &pr).is_ok());
        // Device 2 travels with device 1 in one partition, alone in the other.
        let b_first = first.block_of(DeviceId(2)).unwrap().clone();
        let b_last = last.block_of(DeviceId(2)).unwrap().clone();
        assert_ne!(b_first, b_last, "Lemma 2: partitions are not unique");
    }

    #[test]
    fn empty_table_gives_empty_partition() {
        let t = TrajectoryTable::from_pairs_1d(&[]);
        let p = build_partition_greedy(&t, &params());
        assert!(p.is_empty());
        assert!(p.validate(&t, &params()).is_ok());
    }

    #[test]
    fn display_formats_blocks() {
        let p = AnomalyPartition::from_blocks(vec![DeviceSet::from([1, 2]), DeviceSet::from([3])]);
        assert_eq!(p.to_string(), "{{d1, d2}, {d3}}");
    }
}
