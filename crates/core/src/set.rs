use anomaly_qos::DeviceId;
use std::fmt;

/// A set of devices, stored sorted and deduplicated.
///
/// The characterization algorithms manipulate many small sets (motions,
/// partition blocks, families) and constantly ask for membership, subset and
/// disjointness; a sorted `Vec` beats tree/hash sets at these sizes and
/// gives cheap structural equality and hashing for dedup.
///
/// # Example
///
/// ```
/// use anomaly_core::DeviceSet;
/// use anomaly_qos::DeviceId;
///
/// let a: DeviceSet = [3u32, 1, 2, 3].into_iter().map(DeviceId).collect();
/// let b: DeviceSet = [1u32, 2, 3, 4].into_iter().map(DeviceId).collect();
/// assert_eq!(a.len(), 3);          // deduplicated
/// assert!(a.is_subset(&b));
/// assert!(a.contains(DeviceId(2)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct DeviceSet {
    ids: Vec<DeviceId>,
}

impl DeviceSet {
    /// The empty set.
    pub fn new() -> Self {
        DeviceSet::default()
    }

    /// Singleton set.
    pub fn singleton(id: DeviceId) -> Self {
        DeviceSet { ids: vec![id] }
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Membership test (binary search).
    pub fn contains(&self, id: DeviceId) -> bool {
        self.ids.binary_search(&id).is_ok()
    }

    /// Inserts a device, keeping order; returns `true` if newly added.
    pub fn insert(&mut self, id: DeviceId) -> bool {
        match self.ids.binary_search(&id) {
            Ok(_) => false,
            Err(pos) => {
                self.ids.insert(pos, id);
                true
            }
        }
    }

    /// Removes a device; returns `true` if it was present.
    pub fn remove(&mut self, id: DeviceId) -> bool {
        match self.ids.binary_search(&id) {
            Ok(pos) => {
                self.ids.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// True if every element of `self` is in `other`.
    pub fn is_subset(&self, other: &DeviceSet) -> bool {
        if self.ids.len() > other.ids.len() {
            return false;
        }
        // Linear merge walk: both sides are sorted.
        let mut it = other.ids.iter();
        'outer: for id in &self.ids {
            for o in it.by_ref() {
                match o.cmp(id) {
                    std::cmp::Ordering::Less => continue,
                    std::cmp::Ordering::Equal => continue 'outer,
                    std::cmp::Ordering::Greater => return false,
                }
            }
            return false;
        }
        true
    }

    /// True if the two sets share no element.
    pub fn is_disjoint(&self, other: &DeviceSet) -> bool {
        let (mut i, mut j) = (0, 0);
        while i < self.ids.len() && j < other.ids.len() {
            match self.ids[i].cmp(&other.ids[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return false,
            }
        }
        true
    }

    /// Set union.
    pub fn union(&self, other: &DeviceSet) -> DeviceSet {
        let mut ids = Vec::with_capacity(self.ids.len() + other.ids.len());
        let (mut i, mut j) = (0, 0);
        while i < self.ids.len() && j < other.ids.len() {
            match self.ids[i].cmp(&other.ids[j]) {
                std::cmp::Ordering::Less => {
                    ids.push(self.ids[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    ids.push(other.ids[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    ids.push(self.ids[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        ids.extend_from_slice(&self.ids[i..]);
        ids.extend_from_slice(&other.ids[j..]);
        DeviceSet { ids }
    }

    /// Set difference `self \ other`.
    pub fn difference(&self, other: &DeviceSet) -> DeviceSet {
        DeviceSet {
            ids: self
                .ids
                .iter()
                .filter(|id| !other.contains(**id))
                .copied()
                .collect(),
        }
    }

    /// Set intersection.
    pub fn intersection(&self, other: &DeviceSet) -> DeviceSet {
        DeviceSet {
            ids: self
                .ids
                .iter()
                .filter(|id| other.contains(**id))
                .copied()
                .collect(),
        }
    }

    /// Number of elements shared with `other`.
    pub fn intersection_len(&self, other: &DeviceSet) -> usize {
        let (mut i, mut j, mut n) = (0, 0, 0);
        while i < self.ids.len() && j < other.ids.len() {
            match self.ids[i].cmp(&other.ids[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    n += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        n
    }

    /// With `id` added (returns a new set).
    pub fn with(&self, id: DeviceId) -> DeviceSet {
        let mut s = self.clone();
        s.insert(id);
        s
    }

    /// Iterates over members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = DeviceId> + '_ {
        self.ids.iter().copied()
    }

    /// Members as a sorted slice.
    pub fn as_slice(&self) -> &[DeviceId] {
        &self.ids
    }
}

impl FromIterator<DeviceId> for DeviceSet {
    fn from_iter<T: IntoIterator<Item = DeviceId>>(iter: T) -> Self {
        let mut ids: Vec<DeviceId> = iter.into_iter().collect();
        ids.sort_unstable();
        ids.dedup();
        DeviceSet { ids }
    }
}

impl Extend<DeviceId> for DeviceSet {
    fn extend<T: IntoIterator<Item = DeviceId>>(&mut self, iter: T) {
        for id in iter {
            self.insert(id);
        }
    }
}

impl<'a> IntoIterator for &'a DeviceSet {
    type Item = DeviceId;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, DeviceId>>;

    fn into_iter(self) -> Self::IntoIter {
        self.ids.iter().copied()
    }
}

impl fmt::Display for DeviceSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, id) in self.ids.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{id}")?;
        }
        write!(f, "}}")
    }
}

/// Convenience constructor from raw `u32` ids (tests and examples).
impl From<&[u32]> for DeviceSet {
    fn from(ids: &[u32]) -> Self {
        ids.iter().copied().map(DeviceId).collect()
    }
}

impl<const N: usize> From<[u32; N]> for DeviceSet {
    fn from(ids: [u32; N]) -> Self {
        ids.into_iter().map(DeviceId).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn set(ids: &[u32]) -> DeviceSet {
        DeviceSet::from(ids)
    }

    #[test]
    fn construction_sorts_and_dedups() {
        let s = set(&[5, 1, 3, 1, 5]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.iter().map(|d| d.0).collect::<Vec<_>>(), vec![1, 3, 5]);
    }

    #[test]
    fn insert_and_remove() {
        let mut s = set(&[1, 3]);
        assert!(s.insert(DeviceId(2)));
        assert!(!s.insert(DeviceId(2)));
        assert_eq!(s.as_slice(), &[DeviceId(1), DeviceId(2), DeviceId(3)]);
        assert!(s.remove(DeviceId(1)));
        assert!(!s.remove(DeviceId(1)));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn subset_and_disjoint() {
        assert!(set(&[1, 3]).is_subset(&set(&[1, 2, 3])));
        assert!(!set(&[1, 4]).is_subset(&set(&[1, 2, 3])));
        assert!(set(&[]).is_subset(&set(&[1])));
        assert!(set(&[1, 2]).is_disjoint(&set(&[3, 4])));
        assert!(!set(&[1, 2]).is_disjoint(&set(&[2, 3])));
        assert!(set(&[]).is_disjoint(&set(&[])));
    }

    #[test]
    fn algebra() {
        let a = set(&[1, 2, 3]);
        let b = set(&[3, 4]);
        assert_eq!(a.union(&b), set(&[1, 2, 3, 4]));
        assert_eq!(a.difference(&b), set(&[1, 2]));
        assert_eq!(a.intersection(&b), set(&[3]));
        assert_eq!(a.intersection_len(&b), 1);
        assert_eq!(a.with(DeviceId(9)), set(&[1, 2, 3, 9]));
    }

    #[test]
    fn display_is_braced_list() {
        assert_eq!(set(&[2, 1]).to_string(), "{d1, d2}");
        assert_eq!(set(&[]).to_string(), "{}");
    }

    proptest! {
        /// Subset agrees with the naive definition.
        #[test]
        fn subset_matches_naive(a in proptest::collection::vec(0u32..20, 0..10),
                                b in proptest::collection::vec(0u32..20, 0..10)) {
            let sa = DeviceSet::from(a.as_slice());
            let sb = DeviceSet::from(b.as_slice());
            let naive = sa.iter().all(|x| sb.contains(x));
            prop_assert_eq!(sa.is_subset(&sb), naive);
        }

        /// Disjoint agrees with empty intersection.
        #[test]
        fn disjoint_matches_intersection(a in proptest::collection::vec(0u32..20, 0..10),
                                          b in proptest::collection::vec(0u32..20, 0..10)) {
            let sa = DeviceSet::from(a.as_slice());
            let sb = DeviceSet::from(b.as_slice());
            prop_assert_eq!(sa.is_disjoint(&sb), sa.intersection(&sb).is_empty());
            prop_assert_eq!(sa.intersection_len(&sb), sa.intersection(&sb).len());
        }

        /// Union and difference partition correctly.
        #[test]
        fn union_difference_roundtrip(a in proptest::collection::vec(0u32..20, 0..10),
                                      b in proptest::collection::vec(0u32..20, 0..10)) {
            let sa = DeviceSet::from(a.as_slice());
            let sb = DeviceSet::from(b.as_slice());
            let u = sa.union(&sb);
            prop_assert!(sa.is_subset(&u) && sb.is_subset(&u));
            let d = u.difference(&sb);
            prop_assert!(d.is_disjoint(&sb));
            prop_assert!(d.is_subset(&sa));
        }
    }
}
