//! Grid-locality-aware sharding of the abnormal set `A_k`.
//!
//! Per-device characterization is embarrassingly parallel — Definition 1
//! makes every verdict a function of the device's `2r`-neighbourhood only —
//! so a parallel engine just needs to split the flagged devices into
//! balanced shards. [`ShardPlan`] does the split *spatially*: devices are
//! ordered by the grid cell of their before-position (side `2r`, the same
//! tessellation the vicinity index uses) and cut into contiguous runs, so
//! the devices of one shard share neighbourhoods and their workers touch
//! overlapping, cache-warm slices of the table instead of striding across
//! the whole population.

use crate::table::TrajectoryTable;
use anomaly_qos::DeviceId;

/// A partition of a table's devices into balanced, spatially-coherent
/// shards, ready to be handed to one worker each.
///
/// Shard sizes differ by at most one device, every device appears in
/// exactly one shard, and the concatenation of all shards enumerates the
/// table's devices — so any per-device map over the plan, merged in any
/// order and re-sorted by id, is identical to a sequential pass.
///
/// # Example
///
/// ```
/// use anomaly_core::{ShardPlan, TrajectoryTable};
///
/// let table = TrajectoryTable::from_pairs_1d(&[
///     (0, 0.10, 0.50), (1, 0.11, 0.51), (2, 0.80, 0.20), (3, 0.81, 0.21),
/// ]);
/// let plan = ShardPlan::build(&table, 0.06, 2);
/// assert_eq!(plan.shard_count(), 2);
/// assert_eq!(plan.device_count(), 4);
/// // Co-located devices land in the same shard.
/// assert_eq!(plan.shards()[0].len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct ShardPlan {
    shards: Vec<Vec<DeviceId>>,
}

impl ShardPlan {
    /// Splits the devices of `table` into at most `max_shards` balanced
    /// shards, ordered by grid cell of side `window` (= `2r`; clamped away
    /// from zero so `r = 0` degrades to id order, not a panic).
    ///
    /// `max_shards == 0` is treated as 1; fewer devices than shards yields
    /// one singleton shard per device.
    pub fn build(table: &TrajectoryTable, window: f64, max_shards: usize) -> Self {
        let ids = table.ids();
        let shard_count = max_shards.max(1).min(ids.len()).max(1);
        let dim = table.dim();
        let side = window.max(1e-6);
        // Order by quantized before-position, lexicographically by axis,
        // with the id as the deterministic tie-break inside a cell.
        let mut ordered: Vec<DeviceId> = ids.to_vec();
        ordered.sort_by(|&a, &b| {
            let ca = &table.concatenated(a)[..dim];
            let cb = &table.concatenated(b)[..dim];
            ca.iter()
                .zip(cb)
                .map(|(x, y)| {
                    let qa = (x / side) as i64;
                    let qb = (y / side) as i64;
                    qa.cmp(&qb)
                })
                .find(|o| o.is_ne())
                .unwrap_or_else(|| a.cmp(&b))
        });
        // Contiguous balanced cut: the first `remainder` shards take one
        // extra device.
        let base = ordered.len() / shard_count;
        let remainder = ordered.len() % shard_count;
        let mut shards = Vec::with_capacity(shard_count);
        let mut start = 0usize;
        for s in 0..shard_count {
            let len = base + usize::from(s < remainder);
            shards.push(ordered[start..start + len].to_vec());
            start += len;
        }
        ShardPlan { shards }
    }

    /// The shards, each a list of device ids for one worker.
    pub fn shards(&self) -> &[Vec<DeviceId>] {
        &self.shards
    }

    /// Number of shards (1 when the table is empty).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total devices across all shards.
    pub fn device_count(&self) -> usize {
        self.shards.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(n: u32) -> TrajectoryTable {
        let rows: Vec<(u32, f64, f64)> = (0..n)
            .map(|i| {
                let x = (i as f64 * 0.37) % 1.0;
                (i, x, (x + 0.1) % 1.0)
            })
            .collect();
        TrajectoryTable::from_pairs_1d(&rows)
    }

    #[test]
    fn covers_every_device_exactly_once() {
        for shards in [1, 2, 3, 7, 50] {
            let t = table(23);
            let plan = ShardPlan::build(&t, 0.06, shards);
            let mut seen: Vec<DeviceId> = plan.shards().iter().flatten().copied().collect();
            seen.sort_unstable();
            assert_eq!(seen, t.ids(), "shards={shards}");
        }
    }

    #[test]
    fn shard_sizes_differ_by_at_most_one() {
        let t = table(23);
        let plan = ShardPlan::build(&t, 0.06, 5);
        let sizes: Vec<usize> = plan.shards().iter().map(Vec::len).collect();
        let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        assert!(max - min <= 1, "{sizes:?}");
        assert_eq!(plan.device_count(), 23);
    }

    #[test]
    fn more_shards_than_devices_yields_singletons() {
        let t = table(3);
        let plan = ShardPlan::build(&t, 0.06, 16);
        assert_eq!(plan.shard_count(), 3);
        assert!(plan.shards().iter().all(|s| s.len() == 1));
    }

    #[test]
    fn zero_shards_and_empty_tables_are_tolerated() {
        let t = table(4);
        assert_eq!(ShardPlan::build(&t, 0.06, 0).shard_count(), 1);
        let empty = TrajectoryTable::from_pairs_1d(&[]);
        let plan = ShardPlan::build(&empty, 0.06, 4);
        assert_eq!(plan.shard_count(), 1);
        assert_eq!(plan.device_count(), 0);
    }

    #[test]
    fn colocated_devices_stay_together() {
        // Two tight clusters far apart: a 2-shard plan must not split them.
        let t = TrajectoryTable::from_pairs_1d(&[
            (0, 0.10, 0.50),
            (1, 0.11, 0.51),
            (2, 0.80, 0.20),
            (3, 0.81, 0.21),
        ]);
        let plan = ShardPlan::build(&t, 0.06, 2);
        let mut first: Vec<u32> = plan.shards()[0].iter().map(|d| d.0).collect();
        first.sort_unstable();
        assert!(first == vec![0, 1] || first == vec![2, 3], "{first:?}");
    }

    #[test]
    fn zero_window_degrades_to_id_order() {
        let t = table(6);
        let plan = ShardPlan::build(&t, 0.0, 2);
        assert_eq!(plan.device_count(), 6);
        assert_eq!(plan.shard_count(), 2);
    }
}
