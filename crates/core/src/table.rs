use crate::set::DeviceSet;
use anomaly_qos::{DeviceId, StatePair};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Errors raised by the fallible [`TrajectoryTable`] constructors.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TableError {
    /// A concatenated row did not hold `2 * dim` coordinates.
    WrongRowWidth {
        /// The offending device.
        id: DeviceId,
        /// `2 * dim`.
        expected: usize,
        /// The row's actual length.
        actual: usize,
    },
    /// The same device id appeared twice.
    DuplicateDevice {
        /// The repeated id.
        id: DeviceId,
    },
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::WrongRowWidth {
                id,
                expected,
                actual,
            } => write!(
                f,
                "device {id}: row holds {actual} coordinates, expected 2*dim = {expected}"
            ),
            TableError::DuplicateDevice { id } => write!(f, "duplicate device id {id}"),
        }
    }
}

impl Error for TableError {}

/// Trajectories of the abnormal devices, in the concatenated `2d`-space.
///
/// Definition 3 makes a set `B` an *r-consistent motion* when it is
/// r-consistent at both `k−1` and `k`; under the uniform norm this is
/// equivalent to `B` having L∞ diameter at most `2r` in the `2d`-dimensional
/// space obtained by concatenating each device's position at `k−1` with its
/// position at `k`. The table stores exactly these concatenated coordinates
/// for the devices under analysis (typically `A_k`, the flagged devices).
///
/// # Example
///
/// ```
/// use anomaly_core::TrajectoryTable;
/// use anomaly_qos::{DeviceId, QosSpace, Snapshot, StatePair};
///
/// let space = QosSpace::new(2)?;
/// let before = Snapshot::from_rows(&space, vec![vec![0.1, 0.2], vec![0.15, 0.2]])?;
/// let after  = Snapshot::from_rows(&space, vec![vec![0.6, 0.7], vec![0.65, 0.7]])?;
/// let pair = StatePair::new(before, after)?;
/// let table = TrajectoryTable::from_state_pair(&pair, &[DeviceId(0), DeviceId(1)]);
/// assert_eq!(table.len(), 2);
/// assert!((table.motion_distance(DeviceId(0), DeviceId(1)) - 0.05).abs() < 1e-12);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TrajectoryTable {
    /// Space dimension `d` (the concatenated space has `2d` axes).
    dim: usize,
    ids: Vec<DeviceId>,
    coords: BTreeMap<DeviceId, Vec<f64>>,
}

impl TrajectoryTable {
    /// Builds a table for `devices` from a pair of snapshots.
    ///
    /// # Panics
    ///
    /// Panics if any device id is out of bounds for the pair.
    pub fn from_state_pair(pair: &StatePair, devices: &[DeviceId]) -> Self {
        let dim = pair.dim();
        let mut ids = devices.to_vec();
        ids.sort_unstable();
        ids.dedup();
        let coords = ids
            .iter()
            .map(|&id| (id, pair.trajectory(id).concatenated()))
            .collect();
        TrajectoryTable { dim, ids, coords }
    }

    /// Builds a table directly from concatenated coordinates
    /// (`2*dim` values per device: position at `k−1`, then at `k`).
    ///
    /// # Panics
    ///
    /// Panics if any row length differs from `2*dim` or ids repeat; use
    /// [`TrajectoryTable::try_from_concatenated`] for the fallible form.
    pub fn from_concatenated(dim: usize, rows: Vec<(DeviceId, Vec<f64>)>) -> Self {
        match TrajectoryTable::try_from_concatenated(dim, rows) {
            Ok(table) => table,
            Err(TableError::WrongRowWidth { .. }) => {
                panic!("row must hold 2*dim coordinates")
            }
            Err(e @ TableError::DuplicateDevice { .. }) => panic!("{e}"),
        }
    }

    /// Fallible form of [`TrajectoryTable::from_concatenated`] — the
    /// construction path for incremental monitors, which assemble
    /// trajectories row by row from successive snapshots instead of pairing
    /// whole `Snapshot`s, and must surface malformed input as typed errors
    /// rather than panics.
    ///
    /// # Errors
    ///
    /// [`TableError::WrongRowWidth`] when a row does not hold exactly
    /// `2 * dim` coordinates; [`TableError::DuplicateDevice`] when an id
    /// repeats.
    pub fn try_from_concatenated(
        dim: usize,
        rows: Vec<(DeviceId, Vec<f64>)>,
    ) -> Result<Self, TableError> {
        let mut ids = Vec::with_capacity(rows.len());
        let mut coords = BTreeMap::new();
        for (id, row) in rows {
            if row.len() != 2 * dim {
                return Err(TableError::WrongRowWidth {
                    id,
                    expected: 2 * dim,
                    actual: row.len(),
                });
            }
            if coords.insert(id, row).is_some() {
                return Err(TableError::DuplicateDevice { id });
            }
            ids.push(id);
        }
        ids.sort_unstable();
        Ok(TrajectoryTable { dim, ids, coords })
    }

    /// Convenience for 1-service systems: rows of `(id, before, after)`,
    /// matching the paper's figures (QoS at `k` as a function of QoS at
    /// `k−1`).
    pub fn from_pairs_1d(rows: &[(u32, f64, f64)]) -> Self {
        TrajectoryTable::from_concatenated(
            1,
            rows.iter()
                .map(|&(id, b, a)| (DeviceId(id), vec![b, a]))
                .collect(),
        )
    }

    /// Space dimension `d`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of devices in the table.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when the table is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Sorted device ids.
    pub fn ids(&self) -> &[DeviceId] {
        &self.ids
    }

    /// All devices as a [`DeviceSet`].
    pub fn device_set(&self) -> DeviceSet {
        self.ids.iter().copied().collect()
    }

    /// True if the table holds `id`.
    pub fn contains(&self, id: DeviceId) -> bool {
        self.coords.contains_key(&id)
    }

    /// Concatenated coordinates of a device.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not in the table.
    pub fn concatenated(&self, id: DeviceId) -> &[f64] {
        &self.coords[&id]
    }

    /// Motion distance between two devices: the L∞ distance of their
    /// concatenated coordinates (= max of the distances at the two times).
    ///
    /// # Panics
    ///
    /// Panics if either id is not in the table.
    pub fn motion_distance(&self, a: DeviceId, b: DeviceId) -> f64 {
        let ca = self.concatenated(a);
        let cb = self.concatenated(b);
        ca.iter()
            .zip(cb)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }

    /// Devices of the table (other than `j`) within motion distance `2r` of
    /// `j` — the candidate set `N(j)` of Algorithm 2, restricted to `A_k`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is not in the table.
    pub fn neighborhood(&self, j: DeviceId, window: f64) -> Vec<DeviceId> {
        assert!(self.contains(j), "device {j} not in table");
        self.ids
            .iter()
            .copied()
            .filter(|&o| o != j && self.motion_distance(j, o) <= window)
            .collect()
    }

    /// Restricts the table to `keep`, dropping all other devices.
    pub fn restricted_to(&self, keep: &DeviceSet) -> TrajectoryTable {
        let ids: Vec<DeviceId> = self
            .ids
            .iter()
            .copied()
            .filter(|id| keep.contains(*id))
            .collect();
        let coords = ids
            .iter()
            .map(|id| (*id, self.coords[id].clone()))
            .collect();
        TrajectoryTable {
            dim: self.dim,
            ids,
            coords,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_pairs_1d_builds_concatenated_rows() {
        let t = TrajectoryTable::from_pairs_1d(&[(0, 0.1, 0.5), (1, 0.2, 0.6)]);
        assert_eq!(t.dim(), 1);
        assert_eq!(t.len(), 2);
        assert_eq!(t.concatenated(DeviceId(0)), &[0.1, 0.5]);
        assert!((t.motion_distance(DeviceId(0), DeviceId(1)) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn neighborhood_excludes_self_and_far_devices() {
        let t = TrajectoryTable::from_pairs_1d(&[
            (0, 0.10, 0.50),
            (1, 0.12, 0.52),
            (2, 0.30, 0.52), // close after, far before
            (3, 0.12, 0.90), // close before, far after
        ]);
        assert_eq!(t.neighborhood(DeviceId(0), 0.06), vec![DeviceId(1)]);
    }

    #[test]
    fn restriction_keeps_requested_devices() {
        let t = TrajectoryTable::from_pairs_1d(&[(0, 0.1, 0.1), (1, 0.2, 0.2), (2, 0.3, 0.3)]);
        let r = t.restricted_to(&DeviceSet::from([0, 2]));
        assert_eq!(r.len(), 2);
        assert!(r.contains(DeviceId(0)));
        assert!(!r.contains(DeviceId(1)));
    }

    #[test]
    fn try_constructor_reports_typed_errors() {
        assert_eq!(
            TrajectoryTable::try_from_concatenated(2, vec![(DeviceId(4), vec![0.1, 0.2])]),
            Err(TableError::WrongRowWidth {
                id: DeviceId(4),
                expected: 4,
                actual: 2,
            })
        );
        assert_eq!(
            TrajectoryTable::try_from_concatenated(
                1,
                vec![(DeviceId(0), vec![0.1, 0.2]), (DeviceId(0), vec![0.3, 0.4])],
            ),
            Err(TableError::DuplicateDevice { id: DeviceId(0) })
        );
        let ok =
            TrajectoryTable::try_from_concatenated(1, vec![(DeviceId(0), vec![0.1, 0.2])]).unwrap();
        assert_eq!(ok.len(), 1);
        assert!(!TableError::DuplicateDevice { id: DeviceId(0) }
            .to_string()
            .is_empty());
    }

    #[test]
    #[should_panic(expected = "duplicate device id")]
    fn rejects_duplicate_ids() {
        TrajectoryTable::from_concatenated(
            1,
            vec![(DeviceId(0), vec![0.1, 0.2]), (DeviceId(0), vec![0.3, 0.4])],
        );
    }

    #[test]
    #[should_panic(expected = "2*dim")]
    fn rejects_wrong_row_width() {
        TrajectoryTable::from_concatenated(2, vec![(DeviceId(0), vec![0.1, 0.2])]);
    }

    #[test]
    fn ids_are_sorted_and_deduped() {
        use anomaly_qos::{QosSpace, Snapshot};
        let space = QosSpace::new(1).unwrap();
        let before = Snapshot::from_rows(&space, vec![vec![0.1], vec![0.2], vec![0.3]]).unwrap();
        let after = Snapshot::from_rows(&space, vec![vec![0.1], vec![0.2], vec![0.3]]).unwrap();
        let pair = StatePair::new(before, after).unwrap();
        let t = TrajectoryTable::from_state_pair(&pair, &[DeviceId(2), DeviceId(0), DeviceId(2)]);
        assert_eq!(t.ids(), &[DeviceId(0), DeviceId(2)]);
    }
}
