use crate::{Detector, StateError, StateReader, StateWriter, Verdict};

/// Two-sided CUSUM change detector (Page, *Continuous Inspection Schemes*,
/// Biometrika 1954 — ref \[10\] of the paper).
///
/// Accumulates deviations of the observations from a reference mean in both
/// directions, with a drift allowance `kappa` that absorbs in-control noise;
/// an alarm fires when either cumulative sum exceeds the decision threshold
/// `h`. The reference mean is learned online from in-control data.
///
/// CUSUM detects *small persistent* shifts much sooner than σ-band
/// detectors, at the price of needing its two tuning constants.
#[derive(Debug, Clone, PartialEq)]
pub struct CusumDetector {
    kappa: f64,
    h: f64,
    mean: f64,
    pos: f64,
    neg: f64,
    seen: u64,
}

const WARMUP: u64 = 5;
/// Learning rate for the in-control reference mean. Kept small so a slow
/// drift cannot out-run the cumulative sums before they reach the threshold.
const MEAN_ALPHA: f64 = 0.05;

impl CusumDetector {
    /// Creates a detector with drift allowance `kappa ≥ 0` (typically half
    /// the smallest shift worth detecting) and decision threshold `h > 0`.
    ///
    /// # Panics
    ///
    /// Panics if `kappa < 0` or `h <= 0`.
    pub fn new(kappa: f64, h: f64) -> Self {
        assert!(kappa >= 0.0, "kappa must be non-negative");
        assert!(h > 0.0, "decision threshold h must be positive");
        CusumDetector {
            kappa,
            h,
            mean: 0.0,
            pos: 0.0,
            neg: 0.0,
            seen: 0,
        }
    }

    /// Current positive and negative cumulative sums.
    pub fn sums(&self) -> (f64, f64) {
        (self.pos, self.neg)
    }
}

impl Detector for CusumDetector {
    fn observe(&mut self, value: f64) -> Verdict {
        if self.seen == 0 {
            self.mean = value;
            self.seen = 1;
            return Verdict::new(false, 0.0, None);
        }
        let deviation = value - self.mean;
        self.pos = (self.pos + deviation - self.kappa).max(0.0);
        self.neg = (self.neg - deviation - self.kappa).max(0.0);
        let score = self.pos.max(self.neg) / self.h;
        let anomalous = self.seen > WARMUP && (self.pos > self.h || self.neg > self.h);
        if anomalous {
            // Restart the sums after an alarm (standard CUSUM practice) and
            // re-anchor the reference to the new regime.
            self.pos = 0.0;
            self.neg = 0.0;
            self.mean = value;
        } else {
            self.mean += MEAN_ALPHA * deviation;
        }
        self.seen += 1;
        Verdict::new(anomalous, score, Some(self.mean))
    }

    fn reset(&mut self) {
        self.mean = 0.0;
        self.pos = 0.0;
        self.neg = 0.0;
        self.seen = 0;
    }

    fn name(&self) -> &'static str {
        "cusum"
    }

    fn save(&self, out: &mut StateWriter) {
        out.f64(self.kappa);
        out.f64(self.h);
        out.f64(self.mean);
        out.f64(self.pos);
        out.f64(self.neg);
        out.u64(self.seen);
    }

    fn load(&mut self, state: &mut StateReader<'_>) -> Result<(), StateError> {
        state.expect_f64("cusum.kappa", self.kappa)?;
        state.expect_f64("cusum.h", self.h)?;
        self.mean = state.f64("cusum.mean")?;
        self.pos = state.f64("cusum.pos")?;
        self.neg = state.f64("cusum.neg")?;
        self.seen = state.u64("cusum.seen")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{level_shift, wiggle};

    #[test]
    fn stable_signal_never_alarms() {
        let mut det = CusumDetector::new(0.02, 0.3);
        for &v in &wiggle(300, 0.8, 0.005) {
            assert!(!det.observe(v).is_anomalous());
        }
    }

    #[test]
    fn downward_shift_is_caught() {
        let mut det = CusumDetector::new(0.02, 0.3);
        let signal = level_shift(60, 30, 0.9, 0.5);
        let mut first_alarm = None;
        for (i, &v) in signal.iter().enumerate() {
            if det.observe(v).is_anomalous() && first_alarm.is_none() {
                first_alarm = Some(i);
            }
        }
        let at = first_alarm.expect("shift must be detected");
        assert!((30..=35).contains(&at), "alarm at {at}");
    }

    #[test]
    fn upward_shift_is_caught_too() {
        let mut det = CusumDetector::new(0.02, 0.3);
        let signal = level_shift(60, 30, 0.4, 0.95);
        assert!(signal.iter().any(|&v| det.observe(v).is_anomalous()));
    }

    #[test]
    fn small_persistent_drift_eventually_alarms() {
        // Shift of 0.08 per observation budgeted against kappa = 0.02: the
        // positive sum grows by ~0.06 per step and crosses h = 0.3 in ~5 steps.
        let mut det = CusumDetector::new(0.02, 0.3);
        for _ in 0..20 {
            det.observe(0.5);
        }
        let mut alarmed = false;
        for _ in 0..10 {
            if det.observe(0.58).is_anomalous() {
                alarmed = true;
                break;
            }
        }
        assert!(alarmed, "persistent small shift must eventually alarm");
    }

    #[test]
    fn sums_restart_after_alarm() {
        let mut det = CusumDetector::new(0.02, 0.3);
        let signal = level_shift(40, 20, 0.9, 0.2);
        for &v in &signal {
            det.observe(v);
        }
        let (pos, neg) = det.sums();
        // After the alarm and re-anchoring, the sums stay small on the new level.
        assert!(pos < 0.3 && neg < 0.3);
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut det = CusumDetector::new(0.02, 0.3);
        det.observe(0.9);
        det.observe(0.1);
        det.reset();
        assert_eq!(det, CusumDetector::new(0.02, 0.3));
    }

    #[test]
    #[should_panic(expected = "kappa")]
    fn rejects_negative_kappa() {
        CusumDetector::new(-0.1, 0.3);
    }

    #[test]
    #[should_panic(expected = "decision threshold")]
    fn rejects_non_positive_h() {
        CusumDetector::new(0.1, 0.0);
    }
}
