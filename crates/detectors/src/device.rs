use crate::{Detector, StateError, StateReader, StateWriter, Verdict};

/// Object-safe, device-level error-detection function — the `a_k(j)` of the
/// paper over the whole QoS vector of one device.
///
/// Where [`Detector`](crate::Detector) judges a single scalar series (one
/// service), a `DeviceDetector` judges the full `d`-dimensional QoS sample a
/// device takes at each instant. The monitoring pipeline stores one
/// `Box<dyn DeviceDetector>` per device, so fleets can mix detector
/// families per device — EWMA gateways next to CUSUM set-top boxes.
///
/// Implementations provided here:
///
/// * every scalar [`Detector`] is a 1-service `DeviceDetector` (blanket
///   impl), so `Box::new(EwmaDetector::new(0.3, 4.0))` plugs straight in;
/// * [`VectorDetector`](crate::VectorDetector) composes `d` scalar
///   detectors with OR semantics, exactly as Section III-A prescribes.
///
/// # Contract
///
/// Callers must pass exactly [`DeviceDetector::services`] values per
/// observation; implementations may panic otherwise. The monitoring
/// pipeline validates widths before dispatching, so misuse surfaces there
/// as a typed error, never as a panic.
///
/// # Example
///
/// ```
/// use anomaly_detectors::{CusumDetector, DeviceDetector, EwmaDetector, VectorDetector};
///
/// let mut fleet: Vec<Box<dyn DeviceDetector>> = vec![
///     Box::new(EwmaDetector::new(0.3, 4.0)), // 1-service device
///     Box::new(VectorDetector::homogeneous(1, || CusumDetector::new(0.05, 0.5))),
/// ];
/// for device in &mut fleet {
///     assert_eq!(device.services(), 1);
///     let _ = device.observe_vector(&[0.9]);
/// }
/// ```
pub trait DeviceDetector {
    /// Number of services the device consumes (`d` for this device).
    fn services(&self) -> usize;

    /// Feeds the QoS vector of the current instant; anomalous when at least
    /// one consumed service shows an abnormal variation.
    fn observe_vector(&mut self, values: &[f64]) -> Verdict;

    /// Clears all learned state, as after a device reboot.
    fn reset(&mut self);

    /// Human-readable description (for reports and debugging).
    fn description(&self) -> String;

    /// Serializes the device's learned state — the checkpoint plug-point
    /// `Monitor::checkpoint` calls once per device. Stateless by default;
    /// see [`Detector::save`] for the parameter-first convention.
    fn save(&self, out: &mut StateWriter) {
        let _ = out;
    }

    /// Restores state written by [`DeviceDetector::save`], verifying the
    /// saved configuration against this instance's. Typed errors, never a
    /// panic.
    fn load(&mut self, state: &mut StateReader<'_>) -> Result<(), StateError> {
        let _ = state;
        Ok(())
    }
}

impl std::fmt::Debug for dyn DeviceDetector + '_ {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DeviceDetector({})", self.description())
    }
}

impl<D: Detector> DeviceDetector for D {
    fn services(&self) -> usize {
        1
    }

    fn observe_vector(&mut self, values: &[f64]) -> Verdict {
        assert_eq!(
            values.len(),
            1,
            "QoS vector must have one value per service"
        );
        self.observe(values[0])
    }

    fn reset(&mut self) {
        Detector::reset(self);
    }

    fn description(&self) -> String {
        self.name().to_string()
    }

    fn save(&self, out: &mut StateWriter) {
        Detector::save(self, out);
    }

    fn load(&mut self, state: &mut StateReader<'_>) -> Result<(), StateError> {
        Detector::load(self, state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EwmaDetector, ThresholdDetector, VectorDetector};

    #[test]
    fn scalar_detectors_are_one_service_devices() {
        let mut d: Box<dyn DeviceDetector> = Box::new(EwmaDetector::new(0.3, 4.0));
        assert_eq!(d.services(), 1);
        for _ in 0..50 {
            assert!(!d.observe_vector(&[0.9]).is_anomalous());
        }
        assert!(d.observe_vector(&[0.1]).is_anomalous());
        assert_eq!(d.description(), "ewma");
    }

    #[test]
    fn vector_detectors_report_their_width() {
        let d: Box<dyn DeviceDetector> = Box::new(VectorDetector::homogeneous(3, || {
            ThresholdDetector::with_delta(0.2)
        }));
        assert_eq!(d.services(), 3);
        assert!(d.description().contains("threshold"));
    }

    #[test]
    fn reset_clears_learned_state_through_the_trait() {
        let mut d: Box<dyn DeviceDetector> = Box::new(ThresholdDetector::with_delta(0.1));
        d.observe_vector(&[0.9]);
        d.reset();
        // No previous value remembered: a large level is not a jump.
        assert!(!d.observe_vector(&[0.1]).is_anomalous());
    }

    #[test]
    #[should_panic(expected = "one value per service")]
    fn scalar_adapter_rejects_wrong_width() {
        let mut d: Box<dyn DeviceDetector> = Box::new(EwmaDetector::new(0.3, 4.0));
        d.observe_vector(&[0.9, 0.8]);
    }
}
