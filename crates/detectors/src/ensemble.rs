use crate::{Detector, StateError, StateReader, StateWriter, Verdict};

/// Majority-vote ensemble of heterogeneous detectors over one series.
///
/// Different error-detection functions have different blind spots: σ-band
/// detectors miss slow drifts, CUSUM-style detectors need tuned references,
/// forecasters absorb trends. An ensemble votes: the observation is flagged
/// when at least `quorum` member detectors flag it, trading detection delay
/// for a much lower false-alarm rate — the practical choice for `a_k(j)` on
/// noisy home-gateway links where every false flag costs an operator
/// interaction.
///
/// # Example
///
/// ```
/// use anomaly_detectors::{Detector, EnsembleDetector, EwmaDetector,
///     CusumDetector, PageHinkleyDetector};
///
/// let mut det = EnsembleDetector::new(
///     vec![
///         Box::new(EwmaDetector::new(0.3, 4.0)) as Box<dyn Detector>,
///         Box::new(CusumDetector::new(0.02, 0.3)),
///         Box::new(PageHinkleyDetector::new(0.01, 0.3)),
///     ],
///     2,
/// );
/// for _ in 0..60 {
///     assert!(!det.observe(0.9).is_anomalous());
/// }
/// // A collapse convinces at least two members.
/// let mut fired = false;
/// for _ in 0..5 {
///     fired |= det.observe(0.2).is_anomalous();
/// }
/// assert!(fired);
/// ```
pub struct EnsembleDetector {
    members: Vec<Box<dyn Detector>>,
    quorum: usize,
}

impl std::fmt::Debug for EnsembleDetector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EnsembleDetector")
            .field("quorum", &self.quorum)
            .field(
                "members",
                &self.members.iter().map(|m| m.name()).collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl EnsembleDetector {
    /// Creates an ensemble requiring `quorum` member votes to flag.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty or `quorum` is zero or exceeds the
    /// member count.
    pub fn new(members: Vec<Box<dyn Detector>>, quorum: usize) -> Self {
        assert!(!members.is_empty(), "an ensemble needs at least one member");
        assert!(
            quorum >= 1 && quorum <= members.len(),
            "quorum must lie in [1, member count]"
        );
        EnsembleDetector { members, quorum }
    }

    /// Number of member detectors.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when the ensemble has no members (never, post-construction).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The configured quorum.
    pub fn quorum(&self) -> usize {
        self.quorum
    }
}

impl Detector for EnsembleDetector {
    fn observe(&mut self, value: f64) -> Verdict {
        let mut votes = 0usize;
        let mut score_sum = 0.0;
        for member in &mut self.members {
            let v = member.observe(value);
            if v.is_anomalous() {
                votes += 1;
            }
            score_sum += v.score();
        }
        Verdict::new(
            votes >= self.quorum,
            score_sum / self.members.len() as f64,
            None,
        )
    }

    fn reset(&mut self) {
        for member in &mut self.members {
            member.reset();
        }
    }

    fn name(&self) -> &'static str {
        "ensemble"
    }

    fn save(&self, out: &mut StateWriter) {
        out.usize(self.members.len());
        out.usize(self.quorum);
        for member in &self.members {
            member.save(out);
        }
    }

    fn load(&mut self, state: &mut StateReader<'_>) -> Result<(), StateError> {
        state.expect_usize("ensemble.members", self.members.len())?;
        state.expect_usize("ensemble.quorum", self.quorum)?;
        for member in &mut self.members {
            member.load(state)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{level_shift, wiggle};
    use crate::{CusumDetector, EwmaDetector, PageHinkleyDetector, ThresholdDetector};

    fn standard_ensemble(quorum: usize) -> EnsembleDetector {
        EnsembleDetector::new(
            vec![
                Box::new(EwmaDetector::new(0.3, 4.0)) as Box<dyn Detector>,
                Box::new(CusumDetector::new(0.02, 0.3)),
                Box::new(PageHinkleyDetector::new(0.01, 0.3)),
            ],
            quorum,
        )
    }

    #[test]
    fn quiet_signal_stays_quiet() {
        let mut det = standard_ensemble(2);
        for &v in &wiggle(300, 0.85, 0.004) {
            assert!(!det.observe(v).is_anomalous());
        }
    }

    #[test]
    fn level_shift_reaches_quorum() {
        let mut det = standard_ensemble(2);
        let signal = level_shift(80, 50, 0.9, 0.3);
        let mut fired_at = None;
        for (i, &v) in signal.iter().enumerate() {
            if det.observe(v).is_anomalous() && fired_at.is_none() {
                fired_at = Some(i);
            }
        }
        let at = fired_at.expect("the shift must reach quorum");
        assert!((50..55).contains(&at), "fired at {at}");
    }

    #[test]
    fn quorum_one_is_a_union_quorum_all_an_intersection() {
        // A jumpy-but-bounded signal that trips the threshold member only:
        // union fires, intersection does not.
        let make = |quorum| {
            EnsembleDetector::new(
                vec![
                    Box::new(ThresholdDetector::with_delta(0.01)) as Box<dyn Detector>,
                    Box::new(EwmaDetector::new(0.3, 50.0)),
                ],
                quorum,
            )
        };
        let signal = wiggle(100, 0.8, 0.02);
        let count = |mut det: EnsembleDetector| {
            signal
                .iter()
                .filter(|&&v| det.observe(v).is_anomalous())
                .count()
        };
        assert!(count(make(1)) > 10);
        assert_eq!(count(make(2)), 0);
    }

    #[test]
    fn reset_propagates_to_members() {
        let mut det = standard_ensemble(1);
        for _ in 0..30 {
            det.observe(0.9);
        }
        det.reset();
        // After reset, a very different level is a fresh baseline.
        assert!(!det.observe(0.2).is_anomalous());
    }

    #[test]
    fn accessors() {
        let det = standard_ensemble(2);
        assert_eq!(det.len(), 3);
        assert_eq!(det.quorum(), 2);
        assert!(!det.is_empty());
        assert_eq!(det.name(), "ensemble");
    }

    #[test]
    #[should_panic(expected = "quorum")]
    fn rejects_oversized_quorum() {
        standard_ensemble(4);
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn rejects_empty_ensemble() {
        EnsembleDetector::new(Vec::new(), 1);
    }
}
