use crate::{Detector, StateError, StateReader, StateWriter, Verdict};

/// Exponentially weighted moving average detector with a residual σ-band.
///
/// Tracks the level of the series with an EWMA and the scale of the
/// residuals with an EWMA of squared residuals; an observation is flagged
/// when its residual exceeds `k_sigma` estimated standard deviations. This
/// is the classical EWMA control chart adapted to streaming QoS.
///
/// A short warm-up period (5 samples) suppresses alarms while the estimates
/// are meaningless.
#[derive(Debug, Clone, PartialEq)]
pub struct EwmaDetector {
    alpha: f64,
    k_sigma: f64,
    level: f64,
    variance: f64,
    seen: u64,
}

/// Minimum residual scale, so a perfectly flat warm-up cannot make every
/// subsequent fluctuation infinitely significant.
const MIN_STDDEV: f64 = 1e-3;
const WARMUP: u64 = 5;

impl EwmaDetector {
    /// Creates a detector with smoothing factor `alpha ∈ (0, 1]` and gate
    /// width `k_sigma > 0` (in standard deviations).
    ///
    /// # Panics
    ///
    /// Panics if `alpha ∉ (0,1]` or `k_sigma <= 0`.
    pub fn new(alpha: f64, k_sigma: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must lie in (0, 1]");
        assert!(k_sigma > 0.0, "k_sigma must be positive");
        EwmaDetector {
            alpha,
            k_sigma,
            level: 0.0,
            variance: 0.0,
            seen: 0,
        }
    }

    /// Current level estimate (the forecast for the next observation).
    pub fn level(&self) -> f64 {
        self.level
    }
}

impl Detector for EwmaDetector {
    fn observe(&mut self, value: f64) -> Verdict {
        if self.seen == 0 {
            self.level = value;
            self.variance = 0.0;
            self.seen = 1;
            return Verdict::new(false, 0.0, None);
        }
        let forecast = self.level;
        let residual = value - forecast;
        let stddev = self.variance.sqrt().max(MIN_STDDEV);
        let score = residual.abs() / stddev;
        let anomalous = self.seen > WARMUP && score > self.k_sigma;
        // Update estimates only with (apparently) normal data, so a level
        // shift keeps being flagged until the caller resets or the shift is
        // absorbed deliberately. For QoS snapshots, one flag per interval is
        // exactly what feeds A_k; we still absorb slowly to avoid ringing.
        let absorb = if anomalous {
            self.alpha * 0.5
        } else {
            self.alpha
        };
        self.level += absorb * residual;
        self.variance = (1.0 - self.alpha) * (self.variance + self.alpha * residual * residual);
        self.seen += 1;
        Verdict::new(anomalous, score, Some(forecast))
    }

    fn reset(&mut self) {
        self.level = 0.0;
        self.variance = 0.0;
        self.seen = 0;
    }

    fn name(&self) -> &'static str {
        "ewma"
    }

    fn save(&self, out: &mut StateWriter) {
        out.f64(self.alpha);
        out.f64(self.k_sigma);
        out.f64(self.level);
        out.f64(self.variance);
        out.u64(self.seen);
    }

    fn load(&mut self, state: &mut StateReader<'_>) -> Result<(), StateError> {
        state.expect_f64("ewma.alpha", self.alpha)?;
        state.expect_f64("ewma.k_sigma", self.k_sigma)?;
        self.level = state.f64("ewma.level")?;
        self.variance = state.f64("ewma.variance")?;
        self.seen = state.u64("ewma.seen")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{level_shift, wiggle};

    #[test]
    fn quiet_signal_raises_no_alarm() {
        let mut det = EwmaDetector::new(0.3, 4.0);
        for &v in &wiggle(200, 0.9, 0.002) {
            assert!(!det.observe(v).is_anomalous());
        }
    }

    #[test]
    fn level_shift_is_detected() {
        let mut det = EwmaDetector::new(0.3, 4.0);
        let signal = level_shift(60, 40, 0.9, 0.2);
        let mut flagged = false;
        for (i, &v) in signal.iter().enumerate() {
            if det.observe(v).is_anomalous() {
                assert!(i >= 40, "false alarm at {i}");
                flagged = true;
            }
        }
        assert!(flagged, "the level shift must be flagged");
    }

    #[test]
    fn forecast_tracks_level() {
        let mut det = EwmaDetector::new(0.5, 4.0);
        for _ in 0..20 {
            det.observe(0.8);
        }
        assert!((det.level() - 0.8).abs() < 1e-6);
        let v = det.observe(0.8);
        assert!((v.forecast().unwrap() - 0.8).abs() < 1e-6);
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut det = EwmaDetector::new(0.3, 4.0);
        for _ in 0..10 {
            det.observe(0.9);
        }
        det.reset();
        assert_eq!(det, EwmaDetector::new(0.3, 4.0));
    }

    #[test]
    fn warmup_suppresses_early_alarms() {
        let mut det = EwmaDetector::new(0.3, 1.0);
        // Wild data during warm-up: no alarms for the first samples.
        for &v in &[0.1, 0.9, 0.1, 0.9, 0.1] {
            assert!(!det.observe(v).is_anomalous());
        }
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn rejects_zero_alpha() {
        EwmaDetector::new(0.0, 4.0);
    }

    #[test]
    #[should_panic(expected = "k_sigma")]
    fn rejects_non_positive_gate() {
        EwmaDetector::new(0.5, 0.0);
    }
}
