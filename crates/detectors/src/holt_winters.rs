use crate::{Detector, StateError, StateReader, StateWriter, Verdict};

/// Holt's double exponential smoothing with a forecast-error gate.
///
/// Maintains a level and a trend estimate (Holt \[6\], Winters \[12\] — the
/// forecasting methods the paper cites for `a_k(j)`); the one-step-ahead
/// forecast is `level + trend` and an observation is flagged when its
/// forecast error exceeds `k_sigma` estimated deviations of recent errors.
///
/// Handles drifting QoS (e.g. slow congestion build-up) without alarming,
/// unlike a pure EWMA, while still catching discontinuities.
#[derive(Debug, Clone, PartialEq)]
pub struct HoltWintersDetector {
    alpha: f64,
    beta: f64,
    k_sigma: f64,
    level: f64,
    trend: f64,
    err_var: f64,
    seen: u64,
}

const MIN_STDDEV: f64 = 1e-3;
const WARMUP: u64 = 8;
/// Smoothing factor for the forecast-error variance.
const GAMMA: f64 = 0.1;

impl HoltWintersDetector {
    /// Creates a detector with level smoothing `alpha ∈ (0,1]`, trend
    /// smoothing `beta ∈ (0,1]`, and gate width `k_sigma > 0`.
    ///
    /// # Panics
    ///
    /// Panics if a smoothing factor is outside `(0,1]` or `k_sigma <= 0`.
    pub fn new(alpha: f64, beta: f64, k_sigma: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must lie in (0, 1]");
        assert!(beta > 0.0 && beta <= 1.0, "beta must lie in (0, 1]");
        assert!(k_sigma > 0.0, "k_sigma must be positive");
        HoltWintersDetector {
            alpha,
            beta,
            k_sigma,
            level: 0.0,
            trend: 0.0,
            err_var: 0.0,
            seen: 0,
        }
    }

    /// One-step-ahead forecast given the current state.
    pub fn forecast_next(&self) -> f64 {
        self.level + self.trend
    }
}

impl Detector for HoltWintersDetector {
    fn observe(&mut self, value: f64) -> Verdict {
        match self.seen {
            0 => {
                self.level = value;
                self.trend = 0.0;
                self.seen = 1;
                return Verdict::new(false, 0.0, None);
            }
            1 => {
                self.trend = value - self.level;
                self.level = value;
                self.seen = 2;
                return Verdict::new(false, 0.0, None);
            }
            _ => {}
        }
        let forecast = self.forecast_next();
        let error = value - forecast;
        let stddev = self.err_var.sqrt().max(MIN_STDDEV);
        let score = error.abs() / stddev;
        let anomalous = self.seen > WARMUP && score > self.k_sigma;

        let prev_level = self.level;
        self.level = self.alpha * value + (1.0 - self.alpha) * forecast;
        self.trend = self.beta * (self.level - prev_level) + (1.0 - self.beta) * self.trend;
        self.err_var = (1.0 - GAMMA) * self.err_var + GAMMA * error * error;
        self.seen += 1;
        Verdict::new(anomalous, score, Some(forecast))
    }

    fn reset(&mut self) {
        self.level = 0.0;
        self.trend = 0.0;
        self.err_var = 0.0;
        self.seen = 0;
    }

    fn name(&self) -> &'static str {
        "holt-winters"
    }

    fn save(&self, out: &mut StateWriter) {
        out.f64(self.alpha);
        out.f64(self.beta);
        out.f64(self.k_sigma);
        out.f64(self.level);
        out.f64(self.trend);
        out.f64(self.err_var);
        out.u64(self.seen);
    }

    fn load(&mut self, state: &mut StateReader<'_>) -> Result<(), StateError> {
        state.expect_f64("holt-winters.alpha", self.alpha)?;
        state.expect_f64("holt-winters.beta", self.beta)?;
        state.expect_f64("holt-winters.k_sigma", self.k_sigma)?;
        self.level = state.f64("holt-winters.level")?;
        self.trend = state.f64("holt-winters.trend")?;
        self.err_var = state.f64("holt-winters.err_var")?;
        self.seen = state.u64("holt-winters.seen")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{level_shift, ramp, wiggle};

    #[test]
    fn tolerates_linear_trend() {
        let mut det = HoltWintersDetector::new(0.5, 0.3, 4.0);
        for &v in &ramp(100, 0.2, 0.8) {
            assert!(!det.observe(v).is_anomalous());
        }
    }

    #[test]
    fn detects_level_shift() {
        let mut det = HoltWintersDetector::new(0.5, 0.2, 4.0);
        let signal = level_shift(60, 45, 0.9, 0.3);
        let mut flagged = false;
        for (i, &v) in signal.iter().enumerate() {
            if det.observe(v).is_anomalous() {
                assert!(i >= 45, "false alarm at {i}");
                flagged = true;
            }
        }
        assert!(flagged);
    }

    #[test]
    fn quiet_noisy_signal_is_tolerated() {
        let mut det = HoltWintersDetector::new(0.4, 0.1, 6.0);
        let mut alarms = 0;
        for &v in &wiggle(300, 0.7, 0.01) {
            if det.observe(v).is_anomalous() {
                alarms += 1;
            }
        }
        // Periodic wiggle is predictable enough to stay mostly quiet.
        assert!(alarms <= 3, "too many alarms: {alarms}");
    }

    #[test]
    fn forecast_extrapolates_trend() {
        let mut det = HoltWintersDetector::new(0.8, 0.8, 4.0);
        for &v in &ramp(50, 0.0, 0.49) {
            det.observe(v);
        }
        // Slope is 0.01 per step; the forecast should continue it.
        let next = det.forecast_next();
        assert!((next - 0.50).abs() < 0.01, "forecast {next}");
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut det = HoltWintersDetector::new(0.5, 0.2, 4.0);
        for _ in 0..10 {
            det.observe(0.9);
        }
        det.reset();
        assert_eq!(det, HoltWintersDetector::new(0.5, 0.2, 4.0));
    }

    #[test]
    #[should_panic(expected = "beta")]
    fn rejects_bad_beta() {
        HoltWintersDetector::new(0.5, 1.5, 4.0);
    }
}
