use crate::{Detector, StateError, StateReader, StateWriter, Verdict};

/// Scalar constant-velocity Kalman filter with an innovation gate
/// (Kalman 1960 — ref \[7\]; the filter the related work \[15\] installs at both
/// monitored and management nodes).
///
/// State is `(level, slope)`; the filter predicts the next observation and
/// flags it when the normalized innovation `|y − ŷ| / √S` exceeds `k_sigma`
/// (`S` = innovation variance). Anomalous observations update the filter
/// with an inflated measurement noise so a one-off glitch does not drag the
/// state away.
#[derive(Debug, Clone, PartialEq)]
pub struct KalmanDetector {
    /// Process noise intensity (per step, on the slope).
    q: f64,
    /// Measurement noise variance.
    r: f64,
    k_sigma: f64,
    // State estimate.
    level: f64,
    slope: f64,
    // Covariance [[p00, p01], [p01, p11]].
    p00: f64,
    p01: f64,
    p11: f64,
    seen: u64,
}

const WARMUP: u64 = 5;

impl KalmanDetector {
    /// Creates a filter with process noise `q > 0`, measurement noise
    /// `r > 0`, and innovation gate `k_sigma > 0`.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is non-positive or not finite.
    pub fn new(q: f64, r: f64, k_sigma: f64) -> Self {
        assert!(q > 0.0 && q.is_finite(), "process noise q must be positive");
        assert!(
            r > 0.0 && r.is_finite(),
            "measurement noise r must be positive"
        );
        assert!(k_sigma > 0.0, "k_sigma must be positive");
        KalmanDetector {
            q,
            r,
            k_sigma,
            level: 0.0,
            slope: 0.0,
            p00: 1.0,
            p01: 0.0,
            p11: 1.0,
            seen: 0,
        }
    }

    /// Current filtered level estimate.
    pub fn level(&self) -> f64 {
        self.level
    }

    /// Current slope estimate.
    pub fn slope(&self) -> f64 {
        self.slope
    }
}

impl Detector for KalmanDetector {
    fn observe(&mut self, value: f64) -> Verdict {
        if self.seen == 0 {
            self.level = value;
            self.slope = 0.0;
            self.seen = 1;
            return Verdict::new(false, 0.0, None);
        }
        // Predict: x = F x with F = [[1,1],[0,1]]; P = F P Fᵀ + Q.
        let pred_level = self.level + self.slope;
        let pred_slope = self.slope;
        let p00 = self.p00 + 2.0 * self.p01 + self.p11 + self.q / 4.0;
        let p01 = self.p01 + self.p11 + self.q / 2.0;
        let p11 = self.p11 + self.q;

        // Innovation.
        let innovation = value - pred_level;
        let s = p00 + self.r;
        let score = innovation.abs() / s.sqrt();
        let anomalous = self.seen > WARMUP && score > self.k_sigma;

        // Update, with inflated measurement noise when gated.
        let r_eff = if anomalous { self.r * 100.0 } else { self.r };
        let s_eff = p00 + r_eff;
        let k0 = p00 / s_eff;
        let k1 = p01 / s_eff;
        self.level = pred_level + k0 * innovation;
        self.slope = pred_slope + k1 * innovation;
        self.p00 = (1.0 - k0) * p00;
        self.p01 = (1.0 - k0) * p01;
        self.p11 = p11 - k1 * p01;
        self.seen += 1;
        Verdict::new(anomalous, score, Some(pred_level))
    }

    fn reset(&mut self) {
        *self = KalmanDetector::new(self.q, self.r, self.k_sigma);
    }

    fn name(&self) -> &'static str {
        "kalman"
    }

    fn save(&self, out: &mut StateWriter) {
        out.f64(self.q);
        out.f64(self.r);
        out.f64(self.k_sigma);
        out.f64(self.level);
        out.f64(self.slope);
        out.f64(self.p00);
        out.f64(self.p01);
        out.f64(self.p11);
        out.u64(self.seen);
    }

    fn load(&mut self, state: &mut StateReader<'_>) -> Result<(), StateError> {
        state.expect_f64("kalman.q", self.q)?;
        state.expect_f64("kalman.r", self.r)?;
        state.expect_f64("kalman.k_sigma", self.k_sigma)?;
        self.level = state.f64("kalman.level")?;
        self.slope = state.f64("kalman.slope")?;
        self.p00 = state.f64("kalman.p00")?;
        self.p01 = state.f64("kalman.p01")?;
        self.p11 = state.f64("kalman.p11")?;
        self.seen = state.u64("kalman.seen")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{level_shift, ramp, wiggle};

    #[test]
    fn stable_signal_never_alarms() {
        let mut det = KalmanDetector::new(1e-4, 1e-3, 5.0);
        for &v in &wiggle(300, 0.8, 0.005) {
            assert!(!det.observe(v).is_anomalous());
        }
    }

    #[test]
    fn tracks_linear_trend_without_alarm() {
        let mut det = KalmanDetector::new(1e-4, 1e-3, 6.0);
        for &v in &ramp(150, 0.1, 0.9) {
            assert!(!det.observe(v).is_anomalous());
        }
        // Slope ~ 0.8/149 per step.
        assert!(
            (det.slope() - 0.8 / 149.0).abs() < 2e-3,
            "slope {}",
            det.slope()
        );
    }

    #[test]
    fn detects_level_shift() {
        let mut det = KalmanDetector::new(1e-4, 1e-3, 5.0);
        let signal = level_shift(60, 40, 0.9, 0.3);
        let mut flagged_at = None;
        for (i, &v) in signal.iter().enumerate() {
            if det.observe(v).is_anomalous() && flagged_at.is_none() {
                flagged_at = Some(i);
            }
        }
        assert_eq!(flagged_at, Some(40));
    }

    #[test]
    fn glitch_does_not_drag_the_state() {
        let mut det = KalmanDetector::new(1e-4, 1e-3, 5.0);
        for _ in 0..50 {
            det.observe(0.8);
        }
        det.observe(0.1); // one-off glitch
                          // The level estimate barely moves thanks to the inflated noise.
        assert!((det.level() - 0.8).abs() < 0.05, "level {}", det.level());
    }

    #[test]
    fn covariance_stays_positive() {
        let mut det = KalmanDetector::new(1e-4, 1e-3, 5.0);
        for &v in &wiggle(500, 0.5, 0.01) {
            det.observe(v);
            assert!(
                det.p00 > 0.0 && det.p11 > 0.0,
                "covariance went non-positive"
            );
        }
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut det = KalmanDetector::new(1e-4, 1e-3, 5.0);
        for _ in 0..10 {
            det.observe(0.4);
        }
        det.reset();
        assert_eq!(det, KalmanDetector::new(1e-4, 1e-3, 5.0));
    }

    #[test]
    #[should_panic(expected = "process noise")]
    fn rejects_bad_q() {
        KalmanDetector::new(0.0, 1e-3, 5.0);
    }
}
