//! Error-detection functions `a_k(j)` for QoS time series.
//!
//! The DSN 2014 paper assumes each device runs an error-detection function
//! that flags an *abnormal trajectory* whenever the observed QoS of at least
//! one consumed service deviates too much from its predicted value
//! (Definition 5). The paper deliberately leaves the implementation out of
//! scope but cites the standard candidates; this crate implements all of
//! them so the pipeline runs end to end:
//!
//! * [`ThresholdDetector`] — simple absolute/delta thresholds;
//! * [`EwmaDetector`] — exponentially weighted moving average with a
//!   residual σ-band;
//! * [`HoltWintersDetector`] — Holt's double exponential smoothing
//!   (trend-aware forecasting, refs \[6\]\[12\] of the paper);
//! * [`CusumDetector`] — Page's two-sided cumulative-sum change detector
//!   (ref \[10\]);
//! * [`PageHinkleyDetector`] — the streaming Page-Hinkley variant;
//! * [`KalmanDetector`] — a scalar constant-velocity Kalman filter with an
//!   innovation gate (ref \[7\]);
//! * [`VectorDetector`] — one detector per service; the device-level
//!   `a_k(j)` is the OR over services, exactly as in the paper.
//!
//! All detectors implement the [`Detector`] trait: feed one observation per
//! sampling instant, get a [`Verdict`] back.
//!
//! # Example
//!
//! ```
//! use anomaly_detectors::{Detector, EwmaDetector};
//!
//! let mut det = EwmaDetector::new(0.3, 4.0);
//! // Warm up on a stable signal.
//! for _ in 0..50 {
//!     assert!(!det.observe(0.9).is_anomalous());
//! }
//! // A large drop in QoS is flagged.
//! assert!(det.observe(0.2).is_anomalous());
//! ```

#![forbid(unsafe_code)]
#![deny(warnings)]
#![warn(missing_docs)]

mod cusum;
mod device;
mod ensemble;
mod ewma;
mod holt_winters;
mod kalman;
mod page_hinkley;
mod seasonal;
mod state;
mod threshold;
mod vector;

pub use cusum::CusumDetector;
pub use device::DeviceDetector;
pub use ensemble::EnsembleDetector;
pub use ewma::EwmaDetector;
pub use holt_winters::HoltWintersDetector;
pub use kalman::KalmanDetector;
pub use page_hinkley::PageHinkleyDetector;
pub use seasonal::SeasonalHoltWintersDetector;
pub use state::{StateError, StateReader, StateWriter};
pub use threshold::ThresholdDetector;
pub use vector::VectorDetector;

/// Outcome of feeding one observation to a [`Detector`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Verdict {
    anomalous: bool,
    score: f64,
    forecast: Option<f64>,
}

impl Verdict {
    /// Builds a verdict (used by detector implementations).
    pub fn new(anomalous: bool, score: f64, forecast: Option<f64>) -> Self {
        Verdict {
            anomalous,
            score,
            forecast,
        }
    }

    /// A "nothing to report" verdict with zero score.
    pub fn normal() -> Self {
        Verdict::new(false, 0.0, None)
    }

    /// True if this observation was flagged as abnormal.
    pub fn is_anomalous(&self) -> bool {
        self.anomalous
    }

    /// Detector-specific anomaly score (larger = more abnormal); comparable
    /// across observations of the *same* detector only.
    pub fn score(&self) -> f64 {
        self.score
    }

    /// The value the detector predicted for this instant, when the detector
    /// is forecasting-based.
    pub fn forecast(&self) -> Option<f64> {
        self.forecast
    }
}

/// An online error-detection function over a scalar QoS series.
///
/// Implementations are fed one measurement per discrete time step and decide
/// whether the *variation* of the series is too large to be normal — the
/// `a_k(j)` of the paper, for a single service.
pub trait Detector {
    /// Feeds the measurement at the current instant and returns the verdict.
    fn observe(&mut self, value: f64) -> Verdict;

    /// Clears all learned state, as after a device reboot.
    fn reset(&mut self);

    /// Human-readable detector name (for reports and benches).
    fn name(&self) -> &'static str;

    /// Serializes the detector — immutable parameters first, mutable
    /// state second — into `out` (see [`StateWriter`]). The default is
    /// for stateless detectors: nothing to save.
    ///
    /// A detector that learns **must** override `save`/[`Detector::load`]
    /// as a pair, or a checkpointed monitor silently restores it cold.
    fn save(&self, out: &mut StateWriter) {
        let _ = out;
    }

    /// Restores state written by [`Detector::save`], verifying the saved
    /// parameters against this instance's. Fails with a typed
    /// [`StateError`] — naming the parameter on a configuration mismatch
    /// — and never panics on malformed input.
    fn load(&mut self, state: &mut StateReader<'_>) -> Result<(), StateError> {
        let _ = state;
        Ok(())
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    //! Shared signal generators for detector tests.

    /// A flat signal with a level shift at `change_at`.
    pub fn level_shift(len: usize, change_at: usize, before: f64, after: f64) -> Vec<f64> {
        (0..len)
            .map(|i| if i < change_at { before } else { after })
            .collect()
    }

    /// A linear ramp from `start` to `end`.
    pub fn ramp(len: usize, start: f64, end: f64) -> Vec<f64> {
        (0..len)
            .map(|i| start + (end - start) * i as f64 / (len.max(2) - 1) as f64)
            .collect()
    }

    /// Deterministic pseudo-noise in `[-amp, amp]` (no RNG dependency).
    pub fn wiggle(len: usize, base: f64, amp: f64) -> Vec<f64> {
        (0..len)
            .map(|i| {
                let phase = i as f64 * 2.399963; // golden-angle increments
                base + amp * phase.sin()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_accessors() {
        let v = Verdict::new(true, 2.5, Some(0.8));
        assert!(v.is_anomalous());
        assert_eq!(v.score(), 2.5);
        assert_eq!(v.forecast(), Some(0.8));
        assert!(!Verdict::normal().is_anomalous());
    }

    #[test]
    fn detectors_are_object_safe() {
        // The trait must be usable as `Box<dyn Detector>` for heterogeneous
        // per-service configurations.
        let mut dets: Vec<Box<dyn Detector>> = vec![
            Box::new(ThresholdDetector::with_delta(0.2)),
            Box::new(EwmaDetector::new(0.3, 4.0)),
            Box::new(CusumDetector::new(0.05, 0.5)),
            Box::new(PageHinkleyDetector::new(0.05, 0.5)),
            Box::new(HoltWintersDetector::new(0.4, 0.2, 4.0)),
            Box::new(KalmanDetector::new(1e-4, 1e-3, 4.0)),
        ];
        for d in &mut dets {
            let _ = d.observe(0.9);
            d.reset();
            assert!(!d.name().is_empty());
        }
    }
}
