use crate::{Detector, StateError, StateReader, StateWriter, Verdict};

/// Page-Hinkley test for streaming change detection.
///
/// Maintains the cumulative deviation of observations from their running
/// mean (minus a drift allowance `delta`) and compares it with its running
/// minimum/maximum; a gap larger than `lambda` signals a change. A classic
/// streaming variant of the CUSUM idea that needs no reference window.
#[derive(Debug, Clone, PartialEq)]
pub struct PageHinkleyDetector {
    delta: f64,
    lambda: f64,
    running_mean: f64,
    /// Cumulative sum oriented for downward shifts (`+delta` drift term);
    /// compared against its running maximum.
    cum_down: f64,
    max_cum_down: f64,
    /// Cumulative sum oriented for upward shifts (`−delta` drift term);
    /// compared against its running minimum.
    cum_up: f64,
    min_cum_up: f64,
    seen: u64,
}

const WARMUP: u64 = 5;

impl PageHinkleyDetector {
    /// Creates a detector with drift allowance `delta ≥ 0` and alarm
    /// threshold `lambda > 0`.
    ///
    /// # Panics
    ///
    /// Panics if `delta < 0` or `lambda <= 0`.
    pub fn new(delta: f64, lambda: f64) -> Self {
        assert!(delta >= 0.0, "delta must be non-negative");
        assert!(lambda > 0.0, "lambda must be positive");
        PageHinkleyDetector {
            delta,
            lambda,
            running_mean: 0.0,
            cum_down: 0.0,
            max_cum_down: 0.0,
            cum_up: 0.0,
            min_cum_up: 0.0,
            seen: 0,
        }
    }
}

impl Detector for PageHinkleyDetector {
    fn observe(&mut self, value: f64) -> Verdict {
        self.seen += 1;
        let n = self.seen as f64;
        self.running_mean += (value - self.running_mean) / n;

        // Downward changes: the `+delta` sum drifts up while in control, its
        // running maximum pins it; a persistent drop opens a gap below it.
        self.cum_down += value - self.running_mean + self.delta;
        self.max_cum_down = self.max_cum_down.max(self.cum_down);
        let down_gap = self.max_cum_down - self.cum_down;

        // Upward changes: symmetric with the running minimum.
        self.cum_up += value - self.running_mean - self.delta;
        self.min_cum_up = self.min_cum_up.min(self.cum_up);
        let up_gap = self.cum_up - self.min_cum_up;

        let score = down_gap.max(up_gap) / self.lambda;
        let anomalous = self.seen > WARMUP && (down_gap > self.lambda || up_gap > self.lambda);
        if anomalous {
            // Restart statistics in the new regime.
            self.running_mean = value;
            self.cum_down = 0.0;
            self.max_cum_down = 0.0;
            self.cum_up = 0.0;
            self.min_cum_up = 0.0;
            self.seen = 1;
        }
        Verdict::new(anomalous, score, Some(self.running_mean))
    }

    fn reset(&mut self) {
        *self = PageHinkleyDetector::new(self.delta, self.lambda);
    }

    fn name(&self) -> &'static str {
        "page-hinkley"
    }

    fn save(&self, out: &mut StateWriter) {
        out.f64(self.delta);
        out.f64(self.lambda);
        out.f64(self.running_mean);
        out.f64(self.cum_down);
        out.f64(self.max_cum_down);
        out.f64(self.cum_up);
        out.f64(self.min_cum_up);
        out.u64(self.seen);
    }

    fn load(&mut self, state: &mut StateReader<'_>) -> Result<(), StateError> {
        state.expect_f64("page-hinkley.delta", self.delta)?;
        state.expect_f64("page-hinkley.lambda", self.lambda)?;
        self.running_mean = state.f64("page-hinkley.running_mean")?;
        self.cum_down = state.f64("page-hinkley.cum_down")?;
        self.max_cum_down = state.f64("page-hinkley.max_cum_down")?;
        self.cum_up = state.f64("page-hinkley.cum_up")?;
        self.min_cum_up = state.f64("page-hinkley.min_cum_up")?;
        self.seen = state.u64("page-hinkley.seen")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{level_shift, wiggle};

    #[test]
    fn stable_signal_never_alarms() {
        let mut det = PageHinkleyDetector::new(0.01, 0.5);
        for &v in &wiggle(400, 0.85, 0.004) {
            assert!(!det.observe(v).is_anomalous());
        }
    }

    #[test]
    fn detects_upward_shift() {
        let mut det = PageHinkleyDetector::new(0.01, 0.3);
        let signal = level_shift(80, 40, 0.3, 0.8);
        let mut first = None;
        for (i, &v) in signal.iter().enumerate() {
            if det.observe(v).is_anomalous() && first.is_none() {
                first = Some(i);
            }
        }
        let at = first.expect("upward shift detected");
        assert!(at >= 40, "false alarm at {at}");
    }

    #[test]
    fn detects_downward_shift() {
        let mut det = PageHinkleyDetector::new(0.01, 0.3);
        let signal = level_shift(80, 40, 0.9, 0.4);
        let mut first = None;
        for (i, &v) in signal.iter().enumerate() {
            if det.observe(v).is_anomalous() && first.is_none() {
                first = Some(i);
            }
        }
        let at = first.expect("downward shift detected");
        assert!(at >= 40, "false alarm at {at}");
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut det = PageHinkleyDetector::new(0.01, 0.5);
        for _ in 0..20 {
            det.observe(0.7);
        }
        det.reset();
        assert_eq!(det, PageHinkleyDetector::new(0.01, 0.5));
    }

    #[test]
    #[should_panic(expected = "lambda")]
    fn rejects_non_positive_lambda() {
        PageHinkleyDetector::new(0.01, 0.0);
    }
}
