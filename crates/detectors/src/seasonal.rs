use crate::{Detector, StateError, StateReader, StateWriter, Verdict};

/// Holt-Winters **seasonal** forecasting detector (additive variant —
/// Winters, *Management Science* 1960, ref \[12\] of the paper).
///
/// Maintains level, trend, and a ring of `period` additive seasonal
/// components; the one-step forecast is `level + trend + season[t mod p]`
/// and an observation is flagged when its forecast error exceeds `k_sigma`
/// estimated deviations. QoS series often breathe with a daily rhythm
/// (evening congestion); a non-seasonal detector either alarms every
/// evening or must be de-tuned until it misses real faults — this one
/// learns the rhythm instead.
#[derive(Debug, Clone, PartialEq)]
pub struct SeasonalHoltWintersDetector {
    alpha: f64,
    beta: f64,
    gamma: f64,
    k_sigma: f64,
    period: usize,
    level: f64,
    trend: f64,
    season: Vec<f64>,
    err_var: f64,
    seen: u64,
}

const MIN_STDDEV: f64 = 1e-3;
/// Error-variance smoothing.
const VAR_GAMMA: f64 = 0.1;

impl SeasonalHoltWintersDetector {
    /// Creates a detector with smoothing factors `alpha`, `beta`, `gamma`
    /// in `(0, 1]`, gate `k_sigma > 0`, and season length `period ≥ 2`.
    ///
    /// The detector warms up for two full periods before raising alarms
    /// (one to seed the seasonal profile, one to stabilize it).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range smoothing factors, non-positive `k_sigma`, or
    /// `period < 2`.
    pub fn new(alpha: f64, beta: f64, gamma: f64, k_sigma: f64, period: usize) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must lie in (0, 1]");
        assert!(beta > 0.0 && beta <= 1.0, "beta must lie in (0, 1]");
        assert!(gamma > 0.0 && gamma <= 1.0, "gamma must lie in (0, 1]");
        assert!(k_sigma > 0.0, "k_sigma must be positive");
        assert!(period >= 2, "season length must be at least 2");
        SeasonalHoltWintersDetector {
            alpha,
            beta,
            gamma,
            k_sigma,
            period,
            level: 0.0,
            trend: 0.0,
            season: vec![0.0; period],
            err_var: 0.0,
            seen: 0,
        }
    }

    /// Season length.
    pub fn period(&self) -> usize {
        self.period
    }

    /// One-step-ahead forecast for the next instant.
    pub fn forecast_next(&self) -> f64 {
        let idx = (self.seen as usize) % self.period;
        self.level + self.trend + self.season[idx]
    }
}

impl Detector for SeasonalHoltWintersDetector {
    fn observe(&mut self, value: f64) -> Verdict {
        let idx = (self.seen as usize) % self.period;
        if self.seen == 0 {
            self.level = value;
            self.seen = 1;
            return Verdict::new(false, 0.0, None);
        }
        if (self.seen as usize) < self.period {
            // First period: seed seasonal components around a flat level.
            self.season[idx] = value - self.level;
            self.level = self.alpha * (value - self.season[idx]) + (1.0 - self.alpha) * self.level;
            self.seen += 1;
            return Verdict::new(false, 0.0, None);
        }
        let forecast = self.level + self.trend + self.season[idx];
        let error = value - forecast;
        let stddev = self.err_var.sqrt().max(MIN_STDDEV);
        let score = error.abs() / stddev;
        let warm = self.seen as usize >= 2 * self.period;
        let anomalous = warm && score > self.k_sigma;

        // Standard additive Holt-Winters updates.
        let prev_level = self.level;
        self.level = self.alpha * (value - self.season[idx])
            + (1.0 - self.alpha) * (self.level + self.trend);
        self.trend = self.beta * (self.level - prev_level) + (1.0 - self.beta) * self.trend;
        self.season[idx] =
            self.gamma * (value - self.level) + (1.0 - self.gamma) * self.season[idx];
        self.err_var = (1.0 - VAR_GAMMA) * self.err_var + VAR_GAMMA * error * error;
        self.seen += 1;
        Verdict::new(anomalous, score, Some(forecast))
    }

    fn reset(&mut self) {
        let p = self.period;
        *self =
            SeasonalHoltWintersDetector::new(self.alpha, self.beta, self.gamma, self.k_sigma, p);
    }

    fn name(&self) -> &'static str {
        "seasonal-holt-winters"
    }

    fn save(&self, out: &mut StateWriter) {
        out.f64(self.alpha);
        out.f64(self.beta);
        out.f64(self.gamma);
        out.f64(self.k_sigma);
        out.usize(self.period);
        out.f64(self.level);
        out.f64(self.trend);
        for &s in &self.season {
            out.f64(s);
        }
        out.f64(self.err_var);
        out.u64(self.seen);
    }

    fn load(&mut self, state: &mut StateReader<'_>) -> Result<(), StateError> {
        state.expect_f64("seasonal.alpha", self.alpha)?;
        state.expect_f64("seasonal.beta", self.beta)?;
        state.expect_f64("seasonal.gamma", self.gamma)?;
        state.expect_f64("seasonal.k_sigma", self.k_sigma)?;
        state.expect_usize("seasonal.period", self.period)?;
        self.level = state.f64("seasonal.level")?;
        self.trend = state.f64("seasonal.trend")?;
        for slot in &mut self.season {
            *slot = state.f64("seasonal.season")?;
        }
        self.err_var = state.f64("seasonal.err_var")?;
        self.seen = state.u64("seasonal.seen")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Sinusoid-like periodic QoS with period 8.
    fn periodic(len: usize, base: f64, amp: f64) -> Vec<f64> {
        (0..len)
            .map(|t| base + amp * (2.0 * std::f64::consts::PI * t as f64 / 8.0).sin())
            .collect()
    }

    #[test]
    fn learns_the_rhythm_and_stays_quiet() {
        let mut det = SeasonalHoltWintersDetector::new(0.3, 0.05, 0.3, 5.0, 8);
        let mut alarms = 0;
        for &v in &periodic(400, 0.7, 0.1) {
            if det.observe(v).is_anomalous() {
                alarms += 1;
            }
        }
        assert!(
            alarms <= 2,
            "periodic signal must be absorbed, got {alarms} alarms"
        );
    }

    #[test]
    fn non_seasonal_detector_alarms_on_the_same_rhythm() {
        // Contrast: a delta-threshold detector tuned to catch 0.05 shifts
        // fires on every swing of the rhythm (amplitude 0.1 -> per-step
        // changes up to ~0.08), while the seasonal detector above absorbs
        // it entirely.
        use crate::ThresholdDetector;
        let mut det = ThresholdDetector::with_delta(0.05);
        let mut alarms = 0;
        for &v in &periodic(400, 0.7, 0.1) {
            if det.observe(v).is_anomalous() {
                alarms += 1;
            }
        }
        assert!(
            alarms > 50,
            "the rhythm should defeat a naive delta threshold"
        );
    }

    #[test]
    fn level_shift_is_still_detected() {
        let mut det = SeasonalHoltWintersDetector::new(0.3, 0.05, 0.3, 5.0, 8);
        let mut signal = periodic(200, 0.8, 0.05);
        for v in &mut signal[150..] {
            *v -= 0.5; // outage on top of the rhythm
        }
        let mut first = None;
        for (i, &v) in signal.iter().enumerate() {
            if det.observe(v).is_anomalous() && first.is_none() {
                first = Some(i);
            }
        }
        let at = first.expect("outage detected");
        assert!((150..158).contains(&at), "alarm at {at}");
    }

    #[test]
    fn warmup_covers_two_periods() {
        let mut det = SeasonalHoltWintersDetector::new(0.3, 0.05, 0.3, 1.0, 4);
        // Wild data within the first two periods: silent.
        for &v in &[0.1, 0.9, 0.2, 0.8, 0.15, 0.85, 0.1, 0.9] {
            assert!(!det.observe(v).is_anomalous());
        }
    }

    #[test]
    fn forecast_tracks_the_season() {
        let mut det = SeasonalHoltWintersDetector::new(0.3, 0.05, 0.5, 5.0, 8);
        let signal = periodic(160, 0.7, 0.1);
        for &v in &signal {
            det.observe(v);
        }
        // Next value continues the rhythm.
        let expected = 0.7 + 0.1 * (2.0 * std::f64::consts::PI * 160.0 / 8.0).sin();
        assert!((det.forecast_next() - expected).abs() < 0.05);
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut det = SeasonalHoltWintersDetector::new(0.3, 0.05, 0.3, 5.0, 8);
        for &v in &periodic(50, 0.7, 0.1) {
            det.observe(v);
        }
        det.reset();
        assert_eq!(
            det,
            SeasonalHoltWintersDetector::new(0.3, 0.05, 0.3, 5.0, 8)
        );
    }

    #[test]
    #[should_panic(expected = "season length")]
    fn rejects_tiny_period() {
        SeasonalHoltWintersDetector::new(0.3, 0.05, 0.3, 5.0, 1);
    }
}
