//! Detector state save/restore: the word-level serialization plug-point
//! behind `Monitor::checkpoint`.
//!
//! Detector state is a handful of floats and counters, so the wire unit
//! is one `u64` word: integers travel natively, floats as IEEE-754 bit
//! patterns (`f64::to_bits`) for exact round-trips — a restored detector
//! continues the *same* trajectory, bit for bit. Each detector writes its
//! immutable parameters first and its mutable state second; `load`
//! verifies the parameters against the live instance and fails with a
//! typed [`StateError::ParamMismatch`] naming the field when a checkpoint
//! was taken under a different configuration. That check is what turns a
//! "restored with the wrong detector factory" mistake into a clean error
//! instead of a silently diverging monitor.

use std::fmt;

/// Why detector state could not be restored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum StateError {
    /// The saved state ended before `field` could be read — state from a
    /// different detector shape, or a truncated checkpoint.
    Truncated {
        /// The field being read when the words ran out.
        field: &'static str,
    },
    /// A saved immutable parameter disagrees with the live detector's —
    /// the checkpoint was taken under a different configuration.
    ParamMismatch {
        /// The disagreeing parameter, e.g. `"ewma.alpha"`.
        field: &'static str,
    },
    /// A saved value is structurally impossible (e.g. a boolean word
    /// that is neither 0 nor 1).
    Malformed {
        /// The field holding the impossible value.
        field: &'static str,
    },
    /// Words were left over after the detector finished loading — state
    /// from a wider detector shape.
    TrailingWords {
        /// How many words went unread.
        remaining: usize,
    },
}

impl fmt::Display for StateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StateError::Truncated { field } => {
                write!(f, "saved detector state ended while reading {field}")
            }
            StateError::ParamMismatch { field } => write!(
                f,
                "saved detector parameter {field} disagrees with the configured detector"
            ),
            StateError::Malformed { field } => {
                write!(
                    f,
                    "saved detector state holds an impossible value for {field}"
                )
            }
            StateError::TrailingWords { remaining } => {
                write!(f, "{remaining} unread words after loading detector state")
            }
        }
    }
}

impl std::error::Error for StateError {}

/// Accumulates one detector's state as `u64` words.
#[derive(Debug, Default)]
pub struct StateWriter {
    words: Vec<u64>,
}

impl StateWriter {
    /// An empty state buffer.
    pub fn new() -> Self {
        StateWriter::default()
    }

    /// Appends a raw word.
    pub fn u64(&mut self, v: u64) {
        self.words.push(v);
    }

    /// Appends a `usize` as a word.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Appends an `f64` as its IEEE-754 bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends a `bool` as a 0/1 word.
    pub fn bool(&mut self, v: bool) {
        self.u64(u64::from(v));
    }

    /// Appends an optional `f64`: presence word, then the bits.
    pub fn opt_f64(&mut self, v: Option<f64>) {
        match v {
            Some(x) => {
                self.bool(true);
                self.f64(x);
            }
            None => self.bool(false),
        }
    }

    /// The finished word buffer.
    pub fn into_words(self) -> Vec<u64> {
        self.words
    }
}

/// Consumes one detector's saved words, verifying parameters on the way.
#[derive(Debug)]
pub struct StateReader<'a> {
    words: &'a [u64],
    pos: usize,
}

impl<'a> StateReader<'a> {
    /// A reader positioned at the first word.
    pub fn new(words: &'a [u64]) -> Self {
        StateReader { words, pos: 0 }
    }

    /// Words not yet consumed.
    pub fn remaining(&self) -> usize {
        self.words.len().saturating_sub(self.pos)
    }

    /// Reads a raw word.
    pub fn u64(&mut self, field: &'static str) -> Result<u64, StateError> {
        let word = self
            .words
            .get(self.pos)
            .copied()
            .ok_or(StateError::Truncated { field })?;
        self.pos += 1;
        Ok(word)
    }

    /// Reads a word back as a `usize`.
    pub fn usize(&mut self, field: &'static str) -> Result<usize, StateError> {
        usize::try_from(self.u64(field)?).map_err(|_| StateError::Malformed { field })
    }

    /// Reads an `f64` from its bit pattern.
    pub fn f64(&mut self, field: &'static str) -> Result<f64, StateError> {
        Ok(f64::from_bits(self.u64(field)?))
    }

    /// Reads a `bool`; any word other than 0 or 1 is malformed.
    pub fn bool(&mut self, field: &'static str) -> Result<bool, StateError> {
        match self.u64(field)? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(StateError::Malformed { field }),
        }
    }

    /// Reads an optional `f64` written by [`StateWriter::opt_f64`].
    pub fn opt_f64(&mut self, field: &'static str) -> Result<Option<f64>, StateError> {
        if self.bool(field)? {
            Ok(Some(self.f64(field)?))
        } else {
            Ok(None)
        }
    }

    /// Reads a parameter word and verifies it equals the live value
    /// bit-for-bit.
    pub fn expect_f64(&mut self, field: &'static str, live: f64) -> Result<(), StateError> {
        if self.u64(field)? == live.to_bits() {
            Ok(())
        } else {
            Err(StateError::ParamMismatch { field })
        }
    }

    /// Reads a parameter word and verifies it equals the live count.
    pub fn expect_usize(&mut self, field: &'static str, live: usize) -> Result<(), StateError> {
        if self.usize(field)? == live {
            Ok(())
        } else {
            Err(StateError::ParamMismatch { field })
        }
    }

    /// Asserts every word was consumed.
    pub fn finish(self) -> Result<(), StateError> {
        match self.remaining() {
            0 => Ok(()),
            remaining => Err(StateError::TrailingWords { remaining }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_round_trip() {
        let mut w = StateWriter::new();
        w.u64(7);
        w.f64(-0.0);
        w.bool(true);
        w.opt_f64(None);
        w.opt_f64(Some(1.5));
        w.usize(42);
        let words = w.into_words();
        let mut r = StateReader::new(&words);
        assert_eq!(r.u64("a").unwrap(), 7);
        assert_eq!(r.f64("b").unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.bool("c").unwrap());
        assert_eq!(r.opt_f64("d").unwrap(), None);
        assert_eq!(r.opt_f64("e").unwrap(), Some(1.5));
        assert_eq!(r.usize("f").unwrap(), 42);
        r.finish().unwrap();
    }

    #[test]
    fn truncation_mismatch_and_trailing_are_typed() {
        let mut r = StateReader::new(&[]);
        assert_eq!(
            r.u64("missing").unwrap_err(),
            StateError::Truncated { field: "missing" }
        );

        let words = [0.25f64.to_bits()];
        let mut r = StateReader::new(&words);
        assert_eq!(
            r.expect_f64("alpha", 0.5).unwrap_err(),
            StateError::ParamMismatch { field: "alpha" }
        );

        let r = StateReader::new(&[1, 2]);
        assert_eq!(
            r.finish().unwrap_err(),
            StateError::TrailingWords { remaining: 2 }
        );

        let mut r = StateReader::new(&[9]);
        assert_eq!(
            r.bool("flag").unwrap_err(),
            StateError::Malformed { field: "flag" }
        );
    }
}
