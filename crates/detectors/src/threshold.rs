use crate::{Detector, StateError, StateReader, StateWriter, Verdict};

/// The simplest error-detection function: absolute bounds on the value and a
/// bound on the step-to-step variation.
///
/// Flags an observation when it leaves `[min_value, max_value]` or when it
/// jumps by more than `max_delta` from the previous observation. This is the
/// "simple threshold based function" end of the spectrum mentioned in
/// Section III-A of the paper.
///
/// # Example
///
/// ```
/// use anomaly_detectors::{Detector, ThresholdDetector};
/// let mut det = ThresholdDetector::with_delta(0.2);
/// assert!(!det.observe(0.9).is_anomalous());
/// assert!(!det.observe(0.85).is_anomalous());
/// assert!(det.observe(0.3).is_anomalous()); // jump of 0.55 > 0.2
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ThresholdDetector {
    min_value: f64,
    max_value: f64,
    max_delta: f64,
    previous: Option<f64>,
}

impl ThresholdDetector {
    /// Full constructor with value bounds and a delta bound.
    ///
    /// # Panics
    ///
    /// Panics if `min_value > max_value` or `max_delta < 0`, or any bound is
    /// NaN.
    pub fn new(min_value: f64, max_value: f64, max_delta: f64) -> Self {
        assert!(
            min_value <= max_value,
            "min_value must not exceed max_value"
        );
        assert!(max_delta >= 0.0, "max_delta must be non-negative");
        ThresholdDetector {
            min_value,
            max_value,
            max_delta,
            previous: None,
        }
    }

    /// Delta-only detector: any value is acceptable, only large jumps are
    /// flagged. This is the natural `a_k(j)` for QoS in `[0,1]`.
    pub fn with_delta(max_delta: f64) -> Self {
        ThresholdDetector::new(f64::NEG_INFINITY, f64::INFINITY, max_delta)
    }
}

impl Detector for ThresholdDetector {
    fn observe(&mut self, value: f64) -> Verdict {
        let out_of_bounds = value < self.min_value || value > self.max_value;
        let jump = self.previous.map(|p| (value - p).abs()).unwrap_or(0.0);
        let too_fast = jump > self.max_delta;
        self.previous = Some(value);
        let score = if self.max_delta > 0.0 && self.max_delta.is_finite() {
            jump / self.max_delta
        } else {
            jump
        };
        Verdict::new(out_of_bounds || too_fast, score, self.previous)
    }

    fn reset(&mut self) {
        self.previous = None;
    }

    fn name(&self) -> &'static str {
        "threshold"
    }

    fn save(&self, out: &mut StateWriter) {
        out.f64(self.min_value);
        out.f64(self.max_value);
        out.f64(self.max_delta);
        out.opt_f64(self.previous);
    }

    fn load(&mut self, state: &mut StateReader<'_>) -> Result<(), StateError> {
        state.expect_f64("threshold.min_value", self.min_value)?;
        state.expect_f64("threshold.max_value", self.max_value)?;
        state.expect_f64("threshold.max_delta", self.max_delta)?;
        self.previous = state.opt_f64("threshold.previous")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::level_shift;

    #[test]
    fn flags_out_of_bounds_values() {
        let mut det = ThresholdDetector::new(0.2, 1.0, f64::INFINITY);
        assert!(!det.observe(0.5).is_anomalous());
        assert!(det.observe(0.1).is_anomalous());
    }

    #[test]
    fn flags_large_jumps_only_after_first_sample() {
        let mut det = ThresholdDetector::with_delta(0.1);
        // First observation has no predecessor: never a jump.
        assert!(!det.observe(0.9).is_anomalous());
        assert!(!det.observe(0.85).is_anomalous());
        assert!(det.observe(0.5).is_anomalous());
    }

    #[test]
    fn level_shift_is_flagged_once() {
        let mut det = ThresholdDetector::with_delta(0.2);
        let signal = level_shift(20, 10, 0.9, 0.3);
        let flags: Vec<bool> = signal
            .iter()
            .map(|&v| det.observe(v).is_anomalous())
            .collect();
        assert_eq!(flags.iter().filter(|&&f| f).count(), 1);
        assert!(flags[10]);
    }

    #[test]
    fn reset_forgets_previous_value() {
        let mut det = ThresholdDetector::with_delta(0.1);
        det.observe(0.9);
        det.reset();
        // Would be a jump of 0.6 without the reset.
        assert!(!det.observe(0.3).is_anomalous());
    }

    #[test]
    #[should_panic(expected = "min_value")]
    fn rejects_inverted_bounds() {
        ThresholdDetector::new(1.0, 0.0, 0.1);
    }

    #[test]
    #[should_panic(expected = "max_delta")]
    fn rejects_negative_delta() {
        ThresholdDetector::new(0.0, 1.0, -0.1);
    }
}
