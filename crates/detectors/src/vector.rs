use crate::{Detector, DeviceDetector, StateError, StateReader, StateWriter, Verdict};

/// Device-level error-detection function over `d` services.
///
/// Wraps one scalar [`Detector`] per consumed service; the device-level
/// verdict `a_k(j)` is **true as soon as at least one service** shows an
/// abnormal variation — exactly the definition of Section III-A ("there is
/// at least one service consumed by device j at time k whose variation of
/// quality of service is too large to be considered as normal").
///
/// # Example
///
/// ```
/// use anomaly_detectors::{Detector, EwmaDetector, VectorDetector};
///
/// let mut dev = VectorDetector::new(
///     (0..2).map(|_| Box::new(EwmaDetector::new(0.3, 4.0)) as Box<dyn Detector>),
/// );
/// for _ in 0..50 {
///     assert!(!dev.observe_vector(&[0.9, 0.8]).is_anomalous());
/// }
/// // Service 1 collapses: the device flags an abnormal trajectory.
/// assert!(dev.observe_vector(&[0.9, 0.1]).is_anomalous());
/// ```
pub struct VectorDetector {
    detectors: Vec<Box<dyn Detector>>,
}

impl std::fmt::Debug for VectorDetector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VectorDetector")
            .field("services", &self.detectors.len())
            .field(
                "detectors",
                &self.detectors.iter().map(|d| d.name()).collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl VectorDetector {
    /// Builds a device detector from one scalar detector per service.
    ///
    /// # Panics
    ///
    /// Panics if the iterator yields no detectors (a device consumes at
    /// least one service).
    pub fn new<I>(detectors: I) -> Self
    where
        I: IntoIterator<Item = Box<dyn Detector>>,
    {
        let detectors: Vec<_> = detectors.into_iter().collect();
        assert!(
            !detectors.is_empty(),
            "a device consumes at least one service"
        );
        VectorDetector { detectors }
    }

    /// Convenience constructor: `d` homogeneous detectors produced by `make`.
    pub fn homogeneous<D, F>(d: usize, make: F) -> Self
    where
        D: Detector + 'static,
        F: Fn() -> D,
    {
        assert!(d > 0, "a device consumes at least one service");
        VectorDetector {
            detectors: (0..d)
                .map(|_| Box::new(make()) as Box<dyn Detector>)
                .collect(),
        }
    }

    /// Number of monitored services.
    pub fn services(&self) -> usize {
        self.detectors.len()
    }

    /// Feeds the QoS vector at the current instant; the verdict is anomalous
    /// iff any per-service verdict is, and the score is the max score.
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` differs from the number of services.
    pub fn observe_vector(&mut self, values: &[f64]) -> Verdict {
        assert_eq!(
            values.len(),
            self.detectors.len(),
            "QoS vector must have one value per service"
        );
        let mut anomalous = false;
        let mut score = 0.0f64;
        for (det, &v) in self.detectors.iter_mut().zip(values) {
            let verdict = det.observe(v);
            anomalous |= verdict.is_anomalous();
            score = score.max(verdict.score());
        }
        Verdict::new(anomalous, score, None)
    }

    /// Per-service verdicts for the current instant (when the caller needs
    /// to know *which* service misbehaved, e.g. for operator reports).
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` differs from the number of services.
    pub fn observe_vector_detailed(&mut self, values: &[f64]) -> Vec<Verdict> {
        assert_eq!(
            values.len(),
            self.detectors.len(),
            "QoS vector must have one value per service"
        );
        self.detectors
            .iter_mut()
            .zip(values)
            .map(|(det, &v)| det.observe(v))
            .collect()
    }

    /// Resets every per-service detector.
    pub fn reset(&mut self) {
        for det in &mut self.detectors {
            det.reset();
        }
    }
}

impl DeviceDetector for VectorDetector {
    fn services(&self) -> usize {
        VectorDetector::services(self)
    }

    fn observe_vector(&mut self, values: &[f64]) -> Verdict {
        VectorDetector::observe_vector(self, values)
    }

    fn reset(&mut self) {
        VectorDetector::reset(self)
    }

    fn description(&self) -> String {
        let names: Vec<&str> = self.detectors.iter().map(|d| d.name()).collect();
        format!("vector[{}]", names.join(","))
    }

    fn save(&self, out: &mut StateWriter) {
        out.usize(self.detectors.len());
        for det in &self.detectors {
            det.save(out);
        }
    }

    fn load(&mut self, state: &mut StateReader<'_>) -> Result<(), StateError> {
        state.expect_usize("vector.services", self.detectors.len())?;
        for det in &mut self.detectors {
            det.load(state)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CusumDetector, EwmaDetector, ThresholdDetector};

    #[test]
    fn or_semantics_over_services() {
        let mut dev = VectorDetector::homogeneous(3, || ThresholdDetector::with_delta(0.2));
        assert!(!dev.observe_vector(&[0.9, 0.8, 0.7]).is_anomalous());
        // Only service 2 jumps.
        assert!(dev.observe_vector(&[0.9, 0.8, 0.2]).is_anomalous());
    }

    #[test]
    fn detailed_verdicts_identify_the_service() {
        let mut dev = VectorDetector::homogeneous(2, || ThresholdDetector::with_delta(0.2));
        dev.observe_vector(&[0.9, 0.9]);
        let verdicts = dev.observe_vector_detailed(&[0.9, 0.3]);
        assert!(!verdicts[0].is_anomalous());
        assert!(verdicts[1].is_anomalous());
    }

    #[test]
    fn heterogeneous_detectors_compose() {
        let mut dev = VectorDetector::new(vec![
            Box::new(EwmaDetector::new(0.3, 4.0)) as Box<dyn Detector>,
            Box::new(CusumDetector::new(0.02, 0.3)) as Box<dyn Detector>,
        ]);
        for _ in 0..50 {
            assert!(!dev.observe_vector(&[0.9, 0.7]).is_anomalous());
        }
        assert!(dev.observe_vector(&[0.2, 0.7]).is_anomalous());
    }

    #[test]
    fn score_is_max_over_services() {
        let mut dev = VectorDetector::homogeneous(2, || ThresholdDetector::with_delta(0.1));
        dev.observe_vector(&[0.5, 0.5]);
        let v = dev.observe_vector(&[0.55, 0.9]);
        // Jumps are 0.05 and 0.4; scores are jump/delta = 0.5 and 4.0.
        assert!((v.score() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn reset_propagates() {
        let mut dev = VectorDetector::homogeneous(2, || ThresholdDetector::with_delta(0.1));
        dev.observe_vector(&[0.9, 0.9]);
        dev.reset();
        // No previous value remembered: a big change is not a jump.
        assert!(!dev.observe_vector(&[0.1, 0.1]).is_anomalous());
    }

    #[test]
    #[should_panic(expected = "one value per service")]
    fn rejects_wrong_width_vector() {
        let mut dev = VectorDetector::homogeneous(2, || ThresholdDetector::with_delta(0.1));
        dev.observe_vector(&[0.5]);
    }

    #[test]
    #[should_panic(expected = "at least one service")]
    fn rejects_empty_detector_set() {
        VectorDetector::new(Vec::new());
    }
}
