//! Mid-stream save/load must be unobservable: a detector checkpointed
//! after any prefix of a signal and restored into a freshly constructed
//! twin must produce bit-identical verdicts on the remaining signal.

use anomaly_detectors::{
    CusumDetector, Detector, DeviceDetector, EnsembleDetector, EwmaDetector, HoltWintersDetector,
    KalmanDetector, PageHinkleyDetector, SeasonalHoltWintersDetector, StateError, StateReader,
    StateWriter, ThresholdDetector, VectorDetector,
};

/// A wiggly signal with a level shift and a recovery — enough structure
/// to exercise warm-up, flagged, and post-anomaly regimes.
fn signal() -> Vec<f64> {
    (0..120)
        .map(|i| {
            let base = if (60..80).contains(&i) { 0.3 } else { 0.9 };
            base + 0.01 * (i as f64 * 2.399963).sin()
        })
        .collect()
}

fn assert_resumes_identically(make: impl Fn() -> Box<dyn Detector>, label: &str) {
    let signal = signal();
    for split in [1usize, 7, 59, 61, 90] {
        // The uninterrupted reference.
        let mut reference = make();
        for &v in &signal {
            reference.observe(v);
        }
        // Checkpoint at `split`, restore into a fresh twin, run the rest
        // on both and compare verdicts bit-for-bit.
        let mut original = make();
        for &v in signal.iter().take(split) {
            original.observe(v);
        }
        let mut writer = StateWriter::new();
        original.save(&mut writer);
        let words = writer.into_words();
        let mut restored = make();
        let mut reader = StateReader::new(&words);
        restored
            .load(&mut reader)
            .unwrap_or_else(|e| panic!("{label}: load failed at split {split}: {e}"));
        reader
            .finish()
            .unwrap_or_else(|e| panic!("{label}: leftover state at split {split}: {e}"));
        for (i, &v) in signal.iter().enumerate().skip(split) {
            let a = original.observe(v);
            let b = restored.observe(v);
            assert_eq!(
                (
                    a.is_anomalous(),
                    a.score().to_bits(),
                    a.forecast().map(f64::to_bits)
                ),
                (
                    b.is_anomalous(),
                    b.score().to_bits(),
                    b.forecast().map(f64::to_bits)
                ),
                "{label}: split {split}, step {i}: restored verdict diverged"
            );
        }
    }
}

#[test]
fn every_scalar_detector_resumes_identically() {
    assert_resumes_identically(|| Box::new(EwmaDetector::new(0.3, 4.0)), "ewma");
    assert_resumes_identically(|| Box::new(ThresholdDetector::with_delta(0.1)), "threshold");
    assert_resumes_identically(|| Box::new(CusumDetector::new(0.02, 0.3)), "cusum");
    assert_resumes_identically(
        || Box::new(PageHinkleyDetector::new(0.01, 0.3)),
        "page-hinkley",
    );
    assert_resumes_identically(
        || Box::new(HoltWintersDetector::new(0.4, 0.2, 4.0)),
        "holt-winters",
    );
    assert_resumes_identically(|| Box::new(KalmanDetector::new(1e-4, 1e-3, 4.0)), "kalman");
    assert_resumes_identically(
        || Box::new(SeasonalHoltWintersDetector::new(0.4, 0.2, 0.3, 4.0, 12)),
        "seasonal-holt-winters",
    );
    assert_resumes_identically(
        || {
            Box::new(EnsembleDetector::new(
                vec![
                    Box::new(EwmaDetector::new(0.3, 4.0)) as Box<dyn Detector>,
                    Box::new(CusumDetector::new(0.02, 0.3)),
                ],
                1,
            ))
        },
        "ensemble",
    );
}

#[test]
fn vector_detectors_resume_identically() {
    let signal = signal();
    let make = || VectorDetector::homogeneous(2, || EwmaDetector::new(0.3, 4.0));
    let mut original = make();
    for &v in signal.iter().take(50) {
        original.observe_vector(&[v, 1.0 - v]);
    }
    let mut writer = StateWriter::new();
    DeviceDetector::save(&original, &mut writer);
    let words = writer.into_words();
    let mut restored = make();
    let mut reader = StateReader::new(&words);
    DeviceDetector::load(&mut restored, &mut reader).unwrap();
    reader.finish().unwrap();
    for &v in signal.iter().skip(50) {
        let a = original.observe_vector(&[v, 1.0 - v]);
        let b = restored.observe_vector(&[v, 1.0 - v]);
        assert_eq!(
            (a.is_anomalous(), a.score().to_bits()),
            (b.is_anomalous(), b.score().to_bits())
        );
    }
}

#[test]
fn loading_into_a_differently_configured_detector_names_the_field() {
    let mut writer = StateWriter::new();
    Detector::save(&EwmaDetector::new(0.3, 4.0), &mut writer);
    let words = writer.into_words();
    let mut other = EwmaDetector::new(0.5, 4.0);
    let err = Detector::load(&mut other, &mut StateReader::new(&words)).unwrap_err();
    assert_eq!(
        err,
        StateError::ParamMismatch {
            field: "ewma.alpha"
        }
    );

    // Shape mismatches are typed too, never a panic.
    let mut vector = VectorDetector::homogeneous(3, || EwmaDetector::new(0.3, 4.0));
    let err = DeviceDetector::load(&mut vector, &mut StateReader::new(&words)).unwrap_err();
    assert!(matches!(
        err,
        StateError::ParamMismatch { .. } | StateError::Truncated { .. }
    ));

    // Truncated state is typed.
    let mut det = EwmaDetector::new(0.3, 4.0);
    let half = words[..2].to_vec();
    let err = Detector::load(&mut det, &mut StateReader::new(&half)).unwrap_err();
    assert!(matches!(err, StateError::Truncated { .. }));
}
