use anomaly_characterization::pipeline::MonitorError;
use anomaly_network::NetworkError;
use anomaly_simulator::SimulationError;
use std::error::Error;
use std::fmt;

/// Everything that can go wrong while generating or evaluating a scenario.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum EvalError {
    /// The underlying Monte-Carlo simulator rejected its configuration.
    Simulation(SimulationError),
    /// The ISP network substrate rejected its configuration.
    Network(NetworkError),
    /// The monitor rejected a build parameter, a snapshot, or a churn
    /// operation.
    Monitor(MonitorError),
    /// A scenario configuration is internally inconsistent.
    InvalidScenario {
        /// What was wrong.
        reason: String,
    },
    /// A persisted log could not be read or is not an evaluation capture
    /// (missing step-map record, unreadable file).
    Log {
        /// What was wrong.
        reason: String,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Simulation(e) => write!(f, "simulator error: {e}"),
            EvalError::Network(e) => write!(f, "network error: {e}"),
            EvalError::Monitor(e) => write!(f, "monitor error: {e}"),
            EvalError::InvalidScenario { reason } => write!(f, "invalid scenario: {reason}"),
            EvalError::Log { reason } => write!(f, "log replay failed: {reason}"),
        }
    }
}

impl Error for EvalError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EvalError::Simulation(e) => Some(e),
            EvalError::Network(e) => Some(e),
            EvalError::Monitor(e) => Some(e),
            EvalError::InvalidScenario { .. } => None,
            EvalError::Log { .. } => None,
        }
    }
}

impl From<SimulationError> for EvalError {
    fn from(e: SimulationError) -> Self {
        EvalError::Simulation(e)
    }
}

impl From<NetworkError> for EvalError {
    fn from(e: NetworkError) -> Self {
        EvalError::Network(e)
    }
}

impl From<MonitorError> for EvalError {
    fn from(e: MonitorError) -> Self {
        EvalError::Monitor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source_cover_every_variant() {
        let sim: EvalError = SimulationError::ZeroDimension.into();
        assert!(sim.to_string().contains("simulator"));
        assert!(sim.source().is_some());
        let net: EvalError = NetworkError::NoServices.into();
        assert!(net.to_string().contains("network"));
        assert!(net.source().is_some());
        let mon: EvalError = MonitorError::NoServices.into();
        assert!(mon.to_string().contains("monitor"));
        assert!(mon.source().is_some());
        let bad = EvalError::InvalidScenario {
            reason: "oops".into(),
        };
        assert!(bad.to_string().contains("oops"));
        assert!(bad.source().is_none());
    }
}
