//! Scenario workbench: end-to-end accuracy evaluation across network,
//! adversary, and churn workloads.
//!
//! The paper's claim is not just that characterization *runs* — it is that
//! per-device local verdicts agree with the real scenario `R_k` under
//! realistic ISP conditions, and do so at least as well as centralized
//! clustering baselines. This crate turns that claim into a standing
//! harness:
//!
//! * [`Scenario`] unifies every workload generator in the workspace —
//!   Monte-Carlo simulation ([`SimScenario`]), ISP fault injection
//!   ([`NetworkFaultScenario`]), collusion attacks ([`AdversaryScenario`]),
//!   large fleets ([`FleetScenario`]), membership churn
//!   ([`ChurnScenario`]), long-lived anomalies with flapping devices
//!   ([`PersistentAnomalyScenario`]), and recorded traces
//!   ([`RecordedScenario`]) — behind one deterministic `generate()`;
//! * [`evaluate_monitor`] drives the v2
//!   [`Monitor`](anomaly_characterization::pipeline::Monitor) over a
//!   scenario via `Monitor::run_scenario` and scores every verdict against
//!   the ground truth with the per-class confusion matrices of
//!   [`anomaly_simulator::score`];
//! * [`evaluate_classifier`] scores the k-means and tessellation baselines
//!   (`anomaly-baselines`) on the *same* generated runs, so accuracy
//!   comparisons are apples to apples;
//! * the `workbench` binary in `anomaly-bench` runs the full scenario ×
//!   engine matrix and writes `BENCH_eval.json` — the accuracy-regression
//!   gate every future performance PR runs against.
//!
//! # Example
//!
//! ```
//! use anomaly_baselines::TessellationClassifier;
//! use anomaly_characterization::pipeline::Engine;
//! use anomaly_eval::{evaluate_classifier, evaluate_monitor, NetworkFaultScenario};
//!
//! let scenario = NetworkFaultScenario::small_mixed("dslam-vs-cpe", 42, 3);
//! let paper = evaluate_monitor(&scenario, Engine::Sequential)?;
//! let tess = evaluate_classifier(&scenario, &TessellationClassifier::new(16, 3))?;
//! assert!(paper.macro_f1() >= tess.macro_f1());
//! # Ok::<(), anomaly_eval::EvalError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(warnings)]
#![warn(missing_docs)]

mod error;
mod runner;
mod scenario;
mod workloads;

pub use error::EvalError;
pub use runner::{
    evaluate_classifier, evaluate_classifier_on, evaluate_log, evaluate_log_on, evaluate_monitor,
    evaluate_monitor_alerts_on, evaluate_monitor_on, evaluate_monitor_streaming,
    evaluate_monitor_streaming_on, record_monitor_log, AlertQuality, InstantScore, ScenarioScore,
};
pub use scenario::{ChurnEvent, Scenario, ScenarioRun, ScenarioSpec};
pub use workloads::{
    AdversaryScenario, ChurnScenario, FleetScenario, NetworkFaultScenario,
    PersistentAnomalyScenario, RecordedScenario, SimScenario, StreamingScenario,
};
