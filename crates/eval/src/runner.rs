//! Drive a scenario through the paper's pipeline or a centralized
//! baseline, and score the verdicts against the ground truth.

use crate::error::EvalError;
use crate::scenario::{Scenario, ScenarioRun, ScenarioSpec};
use crate::workloads::StreamingScenario;
use anomaly_baselines::Classifier;
use anomaly_characterization::pipeline::{
    read_log, Engine, EventDeltaKind, EventLog, Monitor, MonitorBuilder, Report, StalenessPolicy,
};
use anomaly_characterization::store::{Dec, Enc};
use anomaly_core::{AnomalyClass, DeviceSet};
use anomaly_detectors::{ThresholdDetector, VectorDetector};
use anomaly_network::Topology;
use anomaly_qos::DeviceId;
use anomaly_serve::{AlertActionKind, AlertConfig, AlertSink, KeyMap};
use anomaly_simulator::score::{self, Confusion, EventConfusion, EventSpan};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Per-step scoring summary — the evaluation's per-instant breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstantScore {
    /// Step index within the scenario.
    pub step: usize,
    /// Ground-truth abnormal devices scored this step.
    pub abnormal: u64,
    /// Correct verdicts.
    pub correct: u64,
    /// Hard misclassifications (isolated ↔ massive).
    pub mistaken: u64,
    /// Abstentions plus devices without any verdict.
    pub undecided: u64,
    /// Verdicts on devices outside the ground truth (detector flukes,
    /// repair rebounds); zero for baselines, which are handed the abnormal
    /// set directly.
    pub spurious: u64,
}

impl InstantScore {
    fn from_confusion(step: usize, confusion: &Confusion) -> Self {
        InstantScore {
            step,
            abnormal: confusion.total(),
            correct: confusion.correct(),
            mistaken: confusion.mistaken(),
            undecided: confusion.undecided(),
            spurious: confusion.spurious_total(),
        }
    }

    /// Stable JSON rendering.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"step\":{},\"abnormal\":{},\"correct\":{},",
                "\"mistaken\":{},\"undecided\":{},\"spurious\":{}}}"
            ),
            self.step, self.abnormal, self.correct, self.mistaken, self.undecided, self.spurious,
        )
    }
}

/// Alert-pipeline quality on one scenario: the serve crate's deduplicated
/// notification stream scored against the ground-truth event spans.
///
/// Pages and recurrences are matched to truth spans by step window (a
/// notification at step `s` matches a span covering `s`, with a small
/// slack for debounce/repair lag). The offline sink is configured with an
/// effectively unlimited token bucket, so the numbers measure detection
/// and deduplication, not throttling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AlertQuality {
    /// Ground-truth event spans in the run.
    pub truth_events: u64,
    /// Deduplicated alerts the sink created.
    pub alerts: u64,
    /// Page notifications (new alerts) emitted.
    pub pages: u64,
    /// Recurrences folded into existing alerts.
    pub recurrences: u64,
    /// Alerts resolved by the end of the run.
    pub resolved: u64,
    /// Distinct canonical root-cause signatures observed.
    pub distinct_signatures: u64,
    /// Page/recurrence notifications that land inside a truth span.
    pub matched_notifications: u64,
    /// Total page/recurrence notifications.
    pub notifications: u64,
    /// Truth spans covered by at least one notification.
    pub paged_events: u64,
}

impl AlertQuality {
    /// Fraction of notifications that correspond to a real event.
    pub fn page_precision(&self) -> f64 {
        if self.notifications == 0 {
            return if self.truth_events == 0 { 1.0 } else { 0.0 };
        }
        self.matched_notifications as f64 / self.notifications as f64
    }

    /// Fraction of real events that produced at least one notification.
    pub fn page_recall(&self) -> f64 {
        if self.truth_events == 0 {
            return 1.0;
        }
        self.paged_events as f64 / self.truth_events as f64
    }

    /// Harmonic mean of page precision and recall.
    pub fn page_f1(&self) -> f64 {
        let (p, r) = (self.page_precision(), self.page_recall());
        if p + r == 0.0 {
            return 0.0;
        }
        2.0 * p * r / (p + r)
    }

    /// Stable JSON rendering (fixed key order, `{:.6}` floats).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"truth_events\":{},\"alerts\":{},\"pages\":{},",
                "\"recurrences\":{},\"resolved\":{},\"distinct_signatures\":{},",
                "\"matched_notifications\":{},\"notifications\":{},\"paged_events\":{},",
                "\"page_precision\":{:.6},\"page_recall\":{:.6},\"page_f1\":{:.6}}}"
            ),
            self.truth_events,
            self.alerts,
            self.pages,
            self.recurrences,
            self.resolved,
            self.distinct_signatures,
            self.matched_notifications,
            self.notifications,
            self.paged_events,
            self.page_precision(),
            self.page_recall(),
            self.page_f1(),
        )
    }
}

/// One method's score on one scenario: the aggregate confusion matrix and
/// the per-instant breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioScore {
    /// Scenario name (from [`ScenarioSpec::name`]).
    pub scenario: String,
    /// Method label (`paper-sequential`, `paper-threaded-4`, or the
    /// baseline's [`Classifier::name`]).
    pub method: String,
    /// Steps scored.
    pub steps: usize,
    /// Aggregate confusion over all steps.
    pub confusion: Confusion,
    /// Event-level comparison: predicted anomaly events (the monitor's
    /// tracker output, or the baseline's per-step groups linked across
    /// steps) against the ground-truth event spans.
    pub events: EventConfusion,
    /// Per-step breakdown.
    pub instants: Vec<InstantScore>,
    /// Alert-pipeline quality, when the method was scored through the
    /// serve crate's alert sink ([`evaluate_monitor_alerts_on`]).
    pub alerts: Option<AlertQuality>,
}

impl ScenarioScore {
    /// The headline metric: unweighted mean of the per-class F1 scores.
    pub fn macro_f1(&self) -> f64 {
        self.confusion.macro_f1()
    }

    /// The engine-independent part of the score (everything except the
    /// method label), serialized — two evaluations are equivalent exactly
    /// when these strings are byte-identical.
    pub fn metrics_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"steps\":{},\"score\":{},\"events\":{},\"instants\":[",
            self.steps,
            self.confusion.to_json(),
            self.events.to_json()
        );
        for (i, instant) in self.instants.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&instant.to_json());
        }
        out.push(']');
        if let Some(alerts) = &self.alerts {
            let _ = write!(out, ",\"alerts\":{}", alerts.to_json());
        }
        out.push('}');
        out
    }

    /// Full JSON rendering, one object per scenario × method cell.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"scenario\":\"{}\",\"method\":\"{}\",\"metrics\":{}}}",
            self.scenario,
            self.method,
            self.metrics_json()
        )
    }
}

/// Scores one verdict list against one step's ground truth: every truth
/// device is recorded (missing ones as [`Prediction::Missing`]), and
/// verdicts on devices outside the truth are counted as spurious.
///
/// [`Prediction::Missing`]: anomaly_simulator::score::Prediction::Missing
fn score_one_step(
    spec: &ScenarioSpec,
    step_truth: &anomaly_simulator::GroundTruth,
    verdicts: &[(DeviceId, AnomalyClass)],
) -> Confusion {
    let mut confusion = Confusion::new();
    score::score_step_classes(&mut confusion, step_truth, spec.params.tau(), verdicts);
    let abnormal = step_truth.abnormal_devices();
    for &(id, class) in verdicts {
        if !abnormal.contains(id) {
            confusion.record_spurious(class);
        }
    }
    confusion
}

fn aggregate(
    spec: ScenarioSpec,
    method: String,
    per_step: Vec<Confusion>,
    events: EventConfusion,
) -> ScenarioScore {
    let mut total = Confusion::new();
    let mut instants = Vec::with_capacity(per_step.len());
    for (i, c) in per_step.iter().enumerate() {
        instants.push(InstantScore::from_confusion(i, c));
        total.merge(c);
    }
    ScenarioScore {
        scenario: spec.name,
        method,
        steps: per_step.len(),
        confusion: total,
        events,
        instants,
        alerts: None,
    }
}

/// Ground-truth event spans of a run, in step coordinates.
fn truth_spans(spec: &ScenarioSpec, run: &ScenarioRun) -> Vec<EventSpan> {
    score::link_truth_events(run.steps.iter().map(|s| &s.truth), spec.params.tau())
}

/// Reconstructs the monitor's anomaly events in **step coordinates** from
/// the per-step reports' [`EventDeltaKind`] feed: each event's onset/last
/// step, its device set (translated from stable keys to the per-step dense
/// ids the ground truth speaks), and its peak class. Deltas emitted during
/// discarded bridging epochs never extend a span, which is exactly the
/// step-aligned view the ground truth has.
///
/// The feed is component-aware end to end: the tracker opens one event per
/// spatial component, so two coincident spatially-disjoint outages arrive
/// here as two event ids and score as two predicted spans — the event-id
/// keying inherits the split without re-deriving it. (Baselines, which
/// have no component structure, go through
/// [`spans_from_step_classes`] and the component-blind linker instead.)
fn spans_from_reports(reports: &[Report]) -> Vec<EventSpan> {
    use std::collections::BTreeMap;
    struct Partial {
        onset: usize,
        last: usize,
        devices: DeviceSet,
        massive: bool,
    }
    let mut by_id: BTreeMap<anomaly_characterization::pipeline::EventId, Partial> = BTreeMap::new();
    for (step, report) in reports.iter().enumerate() {
        let id_of: BTreeMap<_, _> = report.verdicts().iter().map(|v| (v.key, v.id)).collect();
        for delta in report.event_deltas() {
            if delta.kind == EventDeltaKind::Closed {
                continue;
            }
            let partial = by_id.entry(delta.id).or_insert_with(|| Partial {
                onset: step,
                last: step,
                devices: DeviceSet::new(),
                massive: false,
            });
            partial.last = step;
            partial.massive |= delta.class == AnomalyClass::Massive;
            for key in &delta.joined {
                // Every joined device carries a verdict in the same report
                // (warming devices extend events but never join them).
                if let Some(&id) = id_of.get(key) {
                    partial.devices.insert(id);
                }
            }
        }
    }
    by_id
        .into_values()
        .map(|p| EventSpan {
            onset: p.onset,
            last: p.last,
            devices: p.devices,
            massive: p.massive,
        })
        .collect()
}

/// Predicted event spans of a centralized baseline: its per-step verdicts
/// are grouped the way the monitor's tracker groups them — every
/// massive-predicted device of one step in one shared group, each
/// isolated-predicted device alone, abstentions skipped — and the groups
/// are linked across steps by device overlap.
fn spans_from_step_classes(per_step: &[Vec<(DeviceId, AnomalyClass)>]) -> Vec<EventSpan> {
    let grouped: Vec<Vec<(DeviceSet, bool)>> = per_step
        .iter()
        .map(|classes| {
            let mut groups: Vec<(DeviceSet, bool)> = Vec::new();
            let massive: DeviceSet = classes
                .iter()
                .filter(|&&(_, class)| class == AnomalyClass::Massive)
                .map(|&(id, _)| id)
                .collect();
            if !massive.is_empty() {
                groups.push((massive, true));
            }
            let mut isolated: Vec<DeviceId> = classes
                .iter()
                .filter(|&&(_, class)| class == AnomalyClass::Isolated)
                .map(|&(id, _)| id)
                .collect();
            isolated.sort_unstable();
            for id in isolated {
                groups.push((DeviceSet::singleton(id), false));
            }
            groups
        })
        .collect();
    score::link_event_spans(grouped.iter().map(|g| g.iter()))
}

/// Evaluates the paper's pipeline on a scenario: builds a [`Monitor`] from
/// the scenario's spec (threshold detectors at the spec's delta), drives
/// it over the generated run — applying churn between segments — and
/// scores every per-step report against the ground truth.
///
/// The resulting metrics are engine-independent: any [`Engine`] produces
/// byte-identical [`ScenarioScore::metrics_json`] (only the method label
/// differs), which `tests/engine_determinism.rs` pins down.
///
/// # Errors
///
/// Propagates generator and monitor failures.
///
/// [`Monitor`]: anomaly_characterization::pipeline::Monitor
pub fn evaluate_monitor(
    scenario: &dyn Scenario,
    engine: Engine,
) -> Result<ScenarioScore, EvalError> {
    evaluate_monitor_on(&scenario.spec(), &scenario.generate()?, engine)
}

/// [`evaluate_monitor`] over a pre-generated run — use this to score
/// several engines on one `generate()` call (generation of a large fleet
/// dwarfs the scoring itself).
///
/// # Errors
///
/// Propagates monitor failures.
pub fn evaluate_monitor_on(
    spec: &ScenarioSpec,
    run: &ScenarioRun,
    engine: Engine,
) -> Result<ScenarioScore, EvalError> {
    let reports = drive_monitor(spec, run, engine)?;
    let method = match engine {
        Engine::Sequential => "paper-sequential".to_string(),
        Engine::Threaded { workers } => format!("paper-threaded-{workers}"),
    };
    Ok(score_reports(spec, run, method, &reports))
}

/// Drives the standard evaluation monitor over a run (applying churn
/// between segments) and returns the per-step reports.
fn drive_monitor(
    spec: &ScenarioSpec,
    run: &ScenarioRun,
    engine: Engine,
) -> Result<Vec<Report>, EvalError> {
    let mut monitor = build_monitor(spec, engine, StalenessPolicy::Reject)?;
    let mut reports: Vec<Report> = Vec::with_capacity(run.steps.len());
    let mut next = 0usize;
    for churn in &run.churn {
        let end = (churn.after_step + 1).clamp(next, run.steps.len());
        if next < end {
            reports.extend(monitor.run_scenario(&run.steps[next..end])?);
            next = end;
        }
        for &key in &churn.leaves {
            monitor.leave(key)?;
        }
        for &key in &churn.joins {
            monitor.join(key)?;
        }
    }
    if next < run.steps.len() {
        reports.extend(monitor.run_scenario(&run.steps[next..])?);
    }
    Ok(reports)
}

/// `Aux` record tag of an evaluation capture: the payload maps each
/// scenario step to the sealed-epoch instant its report carried, which is
/// what lets [`evaluate_log_on`] translate the log's epoch-coordinate
/// events back into the step coordinates the ground truth speaks.
const EVAL_AUX_TAG: &[u8; 4] = b"EVL1";

/// [`evaluate_monitor_on`] that additionally persists the run into an
/// [`EventLog`] on `sink`: one summary record per sealed epoch (bridging
/// epochs included — exactly the stream a live daemon writes), every
/// closed event as it closes, a step-map `Aux` record, and the still-open
/// events at the end. Returns the live score together with the finished
/// writer; [`evaluate_log_on`] replays the log offline and reproduces the
/// score's event cell.
///
/// # Errors
///
/// Propagates monitor failures and log I/O failures.
pub fn record_monitor_log<W: std::io::Write>(
    spec: &ScenarioSpec,
    run: &ScenarioRun,
    engine: Engine,
    sink: W,
) -> Result<(ScenarioScore, W), EvalError> {
    let mut monitor = build_monitor(spec, engine, StalenessPolicy::Reject)?;
    let mut log = EventLog::create(sink)?;
    let mut reports: Vec<Report> = Vec::with_capacity(run.steps.len());
    let mut step_epochs: Vec<u64> = Vec::with_capacity(run.steps.len());

    fn feed_logged<W: std::io::Write>(
        monitor: &mut Monitor,
        log: &mut EventLog<W>,
        reports: &mut Vec<Report>,
        step_epochs: &mut Vec<u64>,
        steps: &[anomaly_simulator::trace::TraceStep],
    ) -> Result<(), EvalError> {
        for step in steps {
            if monitor.last_snapshot() != Some(step.pair.before()) {
                let bridging = monitor.observe(step.pair.before().clone())?;
                log.record_seal(monitor, &bridging)?;
            }
            let report = monitor.observe(step.pair.after().clone())?;
            log.record_seal(monitor, &report)?;
            step_epochs.push(report.instant());
            reports.push(report);
        }
        Ok(())
    }

    let mut next = 0usize;
    for churn in &run.churn {
        let end = (churn.after_step + 1).clamp(next, run.steps.len());
        if next < end {
            feed_logged(
                &mut monitor,
                &mut log,
                &mut reports,
                &mut step_epochs,
                &run.steps[next..end],
            )?;
            next = end;
        }
        for &key in &churn.leaves {
            monitor.leave(key)?;
        }
        for &key in &churn.joins {
            monitor.join(key)?;
        }
    }
    if next < run.steps.len() {
        feed_logged(
            &mut monitor,
            &mut log,
            &mut reports,
            &mut step_epochs,
            &run.steps[next..],
        )?;
    }

    let mut aux = Enc::new();
    aux.bytes(EVAL_AUX_TAG);
    aux.u64s(&step_epochs);
    log.append_aux(&aux.into_bytes())?;
    let writer = log.finish(&monitor)?;

    let method = match engine {
        Engine::Sequential => "paper-sequential".to_string(),
        Engine::Threaded { workers } => format!("paper-threaded-{workers}"),
    };
    Ok((score_reports(spec, run, method, &reports), writer))
}

/// Replays a persisted event/summary log through the event-scoring
/// machinery: the log's event records are translated from sealed-epoch
/// coordinates into step coordinates via the capture's step-map `Aux`
/// record and scored against the run's ground-truth spans, reproducing
/// the `events` cell a live [`evaluate_monitor_on`] run commits to
/// `BENCH_eval.json`.
///
/// Device keys are assumed dense and stable (`DeviceKey(k)` ↔ the dense
/// `DeviceId(k)` the ground truth speaks), which holds for every
/// workbench scenario; under membership churn the key→slot mapping
/// shifts and event cells are not comparable.
///
/// # Errors
///
/// [`EvalError::Log`] when the log is not an evaluation capture (no
/// step-map record); monitor-level errors when the log is corrupt or
/// truncated.
pub fn evaluate_log_on<R: std::io::Read>(
    spec: &ScenarioSpec,
    run: &ScenarioRun,
    source: R,
) -> Result<EventConfusion, EvalError> {
    let persisted = read_log(source)?;
    let step_epochs = persisted
        .aux
        .iter()
        .rev()
        .find_map(|payload| {
            let mut dec = Dec::new(payload);
            let tag = dec.bytes("aux.tag").ok()?;
            if tag != EVAL_AUX_TAG {
                return None;
            }
            dec.u64s("aux.step_epochs").ok()
        })
        .ok_or_else(|| EvalError::Log {
            reason: "log holds no evaluation step-map record \
                     (was it captured by record_monitor_log?)"
                .to_string(),
        })?;
    let mut spans: Vec<EventSpan> = Vec::new();
    for event in &persisted.events {
        // First step at or after the event's onset epoch, last step at or
        // before its last active epoch: bridging-epoch activity collapses
        // onto the neighbouring step, exactly like the live report feed.
        let Some(onset) = step_epochs.iter().position(|&e| e >= event.onset) else {
            continue;
        };
        let Some(last) = step_epochs.iter().rposition(|&e| e <= event.last_active) else {
            continue;
        };
        if last < onset {
            continue;
        }
        let devices: DeviceSet = event
            .devices
            .iter()
            .map(|key| DeviceId(key.0 as u32))
            .collect();
        let massive = event.class == AnomalyClass::Massive
            || event
                .transitions
                .iter()
                .any(|t| t.from == AnomalyClass::Massive || t.to == AnomalyClass::Massive);
        spans.push(EventSpan {
            onset,
            last,
            devices,
            massive,
        });
    }
    Ok(score::score_events(&truth_spans(spec, run), &spans))
}

/// Reads a log written by [`record_monitor_log`] from `path`, regenerates
/// the scenario, and scores the log's events against the ground truth —
/// the offline counterpart of a live evaluation's `events` cell.
///
/// # Errors
///
/// [`EvalError::Log`] on an unreadable file or a log without a step-map
/// record; generator and monitor errors otherwise.
pub fn evaluate_log(
    path: impl AsRef<std::path::Path>,
    scenario: &dyn Scenario,
) -> Result<EventConfusion, EvalError> {
    let path = path.as_ref();
    let file = std::fs::File::open(path).map_err(|e| EvalError::Log {
        reason: format!("cannot open {}: {e}", path.display()),
    })?;
    let run = scenario.generate()?;
    evaluate_log_on(&scenario.spec(), &run, std::io::BufReader::new(file))
}

/// [`evaluate_monitor_on`] plus alert-pipeline quality: every sealed
/// report — the per-step ones *and* the bridging observations
/// `run_scenario` discards — is folded through an [`AlertSink`] over the
/// scenario's ISP tree (`shape` = cores, aggregations per core, DSLAMs
/// per aggregation, gateways per DSLAM — the scenario population must
/// equal the resulting gateway count), exactly the epoch stream a live
/// serve loop would see, and the resulting notification stream is scored
/// against the ground-truth event spans.
///
/// The metrics stay engine-independent: the sink consumes only report
/// deltas, which are byte-identical across engines.
///
/// # Errors
///
/// Propagates monitor failures.
pub fn evaluate_monitor_alerts_on(
    spec: &ScenarioSpec,
    run: &ScenarioRun,
    engine: Engine,
    shape: (usize, usize, usize, usize),
) -> Result<ScenarioScore, EvalError> {
    let (cores, aggs, dslams, gateways) = shape;
    // Offline scoring never throttles: the bucket refills a full
    // notification's worth of tokens per epoch and holds a deep reserve,
    // so the numbers measure detection and dedup, not the rate limiter.
    let config = AlertConfig {
        dedup_window: 16,
        bucket_capacity: 1024,
        refill_millitokens: 1_000_000,
    };
    let mut sink = AlertSink::new(
        Topology::tree(cores, aggs, dslams, gateways),
        KeyMap::GatewayIndex,
        config,
    );
    let mut monitor = build_monitor(spec, engine, StalenessPolicy::Reject)?;
    let mut reports: Vec<Report> = Vec::with_capacity(run.steps.len());
    // Step coordinate of every page/recurrence notification. Bridging
    // observations carry the upcoming step's coordinate — their closes
    // and recoveries belong to the span that just ended, which the
    // matching slack below absorbs.
    let mut notify_steps: Vec<usize> = Vec::new();

    fn feed_steps(
        monitor: &mut Monitor,
        sink: &mut AlertSink,
        reports: &mut Vec<Report>,
        notify_steps: &mut Vec<usize>,
        steps: &[anomaly_simulator::trace::TraceStep],
        base: usize,
    ) -> Result<(), EvalError> {
        for (offset, step) in steps.iter().enumerate() {
            if monitor.last_snapshot() != Some(step.pair.before()) {
                let bridging = monitor.observe(step.pair.before().clone())?;
                note_pages(sink.observe(&bridging), base + offset, notify_steps);
            }
            let report = monitor.observe(step.pair.after().clone())?;
            note_pages(sink.observe(&report), base + offset, notify_steps);
            reports.push(report);
        }
        Ok(())
    }

    let mut next = 0usize;
    for churn in &run.churn {
        let end = (churn.after_step + 1).clamp(next, run.steps.len());
        if next < end {
            feed_steps(
                &mut monitor,
                &mut sink,
                &mut reports,
                &mut notify_steps,
                &run.steps[next..end],
                next,
            )?;
            next = end;
        }
        for &key in &churn.leaves {
            monitor.leave(key)?;
        }
        for &key in &churn.joins {
            monitor.join(key)?;
        }
    }
    if next < run.steps.len() {
        feed_steps(
            &mut monitor,
            &mut sink,
            &mut reports,
            &mut notify_steps,
            &run.steps[next..],
            next,
        )?;
    }

    let method = match engine {
        Engine::Sequential => "paper-sequential".to_string(),
        Engine::Threaded { workers } => format!("paper-threaded-{workers}"),
    };
    let mut score = score_reports(spec, run, method, &reports);
    score.alerts = Some(alert_quality(spec, run, &sink, &notify_steps));
    Ok(score)
}

/// Records the step coordinate of each page/recurrence in `actions`.
fn note_pages(actions: Vec<anomaly_serve::AlertAction>, step: usize, out: &mut Vec<usize>) {
    for action in actions {
        if matches!(action.kind, AlertActionKind::Page | AlertActionKind::Recur) {
            out.push(step);
        }
    }
}

/// Steps of slack when matching a notification to a truth span: repairs
/// and debounced closes notify one to two steps after the span ends.
const PAGE_MATCH_SLACK: usize = 2;

/// Scores a sink's page/recurrence stream against the run's ground-truth
/// spans by step-window matching.
fn alert_quality(
    spec: &ScenarioSpec,
    run: &ScenarioRun,
    sink: &AlertSink,
    notify_steps: &[usize],
) -> AlertQuality {
    let truth = truth_spans(spec, run);
    let mut matched_notifications = 0u64;
    let mut paged = vec![false; truth.len()];
    for &step in notify_steps {
        let mut hit = false;
        for (i, span) in truth.iter().enumerate() {
            if span.onset <= step && step <= span.last + PAGE_MATCH_SLACK {
                paged[i] = true;
                hit = true;
            }
        }
        matched_notifications += u64::from(hit);
    }
    AlertQuality {
        truth_events: truth.len() as u64,
        alerts: sink.alerts_created(),
        pages: sink.pages_emitted(),
        recurrences: sink.recurrences(),
        resolved: sink.resolved(),
        distinct_signatures: sink.distinct_signatures() as u64,
        matched_notifications,
        notifications: notify_steps.len() as u64,
        paged_events: paged.iter().filter(|&&p| p).count() as u64,
    }
}

/// Builds the standard evaluation monitor for a scenario spec.
fn build_monitor(
    spec: &ScenarioSpec,
    engine: Engine,
    staleness: StalenessPolicy,
) -> Result<Monitor, EvalError> {
    let services = spec.services;
    let delta = spec.detector_delta;
    Ok(MonitorBuilder::new()
        .params(spec.params)
        .services(services)
        .engine(engine)
        .staleness(staleness)
        // Debounce 1 absorbs exactly the single discarded bridging epoch a
        // non-chained scenario inserts between steps, so "consecutive
        // steps" means the same thing to the tracker as to the
        // ground-truth event linker.
        .debounce(1)
        .history(64)
        .detector_factory(move |_| {
            Box::new(VectorDetector::homogeneous(services, move || {
                ThresholdDetector::with_delta(delta)
            }))
        })
        .fleet(spec.population)
        .build()?)
}

/// Scores a monitor's per-step reports against a run's ground truth, on
/// both axes: per-device confusion and event-level span matching.
fn score_reports(
    spec: &ScenarioSpec,
    run: &ScenarioRun,
    method: String,
    reports: &[Report],
) -> ScenarioScore {
    let per_step: Vec<Confusion> = run
        .steps
        .iter()
        .zip(reports)
        .map(|(step, report)| {
            let verdicts: Vec<(DeviceId, AnomalyClass)> = report
                .verdicts()
                .iter()
                .map(|v| (v.id, v.class()))
                .collect();
            score_one_step(spec, &step.truth, &verdicts)
        })
        .collect();
    let events = score::score_events(&truth_spans(spec, run), &spans_from_reports(reports));
    aggregate(spec.clone(), method, per_step, events)
}

/// Evaluates the paper's pipeline over a scenario replayed through the
/// **streaming** front-end: each step's snapshot is decomposed into
/// per-device `(key, measurements)` updates, shuffled with the adapter's
/// seed-fixed RNG, optionally dropped, ingested one by one, and sealed —
/// then scored exactly like [`evaluate_monitor`].
///
/// With [`StreamingScenario::drop_probability`]` == 0` the resulting
/// metrics are byte-identical to the batch path (asserted here — the run
/// fails loudly if the equivalence ever breaks); with drops the monitor
/// runs under `StalenessPolicy::CarryForward` and the score quantifies the
/// degradation.
///
/// # Errors
///
/// Propagates generator and monitor failures (including
/// `MonitorError::Ingest` when a drop streak exceeds
/// [`StreamingScenario::max_age`]).
pub fn evaluate_monitor_streaming<S: Scenario>(
    scenario: &StreamingScenario<S>,
    engine: Engine,
) -> Result<ScenarioScore, EvalError> {
    let spec = scenario.spec();
    let run = scenario.generate()?;
    let streamed = evaluate_monitor_streaming_on(
        &spec,
        &run,
        engine,
        scenario.shuffle_seed,
        scenario.drop_probability,
        scenario.max_age,
    )?;
    if scenario.drop_probability == 0.0 {
        let batch = evaluate_monitor_on(&spec, &run, engine)?;
        assert_eq!(
            batch.metrics_json(),
            streamed.metrics_json(),
            "{}: lossless streaming replay diverged from the batch path",
            spec.name
        );
    }
    Ok(streamed)
}

/// [`evaluate_monitor_streaming`] over a pre-generated run.
///
/// # Errors
///
/// Propagates monitor failures.
pub fn evaluate_monitor_streaming_on(
    spec: &ScenarioSpec,
    run: &ScenarioRun,
    engine: Engine,
    shuffle_seed: u64,
    drop_probability: f64,
    max_age: u64,
) -> Result<ScenarioScore, EvalError> {
    let staleness = if drop_probability > 0.0 {
        StalenessPolicy::CarryForward { max_age }
    } else {
        StalenessPolicy::Reject
    };
    let mut monitor = build_monitor(spec, engine, staleness)?;
    let mut rng = StdRng::seed_from_u64(shuffle_seed);
    // Keys with at least one sealed position: only they can be dropped
    // (carry-forward needs a row to bridge with).
    let mut established: BTreeSet<u64> = BTreeSet::new();

    /// Streams one snapshot's rows into the monitor (shuffled, lossy for
    /// established devices) and seals the epoch.
    fn stream_snapshot(
        monitor: &mut Monitor,
        rng: &mut StdRng,
        established: &mut BTreeSet<u64>,
        snapshot: &anomaly_qos::Snapshot,
        drop_probability: f64,
    ) -> Result<Report, EvalError> {
        let keys = monitor.keys().to_vec();
        let mut updates: Vec<(u64, Vec<f64>)> = snapshot
            .iter()
            .map(|(id, p)| (keys[id.index()].0, p.coords().to_vec()))
            .collect();
        updates.shuffle(rng);
        for (key, row) in updates {
            if drop_probability > 0.0
                && established.contains(&key)
                && rng.gen_bool(drop_probability)
            {
                continue;
            }
            monitor.ingest(key, row)?;
        }
        let report = monitor.seal()?;
        established.extend(monitor.keys().iter().map(|k| k.0));
        Ok(report)
    }

    // Whether each step chains onto the previous one, judged from the
    // run itself (after of step i-1 == before of step i) rather than from
    // the monitor's sealed state: a lossy seal carries stale rows, and
    // comparing against it would misread every step after the first drop
    // as a recording gap (feeding spurious bridging epochs and double
    // drop-draws). For a lossless replay the two checks coincide, so the
    // batch-path equivalence is unchanged.
    let chained: Vec<bool> = run
        .steps
        .iter()
        .enumerate()
        .map(|(i, step)| i > 0 && run.steps[i - 1].pair.after() == step.pair.before())
        .collect();

    let mut reports: Vec<Report> = Vec::with_capacity(run.steps.len());
    let stream_steps = |monitor: &mut Monitor,
                        rng: &mut StdRng,
                        established: &mut BTreeSet<u64>,
                        steps: &[anomaly_simulator::trace::TraceStep],
                        base: usize|
     -> Result<Vec<Report>, EvalError> {
        let mut out = Vec::with_capacity(steps.len());
        for (offset, step) in steps.iter().enumerate() {
            if !chained[base + offset] {
                // Gap-bridging observation, discarded like `run_scenario`'s.
                stream_snapshot(
                    monitor,
                    rng,
                    established,
                    step.pair.before(),
                    drop_probability,
                )?;
            }
            out.push(stream_snapshot(
                monitor,
                rng,
                established,
                step.pair.after(),
                drop_probability,
            )?);
        }
        Ok(out)
    };

    let mut next = 0usize;
    for churn in &run.churn {
        let end = (churn.after_step + 1).clamp(next, run.steps.len());
        if next < end {
            reports.extend(stream_steps(
                &mut monitor,
                &mut rng,
                &mut established,
                &run.steps[next..end],
                next,
            )?);
            next = end;
        }
        for &key in &churn.leaves {
            monitor.leave(key)?;
            established.remove(&key);
        }
        for &key in &churn.joins {
            monitor.join(key)?;
        }
    }
    if next < run.steps.len() {
        reports.extend(stream_steps(
            &mut monitor,
            &mut rng,
            &mut established,
            &run.steps[next..],
            next,
        )?);
    }

    let method = match engine {
        Engine::Sequential => "paper-streaming-sequential".to_string(),
        Engine::Threaded { workers } => format!("paper-streaming-threaded-{workers}"),
    };
    Ok(score_reports(spec, run, method, &reports))
}

/// Evaluates a centralized baseline on the identical scenario: each step's
/// ground-truth abnormal set is handed to the classifier (its classical
/// operating assumption — it needs the abnormal set collected at a
/// management node), and its answers are scored with the same confusion
/// types.
///
/// # Errors
///
/// Propagates generator failures.
pub fn evaluate_classifier(
    scenario: &dyn Scenario,
    classifier: &dyn Classifier,
) -> Result<ScenarioScore, EvalError> {
    Ok(evaluate_classifier_on(
        &scenario.spec(),
        &scenario.generate()?,
        classifier,
    ))
}

/// [`evaluate_classifier`] over a pre-generated run — use this to score
/// several baselines on one `generate()` call.
pub fn evaluate_classifier_on(
    spec: &ScenarioSpec,
    run: &ScenarioRun,
    classifier: &dyn Classifier,
) -> ScenarioScore {
    let mut step_classes: Vec<Vec<(DeviceId, AnomalyClass)>> = Vec::with_capacity(run.steps.len());
    let per_step: Vec<Confusion> = run
        .steps
        .iter()
        .map(|step| {
            let mut abnormal: Vec<DeviceId> = step.truth.abnormal_devices().iter().collect();
            abnormal.sort_unstable();
            let classes = classifier.classify(&step.pair, &abnormal);
            let confusion = score_one_step(spec, &step.truth, &classes);
            step_classes.push(classes);
            confusion
        })
        .collect();
    let events = score::score_events(
        &truth_spans(spec, run),
        &spans_from_step_classes(&step_classes),
    );
    aggregate(spec.clone(), classifier.name(), per_step, events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::{ChurnScenario, FleetScenario, NetworkFaultScenario};

    use anomaly_baselines::TessellationClassifier;
    use anomaly_core::Params;
    use anomaly_simulator::FleetSpec;

    fn fleet_scenario() -> FleetScenario {
        FleetScenario {
            name: "fleet".into(),
            fleet: FleetSpec {
                devices: 500,
                services: 2,
                massive_clusters: 2,
                cluster_size: 6,
                isolated: 4,
                cohesion: 0.05,
                calm_activity: 0.4,
                jitter: 0.02,
                shift: 0.3,
                seed: 21,
            },
            steps: 3,
            params: Params::new(0.03, 3).unwrap(),
        }
    }

    #[test]
    fn monitor_evaluation_scores_every_truth_device() {
        let scenario = fleet_scenario();
        let score = evaluate_monitor(&scenario, Engine::Sequential).unwrap();
        assert_eq!(score.scenario, "fleet");
        assert_eq!(score.method, "paper-sequential");
        assert_eq!(score.steps, 3);
        let truth_total: u64 = scenario
            .generate()
            .unwrap()
            .steps
            .iter()
            .map(|s| s.truth.abnormal_devices().len() as u64)
            .sum();
        assert_eq!(score.confusion.total(), truth_total);
        // The generator's clusters and loners are well separated: the
        // pipeline should be very accurate here.
        assert!(
            score.macro_f1() > 0.9,
            "fleet macro F1 {:.3}",
            score.macro_f1()
        );
        assert_eq!(score.instants.len(), 3);
    }

    #[test]
    fn network_evaluation_beats_or_meets_a_degenerate_baseline() {
        let scenario = NetworkFaultScenario::small_mixed("net", 3, 4);
        let paper = evaluate_monitor(&scenario, Engine::Sequential).unwrap();
        let degenerate = TessellationClassifier::new(1, 3);
        let baseline = evaluate_classifier(&scenario, &degenerate).unwrap();
        assert_eq!(paper.confusion.total(), baseline.confusion.total());
        assert!(
            paper.macro_f1() >= baseline.macro_f1(),
            "paper {:.3} vs 1-cell tessellation {:.3}",
            paper.macro_f1(),
            baseline.macro_f1()
        );
        // A 1-cell tessellation calls every CPE fault massive.
        assert!(baseline.confusion.mistaken() > 0);
    }

    #[test]
    fn churn_is_applied_between_segments() {
        let scenario = ChurnScenario {
            fleet: fleet_scenario(),
            churn_devices: 25,
            churn_every: 1,
        };
        let churned = evaluate_monitor(&scenario, Engine::Sequential).unwrap();
        assert_eq!(churned.steps, 3);
        // Every truth device is still accounted for: joiners that flag
        // while warming are scored as missing, not dropped.
        let truth_total: u64 = scenario
            .generate()
            .unwrap()
            .steps
            .iter()
            .map(|s| s.truth.abnormal_devices().len() as u64)
            .sum();
        assert_eq!(churned.confusion.total(), truth_total);
    }

    #[test]
    fn lossless_streaming_replay_matches_the_batch_path() {
        let scenario = StreamingScenario::shuffled(fleet_scenario(), 77);
        let streamed = evaluate_monitor_streaming(&scenario, Engine::Sequential).unwrap();
        // evaluate_monitor_streaming already asserts byte equality with the
        // batch path internally; double-check the visible surface.
        let batch = evaluate_monitor(&scenario.inner, Engine::Sequential).unwrap();
        assert_eq!(batch.metrics_json(), streamed.metrics_json());
        assert_eq!(streamed.method, "paper-streaming-sequential");
    }

    #[test]
    fn lossy_streaming_replay_still_scores_every_truth_device() {
        let scenario = StreamingScenario {
            inner: fleet_scenario(),
            shuffle_seed: 78,
            drop_probability: 0.2,
            max_age: 8,
        };
        let streamed = evaluate_monitor_streaming(&scenario, Engine::Sequential).unwrap();
        let truth_total: u64 = scenario
            .generate()
            .unwrap()
            .steps
            .iter()
            .map(|s| s.truth.abnormal_devices().len() as u64)
            .sum();
        assert_eq!(streamed.confusion.total(), truth_total);
    }

    #[test]
    fn json_renderings_are_stable() {
        let score = evaluate_monitor(&fleet_scenario(), Engine::Sequential).unwrap();
        let json = score.to_json();
        assert!(json.contains("\"scenario\":\"fleet\""));
        assert!(json.contains("\"method\":\"paper-sequential\""));
        assert!(json.contains("\"macro_f1\""));
        assert!(json.contains("\"event_f1\""));
        assert!(json.contains("\"mean_detection_latency\""));
        assert_eq!(json, score.to_json());
        assert!(score.metrics_json().starts_with("{\"steps\":3"));
    }

    #[test]
    fn persistent_anomalies_are_tracked_as_single_events() {
        use crate::workloads::PersistentAnomalyScenario;
        let scenario = PersistentAnomalyScenario {
            devices: 120,
            ..PersistentAnomalyScenario::standard("persist-eval", 31)
        };
        let score = evaluate_monitor(&scenario, Engine::Sequential).unwrap();
        // Device-level: the well-separated cluster and flappers classify
        // cleanly.
        assert!(
            score.macro_f1() > 0.9,
            "persistent macro F1 {:.3}",
            score.macro_f1()
        );
        // Event-level: every ground-truth event is found, nothing spurious
        // is invented, and detection is immediate (the detectors flag the
        // very first anomalous jump).
        assert_eq!(score.events.recall(), 1.0, "{:?}", score.events);
        assert_eq!(score.events.precision(), 1.0, "{:?}", score.events);
        assert_eq!(score.events.mean_latency(), 0.0, "{:?}", score.events);
        // The tracker correlates: the 5-step cluster outage and the
        // flappers' recurrences produce *fewer* predicted events than
        // truth spans (debounce merges recurrences), never more.
        assert!(
            score.events.predicted_events <= score.events.truth_events,
            "{:?}",
            score.events
        );
        assert!(score.events.predicted_events > scenario.flappers as u64);
    }

    #[test]
    fn alert_quality_scores_the_network_scenario() {
        let scenario = NetworkFaultScenario::small_mixed("net-alerts", 3, 4);
        let shape = scenario.config.shape;
        let run = scenario.generate().unwrap();
        let spec = scenario.spec();
        let plain = evaluate_monitor_on(&spec, &run, Engine::Sequential).unwrap();
        let scored = evaluate_monitor_alerts_on(&spec, &run, Engine::Sequential, shape).unwrap();
        // The alert fold rides along without disturbing the base metrics.
        assert_eq!(plain.confusion, scored.confusion);
        assert!(plain.alerts.is_none());
        let quality = scored.alerts.expect("alert quality attached");
        assert!(quality.truth_events > 0);
        assert!(quality.alerts > 0, "{quality:?}");
        // The scenario faults every step, so consecutive outages roll
        // into continuing incidents: recall is bounded by dedup, not
        // detection — half the truth spans fold into ongoing alerts.
        assert!(
            quality.page_recall() >= 0.5,
            "onsets must page: {quality:?}"
        );
        assert!(quality.resolved >= 1, "{quality:?}");
        assert!(quality.distinct_signatures >= 1, "{quality:?}");
        assert!(
            quality.page_precision() > 0.5,
            "pages should land inside truth spans: {quality:?}"
        );
        let json = scored.metrics_json();
        assert!(json.contains("\"alerts\":{\"truth_events\""), "{json}");
        assert!(json.contains("\"page_f1\""), "{json}");
        // Engine independence extends to the alert fold.
        let threaded =
            evaluate_monitor_alerts_on(&spec, &run, Engine::Threaded { workers: 3 }, shape)
                .unwrap();
        assert_eq!(scored.metrics_json(), threaded.metrics_json());
    }

    #[test]
    fn baseline_event_spans_come_from_linked_step_groups() {
        let scenario = fleet_scenario();
        let baseline = TessellationClassifier::new(16, 3);
        let score = evaluate_classifier(&scenario, &baseline).unwrap();
        assert!(score.events.predicted_events > 0);
        assert!(score.events.truth_events > 0);
        let json = score.metrics_json();
        assert!(json.contains("\"events\":{\"truth_events\""), "{json}");
    }
}
