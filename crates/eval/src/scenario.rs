//! The [`Scenario`] trait: one interface over every workload generator.
//!
//! A scenario is a deterministic recipe for a sequence of labelled
//! intervals — each a snapshot pair plus the real scenario `R_k`
//! ([`TraceStep`]) — optionally interleaved with fleet-membership churn.
//! The evaluation runner drives a [`Monitor`] (or a centralized baseline)
//! over the generated run and scores its verdicts against the ground truth.
//!
//! [`Monitor`]: anomaly_characterization::pipeline::Monitor

use crate::error::EvalError;
use anomaly_core::Params;
use anomaly_simulator::trace::TraceStep;

/// Shape and operating point of a scenario: everything the runner needs to
/// configure a monitor before the first snapshot arrives.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Human-readable scenario name (stable; keyed in `BENCH_eval.json`).
    pub name: String,
    /// Fleet size every generated snapshot covers.
    pub population: usize,
    /// Services per device (QoS space dimension `d`).
    pub services: usize,
    /// Characterization operating point (`r`, `τ`) the scenario is scored
    /// under.
    pub params: Params,
    /// Per-service jump threshold for the error-detection functions: above
    /// the workload's calm noise, below its anomalous displacement.
    pub detector_delta: f64,
}

/// One fleet-membership change, applied between two scenario steps.
///
/// Keys are the stable [`DeviceKey`] values of the monitor. To keep
/// ground-truth device ids positional across the change, scenarios churn
/// **tail slots only**: `leaves` lists keys in descending dense-slot order
/// (so each removal pops the current last slot and no survivor moves), and
/// `joins` re-fills the vacated tail in ascending order.
///
/// [`DeviceKey`]: anomaly_characterization::pipeline::DeviceKey
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChurnEvent {
    /// Index of the last step observed before the change applies.
    pub after_step: usize,
    /// Keys leaving the fleet, in descending dense-slot order.
    pub leaves: Vec<u64>,
    /// Keys joining the fleet, appended in order.
    pub joins: Vec<u64>,
}

/// A generated scenario: labelled steps plus membership changes.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioRun {
    /// The labelled intervals, in playback order.
    pub steps: Vec<TraceStep>,
    /// Membership changes, sorted by [`ChurnEvent::after_step`]. Empty for
    /// fixed-fleet workloads.
    pub churn: Vec<ChurnEvent>,
}

/// A workload generator the evaluation runner can drive and score.
///
/// Implementations must be deterministic: two `generate` calls on the same
/// value produce identical runs, so evaluation scores are reproducible and
/// engine configurations can be compared on byte-identical inputs.
pub trait Scenario {
    /// The scenario's shape and operating point.
    fn spec(&self) -> ScenarioSpec;

    /// Generates the full run.
    ///
    /// # Errors
    ///
    /// Propagates configuration failures of the underlying generator.
    fn generate(&self) -> Result<ScenarioRun, EvalError>;
}
