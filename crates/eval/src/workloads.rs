//! The workload zoo: every generator in the workspace behind the one
//! [`Scenario`] interface.
//!
//! * [`SimScenario`] — the paper's Section VII-A Monte-Carlo protocol
//!   (`anomaly-simulator`), chained across intervals;
//! * [`NetworkFaultScenario`] — ISP fault injection on a synthetic
//!   core/aggregation/DSLAM/gateway tree (`anomaly-network`): DSLAM
//!   outages are the massive events, CPE faults the isolated ones;
//! * [`AdversaryScenario`] — the Section VIII collusion attack: a
//!   coalition of fabricated devices shadows an isolated victim's
//!   trajectory to suppress its operator report;
//! * [`FleetScenario`] — the large-fleet load generator
//!   (`simulator::fleet`): co-moving clusters and lone jumpers over a calm
//!   jittering population;
//! * [`ChurnScenario`] — the same fleet with periodic membership
//!   replacement, exercising the monitor's surviving-cohort path;
//! * [`RecordedScenario`] — replay of a recorded [`Trace`] ("send me the
//!   scenario that broke").

use crate::error::EvalError;
use crate::scenario::{ChurnEvent, Scenario, ScenarioRun, ScenarioSpec};
use anomaly_core::Params;
use anomaly_network::{FaultTarget, NetworkConfig, NetworkSimulation, NodeId};
use anomaly_qos::{DeviceId, QosSpace, Snapshot, StatePair};
use anomaly_simulator::trace::{Trace, TraceError, TraceStep};
use anomaly_simulator::{
    generate_fleet, ErrorEvent, FleetSpec, GroundTruth, ScenarioConfig, Simulation,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The Section VII-A Monte-Carlo generator as a scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct SimScenario {
    /// Scenario name.
    pub name: String,
    /// Generator configuration (population, error mix, `r`, `τ`, seed).
    pub config: ScenarioConfig,
    /// Intervals to generate.
    pub steps: usize,
    /// Detector jump threshold. Calm simulated devices do not move at all,
    /// so any value below the typical error displacement works.
    pub detector_delta: f64,
}

impl SimScenario {
    /// A named scenario at the paper's operating point.
    pub fn paper(name: impl Into<String>, seed: u64, steps: usize) -> Self {
        SimScenario {
            name: name.into(),
            config: ScenarioConfig::paper_defaults(seed),
            steps,
            detector_delta: 0.02,
        }
    }
}

impl Scenario for SimScenario {
    fn spec(&self) -> ScenarioSpec {
        ScenarioSpec {
            name: self.name.clone(),
            population: self.config.n,
            services: self.config.dim,
            params: self.config.params,
            detector_delta: self.detector_delta,
        }
    }

    fn generate(&self) -> Result<ScenarioRun, EvalError> {
        let mut sim = Simulation::new(self.config.clone())?;
        let steps = (0..self.steps)
            .map(|_| {
                let outcome = sim.step();
                TraceStep {
                    pair: outcome.pair,
                    truth: outcome.truth,
                }
            })
            .collect();
        Ok(ScenarioRun {
            steps,
            churn: Vec::new(),
        })
    }
}

/// ISP fault injection on a synthetic access tree.
///
/// Each step starts from a fully repaired network, degrades
/// `dslam_faults_per_step` distinct DSLAMs (massive events: every
/// downstream gateway drops coherently) and up to `cpe_faults_per_step`
/// gateways on *unfaulted* DSLAM subtrees (isolated events), so the
/// impacted sets are pairwise disjoint — restriction R1 holds by
/// construction. Fault choices rotate deterministically with the step
/// index.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkFaultScenario {
    /// Scenario name.
    pub name: String,
    /// Tree shape, services, measurement model, and jitter seed.
    pub config: NetworkConfig,
    /// Characterization operating point.
    pub params: Params,
    /// Intervals to generate.
    pub steps: usize,
    /// DSLAM outages per step.
    pub dslam_faults_per_step: usize,
    /// CPE (single-gateway) faults per step; capped at the number of
    /// DSLAMs left unfaulted.
    pub cpe_faults_per_step: usize,
    /// Health drop of faulted network elements, in `(0, 1]`.
    pub dslam_severity: f64,
    /// Health drop of faulted gateways, in `(0, 1]`.
    pub cpe_severity: f64,
    /// Detector jump threshold: above the measurement jitter, below the
    /// severity-induced QoS drop.
    pub detector_delta: f64,
}

impl NetworkFaultScenario {
    /// A mixed workload on the small 64-gateway tree: one DSLAM outage and
    /// one CPE fault per step.
    pub fn small_mixed(name: impl Into<String>, seed: u64, steps: usize) -> Self {
        NetworkFaultScenario {
            name: name.into(),
            config: NetworkConfig::small(seed),
            params: Params::new(0.02, 3).expect("the network operating point is valid"),
            steps,
            dslam_faults_per_step: 1,
            cpe_faults_per_step: 1,
            dslam_severity: 0.5,
            cpe_severity: 0.7,
            detector_delta: 0.1,
        }
    }
}

impl Scenario for NetworkFaultScenario {
    fn spec(&self) -> ScenarioSpec {
        let (c, a, d, g) = self.config.shape;
        ScenarioSpec {
            name: self.name.clone(),
            population: c * a * d * g,
            services: self.config.services.len(),
            params: self.params,
            detector_delta: self.detector_delta,
        }
    }

    fn generate(&self) -> Result<ScenarioRun, EvalError> {
        if self.dslam_faults_per_step == 0 && self.cpe_faults_per_step == 0 {
            return Err(EvalError::InvalidScenario {
                reason: "a network fault scenario needs at least one fault per step".into(),
            });
        }
        let mut net = NetworkSimulation::new(self.config.clone())?;
        let dslams: Vec<NodeId> = net.topology().dslams().to_vec();
        let node_faults = self.dslam_faults_per_step.min(dslams.len());
        let mut steps = Vec::with_capacity(self.steps);
        for s in 0..self.steps {
            net.repair_all();
            // Distinct DSLAMs: a rotating window over the DSLAM list.
            let chosen: Vec<NodeId> = (0..node_faults)
                .map(|i| dslams[(s * node_faults + i) % dslams.len()])
                .collect();
            let mut faults: Vec<FaultTarget> = chosen
                .iter()
                .map(|&node| FaultTarget::Node {
                    node,
                    severity: self.dslam_severity,
                })
                .collect();
            // CPE faults live on subtrees no DSLAM fault touches (R1).
            let free: Vec<NodeId> = dslams
                .iter()
                .copied()
                .filter(|d| !chosen.contains(d))
                .collect();
            let cpe_faults = self.cpe_faults_per_step.min(free.len());
            for j in 0..cpe_faults {
                let subtree = net.topology().downstream_gateways(free[j]);
                let gateway = subtree[(s + j) % subtree.len()];
                faults.push(FaultTarget::Gateway {
                    gateway,
                    severity: self.cpe_severity,
                });
            }
            let is_cpe: Vec<bool> = (0..faults.len()).map(|i| i >= node_faults).collect();
            let outcome = net.step(faults);
            let events: Vec<ErrorEvent> = outcome
                .impacted
                .iter()
                .zip(&is_cpe)
                .filter(|(impacted, _)| !impacted.is_empty())
                .map(|(impacted, &cpe)| ErrorEvent {
                    impacted: impacted.clone(),
                    intended_isolated: cpe,
                })
                .collect();
            steps.push(TraceStep {
                pair: outcome.pair,
                truth: GroundTruth::new(events),
            });
        }
        Ok(ScenarioRun {
            steps,
            churn: Vec::new(),
        })
    }
}

/// The collusion attack of Section VIII as a standing workload.
///
/// The honest population follows a [`SimScenario`]; `coalition` fabricated
/// devices (ids `n..n+coalition`) park at a calm position and, whenever a
/// step contains a lone isolated victim, shadow its trajectory within
/// `r/2` at both instants. The coalition's own event is recorded in the
/// ground truth (intended massive — the attackers co-move by design), so
/// the scoring shows both sides of the attack: the victim's suppressed
/// isolated verdict and the coalition's fabricated motion.
#[derive(Debug, Clone, PartialEq)]
pub struct AdversaryScenario {
    /// Scenario name.
    pub name: String,
    /// Honest-population generator configuration.
    pub config: ScenarioConfig,
    /// Fabricated devices per attack.
    pub coalition: usize,
    /// Intervals to generate.
    pub steps: usize,
    /// Detector jump threshold (see [`SimScenario::detector_delta`]).
    pub detector_delta: f64,
    /// Seed of the shadow-jitter RNG (independent of the honest world).
    pub shadow_seed: u64,
}

impl Scenario for AdversaryScenario {
    fn spec(&self) -> ScenarioSpec {
        ScenarioSpec {
            name: self.name.clone(),
            population: self.config.n + self.coalition,
            services: self.config.dim,
            params: self.config.params,
            detector_delta: self.detector_delta,
        }
    }

    fn generate(&self) -> Result<ScenarioRun, EvalError> {
        let mut sim = Simulation::new(self.config.clone())?;
        let mut rng = StdRng::seed_from_u64(self.shadow_seed);
        let n = self.config.n;
        let dim = self.config.dim;
        let space = QosSpace::new(dim).expect("the simulator validated dim >= 1");
        let park = vec![0.95; dim];
        let jitter = self.config.params.radius() / 2.0;
        let mut steps = Vec::with_capacity(self.steps);
        for _ in 0..self.steps {
            let outcome = sim.step();
            let rows_of = |snapshot: &Snapshot| -> Vec<Vec<f64>> {
                (0..n)
                    .map(|i| snapshot.position(DeviceId(i as u32)).coords().to_vec())
                    .collect()
            };
            let mut before_rows = rows_of(outcome.pair.before());
            let mut after_rows = rows_of(outcome.pair.after());
            let mut events = outcome.truth.events().to_vec();
            // A lone isolated victim: the device whose report the
            // coalition wants to swallow.
            let victim = outcome
                .truth
                .events()
                .iter()
                .find(|e| e.impacted.len() == 1)
                .and_then(|e| e.impacted.iter().next());
            match victim {
                Some(victim) if self.coalition > 0 => {
                    let shadow = |origin: &[f64], rng: &mut StdRng| -> Vec<f64> {
                        origin
                            .iter()
                            .map(|c| (c + rng.gen_range(-jitter..=jitter)).clamp(0.0, 1.0))
                            .collect()
                    };
                    let victim_before = outcome.pair.before().position(victim).coords().to_vec();
                    let victim_after = outcome.pair.after().position(victim).coords().to_vec();
                    for _ in 0..self.coalition {
                        before_rows.push(shadow(&victim_before, &mut rng));
                        after_rows.push(shadow(&victim_after, &mut rng));
                    }
                    events.push(ErrorEvent {
                        impacted: (n..n + self.coalition)
                            .map(|i| DeviceId(i as u32))
                            .collect(),
                        intended_isolated: false,
                    });
                }
                _ => {
                    // No victim this interval: the coalition idles (no
                    // motion, no flags).
                    for _ in 0..self.coalition {
                        before_rows.push(park.clone());
                        after_rows.push(park.clone());
                    }
                }
            }
            let pair = StatePair::new(
                Snapshot::from_rows(&space, before_rows).expect("rows are clamped to the cube"),
                Snapshot::from_rows(&space, after_rows).expect("rows are clamped to the cube"),
            )
            .expect("both snapshots cover n + coalition devices");
            steps.push(TraceStep {
                pair,
                truth: GroundTruth::new(events),
            });
        }
        Ok(ScenarioRun {
            steps,
            churn: Vec::new(),
        })
    }
}

/// The large-fleet load generator as a scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetScenario {
    /// Scenario name.
    pub name: String,
    /// Fleet shape and anomaly mix.
    pub fleet: FleetSpec,
    /// Anomalous intervals to generate.
    pub steps: usize,
    /// Characterization operating point; keep the window `2r` at or above
    /// the fleet's `cohesion` so clusters register as consistent motions.
    pub params: Params,
}

impl FleetScenario {
    /// Detector threshold between the fleet's calm jitter and its
    /// anomalous shift.
    fn detector_delta(&self) -> f64 {
        (self.fleet.jitter + self.fleet.shift) / 2.0
    }

    fn trace_steps(&self) -> Result<Vec<TraceStep>, EvalError> {
        let instants = generate_fleet(&self.fleet, self.steps)?;
        Ok(instants
            .windows(2)
            .map(|w| TraceStep {
                pair: StatePair::new(w[0].snapshot.clone(), w[1].snapshot.clone())
                    .expect("chained instants share the fleet shape"),
                truth: w[1].truth.clone(),
            })
            .collect())
    }
}

impl Scenario for FleetScenario {
    fn spec(&self) -> ScenarioSpec {
        ScenarioSpec {
            name: self.name.clone(),
            population: self.fleet.devices,
            services: self.fleet.services,
            params: self.params,
            detector_delta: self.detector_delta(),
        }
    }

    fn generate(&self) -> Result<ScenarioRun, EvalError> {
        Ok(ScenarioRun {
            steps: self.trace_steps()?,
            churn: Vec::new(),
        })
    }
}

/// A [`FleetScenario`] with periodic membership replacement: after every
/// `churn_every` steps, the `churn_devices` devices on the tail dense
/// slots leave and fresh ones join in their place, so the monitor
/// characterizes the surviving cohort and warms the joiners — while
/// ground-truth device ids stay positional.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnScenario {
    /// The underlying fleet workload.
    pub fleet: FleetScenario,
    /// Tail devices replaced at each churn point (must be below the fleet
    /// size).
    pub churn_devices: usize,
    /// Steps between churn points (at least 1).
    pub churn_every: usize,
}

impl Scenario for ChurnScenario {
    fn spec(&self) -> ScenarioSpec {
        self.fleet.spec()
    }

    fn generate(&self) -> Result<ScenarioRun, EvalError> {
        let n = self.fleet.fleet.devices;
        if self.churn_devices == 0 || self.churn_devices >= n {
            return Err(EvalError::InvalidScenario {
                reason: format!(
                    "churn_devices must be in 1..{n}, got {}",
                    self.churn_devices
                ),
            });
        }
        if self.churn_every == 0 {
            return Err(EvalError::InvalidScenario {
                reason: "churn_every must be at least 1".into(),
            });
        }
        let steps = self.fleet.trace_steps()?;
        // Keys currently occupying the tail slots, slot-ascending.
        let mut tail_keys: Vec<u64> = ((n - self.churn_devices) as u64..n as u64).collect();
        let mut next_key = n as u64;
        let mut churn = Vec::new();
        let mut at = self.churn_every;
        while at < steps.len() {
            let joins: Vec<u64> = (next_key..next_key + self.churn_devices as u64).collect();
            churn.push(ChurnEvent {
                after_step: at - 1,
                // Descending slot order: every leave pops the current last
                // dense slot, so no surviving device changes id.
                leaves: tail_keys.iter().rev().copied().collect(),
                joins: joins.clone(),
            });
            tail_keys = joins;
            next_key += self.churn_devices as u64;
            at += self.churn_every;
        }
        Ok(ScenarioRun { steps, churn })
    }
}

/// Long-lived anomalies and flapping devices: the event-tracker workload.
///
/// Three populations share a 2-service QoS cube:
///
/// * a **massive cluster** (devices `0..cluster_size`) parked near the top
///   of the cube that degrades coherently — one downward `shift` per step —
///   for `duration` consecutive steps starting at `onset`: one long-lived
///   network event whose ground truth spans many steps;
/// * **flappers** (the next `flappers` devices), each alone in its own
///   neighbourhood, that jump out by `shift` at steps `≡ 0 (mod
///   flap_period)` and back at steps `≡ 1`, then hold still — isolated
///   anomalies that recur with quiet gaps in between;
/// * a **calm majority** jittering below the detector threshold.
///
/// Per-step device verdicts score exactly like every other workload; the
/// point of this one is the *event* axis: the cluster must surface as one
/// event (not `duration` disjoint massive verdicts) and each flapper's
/// recurrences must stay temporally correlated, which the event-level
/// precision/recall/latency metrics quantify.
#[derive(Debug, Clone, PartialEq)]
pub struct PersistentAnomalyScenario {
    /// Scenario name.
    pub name: String,
    /// Fleet size (cluster + flappers + calm majority).
    pub devices: usize,
    /// Devices in the long-lived massive cluster.
    pub cluster_size: usize,
    /// Step the cluster starts degrading.
    pub onset: usize,
    /// Consecutive degrading steps.
    pub duration: usize,
    /// Number of flapping devices.
    pub flappers: usize,
    /// Flap cycle length (`>= 2`): out at `step ≡ 0`, back at `step ≡ 1`,
    /// still otherwise — so each cycle has `flap_period - 2` quiet steps.
    pub flap_period: usize,
    /// Steps to generate.
    pub steps: usize,
    /// Characterization operating point.
    pub params: Params,
    /// Calm per-coordinate jitter, strictly below the detector threshold.
    pub jitter: f64,
    /// Anomalous per-step displacement, strictly above it.
    pub shift: f64,
    /// Seed for placement and calm jitter.
    pub seed: u64,
}

impl PersistentAnomalyScenario {
    /// A standard instance: 800 devices, an 8-device cluster degrading for
    /// 5 steps from step 2, four period-3 flappers, 10 steps.
    pub fn standard(name: impl Into<String>, seed: u64) -> Self {
        PersistentAnomalyScenario {
            name: name.into(),
            devices: 800,
            cluster_size: 8,
            onset: 2,
            duration: 5,
            flappers: 4,
            flap_period: 3,
            steps: 10,
            params: Params::new(0.03, 3).expect("the standard operating point is valid"),
            jitter: 0.01,
            shift: 0.15,
            seed,
        }
    }

    fn detector_delta(&self) -> f64 {
        (self.jitter + self.shift) / 2.0
    }
}

impl Scenario for PersistentAnomalyScenario {
    fn spec(&self) -> ScenarioSpec {
        ScenarioSpec {
            name: self.name.clone(),
            population: self.devices,
            services: 2,
            params: self.params,
            detector_delta: self.detector_delta(),
        }
    }

    fn generate(&self) -> Result<ScenarioRun, EvalError> {
        let window = self.params.window();
        let invalid = |reason: String| EvalError::InvalidScenario { reason };
        if self.flap_period < 2 {
            return Err(invalid(format!(
                "flap_period must be at least 2, got {}",
                self.flap_period
            )));
        }
        if self.cluster_size + self.flappers > self.devices {
            return Err(invalid(format!(
                "{} cluster + {} flapper devices exceed the fleet of {}",
                self.cluster_size, self.flappers, self.devices
            )));
        }
        if self.shift <= self.jitter {
            return Err(invalid(format!(
                "shift {} must exceed the calm jitter {} for the detector to separate them",
                self.shift, self.jitter
            )));
        }
        let active_steps = self.duration.min(self.steps.saturating_sub(self.onset));
        let cluster_top = 0.88;
        if cluster_top - active_steps as f64 * self.shift < 0.01 {
            return Err(invalid(format!(
                "{active_steps} drift steps of {} leave the unit cube",
                self.shift
            )));
        }
        // Flappers sit on one column, vertically separated by more than the
        // vicinity window so they never co-move with each other.
        let spacing = 2.0 * window + 0.02;
        if 0.1 + self.flappers as f64 * spacing > 0.95 || 0.06 + self.shift > 0.80 {
            return Err(invalid(format!(
                "{} flappers at spacing {spacing:.3} (shift {}) do not fit the cube",
                self.flappers, self.shift
            )));
        }

        let space = QosSpace::new(2).expect("two services is a valid space");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let spread = window.min(0.08) / 2.0;
        let mut pos: Vec<[f64; 2]> = (0..self.devices)
            .map(|i| {
                if i < self.cluster_size {
                    [
                        cluster_top + rng.gen_range(0.0..spread),
                        cluster_top + rng.gen_range(0.0..spread),
                    ]
                } else if i < self.cluster_size + self.flappers {
                    let f = i - self.cluster_size;
                    [0.06, 0.1 + f as f64 * spacing]
                } else {
                    [rng.gen_range(0.15..0.80), rng.gen_range(0.15..0.80)]
                }
            })
            .collect();

        let snapshot = |pos: &[[f64; 2]]| -> Snapshot {
            Snapshot::from_rows(&space, pos.iter().map(|p| p.to_vec()).collect())
                .expect("generated rows stay in the unit cube")
        };
        let mut previous = snapshot(&pos);
        let mut steps = Vec::with_capacity(self.steps);
        for step in 0..self.steps {
            let mut events: Vec<ErrorEvent> = Vec::new();
            // The long-lived cluster: one coherent downward shift per
            // active step, every cluster device impacted.
            if step >= self.onset && step < self.onset + self.duration {
                for p in pos.iter_mut().take(self.cluster_size) {
                    p[1] -= self.shift;
                }
                events.push(ErrorEvent {
                    impacted: (0..self.cluster_size).map(|i| DeviceId(i as u32)).collect(),
                    intended_isolated: false,
                });
            }
            // Flappers: out, back, still, repeat.
            for f in 0..self.flappers {
                let id = self.cluster_size + f;
                let jumped = match step % self.flap_period {
                    0 => {
                        pos[id][0] += self.shift;
                        true
                    }
                    1 => {
                        pos[id][0] -= self.shift;
                        true
                    }
                    _ => false,
                };
                if jumped {
                    events.push(ErrorEvent {
                        impacted: anomaly_core::DeviceSet::singleton(DeviceId(id as u32)),
                        intended_isolated: true,
                    });
                }
            }
            // The calm majority random-walks below the detector threshold.
            for p in pos.iter_mut().skip(self.cluster_size + self.flappers) {
                for c in p.iter_mut() {
                    *c = (*c + rng.gen_range(-self.jitter..=self.jitter)).clamp(0.01, 0.99);
                }
            }
            let current = snapshot(&pos);
            steps.push(TraceStep {
                pair: StatePair::new(previous, current.clone())
                    .expect("chained snapshots share the fleet shape"),
                truth: GroundTruth::new(events),
            });
            previous = current;
        }
        Ok(ScenarioRun {
            steps,
            churn: Vec::new(),
        })
    }
}

/// Replays any scenario through the monitor's streaming front-end
/// (`ingest` + `seal`) instead of the batch `observe` path: each step's
/// snapshot is decomposed into per-device updates, shuffled with a
/// seed-fixed RNG, optionally dropped, and sealed once.
///
/// With `drop_probability == 0` the streamed replay is **byte-identical**
/// to the batch path — same verdicts, same scores — which
/// [`evaluate_monitor_streaming`](crate::evaluate_monitor_streaming)
/// asserts cheaply and `crates/eval/tests/streaming_equivalence.rs` pins
/// across every workload. With a positive drop probability, dropped
/// devices are bridged by `StalenessPolicy::CarryForward { max_age }`,
/// quantifying how gracefully accuracy degrades under report loss.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamingScenario<S> {
    /// The workload being replayed.
    pub inner: S,
    /// Seed of the arrival-order shuffle (and the drop draws).
    pub shuffle_seed: u64,
    /// Per-update probability of losing the report, in `[0, 1)`. Only
    /// devices with an already-sealed position are ever dropped, so the
    /// carry-forward policy always has a row to bridge with.
    pub drop_probability: f64,
    /// Carry-forward bound handed to the monitor when drops are enabled.
    pub max_age: u64,
}

impl<S: Scenario> StreamingScenario<S> {
    /// Wraps a scenario for lossless streaming replay (shuffle only).
    pub fn shuffled(inner: S, shuffle_seed: u64) -> Self {
        StreamingScenario {
            inner,
            shuffle_seed,
            drop_probability: 0.0,
            max_age: 1,
        }
    }
}

impl<S: Scenario> Scenario for StreamingScenario<S> {
    fn spec(&self) -> ScenarioSpec {
        self.inner.spec()
    }

    fn generate(&self) -> Result<ScenarioRun, EvalError> {
        self.inner.generate()
    }
}

/// Replay of a recorded trace as a scenario — regression fixtures and
/// "send me the scenario that broke" workflows, scored like any live
/// workload.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordedScenario {
    /// Scenario name.
    pub name: String,
    /// The recorded steps and parameters.
    pub trace: Trace,
    /// Detector jump threshold for the replay monitor.
    pub detector_delta: f64,
}

impl RecordedScenario {
    /// Parses a trace from its v1 text format.
    ///
    /// # Errors
    ///
    /// Propagates [`TraceError`] from the parser.
    pub fn from_text(
        name: impl Into<String>,
        text: &str,
        detector_delta: f64,
    ) -> Result<Self, TraceError> {
        Ok(RecordedScenario {
            name: name.into(),
            trace: Trace::from_text(text)?,
            detector_delta,
        })
    }
}

impl Scenario for RecordedScenario {
    fn spec(&self) -> ScenarioSpec {
        ScenarioSpec {
            name: self.name.clone(),
            population: self.trace.n,
            services: self.trace.dim,
            params: self.trace.params,
            detector_delta: self.detector_delta,
        }
    }

    fn generate(&self) -> Result<ScenarioRun, EvalError> {
        Ok(ScenarioRun {
            steps: self.trace.steps.clone(),
            churn: Vec::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anomaly_core::DeviceSet;

    fn assert_r1(run: &ScenarioRun) {
        for (k, step) in run.steps.iter().enumerate() {
            let mut seen = DeviceSet::new();
            for event in step.truth.events() {
                for id in &event.impacted {
                    assert!(seen.insert(id), "step {k}: device {id} in two events");
                }
            }
        }
    }

    #[test]
    fn sim_scenario_generates_chained_labelled_steps() {
        let mut config = ScenarioConfig::paper_defaults(3);
        config.n = 200;
        config.errors_per_step = 4;
        let scenario = SimScenario {
            name: "sim".into(),
            config,
            steps: 3,
            detector_delta: 0.02,
        };
        let run = scenario.generate().unwrap();
        assert_eq!(run.steps.len(), 3);
        assert!(run.churn.is_empty());
        assert_r1(&run);
        // Chained: after of step k is before of step k+1.
        for w in run.steps.windows(2) {
            assert_eq!(w[0].pair.after(), w[1].pair.before());
        }
        // Deterministic.
        assert_eq!(scenario.generate().unwrap(), run);
    }

    #[test]
    fn network_scenario_keeps_events_disjoint_and_labelled() {
        let scenario = NetworkFaultScenario::small_mixed("net", 5, 4);
        let run = scenario.generate().unwrap();
        assert_eq!(run.steps.len(), 4);
        assert_r1(&run);
        let tau = scenario.params.tau();
        for step in &run.steps {
            let massive = step
                .truth
                .events()
                .iter()
                .filter(|e| e.is_massive(tau))
                .count();
            let isolated = step.truth.events().len() - massive;
            assert_eq!(massive, 1, "one DSLAM outage per step");
            assert_eq!(isolated, 1, "one CPE fault per step");
            for e in step.truth.events() {
                assert_eq!(e.intended_isolated, !e.is_massive(tau));
            }
        }
    }

    #[test]
    fn network_scenario_rejects_the_empty_fault_mix() {
        let mut scenario = NetworkFaultScenario::small_mixed("net", 1, 1);
        scenario.dslam_faults_per_step = 0;
        scenario.cpe_faults_per_step = 0;
        assert!(matches!(
            scenario.generate(),
            Err(EvalError::InvalidScenario { .. })
        ));
    }

    #[test]
    fn adversary_scenario_extends_the_population_with_shadows() {
        let mut config = ScenarioConfig::paper_defaults(7);
        config.n = 300;
        config.errors_per_step = 6;
        config.isolated_prob = 0.9;
        let scenario = AdversaryScenario {
            name: "adv".into(),
            config,
            coalition: 3,
            steps: 3,
            detector_delta: 0.02,
            shadow_seed: 11,
        };
        assert_eq!(scenario.spec().population, 303);
        let run = scenario.generate().unwrap();
        assert_r1(&run);
        let shadow_events: usize = run
            .steps
            .iter()
            .flat_map(|s| s.truth.events())
            .filter(|e| e.impacted.iter().any(|id| id.0 >= 300))
            .count();
        assert!(shadow_events > 0, "some step must mount the attack");
        for step in &run.steps {
            assert_eq!(step.pair.len(), 303);
            for e in step.truth.events() {
                if e.impacted.iter().any(|id| id.0 >= 300) {
                    assert_eq!(e.impacted.len(), 3, "the coalition acts as one event");
                    assert!(!e.intended_isolated);
                }
            }
        }
    }

    fn small_fleet(name: &str) -> FleetScenario {
        FleetScenario {
            name: name.into(),
            fleet: FleetSpec {
                devices: 400,
                services: 2,
                massive_clusters: 2,
                cluster_size: 5,
                isolated: 3,
                cohesion: 0.05,
                calm_activity: 0.4,
                jitter: 0.02,
                shift: 0.3,
                seed: 9,
            },
            steps: 4,
            params: Params::new(0.03, 3).unwrap(),
        }
    }

    #[test]
    fn fleet_scenario_reuses_the_generator_truth() {
        let run = small_fleet("fleet").generate().unwrap();
        assert_eq!(run.steps.len(), 4);
        assert_r1(&run);
        for step in &run.steps {
            assert!(!step.truth.events().is_empty());
        }
    }

    #[test]
    fn churn_scenario_replaces_tail_slots() {
        let scenario = ChurnScenario {
            fleet: small_fleet("churn"),
            churn_devices: 20,
            churn_every: 2,
        };
        let run = scenario.generate().unwrap();
        assert_eq!(run.churn.len(), 1, "4 steps, churn after step 1");
        let event = &run.churn[0];
        assert_eq!(event.after_step, 1);
        assert_eq!(event.leaves, (380u64..400).rev().collect::<Vec<_>>());
        assert_eq!(event.joins, (400u64..420).collect::<Vec<_>>());
    }

    #[test]
    fn churn_scenario_validates_its_knobs() {
        let mut scenario = ChurnScenario {
            fleet: small_fleet("churn"),
            churn_devices: 0,
            churn_every: 2,
        };
        assert!(matches!(
            scenario.generate(),
            Err(EvalError::InvalidScenario { .. })
        ));
        scenario.churn_devices = 20;
        scenario.churn_every = 0;
        assert!(matches!(
            scenario.generate(),
            Err(EvalError::InvalidScenario { .. })
        ));
    }

    #[test]
    fn persistent_scenario_generates_chained_labelled_steps() {
        let scenario = PersistentAnomalyScenario {
            devices: 60,
            ..PersistentAnomalyScenario::standard("persist", 5)
        };
        let run = scenario.generate().unwrap();
        assert_eq!(run.steps.len(), 10);
        assert_r1(&run);
        for w in run.steps.windows(2) {
            assert_eq!(w[0].pair.after(), w[1].pair.before());
        }
        assert_eq!(scenario.generate().unwrap(), run, "deterministic");
        // The cluster event appears at exactly the drift steps.
        for (i, step) in run.steps.iter().enumerate() {
            let has_cluster = step
                .truth
                .events()
                .iter()
                .any(|e| e.impacted.len() == scenario.cluster_size);
            assert_eq!(has_cluster, (2..7).contains(&i), "step {i}");
            let flapper_events = step
                .truth
                .events()
                .iter()
                .filter(|e| e.impacted.len() == 1)
                .count();
            let expected = if i % 3 <= 1 { scenario.flappers } else { 0 };
            assert_eq!(flapper_events, expected, "step {i}");
        }
        // Linked into spans: one long massive event, plus per-flapper
        // isolated recurrences (two active steps each, quiet gaps between).
        let spans = anomaly_simulator::score::link_truth_events(
            run.steps.iter().map(|s| &s.truth),
            scenario.params.tau(),
        );
        let massive: Vec<_> = spans.iter().filter(|s| s.massive).collect();
        assert_eq!(massive.len(), 1, "one long-lived cluster event");
        assert_eq!((massive[0].onset, massive[0].last), (2, 6));
        assert_eq!(massive[0].devices.len(), scenario.cluster_size);
        let isolated = spans.len() - 1;
        // Steps 0..10, period 3: recurrences at {0,1}, {3,4}, {6,7}, {9}.
        assert_eq!(isolated, scenario.flappers * 4);
    }

    #[test]
    fn persistent_scenario_validates_its_knobs() {
        let bad_period = PersistentAnomalyScenario {
            flap_period: 1,
            ..PersistentAnomalyScenario::standard("p", 1)
        };
        assert!(matches!(
            bad_period.generate(),
            Err(EvalError::InvalidScenario { .. })
        ));
        let bad_drift = PersistentAnomalyScenario {
            duration: 50,
            steps: 60,
            ..PersistentAnomalyScenario::standard("p", 1)
        };
        assert!(matches!(
            bad_drift.generate(),
            Err(EvalError::InvalidScenario { .. })
        ));
        let bad_fleet = PersistentAnomalyScenario {
            devices: 5,
            ..PersistentAnomalyScenario::standard("p", 1)
        };
        assert!(matches!(
            bad_fleet.generate(),
            Err(EvalError::InvalidScenario { .. })
        ));
        let bad_shift = PersistentAnomalyScenario {
            jitter: 0.2,
            ..PersistentAnomalyScenario::standard("p", 1)
        };
        assert!(matches!(
            bad_shift.generate(),
            Err(EvalError::InvalidScenario { .. })
        ));
    }

    #[test]
    fn recorded_scenario_roundtrips_through_text() {
        let sim = SimScenario {
            name: "sim".into(),
            config: {
                let mut c = ScenarioConfig::paper_defaults(13);
                c.n = 80;
                c.errors_per_step = 3;
                c
            },
            steps: 2,
            detector_delta: 0.02,
        };
        let run = sim.generate().unwrap();
        let mut trace = Trace::new(80, 2, sim.config.params);
        trace.steps = run.steps.clone();
        let recorded = RecordedScenario::from_text("recorded", &trace.to_text(), 0.02).unwrap();
        assert_eq!(recorded.spec().population, 80);
        let replayed = recorded.generate().unwrap();
        assert_eq!(replayed.steps.len(), run.steps.len());
        for (a, b) in replayed.steps.iter().zip(&run.steps) {
            assert_eq!(a.truth, b.truth);
        }
    }
}
