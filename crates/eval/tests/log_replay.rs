//! Offline log replay reproduces live event scoring: a run captured into
//! a persisted event/summary log via [`record_monitor_log`] yields, when
//! replayed with [`evaluate_log_on`], the exact `events` cell the live
//! [`evaluate_monitor_on`] run committed — across engines and workloads,
//! and matching the live score produced *during* the capture itself.

use anomaly_characterization::pipeline::Engine;
use anomaly_eval::{
    evaluate_log, evaluate_log_on, evaluate_monitor_on, record_monitor_log, EvalError,
    NetworkFaultScenario, Scenario, SimScenario,
};

fn engines() -> Vec<Engine> {
    vec![Engine::Sequential, Engine::Threaded { workers: 3 }]
}

fn scenarios() -> Vec<Box<dyn Scenario>> {
    vec![
        Box::new(SimScenario::paper("log-sim", 42, 6)),
        Box::new(NetworkFaultScenario::small_mixed("log-net", 5, 4)),
    ]
}

#[test]
fn replayed_logs_reproduce_the_live_event_cells() {
    for scenario in scenarios() {
        let spec = scenario.spec();
        let run = scenario.generate().expect("scenario generates");
        for engine in engines() {
            let live = evaluate_monitor_on(&spec, &run, engine).expect("live run scores");
            let (captured, log) =
                record_monitor_log(&spec, &run, engine, Vec::new()).expect("capture succeeds");
            assert_eq!(
                captured.events, live.events,
                "{}: capture must not perturb the live score",
                spec.name
            );
            let replayed = evaluate_log_on(&spec, &run, log.as_slice()).expect("replay succeeds");
            assert_eq!(
                replayed, live.events,
                "{} ({engine:?}): offline replay must reproduce the live event cell",
                spec.name
            );
        }
    }
}

#[test]
fn evaluate_log_reads_a_capture_from_disk() {
    let scenario = NetworkFaultScenario::small_mixed("log-file", 5, 4);
    let run = scenario.generate().expect("scenario generates");
    let live =
        evaluate_monitor_on(&scenario.spec(), &run, Engine::Sequential).expect("live run scores");
    let (_, log) = record_monitor_log(&scenario.spec(), &run, Engine::Sequential, Vec::new())
        .expect("capture succeeds");
    let dir = std::env::temp_dir();
    let path = dir.join("anomaly-eval-log-replay-test.bin");
    std::fs::write(&path, &log).expect("log written");
    let replayed = evaluate_log(&path, &scenario).expect("file replay succeeds");
    std::fs::remove_file(&path).ok();
    assert_eq!(replayed, live.events);
}

#[test]
fn missing_files_and_foreign_logs_fail_typed() {
    let scenario = SimScenario::paper("log-missing", 1, 2);
    let err = evaluate_log("/nonexistent/anomaly-eval.bin", &scenario)
        .expect_err("missing file must fail");
    assert!(matches!(err, EvalError::Log { .. }), "{err:?}");

    // A structurally valid log without an evaluation step-map record (here:
    // an empty log) is not a capture.
    let spec = scenario.spec();
    let run = scenario.generate().expect("scenario generates");
    let (_, log) =
        record_monitor_log(&spec, &run, Engine::Sequential, Vec::new()).expect("capture succeeds");
    // Keep only the file header: magic + version.
    let err =
        evaluate_log_on(&spec, &run, &log[..12]).expect_err("headerless log is not a capture");
    assert!(matches!(err, EvalError::Log { .. }), "{err:?}");
}

#[test]
fn corrupted_captures_fail_typed_never_panic() {
    let scenario = SimScenario::paper("log-corrupt", 9, 3);
    let spec = scenario.spec();
    let run = scenario.generate().expect("scenario generates");
    let (_, log) =
        record_monitor_log(&spec, &run, Engine::Sequential, Vec::new()).expect("capture succeeds");
    for len in 0..log.len() {
        // A truncation landing exactly on a frame boundary *after* the
        // step-map record is a clean (shorter) log and replays fine; any
        // other truncation must fail typed. Either way: no panic.
        let _ = evaluate_log_on(&spec, &run, &log[..len]);
    }
    for i in 0..log.len() {
        let mut bent = log.clone();
        bent[i] ^= 0x55;
        // Must never panic; typed failure or (for flips the framing
        // checksum cannot distinguish, e.g. inside the mutable header) a
        // successful but different replay are both acceptable.
        let _ = evaluate_log_on(&spec, &run, bent.as_slice());
    }
}
