//! Property tests over the scenario generators: every adversary- and
//! network-generated scenario must satisfy restriction R1 — the
//! `ErrorEvent`s within one `GroundTruth` step are pairwise disjoint — and
//! the effective classification `is_massive(τ)` must agree with
//! `impacted.len() > τ` for every generated event, across random
//! topologies, fault mixes, coalition sizes, and seeds.

use anomaly_core::{DeviceSet, Params};
use anomaly_eval::{AdversaryScenario, NetworkFaultScenario, Scenario, ScenarioRun};
use anomaly_network::NetworkConfig;
use anomaly_simulator::{DestinationModel, ScenarioConfig};
use proptest::prelude::*;

/// R1 plus the effective-class agreement, on every step of a run.
fn assert_scenario_invariants(run: &ScenarioRun, scenario_tau: usize) {
    for (k, step) in run.steps.iter().enumerate() {
        let mut seen = DeviceSet::new();
        for event in step.truth.events() {
            assert!(!event.impacted.is_empty(), "step {k}: empty event");
            for id in &event.impacted {
                assert!(
                    seen.insert(id),
                    "step {k}: device {id} impacted by two events (R1 violated)"
                );
                assert!(
                    (id.index()) < step.pair.len(),
                    "step {k}: event names device {id} outside the population"
                );
            }
            // `is_massive` must agree with the effective size for the
            // scenario's own τ and for arbitrary other thresholds.
            for tau in [1, 2, scenario_tau, scenario_tau + 3] {
                assert_eq!(
                    event.is_massive(tau),
                    event.impacted.len() > tau,
                    "step {k}: is_massive({tau}) disagrees with |impacted| = {}",
                    event.impacted.len()
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn network_scenarios_satisfy_r1_and_effective_classes(
        seed in 0u64..1000,
        aggregations in 1usize..=3,
        dslams in 1usize..=3,
        gateways in 4usize..=10,
        dslam_faults in 0usize..=3,
        cpe_faults in 0usize..=3,
        steps in 1usize..=4,
    ) {
        prop_assume!(dslam_faults + cpe_faults > 0);
        let mut config = NetworkConfig::small(seed);
        config.shape = (1, aggregations, dslams, gateways);
        let scenario = NetworkFaultScenario {
            name: "prop-network".into(),
            config,
            params: Params::new(0.02, 3).unwrap(),
            steps,
            dslam_faults_per_step: dslam_faults,
            cpe_faults_per_step: cpe_faults,
            dslam_severity: 0.5,
            cpe_severity: 0.7,
            detector_delta: 0.1,
        };
        let run = scenario.generate().unwrap();
        prop_assert_eq!(run.steps.len(), steps);
        assert_scenario_invariants(&run, scenario.params.tau());
    }

    #[test]
    fn adversary_scenarios_satisfy_r1_and_effective_classes(
        seed in 0u64..1000,
        shadow_seed in 0u64..1000,
        n in 60usize..250,
        coalition in 0usize..=5,
        isolated_pct in 0usize..=100,
        steps in 1usize..=3,
    ) {
        let mut config = ScenarioConfig::paper_defaults(seed);
        config.n = n;
        config.errors_per_step = 5;
        config.isolated_prob = isolated_pct as f64 / 100.0;
        config.destination = DestinationModel::Uniform;
        let scenario = AdversaryScenario {
            name: "prop-adversary".into(),
            config,
            coalition,
            steps,
            detector_delta: 0.02,
            shadow_seed,
        };
        let run = scenario.generate().unwrap();
        prop_assert_eq!(run.steps.len(), steps);
        for step in &run.steps {
            prop_assert_eq!(step.pair.len(), n + coalition);
        }
        assert_scenario_invariants(&run, scenario.config.params.tau());
    }
}
