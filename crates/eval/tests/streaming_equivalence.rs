//! The acceptance bar of the streaming ingestion API: for **every**
//! workload in the zoo, replaying the scenario through `ingest` + `seal`
//! with a seed-fixed shuffled arrival order produces evaluation metrics
//! byte-identical to the batch `observe()` path — per-instant breakdowns
//! included — across both engines.

use anomaly_characterization::pipeline::Engine;
use anomaly_core::Params;
use anomaly_eval::{
    evaluate_monitor_on, evaluate_monitor_streaming_on, AdversaryScenario, ChurnScenario,
    FleetScenario, NetworkFaultScenario, RecordedScenario, Scenario, SimScenario,
    StreamingScenario,
};
use anomaly_simulator::trace::Trace;
use anomaly_simulator::{FleetSpec, ScenarioConfig};

fn small_fleet(name: &str, seed: u64) -> FleetScenario {
    FleetScenario {
        name: name.into(),
        fleet: FleetSpec {
            devices: 300,
            services: 2,
            massive_clusters: 2,
            cluster_size: 5,
            isolated: 3,
            cohesion: 0.05,
            calm_activity: 0.4,
            jitter: 0.02,
            shift: 0.3,
            seed,
        },
        steps: 3,
        params: Params::new(0.03, 3).unwrap(),
    }
}

fn scenario_zoo() -> Vec<Box<dyn Scenario>> {
    let mut sim_config = ScenarioConfig::paper_defaults(31);
    sim_config.n = 150;
    sim_config.errors_per_step = 4;
    let sim = SimScenario {
        name: "stream-sim".into(),
        config: sim_config.clone(),
        steps: 3,
        detector_delta: 0.02,
    };
    let recorded = {
        let run = sim.generate().unwrap();
        let mut trace = Trace::new(sim.config.n, sim.config.dim, sim.config.params);
        trace.steps = run.steps;
        RecordedScenario::from_text("stream-recorded", &trace.to_text(), 0.02).unwrap()
    };
    let mut adversary_config = ScenarioConfig::paper_defaults(33);
    adversary_config.n = 150;
    adversary_config.errors_per_step = 4;
    adversary_config.isolated_prob = 0.8;
    vec![
        Box::new(sim),
        Box::new(NetworkFaultScenario::small_mixed("stream-network", 32, 3)),
        Box::new(AdversaryScenario {
            name: "stream-adversary".into(),
            config: adversary_config,
            coalition: 3,
            steps: 3,
            detector_delta: 0.02,
            shadow_seed: 5,
        }),
        Box::new(small_fleet("stream-fleet", 41)),
        Box::new(ChurnScenario {
            fleet: small_fleet("stream-churn", 43),
            churn_devices: 20,
            churn_every: 1,
        }),
        Box::new(recorded),
    ]
}

#[test]
fn every_scenario_streams_byte_identically_to_the_batch_path() {
    for scenario in scenario_zoo() {
        let spec = scenario.spec();
        let run = scenario.generate().unwrap();
        for engine in [Engine::Sequential, Engine::Threaded { workers: 3 }] {
            let batch = evaluate_monitor_on(&spec, &run, engine).unwrap();
            assert!(
                batch.confusion.total() > 0,
                "{}: scenario must score something",
                spec.name
            );
            // Two different shuffle seeds: arrival order must never show.
            for seed in [7u64, 12345] {
                let streamed =
                    evaluate_monitor_streaming_on(&spec, &run, engine, seed, 0.0, 1).unwrap();
                assert_eq!(
                    batch.metrics_json(),
                    streamed.metrics_json(),
                    "{}: streaming replay (seed {seed}, {engine:?}) diverged",
                    spec.name
                );
            }
        }
    }
}

#[test]
fn the_streaming_adapter_delegates_spec_and_generation() {
    let inner = small_fleet("stream-wrap", 47);
    let wrapped = StreamingScenario::shuffled(inner.clone(), 9);
    assert_eq!(wrapped.spec(), inner.spec());
    assert_eq!(
        wrapped.generate().unwrap().steps.len(),
        inner.generate().unwrap().steps.len()
    );
    assert_eq!(wrapped.drop_probability, 0.0);
}
