//! Synthetic ISP network substrate.
//!
//! The paper motivates its characterization with Internet service providers
//! operating millions of home gateways: when a *network* element (DSLAM,
//! aggregation switch, core router) degrades, every downstream gateway sees
//! a correlated QoS drop (a **massive** anomaly); when a single gateway's
//! hardware or software misbehaves, only that device suffers (an
//! **isolated** anomaly). The paper's entire point is that gateways can tell
//! the two apart locally and only call the operator for the latter.
//!
//! This crate builds that world:
//!
//! * [`Topology`] — a core / aggregation / DSLAM / gateway tree;
//! * [`Service`] — the `d` services each gateway consumes (their QoS is the
//!   product of element health along the route from the head-end);
//! * [`NetworkSimulation`] — fault injection (network-level or CPE-level)
//!   and end-to-end measurement, producing the QoS snapshots consumed by
//!   `anomaly-core`, together with the ground truth of which gateways each
//!   fault impacted;
//! * [`report`] — the operator-facing decision: which gateways should call
//!   home (isolated verdicts) and which events belong to the network
//!   (massive verdicts).
//!
//! # Example
//!
//! ```
//! use anomaly_network::{NetworkSimulation, NetworkConfig, FaultTarget};
//!
//! let mut net = NetworkSimulation::new(NetworkConfig::small(7))?;
//! // A DSLAM fault degrades all its gateways...
//! let dslam = net.topology().dslams()[0];
//! let outcome = net.step(vec![
//!     FaultTarget::Node { node: dslam, severity: 0.5 },
//! ]);
//! assert!(outcome.impacted[0].len() > 1);
//! # Ok::<(), anomaly_network::NetworkError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(warnings)]
#![warn(missing_docs)]

mod measurement;
pub mod report;
pub mod schedule;
mod sim;
mod topology;

pub use measurement::MeasurementModel;
pub use report::{gateway_reports, GatewayReport, ReportAction};
pub use schedule::{Incident, IncidentSchedule};
pub use sim::{
    FaultTarget, MeasurementUpdate, NetworkConfig, NetworkError, NetworkSimulation, StepOutcome,
};
pub use topology::{NodeId, NodeKind, Service, Topology};
