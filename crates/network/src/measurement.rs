//! End-to-end QoS measurement.
//!
//! The measurement functions `q_{i,k}(j)` of the paper "reflect errors
//! occurring on the chain of equipments and network links from the providers
//! of consumed services to the monitored devices" (Section III-A). We model
//! the QoS of service `i` at gateway `j` as
//!
//! ```text
//! q = base_quality(i) · Π_{e ∈ route(j)} health(e) + noise
//! ```
//!
//! clamped into `[0,1]`, with a small deterministic measurement jitter so
//! devices never sit at mathematically identical positions.

use crate::topology::{NodeId, Service, Topology};

/// Converts element healths along routes into per-gateway QoS values.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasurementModel {
    /// Measurement-noise amplitude (uniform in `[-amp, +amp]`).
    noise_amplitude: f64,
}

impl MeasurementModel {
    /// Creates a model with the given measurement-noise amplitude.
    ///
    /// # Panics
    ///
    /// Panics if `noise_amplitude` is negative or not finite.
    pub fn new(noise_amplitude: f64) -> Self {
        assert!(
            noise_amplitude.is_finite() && noise_amplitude >= 0.0,
            "noise amplitude must be a non-negative finite number"
        );
        MeasurementModel { noise_amplitude }
    }

    /// The configured noise amplitude.
    pub fn noise_amplitude(&self) -> f64 {
        self.noise_amplitude
    }

    /// End-to-end QoS of `service` at `gateway`, given per-node healths and
    /// a noise sample in `[-1, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if a route node is missing from `health` (i.e. the slice is
    /// shorter than the topology) or `noise` is outside `[-1, 1]`.
    pub fn measure(
        &self,
        topology: &Topology,
        health: &[f64],
        gateway: NodeId,
        service: &Service,
        noise: f64,
    ) -> f64 {
        assert!(
            (-1.0..=1.0).contains(&noise),
            "noise sample must lie in [-1, 1]"
        );
        let mut q = service.base_quality();
        for node in topology.route_to_core(gateway) {
            q *= health[node.0 as usize];
        }
        (q + noise * self.noise_amplitude).clamp(0.0, 1.0)
    }
}

impl Default for MeasurementModel {
    /// A model with ±0.005 measurement jitter.
    fn default() -> Self {
        MeasurementModel::new(0.005)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Topology, Vec<f64>, Service) {
        let t = Topology::tree(1, 1, 1, 2);
        let health = vec![1.0; t.len()];
        (t, health, Service::new("iptv", 900))
    }

    #[test]
    fn healthy_route_gives_base_quality() {
        let (t, health, s) = setup();
        let m = MeasurementModel::new(0.0);
        let q = m.measure(&t, &health, t.gateways()[0], &s, 0.0);
        assert!((q - 0.9).abs() < 1e-12);
    }

    #[test]
    fn degraded_element_multiplies_down() {
        let (t, mut health, s) = setup();
        let dslam = t.dslams()[0];
        health[dslam.0 as usize] = 0.5;
        let m = MeasurementModel::new(0.0);
        let q = m.measure(&t, &health, t.gateways()[0], &s, 0.0);
        assert!((q - 0.45).abs() < 1e-12);
    }

    #[test]
    fn multiple_degradations_compound() {
        let (t, mut health, s) = setup();
        health[t.dslams()[0].0 as usize] = 0.5;
        health[t.cores()[0].0 as usize] = 0.5;
        let m = MeasurementModel::new(0.0);
        let q = m.measure(&t, &health, t.gateways()[0], &s, 0.0);
        assert!((q - 0.225).abs() < 1e-12);
    }

    #[test]
    fn noise_shifts_within_amplitude_and_clamps() {
        let (t, health, s) = setup();
        let m = MeasurementModel::new(0.01);
        let hi = m.measure(&t, &health, t.gateways()[0], &s, 1.0);
        let lo = m.measure(&t, &health, t.gateways()[0], &s, -1.0);
        assert!((hi - 0.91).abs() < 1e-12);
        assert!((lo - 0.89).abs() < 1e-12);
        // Clamping at the top.
        let s_full = Service::new("max", 1000);
        let q = m.measure(&t, &health, t.gateways()[0], &s_full, 1.0);
        assert_eq!(q, 1.0);
    }

    #[test]
    #[should_panic(expected = "noise sample")]
    fn rejects_out_of_range_noise() {
        let (t, health, s) = setup();
        MeasurementModel::default().measure(&t, &health, t.gateways()[0], &s, 2.0);
    }

    #[test]
    #[should_panic(expected = "noise amplitude")]
    fn rejects_negative_amplitude() {
        MeasurementModel::new(-0.1);
    }
}
