//! The operator-facing decision layer — the paper's motivating use case.
//!
//! *"It would be very interesting to have procedures that allow gateways to
//! self distinguish whether their dysfunction is caused by network-level
//! anomalies or by their own hardware or software, and to notify the service
//! provider only in the latter case."* (Section I)
//!
//! [`gateway_reports`] runs the local characterization over a network step
//! and translates each verdict into the action the paper prescribes:
//!
//! * **Isolated** → the gateway calls the ISP (a real CPE problem that the
//!   operator cannot see from the network side);
//! * **Massive** → the gateway stays silent towards the ISP but the event is
//!   surfaced to over-the-top operators (a network-level incident);
//! * **Unresolved** → the gateway defers (re-samples sooner, per the
//!   granularity discussion of Section VII-C).

use crate::sim::StepOutcome;
use anomaly_core::{Analyzer, AnomalyClass, Params, TrajectoryTable};
use anomaly_qos::DeviceId;

/// What a gateway should do after self-characterizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReportAction {
    /// Call the ISP help desk: the problem is local to this gateway.
    NotifyIsp,
    /// Stay silent towards the ISP; flag a network-level event to OTT
    /// operators.
    NotifyOtt,
    /// Increase the sampling frequency and retry (unresolved configuration).
    Defer,
}

/// One gateway's verdict and resulting action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GatewayReport {
    /// The gateway's pipeline device id (its index among all gateways).
    pub device: DeviceId,
    /// The local characterization verdict.
    pub class: AnomalyClass,
    /// The action the paper prescribes for that verdict.
    pub action: ReportAction,
}

/// Characterizes every impacted gateway of a network step and derives its
/// reporting action.
///
/// Uses the exact pipeline (Theorem 7 NSC) so unresolved verdicts are
/// genuine, not fast-path fall-throughs.
pub fn gateway_reports(outcome: &StepOutcome, params: Params) -> Vec<GatewayReport> {
    let abnormal: Vec<DeviceId> = outcome.abnormal().iter().collect();
    let table = TrajectoryTable::from_state_pair(&outcome.pair, &abnormal);
    let analyzer = Analyzer::new(&table, params);
    abnormal
        .into_iter()
        .map(|device| {
            let class = analyzer.characterize_full(device).class();
            let action = match class {
                AnomalyClass::Isolated => ReportAction::NotifyIsp,
                AnomalyClass::Massive => ReportAction::NotifyOtt,
                AnomalyClass::Unresolved => ReportAction::Defer,
            };
            GatewayReport {
                device,
                class,
                action,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{FaultTarget, NetworkConfig, NetworkSimulation};

    fn params() -> Params {
        // Gateways under one faulted DSLAM share a displacement of the same
        // magnitude; measurement jitter is ±0.005, so r = 0.02 comfortably
        // groups them. τ = 3 < 16 gateways per DSLAM.
        Params::new(0.02, 3).unwrap()
    }

    #[test]
    fn dslam_fault_suppresses_isp_calls() {
        let mut net = NetworkSimulation::new(NetworkConfig::small(41)).unwrap();
        let dslam = net.topology().dslams()[1];
        let out = net.step(vec![FaultTarget::Node {
            node: dslam,
            severity: 0.5,
        }]);
        let reports = gateway_reports(&out, params());
        assert_eq!(reports.len(), 16);
        for r in &reports {
            assert_eq!(r.class, AnomalyClass::Massive, "gateway {}", r.device);
            assert_eq!(r.action, ReportAction::NotifyOtt);
        }
    }

    #[test]
    fn cpe_fault_calls_the_isp() {
        let mut net = NetworkSimulation::new(NetworkConfig::small(43)).unwrap();
        let gw = net.topology().gateways()[7];
        let out = net.step(vec![FaultTarget::Gateway {
            gateway: gw,
            severity: 0.6,
        }]);
        let reports = gateway_reports(&out, params());
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].class, AnomalyClass::Isolated);
        assert_eq!(reports[0].action, ReportAction::NotifyIsp);
    }

    #[test]
    fn mixed_faults_are_told_apart() {
        let mut net = NetworkSimulation::new(NetworkConfig::small(47)).unwrap();
        let dslam = net.topology().dslams()[0];
        // Pick a CPE on a *different* DSLAM so trajectories do not overlap.
        let lone_gw = net
            .topology()
            .downstream_gateways(net.topology().dslams()[3])[0];
        let out = net.step(vec![
            FaultTarget::Node {
                node: dslam,
                severity: 0.5,
            },
            FaultTarget::Gateway {
                gateway: lone_gw,
                severity: 0.8,
            },
        ]);
        let reports = gateway_reports(&out, params());
        let isp_calls: Vec<_> = reports
            .iter()
            .filter(|r| r.action == ReportAction::NotifyIsp)
            .collect();
        let ott_events: Vec<_> = reports
            .iter()
            .filter(|r| r.action == ReportAction::NotifyOtt)
            .collect();
        assert_eq!(isp_calls.len(), 1, "only the CPE fault calls the ISP");
        assert_eq!(
            ott_events.len(),
            16,
            "the whole DSLAM subtree is a network event"
        );
    }
}
