//! Timed incident schedules: multi-step fault timelines with onsets,
//! durations, and repairs.
//!
//! Real incidents are not single-interval events: a DSLAM degrades at
//! 19:02, worsens, and is repaired at 19:40; a CPE dies and stays dead
//! until a truck roll. [`IncidentSchedule`] drives a [`NetworkSimulation`]
//! through such a timeline step by step, producing the per-interval
//! [`StepOutcome`]s the characterization pipeline consumes and keeping
//! track of which incidents are active at each instant.

use crate::sim::{FaultTarget, NetworkSimulation, StepOutcome};
use crate::topology::NodeId;
use anomaly_core::DeviceSet;

/// One scheduled incident: a fault that starts at `starts_at` (step index)
/// and is repaired after `duration` steps (`None` = never repaired).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Incident {
    /// Step index at which the fault appears.
    pub starts_at: u64,
    /// Number of steps the fault stays active (`None` = permanent).
    pub duration: Option<u64>,
    /// What breaks and how badly.
    pub fault: FaultTarget,
}

impl Incident {
    /// True when the incident is active during step `step`.
    pub fn active_at(&self, step: u64) -> bool {
        step >= self.starts_at
            && match self.duration {
                Some(d) => step < self.starts_at + d,
                None => true,
            }
    }

    /// The faulted element.
    pub fn node(&self) -> NodeId {
        match self.fault {
            FaultTarget::Node { node, .. } => node,
            FaultTarget::Gateway { gateway, .. } => gateway,
        }
    }
}

/// Drives a network simulation through a timeline of incidents.
#[derive(Debug, Clone)]
pub struct IncidentSchedule {
    incidents: Vec<Incident>,
    step: u64,
}

impl IncidentSchedule {
    /// Creates a schedule from a list of incidents.
    pub fn new(incidents: Vec<Incident>) -> Self {
        IncidentSchedule { incidents, step: 0 }
    }

    /// The current step index (number of steps already driven).
    pub fn step_index(&self) -> u64 {
        self.step
    }

    /// Incidents active during the step about to run.
    pub fn active(&self) -> Vec<&Incident> {
        self.incidents
            .iter()
            .filter(|i| i.active_at(self.step))
            .collect()
    }

    /// Advances the network one interval: applies newly-starting faults,
    /// repairs ending ones, snapshots around the changes.
    ///
    /// Returns the interval outcome plus the set of gateways whose service
    /// recovered this step (they see an upward collective trajectory —
    /// massive, but good news).
    pub fn advance(&mut self, net: &mut NetworkSimulation) -> (StepOutcome, DeviceSet) {
        let step = self.step;
        // Faults that begin exactly now.
        let starting: Vec<FaultTarget> = self
            .incidents
            .iter()
            .filter(|i| i.starts_at == step)
            .map(|i| i.fault)
            .collect();
        // Incidents whose last active step was step-1: repair them now by
        // rebuilding health from scratch and re-applying still-active ones.
        let ending_now: Vec<Incident> = self
            .incidents
            .iter()
            .filter(|i| matches!(i.duration, Some(d) if i.starts_at + d == step))
            .copied()
            .collect();
        let mut recovered = DeviceSet::new();
        if !ending_now.is_empty() {
            net.repair_all();
            for incident in self.incidents.iter() {
                // Re-apply incidents still active (started before now and
                // not yet ended), except the ones ending this step.
                if incident.starts_at < step && incident.active_at(step) {
                    net.inject(incident.fault);
                }
            }
            for incident in &ending_now {
                recovered.extend(
                    net.topology()
                        .downstream_gateways(incident.node())
                        .into_iter()
                        .filter_map(|gw| {
                            net.topology()
                                .gateway_index(gw)
                                .map(|i| anomaly_qos::DeviceId(i as u32))
                        }),
                );
            }
        }
        let outcome = net.step(starting);
        self.step += 1;
        (outcome, recovered)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::NetworkConfig;

    fn net(seed: u64) -> NetworkSimulation {
        NetworkSimulation::new(NetworkConfig::small(seed)).unwrap()
    }

    #[test]
    fn incident_activity_window() {
        let i = Incident {
            starts_at: 3,
            duration: Some(2),
            fault: FaultTarget::Gateway {
                gateway: NodeId(0),
                severity: 0.5,
            },
        };
        assert!(!i.active_at(2));
        assert!(i.active_at(3));
        assert!(i.active_at(4));
        assert!(!i.active_at(5));
        let permanent = Incident {
            duration: None,
            ..i
        };
        assert!(permanent.active_at(1_000_000));
    }

    #[test]
    fn timeline_applies_and_repairs_faults() {
        let mut network = net(1);
        let dslam = network.topology().dslams()[0];
        let mut schedule = IncidentSchedule::new(vec![Incident {
            starts_at: 1,
            duration: Some(2),
            fault: FaultTarget::Node {
                node: dslam,
                severity: 0.5,
            },
        }]);

        // Step 0: nothing.
        let (o0, rec0) = schedule.advance(&mut network);
        assert!(o0.abnormal().is_empty());
        assert!(rec0.is_empty());
        // Step 1: fault appears, 16 gateways impacted.
        let (o1, _) = schedule.advance(&mut network);
        assert_eq!(o1.abnormal().len(), 16);
        // Step 2: fault persists (no new injection -> no new flags).
        let (o2, rec2) = schedule.advance(&mut network);
        assert!(o2.abnormal().is_empty());
        assert!(rec2.is_empty());
        // Step 3: repair: 16 gateways recover.
        let (_, rec3) = schedule.advance(&mut network);
        assert_eq!(rec3.len(), 16);
        // QoS is back to healthy.
        let snap = network.snapshot();
        for (_, p) in snap.iter() {
            assert!(p[0] > 0.9);
        }
    }

    #[test]
    fn overlapping_incidents_keep_the_survivor_active() {
        let mut network = net(2);
        let d0 = network.topology().dslams()[0];
        let d1 = network.topology().dslams()[1];
        let mut schedule = IncidentSchedule::new(vec![
            Incident {
                starts_at: 0,
                duration: Some(2),
                fault: FaultTarget::Node {
                    node: d0,
                    severity: 0.5,
                },
            },
            Incident {
                starts_at: 1,
                duration: Some(5),
                fault: FaultTarget::Node {
                    node: d1,
                    severity: 0.5,
                },
            },
        ]);
        schedule.advance(&mut network); // step 0: d0 breaks
        schedule.advance(&mut network); // step 1: d1 breaks too
        let (_, recovered) = schedule.advance(&mut network); // step 2: d0 repaired
        assert_eq!(recovered.len(), 16, "only d0's subtree recovers");
        // d1's subtree is still degraded.
        let snap = network.snapshot();
        let degraded = snap.iter().filter(|(_, p)| p[0] < 0.6).count();
        assert_eq!(degraded, 16, "d1's gateways remain degraded");
    }

    #[test]
    fn active_lists_current_incidents() {
        let schedule = IncidentSchedule::new(vec![Incident {
            starts_at: 0,
            duration: None,
            fault: FaultTarget::Gateway {
                gateway: NodeId(5),
                severity: 0.3,
            },
        }]);
        assert_eq!(schedule.active().len(), 1);
        assert_eq!(schedule.step_index(), 0);
    }
}
