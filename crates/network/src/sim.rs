use crate::measurement::MeasurementModel;
use crate::topology::{NodeId, NodeKind, Service, Topology};
use anomaly_core::DeviceSet;
use anomaly_qos::{DeviceId, QosSpace, Snapshot, StatePair};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::error::Error;
use std::fmt;

/// Where a fault strikes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultTarget {
    /// A network element degrades: every downstream gateway is impacted
    /// coherently (the massive-anomaly generator).
    Node {
        /// The faulted element (core, aggregation or DSLAM).
        node: NodeId,
        /// Health drop in `(0, 1]` (1 = total outage).
        severity: f64,
    },
    /// One gateway's own hardware/software misbehaves: only that device is
    /// impacted (the isolated-anomaly generator).
    Gateway {
        /// The faulty gateway.
        gateway: NodeId,
        /// Health drop in `(0, 1]`.
        severity: f64,
    },
}

/// Configuration of a network simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkConfig {
    /// Tree shape: cores, aggregations per core, DSLAMs per aggregation,
    /// gateways per DSLAM.
    pub shape: (usize, usize, usize, usize),
    /// The `d` services every gateway consumes.
    pub services: Vec<Service>,
    /// Measurement model.
    pub measurement: MeasurementModel,
    /// RNG seed for measurement jitter.
    pub seed: u64,
}

impl NetworkConfig {
    /// A small deterministic network: 1 core, 2 aggregations, 4 DSLAMs,
    /// 64 gateways, two services (IPTV and VoIP).
    pub fn small(seed: u64) -> Self {
        NetworkConfig {
            shape: (1, 2, 2, 16),
            services: vec![Service::new("iptv", 950), Service::new("voip", 900)],
            measurement: MeasurementModel::default(),
            seed,
        }
    }
}

/// Errors raised when building a network simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetworkError {
    /// The configuration declares no services.
    NoServices,
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkError::NoServices => write!(f, "a network needs at least one service"),
        }
    }
}

impl Error for NetworkError {}

/// One gateway's measurement report: the per-device unit a real
/// collection pipeline transports, ready for
/// `Monitor::ingest(update.key, update.qos)`.
///
/// The batch [`NetworkSimulation::snapshot`] is just the dense assembly of
/// one full round of these.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasurementUpdate {
    /// The reporting gateway's topology node.
    pub gateway: NodeId,
    /// Stable ingestion key (the raw node id — what
    /// `Monitor::join`ing by topology id uses).
    pub key: u64,
    /// Dense pipeline id (gateway position among all gateways).
    pub device: DeviceId,
    /// Measured QoS of every service, in service order.
    pub qos: Vec<f64>,
}

/// Result of one fault-injection step.
#[derive(Debug, Clone)]
pub struct StepOutcome {
    /// QoS snapshots of all gateways before/after the faults.
    pub pair: StatePair,
    /// Ground truth: per injected fault, the impacted gateways (as pipeline
    /// device ids — gateway position among all gateways).
    pub impacted: Vec<DeviceSet>,
}

impl StepOutcome {
    /// Union of all impacted devices — the ground-truth `A_k`.
    pub fn abnormal(&self) -> DeviceSet {
        self.impacted.iter().flat_map(|s| s.iter()).collect()
    }
}

/// The ISP network with injectable faults.
#[derive(Debug, Clone)]
pub struct NetworkSimulation {
    topology: Topology,
    config: NetworkConfig,
    space: QosSpace,
    /// Health per node id, in `[0,1]`.
    health: Vec<f64>,
    /// Extra per-gateway health (CPE faults), multiplied on top.
    gateway_health: Vec<f64>,
    rng: StdRng,
}

impl NetworkSimulation {
    /// Builds the network with every element healthy.
    ///
    /// # Errors
    ///
    /// [`NetworkError::NoServices`] when the config lists no services.
    pub fn new(config: NetworkConfig) -> Result<Self, NetworkError> {
        if config.services.is_empty() {
            return Err(NetworkError::NoServices);
        }
        let (c, a, d, g) = config.shape;
        let topology = Topology::tree(c, a, d, g);
        let space = QosSpace::new(config.services.len())
            .unwrap_or_else(|_| unreachable!("non-empty services"));
        let health = vec![1.0; topology.len()];
        let gateway_health = vec![1.0; topology.gateways().len()];
        let rng = StdRng::seed_from_u64(config.seed);
        Ok(NetworkSimulation {
            topology,
            config,
            space,
            health,
            gateway_health,
            rng,
        })
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The monitored services.
    pub fn services(&self) -> &[Service] {
        &self.config.services
    }

    /// Number of monitored gateways (the population `n`).
    pub fn population(&self) -> usize {
        self.topology.gateways().len()
    }

    /// Measures one full collection round as a stream of per-gateway
    /// updates — the shape a real pipeline delivers them in (feed each to
    /// `Monitor::ingest`; arrival order does not matter there). One call
    /// consumes exactly the same measurement-jitter randomness as one
    /// [`NetworkSimulation::snapshot`], so streaming and batch consumers
    /// observe identical QoS values for identical simulation states.
    pub fn measure_stream(&mut self) -> Vec<MeasurementUpdate> {
        let gateways: Vec<NodeId> = self.topology.gateways().to_vec();
        gateways
            .iter()
            .enumerate()
            .map(|(i, &gw)| {
                let cpe = self.gateway_health[i];
                let qos: Vec<f64> = self
                    .config
                    .services
                    .iter()
                    .map(|s| {
                        let noise = self.rng.gen_range(-1.0..=1.0);
                        let q = self.config.measurement.measure(
                            &self.topology,
                            &self.health,
                            gw,
                            s,
                            noise,
                        );
                        (q * cpe).clamp(0.0, 1.0)
                    })
                    .collect();
                MeasurementUpdate {
                    gateway: gw,
                    key: gw.0 as u64,
                    device: DeviceId(i as u32),
                    qos,
                }
            })
            .collect()
    }

    /// Measures the current QoS of every gateway as a dense snapshot —
    /// the batch assembly of one [`NetworkSimulation::measure_stream`]
    /// round.
    pub fn snapshot(&mut self) -> Snapshot {
        let rows: Vec<Vec<f64>> = self
            .measure_stream()
            .into_iter()
            .map(|update| update.qos)
            .collect();
        Snapshot::from_rows(&self.space, rows)
            .unwrap_or_else(|_| unreachable!("measurements are clamped"))
    }

    /// Applies one fault, returning the impacted gateways (pipeline ids).
    ///
    /// # Panics
    ///
    /// Panics if severity is outside `(0, 1]`, a `Node` target is a
    /// gateway, or a `Gateway` target is not a gateway.
    pub fn inject(&mut self, fault: FaultTarget) -> DeviceSet {
        match fault {
            FaultTarget::Node { node, severity } => {
                assert!(
                    (0.0..=1.0).contains(&severity) && severity > 0.0,
                    "severity must lie in (0, 1]"
                );
                assert!(
                    self.topology.kind(node) != NodeKind::Gateway,
                    "use FaultTarget::Gateway for CPE faults"
                );
                self.health[node.0 as usize] *= 1.0 - severity;
                self.topology
                    .downstream_gateways(node)
                    .into_iter()
                    .map(|gw| {
                        let index = self
                            .topology
                            .gateway_index(gw)
                            .unwrap_or_else(|| unreachable!("downstream nodes are gateways"));
                        DeviceId(index as u32)
                    })
                    .collect()
            }
            FaultTarget::Gateway { gateway, severity } => {
                assert!(
                    (0.0..=1.0).contains(&severity) && severity > 0.0,
                    "severity must lie in (0, 1]"
                );
                let Some(index) = self.topology.gateway_index(gateway) else {
                    panic!("FaultTarget::Gateway requires a gateway node");
                };
                self.gateway_health[index] *= 1.0 - severity;
                DeviceSet::singleton(DeviceId(index as u32))
            }
        }
    }

    /// Repairs every element back to full health.
    pub fn repair_all(&mut self) {
        self.health.fill(1.0);
        self.gateway_health.fill(1.0);
    }

    /// Takes a before-snapshot, injects the given faults, takes an
    /// after-snapshot, and reports both with the ground truth.
    pub fn step(&mut self, faults: Vec<FaultTarget>) -> StepOutcome {
        let before = self.snapshot();
        let impacted: Vec<DeviceSet> = faults.into_iter().map(|f| self.inject(f)).collect();
        let after = self.snapshot();
        StepOutcome {
            pair: StatePair::new(before, after).unwrap_or_else(|_| unreachable!("same population")),
            impacted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_network_measures_near_base_quality() {
        let mut net = NetworkSimulation::new(NetworkConfig::small(1)).unwrap();
        let snap = net.snapshot();
        assert_eq!(snap.len(), 64);
        for (_, p) in snap.iter() {
            assert!((p[0] - 0.95).abs() < 0.01, "iptv at {}", p[0]);
            assert!((p[1] - 0.90).abs() < 0.01, "voip at {}", p[1]);
        }
    }

    #[test]
    fn measure_stream_and_snapshot_agree_value_for_value() {
        // Two simulations with the same seed: one consumed as a stream,
        // one as dense snapshots. The values must match exactly, across
        // rounds and across a fault.
        let mut streamed = NetworkSimulation::new(NetworkConfig::small(11)).unwrap();
        let mut batched = NetworkSimulation::new(NetworkConfig::small(11)).unwrap();
        for round in 0..3 {
            if round == 2 {
                let dslam = streamed.topology().dslams()[1];
                streamed.inject(FaultTarget::Node {
                    node: dslam,
                    severity: 0.5,
                });
                batched.inject(FaultTarget::Node {
                    node: dslam,
                    severity: 0.5,
                });
            }
            let stream = streamed.measure_stream();
            let snap = batched.snapshot();
            assert_eq!(stream.len(), snap.len());
            for update in &stream {
                assert_eq!(update.key, update.gateway.0 as u64);
                assert_eq!(
                    update.qos.as_slice(),
                    snap.position(update.device).coords(),
                    "round {round}, gateway {}",
                    update.gateway
                );
            }
        }
    }

    #[test]
    fn dslam_fault_impacts_exactly_its_subtree() {
        let mut net = NetworkSimulation::new(NetworkConfig::small(2)).unwrap();
        let dslam = net.topology().dslams()[0];
        let expected = net.topology().downstream_gateways(dslam).len();
        let out = net.step(vec![FaultTarget::Node {
            node: dslam,
            severity: 0.5,
        }]);
        assert_eq!(out.impacted[0].len(), expected);
        // Impacted gateways dropped by ~half; others did not move much.
        let abnormal = out.abnormal();
        for id in out.pair.device_ids() {
            let before = out.pair.before().position(id)[0];
            let after = out.pair.after().position(id)[0];
            if abnormal.contains(id) {
                assert!(after < before * 0.6 + 0.02, "device {id} should drop");
            } else {
                assert!(
                    (after - before).abs() < 0.05,
                    "device {id} should be stable"
                );
            }
        }
    }

    #[test]
    fn gateway_fault_impacts_one_device() {
        let mut net = NetworkSimulation::new(NetworkConfig::small(3)).unwrap();
        let gw = net.topology().gateways()[5];
        let out = net.step(vec![FaultTarget::Gateway {
            gateway: gw,
            severity: 0.7,
        }]);
        assert_eq!(out.impacted[0], DeviceSet::singleton(DeviceId(5)));
    }

    #[test]
    fn aggregation_fault_impacts_more_than_dslam_fault() {
        let net = NetworkSimulation::new(NetworkConfig::small(4)).unwrap();
        let agg = net.topology().aggregations()[0];
        let dslam = net.topology().dslams()[0];
        let agg_count = net.topology().downstream_gateways(agg).len();
        let dslam_count = net.topology().downstream_gateways(dslam).len();
        assert!(agg_count > dslam_count);
    }

    #[test]
    fn repair_restores_quality() {
        let mut net = NetworkSimulation::new(NetworkConfig::small(5)).unwrap();
        let dslam = net.topology().dslams()[0];
        net.inject(FaultTarget::Node {
            node: dslam,
            severity: 0.9,
        });
        net.repair_all();
        let snap = net.snapshot();
        for (_, p) in snap.iter() {
            assert!(p[0] > 0.9);
        }
    }

    #[test]
    fn rejects_empty_service_list() {
        let mut c = NetworkConfig::small(1);
        c.services.clear();
        assert_eq!(
            NetworkSimulation::new(c).unwrap_err(),
            NetworkError::NoServices
        );
    }

    #[test]
    #[should_panic(expected = "severity")]
    fn rejects_zero_severity() {
        let mut net = NetworkSimulation::new(NetworkConfig::small(1)).unwrap();
        let dslam = net.topology().dslams()[0];
        net.inject(FaultTarget::Node {
            node: dslam,
            severity: 0.0,
        });
    }

    #[test]
    #[should_panic(expected = "CPE faults")]
    fn node_target_rejects_gateways() {
        let mut net = NetworkSimulation::new(NetworkConfig::small(1)).unwrap();
        let gw = net.topology().gateways()[0];
        net.inject(FaultTarget::Node {
            node: gw,
            severity: 0.5,
        });
    }
}
