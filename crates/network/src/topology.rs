use std::fmt;

/// Identifier of a network element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Role of a network element in the ISP tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// Core router / head-end (service origin).
    Core,
    /// Aggregation switch.
    Aggregation,
    /// DSLAM / OLT — the access multiplexer.
    Dslam,
    /// Customer-premises home gateway (the monitored device).
    Gateway,
}

/// One of the `d` services every gateway consumes (IPTV, VoIP, …).
///
/// Services originate at the core; their end-to-end QoS at a gateway is
/// determined by the health of every element on the gateway's route.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Service {
    /// Human-readable name.
    pub name: String,
    /// Nominal quality when the whole route is healthy, in `(0, 1]`.
    pub base_quality_millis: u16,
}

impl Service {
    /// Creates a service with a base quality expressed in thousandths
    /// (e.g. `950` = 0.95).
    ///
    /// # Panics
    ///
    /// Panics if `base_quality_millis` is 0 or exceeds 1000.
    pub fn new(name: impl Into<String>, base_quality_millis: u16) -> Self {
        assert!(
            (1..=1000).contains(&base_quality_millis),
            "base quality must be in (0, 1000] thousandths"
        );
        Service {
            name: name.into(),
            base_quality_millis,
        }
    }

    /// Base quality as a float in `(0, 1]`.
    pub fn base_quality(&self) -> f64 {
        self.base_quality_millis as f64 / 1000.0
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Node {
    kind: NodeKind,
    parent: Option<NodeId>,
}

/// The ISP tree: cores at the root, gateways at the leaves.
///
/// # Example
///
/// ```
/// use anomaly_network::{Topology, NodeKind};
/// let t = Topology::tree(1, 2, 3, 4); // 1 core, 2 aggs, 6 DSLAMs, 24 gateways
/// assert_eq!(t.gateways().len(), 24);
/// assert_eq!(t.dslams().len(), 6);
/// // A gateway's route climbs to the core.
/// let gw = t.gateways()[0];
/// let route = t.route_to_core(gw);
/// assert_eq!(t.kind(*route.last().unwrap()), NodeKind::Core);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    nodes: Vec<Node>,
    gateways: Vec<NodeId>,
    dslams: Vec<NodeId>,
    aggregations: Vec<NodeId>,
    cores: Vec<NodeId>,
}

impl Topology {
    /// Builds a regular tree: `cores` roots, each with `aggs_per_core`
    /// aggregation switches, each with `dslams_per_agg` DSLAMs, each with
    /// `gateways_per_dslam` home gateways.
    ///
    /// # Panics
    ///
    /// Panics if any fan-out is zero.
    pub fn tree(
        cores: usize,
        aggs_per_core: usize,
        dslams_per_agg: usize,
        gateways_per_dslam: usize,
    ) -> Self {
        assert!(
            cores > 0 && aggs_per_core > 0 && dslams_per_agg > 0 && gateways_per_dslam > 0,
            "every level of the tree must have positive fan-out"
        );
        let mut nodes = Vec::new();
        let mut core_ids = Vec::new();
        let mut agg_ids = Vec::new();
        let mut dslam_ids = Vec::new();
        let mut gateway_ids = Vec::new();
        for _ in 0..cores {
            let core = NodeId(nodes.len() as u32);
            nodes.push(Node {
                kind: NodeKind::Core,
                parent: None,
            });
            core_ids.push(core);
            for _ in 0..aggs_per_core {
                let agg = NodeId(nodes.len() as u32);
                nodes.push(Node {
                    kind: NodeKind::Aggregation,
                    parent: Some(core),
                });
                agg_ids.push(agg);
                for _ in 0..dslams_per_agg {
                    let dslam = NodeId(nodes.len() as u32);
                    nodes.push(Node {
                        kind: NodeKind::Dslam,
                        parent: Some(agg),
                    });
                    dslam_ids.push(dslam);
                    for _ in 0..gateways_per_dslam {
                        let gw = NodeId(nodes.len() as u32);
                        nodes.push(Node {
                            kind: NodeKind::Gateway,
                            parent: Some(dslam),
                        });
                        gateway_ids.push(gw);
                    }
                }
            }
        }
        Topology {
            nodes,
            gateways: gateway_ids,
            dslams: dslam_ids,
            aggregations: agg_ids,
            cores: core_ids,
        }
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the topology holds no nodes (never, for tree builds).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The home gateways, in construction order (their index is the
    /// `DeviceId` used by the anomaly pipeline).
    pub fn gateways(&self) -> &[NodeId] {
        &self.gateways
    }

    /// The DSLAMs.
    pub fn dslams(&self) -> &[NodeId] {
        &self.dslams
    }

    /// The aggregation switches.
    pub fn aggregations(&self) -> &[NodeId] {
        &self.aggregations
    }

    /// The core routers.
    pub fn cores(&self) -> &[NodeId] {
        &self.cores
    }

    /// Kind of a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn kind(&self, id: NodeId) -> NodeKind {
        self.nodes[id.0 as usize].kind
    }

    /// Parent of a node (`None` for cores).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.nodes[id.0 as usize].parent
    }

    /// The route from a gateway up to (and including) its core router.
    ///
    /// # Panics
    ///
    /// Panics if `gateway` is out of bounds.
    pub fn route_to_core(&self, gateway: NodeId) -> Vec<NodeId> {
        let mut route = vec![gateway];
        let mut cursor = gateway;
        while let Some(parent) = self.parent(cursor) {
            route.push(parent);
            cursor = parent;
        }
        route
    }

    /// All gateways in the subtree of `node` (the blast radius of a fault
    /// at that element).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn downstream_gateways(&self, node: NodeId) -> Vec<NodeId> {
        self.gateways
            .iter()
            .copied()
            .filter(|&gw| self.route_to_core(gw).contains(&node))
            .collect()
    }

    /// Index of a gateway among all gateways (its pipeline `DeviceId`), or
    /// `None` if the node is not a gateway.
    pub fn gateway_index(&self, node: NodeId) -> Option<usize> {
        self.gateways.iter().position(|&g| g == node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_counts() {
        let t = Topology::tree(2, 3, 4, 5);
        assert_eq!(t.cores().len(), 2);
        assert_eq!(t.aggregations().len(), 6);
        assert_eq!(t.dslams().len(), 24);
        assert_eq!(t.gateways().len(), 120);
        assert_eq!(t.len(), 2 + 6 + 24 + 120);
        assert!(!t.is_empty());
    }

    #[test]
    fn routes_climb_to_the_core() {
        let t = Topology::tree(1, 2, 2, 2);
        for &gw in t.gateways() {
            let route = t.route_to_core(gw);
            assert_eq!(route.len(), 4); // gw, dslam, agg, core
            assert_eq!(t.kind(route[0]), NodeKind::Gateway);
            assert_eq!(t.kind(route[1]), NodeKind::Dslam);
            assert_eq!(t.kind(route[2]), NodeKind::Aggregation);
            assert_eq!(t.kind(route[3]), NodeKind::Core);
        }
    }

    #[test]
    fn downstream_gateways_match_fanout() {
        let t = Topology::tree(1, 2, 3, 4);
        let dslam = t.dslams()[0];
        assert_eq!(t.downstream_gateways(dslam).len(), 4);
        let agg = t.aggregations()[0];
        assert_eq!(t.downstream_gateways(agg).len(), 12);
        let core = t.cores()[0];
        assert_eq!(t.downstream_gateways(core).len(), 24);
        let gw = t.gateways()[0];
        assert_eq!(t.downstream_gateways(gw), vec![gw]);
    }

    #[test]
    fn gateway_index_is_positional() {
        let t = Topology::tree(1, 1, 2, 2);
        for (i, &gw) in t.gateways().iter().enumerate() {
            assert_eq!(t.gateway_index(gw), Some(i));
        }
        assert_eq!(t.gateway_index(t.dslams()[0]), None);
    }

    #[test]
    fn service_base_quality() {
        let s = Service::new("iptv", 950);
        assert!((s.base_quality() - 0.95).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "base quality")]
    fn service_rejects_zero_quality() {
        Service::new("bad", 0);
    }

    #[test]
    #[should_panic(expected = "positive fan-out")]
    fn tree_rejects_zero_fanout() {
        Topology::tree(1, 0, 1, 1);
    }
}
