use std::error::Error;
use std::fmt;

/// Errors produced by the QoS-space substrate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum QosError {
    /// The requested space dimension was zero.
    ZeroDimension,
    /// A coordinate fell outside `[0,1]` or was not finite.
    CoordinateOutOfRange {
        /// Index of the offending coordinate.
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// A point had the wrong number of coordinates for the space.
    DimensionMismatch {
        /// Dimension expected by the space.
        expected: usize,
        /// Dimension actually provided.
        actual: usize,
    },
    /// The consistency-impact radius was outside `[0, 1/4)`.
    InvalidRadius {
        /// The offending radius.
        radius: f64,
    },
    /// Two snapshots paired into a `StatePair` disagreed on population or dimension.
    SnapshotMismatch {
        /// Human-readable description of the disagreement.
        reason: String,
    },
    /// A device id was out of bounds for the snapshot population.
    UnknownDevice {
        /// The offending device id.
        id: u32,
        /// Population size of the snapshot.
        population: usize,
    },
}

impl fmt::Display for QosError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QosError::ZeroDimension => write!(f, "QoS space dimension must be at least 1"),
            QosError::CoordinateOutOfRange { index, value } => write!(
                f,
                "coordinate {index} has value {value} outside the unit interval"
            ),
            QosError::DimensionMismatch { expected, actual } => write!(
                f,
                "point has {actual} coordinates but the space has dimension {expected}"
            ),
            QosError::InvalidRadius { radius } => write!(
                f,
                "consistency impact radius {radius} is outside the valid range [0, 1/4)"
            ),
            QosError::SnapshotMismatch { reason } => {
                write!(f, "snapshots cannot be paired: {reason}")
            }
            QosError::UnknownDevice { id, population } => write!(
                f,
                "device id {id} is out of bounds for a population of {population}"
            ),
        }
    }
}

impl Error for QosError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase_start() {
        let errors = [
            QosError::ZeroDimension,
            QosError::CoordinateOutOfRange {
                index: 1,
                value: 1.5,
            },
            QosError::DimensionMismatch {
                expected: 2,
                actual: 3,
            },
            QosError::InvalidRadius { radius: 0.3 },
            QosError::SnapshotMismatch {
                reason: "dim".into(),
            },
            QosError::UnknownDevice {
                id: 9,
                population: 3,
            },
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(!s.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<QosError>();
    }
}
