use crate::point::DeviceId;
use crate::snapshot::StatePair;

/// Uniform-grid spatial index over a [`StatePair`].
///
/// Buckets devices by their position at time `k-1` into hypercube cells of a
/// configurable side, so that the vicinity query *"all devices within uniform
/// distance `radius` of `j` at both times"* inspects only the `3^d`-ish cells
/// around `j` instead of the whole population. Candidates from the grid are
/// then filtered exactly on the motion distance, so results are identical to
/// the linear scan [`StatePair::neighbors_both`].
///
/// The local algorithms of the paper only ever look `2r` (one hop) or `4r`
/// (two hops) away, and `r < 1/4`, so cell sides match query radii well.
///
/// # Example
///
/// ```
/// use anomaly_qos::{GridIndex, QosSpace, Snapshot, StatePair, DeviceId};
/// let space = QosSpace::new(2)?;
/// let before = Snapshot::from_rows(&space, vec![vec![0.1, 0.1], vec![0.12, 0.11], vec![0.9, 0.9]])?;
/// let after  = Snapshot::from_rows(&space, vec![vec![0.4, 0.4], vec![0.42, 0.41], vec![0.9, 0.8]])?;
/// let pair = StatePair::new(before, after)?;
/// let index = GridIndex::build(&pair, 0.06);
/// assert_eq!(index.neighbors_both(&pair, DeviceId(0), 0.06), vec![DeviceId(1)]);
/// # Ok::<(), anomaly_qos::QosError>(())
/// ```
#[derive(Debug, Clone)]
pub struct GridIndex {
    /// Number of cells along each axis.
    cells_per_axis: usize,
    /// Cell side length (1 / cells_per_axis).
    cell_side: f64,
    /// Space dimension.
    dim: usize,
    /// Flattened cell -> device ids bucketed by before-position.
    buckets: Vec<Vec<DeviceId>>,
}

impl GridIndex {
    /// Builds an index over the `before` positions of `pair`, with cells no
    /// smaller than `min_cell_side` (typically the query radius `2r`).
    ///
    /// # Panics
    ///
    /// Panics if `min_cell_side` is not a positive finite number.
    pub fn build(pair: &StatePair, min_cell_side: f64) -> Self {
        let mut index = GridIndex {
            cells_per_axis: 0,
            cell_side: 1.0,
            dim: 0,
            buckets: Vec::new(),
        };
        index.rebuild(pair, min_cell_side);
        index
    }

    /// Re-indexes a (possibly different) state pair in place, reusing the
    /// bucket allocations of the previous instant.
    ///
    /// Continuous monitors rebuild the vicinity index at every sampling
    /// instant; after the first few instants the per-cell vectors have
    /// reached their steady-state capacities and re-indexing allocates
    /// nothing. The resulting index is identical to a fresh
    /// [`GridIndex::build`].
    ///
    /// # Panics
    ///
    /// Panics if `min_cell_side` is not a positive finite number.
    pub fn rebuild(&mut self, pair: &StatePair, min_cell_side: f64) {
        assert!(
            min_cell_side.is_finite() && min_cell_side > 0.0,
            "cell side must be positive and finite"
        );
        let dim = pair.dim();
        // Cap the axis resolution so `cells_per_axis^dim` stays affordable in
        // higher dimensions (d is small in practice: number of services).
        let max_axis = match dim {
            1 => 4096,
            2 => 512,
            3 => 64,
            _ => 16,
        };
        let cells_per_axis = ((1.0 / min_cell_side).floor() as usize).clamp(1, max_axis);
        let cell_side = 1.0 / cells_per_axis as f64;
        let total_cells = cells_per_axis.pow(dim as u32);
        for bucket in &mut self.buckets {
            bucket.clear();
        }
        self.buckets.resize_with(total_cells, Vec::new);
        for (id, p) in pair.before().iter() {
            let cell = Self::cell_of(p.coords(), cells_per_axis, cell_side);
            self.buckets[cell].push(id);
        }
        self.cells_per_axis = cells_per_axis;
        self.cell_side = cell_side;
        self.dim = dim;
    }

    fn cell_of(coords: &[f64], cells_per_axis: usize, cell_side: f64) -> usize {
        let mut idx = 0usize;
        for &c in coords {
            let axis = ((c / cell_side) as usize).min(cells_per_axis - 1);
            idx = idx * cells_per_axis + axis;
        }
        idx
    }

    /// Number of cells along each axis.
    pub fn cells_per_axis(&self) -> usize {
        self.cells_per_axis
    }

    /// Side length of each cell.
    pub fn cell_side(&self) -> f64 {
        self.cell_side
    }

    /// Exact vicinity query: devices other than `j` within uniform distance
    /// `radius` of `j` at **both** times `k-1` and `k`.
    ///
    /// Results are sorted by device id and agree exactly with
    /// [`StatePair::neighbors_both`].
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of bounds for `pair`, or if `pair` disagrees with
    /// the dimension the index was built for.
    pub fn neighbors_both(&self, pair: &StatePair, j: DeviceId, radius: f64) -> Vec<DeviceId> {
        assert_eq!(pair.dim(), self.dim, "state pair dimension mismatch");
        let center = pair.before().position(j).coords();
        let reach = (radius / self.cell_side).ceil() as isize;
        let mut out = Vec::new();
        // Enumerate the hyper-box of cells within `reach` of j's cell.
        let axes: Vec<isize> = center
            .iter()
            .map(|&c| ((c / self.cell_side) as isize).min(self.cells_per_axis as isize - 1))
            .collect();
        let mut offsets = vec![-reach; self.dim];
        'outer: loop {
            // Compute the flattened index of the current neighbour cell.
            let mut idx = 0usize;
            let mut valid = true;
            for (a, off) in axes.iter().zip(&offsets) {
                let axis = a + off;
                if axis < 0 || axis >= self.cells_per_axis as isize {
                    valid = false;
                    break;
                }
                idx = idx * self.cells_per_axis + axis as usize;
            }
            if valid {
                for &cand in &self.buckets[idx] {
                    if cand != j && pair.pairwise_motion_distance(j, cand) <= radius {
                        out.push(cand);
                    }
                }
            }
            // Advance the offset odometer.
            for i in (0..self.dim).rev() {
                offsets[i] += 1;
                if offsets[i] <= reach {
                    continue 'outer;
                }
                offsets[i] = -reach;
            }
            break;
        }
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::Snapshot;
    use crate::space::QosSpace;
    use proptest::prelude::*;

    fn pair_from(rows_before: Vec<Vec<f64>>, rows_after: Vec<Vec<f64>>) -> StatePair {
        let dim = rows_before[0].len();
        let space = QosSpace::new(dim).unwrap();
        StatePair::new(
            Snapshot::from_rows(&space, rows_before).unwrap(),
            Snapshot::from_rows(&space, rows_after).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn matches_linear_scan_on_small_example() {
        let pair = pair_from(
            vec![
                vec![0.1, 0.1],
                vec![0.12, 0.11],
                vec![0.9, 0.9],
                vec![0.13, 0.13],
            ],
            vec![
                vec![0.4, 0.4],
                vec![0.42, 0.41],
                vec![0.9, 0.8],
                vec![0.8, 0.8],
            ],
        );
        let index = GridIndex::build(&pair, 0.06);
        for j in pair.device_ids() {
            let mut expected = pair.neighbors_both(j, 0.06);
            expected.sort_unstable();
            assert_eq!(index.neighbors_both(&pair, j, 0.06), expected);
        }
    }

    #[test]
    fn handles_boundary_coordinates() {
        let pair = pair_from(
            vec![vec![0.0, 0.0], vec![1.0, 1.0], vec![0.02, 0.0]],
            vec![vec![0.0, 0.0], vec![1.0, 1.0], vec![0.02, 0.0]],
        );
        let index = GridIndex::build(&pair, 0.05);
        assert_eq!(
            index.neighbors_both(&pair, DeviceId(0), 0.05),
            vec![DeviceId(2)]
        );
        assert!(index.neighbors_both(&pair, DeviceId(1), 0.05).is_empty());
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn rejects_zero_cell_side() {
        let pair = pair_from(vec![vec![0.5]], vec![vec![0.5]]);
        GridIndex::build(&pair, 0.0);
    }

    #[test]
    fn rebuild_matches_fresh_build_across_instants() {
        let first = pair_from(
            vec![vec![0.1, 0.1], vec![0.5, 0.5], vec![0.9, 0.9]],
            vec![vec![0.2, 0.1], vec![0.5, 0.6], vec![0.9, 0.8]],
        );
        let second = pair_from(
            vec![
                vec![0.3, 0.3],
                vec![0.31, 0.3],
                vec![0.7, 0.7],
                vec![0.72, 0.7],
            ],
            vec![
                vec![0.4, 0.4],
                vec![0.41, 0.4],
                vec![0.7, 0.6],
                vec![0.72, 0.6],
            ],
        );
        let mut reused = GridIndex::build(&first, 0.06);
        reused.rebuild(&second, 0.08);
        let fresh = GridIndex::build(&second, 0.08);
        assert_eq!(reused.cells_per_axis(), fresh.cells_per_axis());
        for j in second.device_ids() {
            assert_eq!(
                reused.neighbors_both(&second, j, 0.08),
                fresh.neighbors_both(&second, j, 0.08),
            );
        }
    }

    #[test]
    fn rebuild_survives_population_and_resolution_changes() {
        // Coarse -> fine -> coarse, with different populations each time.
        let pairs = [
            pair_from(vec![vec![0.5]], vec![vec![0.5]]),
            pair_from(
                vec![vec![0.1], vec![0.12], vec![0.9]],
                vec![vec![0.2], vec![0.22], vec![0.9]],
            ),
        ];
        let mut index = GridIndex::build(&pairs[0], 0.5);
        for (pair, side) in [(&pairs[1], 0.01), (&pairs[0], 0.3), (&pairs[1], 0.06)] {
            index.rebuild(pair, side);
            let fresh = GridIndex::build(pair, side);
            for j in pair.device_ids() {
                assert_eq!(
                    index.neighbors_both(pair, j, side),
                    fresh.neighbors_both(pair, j, side),
                );
            }
        }
    }

    #[test]
    fn one_dimensional_space_works() {
        let pair = pair_from(
            vec![vec![0.1], vec![0.14], vec![0.5]],
            vec![vec![0.2], vec![0.24], vec![0.9]],
        );
        let index = GridIndex::build(&pair, 0.06);
        assert_eq!(
            index.neighbors_both(&pair, DeviceId(0), 0.06),
            vec![DeviceId(1)]
        );
    }

    proptest! {
        /// The grid query is exactly equivalent to the linear scan, for any
        /// population and radius.
        #[test]
        fn grid_equals_linear_scan(
            rows in proptest::collection::vec(
                proptest::collection::vec(0.0..=1.0f64, 2), 1..40),
            rows_after in proptest::collection::vec(
                proptest::collection::vec(0.0..=1.0f64, 2), 1..40),
            radius in 0.01..0.3f64,
        ) {
            let n = rows.len().min(rows_after.len());
            let pair = pair_from(rows[..n].to_vec(), rows_after[..n].to_vec());
            let index = GridIndex::build(&pair, radius);
            for j in pair.device_ids() {
                let mut expected = pair.neighbors_both(j, radius);
                expected.sort_unstable();
                prop_assert_eq!(index.neighbors_both(&pair, j, radius), expected);
            }
        }
    }
}
