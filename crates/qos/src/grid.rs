use crate::point::{DeviceId, Point};
use crate::snapshot::StatePair;

/// How [`GridIndex::apply_moves`] brought the index up to date.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GridUpdate {
    /// Only the devices whose cell changed were re-bucketed.
    Incremental {
        /// Number of devices moved between buckets.
        rebucketed: usize,
    },
    /// The incremental path was not applicable (dimension, resolution, or
    /// population changed) and the index was rebuilt from scratch.
    Rebuilt,
}

/// Uniform-grid spatial index over a [`StatePair`].
///
/// Buckets devices by their position at time `k-1` into hypercube cells of a
/// configurable side, so that the vicinity query *"all devices within uniform
/// distance `radius` of `j` at both times"* inspects only the `3^d`-ish cells
/// around `j` instead of the whole population. Candidates from the grid are
/// then filtered exactly on the motion distance, so results are identical to
/// the linear scan [`StatePair::neighbors_both`].
///
/// The local algorithms of the paper only ever look `2r` (one hop) or `4r`
/// (two hops) away, and `r < 1/4`, so cell sides match query radii well.
///
/// # Example
///
/// ```
/// use anomaly_qos::{GridIndex, QosSpace, Snapshot, StatePair, DeviceId};
/// let space = QosSpace::new(2)?;
/// let before = Snapshot::from_rows(&space, vec![vec![0.1, 0.1], vec![0.12, 0.11], vec![0.9, 0.9]])?;
/// let after  = Snapshot::from_rows(&space, vec![vec![0.4, 0.4], vec![0.42, 0.41], vec![0.9, 0.8]])?;
/// let pair = StatePair::new(before, after)?;
/// let index = GridIndex::build(&pair, 0.06);
/// assert_eq!(index.neighbors_both(&pair, DeviceId(0), 0.06), vec![DeviceId(1)]);
/// # Ok::<(), anomaly_qos::QosError>(())
/// ```
#[derive(Debug, Clone)]
pub struct GridIndex {
    /// Number of cells along each axis.
    cells_per_axis: usize,
    /// Cell side length (1 / cells_per_axis).
    cell_side: f64,
    /// Space dimension.
    dim: usize,
    /// Population the index was built over (before-positions).
    population: usize,
    /// Flattened cell -> device ids bucketed by before-position.
    buckets: Vec<Vec<DeviceId>>,
    /// Per device (dense ids): the flattened cell it is bucketed in.
    cell_of: Vec<usize>,
    /// Per device: its slot within its bucket, so incremental updates
    /// remove in O(1) instead of scanning the bucket.
    slot_of: Vec<usize>,
}

impl GridIndex {
    /// Builds an index over the `before` positions of `pair`, with cells no
    /// smaller than `min_cell_side` (typically the query radius `2r`).
    ///
    /// # Panics
    ///
    /// Panics if `min_cell_side` is not a positive finite number.
    pub fn build(pair: &StatePair, min_cell_side: f64) -> Self {
        let mut index = GridIndex {
            cells_per_axis: 0,
            cell_side: 1.0,
            dim: 0,
            population: 0,
            buckets: Vec::new(),
            cell_of: Vec::new(),
            slot_of: Vec::new(),
        };
        index.rebuild(pair, min_cell_side);
        index
    }

    /// Re-indexes a (possibly different) state pair in place, reusing the
    /// bucket allocations of the previous instant.
    ///
    /// Continuous monitors rebuild the vicinity index at every sampling
    /// instant; after the first few instants the per-cell vectors have
    /// reached their steady-state capacities and re-indexing allocates
    /// nothing. The resulting index is identical to a fresh
    /// [`GridIndex::build`].
    ///
    /// # Panics
    ///
    /// Panics if `min_cell_side` is not a positive finite number.
    pub fn rebuild(&mut self, pair: &StatePair, min_cell_side: f64) {
        assert!(
            min_cell_side.is_finite() && min_cell_side > 0.0,
            "cell side must be positive and finite"
        );
        let dim = pair.dim();
        // Cap the axis resolution so `cells_per_axis^dim` stays affordable in
        // higher dimensions (d is small in practice: number of services).
        let cells_per_axis = ((1.0 / min_cell_side).floor() as usize).clamp(1, Self::max_axis(dim));
        let cell_side = 1.0 / cells_per_axis as f64;
        let total_cells = cells_per_axis.pow(dim as u32);
        for bucket in &mut self.buckets {
            bucket.clear();
        }
        self.buckets.resize_with(total_cells, Vec::new);
        self.cell_of.clear();
        self.slot_of.clear();
        self.cell_of.reserve(pair.len());
        self.slot_of.reserve(pair.len());
        for (id, p) in pair.before().iter() {
            let cell = Self::flatten(p.coords(), cells_per_axis, cell_side);
            self.cell_of.push(cell);
            self.slot_of.push(self.buckets[cell].len());
            self.buckets[cell].push(id);
        }
        self.cells_per_axis = cells_per_axis;
        self.cell_side = cell_side;
        self.dim = dim;
        self.population = pair.len();
    }

    /// Incrementally maintains the index across one sampling instant.
    ///
    /// `moves` lists every device whose **before**-position changed since
    /// the index last described a state pair, as `(device, old position,
    /// new position)`; `pair` is the state pair the index must describe
    /// after the call. Only devices whose grid cell actually changed are
    /// re-bucketed, so a mostly-calm fleet updates in time proportional to
    /// the churn, not the population.
    ///
    /// Falls back to a full [`GridIndex::rebuild`] — returning
    /// [`GridUpdate::Rebuilt`] — whenever the incremental path cannot apply:
    /// the dimension changed, `min_cell_side` implies a different cell
    /// resolution, or the population differs from the one indexed.
    ///
    /// The resulting index is identical to a fresh
    /// [`GridIndex::build`]`(pair, min_cell_side)` as long as `moves` is
    /// complete and accurate; queries remain exact either way because
    /// candidates are always filtered on the true motion distance.
    ///
    /// # Panics
    ///
    /// Panics if `min_cell_side` is not a positive finite number, or if a
    /// move names a device that is not in the bucket its old position maps
    /// to (an incomplete or inconsistent move list).
    pub fn apply_moves(
        &mut self,
        pair: &StatePair,
        min_cell_side: f64,
        moves: &[(DeviceId, Point, Point)],
    ) -> GridUpdate {
        assert!(
            min_cell_side.is_finite() && min_cell_side > 0.0,
            "cell side must be positive and finite"
        );
        let max_axis = Self::max_axis(pair.dim());
        let cells_per_axis = ((1.0 / min_cell_side).floor() as usize).clamp(1, max_axis);
        if pair.dim() != self.dim
            || cells_per_axis != self.cells_per_axis
            || pair.len() != self.population
        {
            self.rebuild(pair, min_cell_side);
            return GridUpdate::Rebuilt;
        }
        let mut rebucketed = 0usize;
        for (id, old, new) in moves {
            let from = self.cell_of[id.index()];
            assert_eq!(
                Self::flatten(old.coords(), self.cells_per_axis, self.cell_side),
                from,
                "move's old position disagrees with the cell device {id} is indexed in",
            );
            let to = Self::flatten(new.coords(), self.cells_per_axis, self.cell_side);
            if from == to {
                continue;
            }
            // O(1) removal: swap-remove the device's slot and re-point the
            // device that swapped into it.
            let slot = self.slot_of[id.index()];
            let bucket = &mut self.buckets[from];
            bucket.swap_remove(slot);
            if let Some(&moved) = bucket.get(slot) {
                self.slot_of[moved.index()] = slot;
            }
            self.cell_of[id.index()] = to;
            self.slot_of[id.index()] = self.buckets[to].len();
            self.buckets[to].push(*id);
            rebucketed += 1;
        }
        GridUpdate::Incremental { rebucketed }
    }

    /// Flattened index of the cell `coords` falls in, under the current
    /// resolution — lets callers detect cell crossings (and thus build
    /// minimal [`GridIndex::apply_moves`] batches) without re-deriving the
    /// grid geometry.
    ///
    /// # Panics
    ///
    /// Panics if `coords` has fewer axes than the indexed dimension.
    pub fn cell_index(&self, coords: &[f64]) -> usize {
        Self::flatten(coords, self.cells_per_axis, self.cell_side)
    }

    /// Axis-resolution cap for a given dimension, keeping
    /// `cells_per_axis^dim` affordable.
    fn max_axis(dim: usize) -> usize {
        match dim {
            1 => 4096,
            2 => 512,
            3 => 64,
            _ => 16,
        }
    }

    fn flatten(coords: &[f64], cells_per_axis: usize, cell_side: f64) -> usize {
        let mut idx = 0usize;
        for &c in coords {
            let axis = ((c / cell_side) as usize).min(cells_per_axis - 1);
            idx = idx * cells_per_axis + axis;
        }
        idx
    }

    /// Number of cells along each axis.
    pub fn cells_per_axis(&self) -> usize {
        self.cells_per_axis
    }

    /// Side length of each cell.
    pub fn cell_side(&self) -> f64 {
        self.cell_side
    }

    /// Expands a set of dirty cells by `rings` rings of neighbouring cells
    /// (Chebyshev distance on the grid, clamped at the domain border).
    ///
    /// This is the locality query behind incremental re-characterization:
    /// a device's verdict depends on trajectories and flags within `4r` of
    /// it (its own `2r`-neighbourhood per Definition 1, plus those
    /// neighbours' `2r`-neighbourhoods for the Section V families). With
    /// cells of side `2r`, two positions at most `4r` apart differ by at
    /// most two cell indices per axis — so `rings = 2` around every cell a
    /// change touched covers every device whose verdict that change could
    /// possibly reach.
    ///
    /// The result contains the input cells themselves (`rings = 0` is the
    /// identity). Out-of-range input cells are ignored.
    pub fn expand_cells(
        &self,
        cells: &std::collections::BTreeSet<usize>,
        rings: usize,
    ) -> std::collections::BTreeSet<usize> {
        let mut out = std::collections::BTreeSet::new();
        let n = self.cells_per_axis;
        let total = n.checked_pow(self.dim as u32).unwrap_or(usize::MAX);
        let mut lo = vec![0usize; self.dim];
        let mut hi = vec![0usize; self.dim];
        let mut cur = vec![0usize; self.dim];
        for &cell in cells {
            if cell >= total {
                continue;
            }
            // Decode the flattened index back into per-axis coordinates
            // (row-major, mirroring `flatten`).
            let mut rest = cell;
            for axis in (0..self.dim).rev() {
                let c = rest % n;
                rest /= n;
                lo[axis] = c.saturating_sub(rings);
                hi[axis] = (c + rings).min(n - 1);
            }
            // Odometer over the clamped hyper-box around the cell.
            cur.copy_from_slice(&lo);
            loop {
                let mut idx = 0usize;
                for &c in &cur {
                    idx = idx * n + c;
                }
                out.insert(idx);
                let mut axis = self.dim;
                loop {
                    if axis == 0 {
                        break;
                    }
                    axis -= 1;
                    if cur[axis] < hi[axis] {
                        cur[axis] += 1;
                        break;
                    }
                    cur[axis] = lo[axis];
                }
                if cur == lo {
                    break;
                }
            }
        }
        out
    }

    /// Exact vicinity query: devices other than `j` within uniform distance
    /// `radius` of `j` at **both** times `k-1` and `k`.
    ///
    /// Results are sorted by device id and agree exactly with
    /// [`StatePair::neighbors_both`].
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of bounds for `pair`, or if `pair` disagrees with
    /// the dimension the index was built for.
    pub fn neighbors_both(&self, pair: &StatePair, j: DeviceId, radius: f64) -> Vec<DeviceId> {
        let mut out = Vec::new();
        self.neighbors_both_into(pair, j, radius, &mut out);
        out
    }

    /// Allocation-free form of [`GridIndex::neighbors_both`] (for `d ≤ 8`;
    /// higher dimensions fall back to two small scratch allocations):
    /// clears `out` and fills it with the sorted result, reusing its
    /// capacity.
    ///
    /// Characterization loops query the vicinity of every flagged device at
    /// every instant; with this variant a single buffer (per worker) absorbs
    /// all of them after the first few queries.
    ///
    /// # Panics
    ///
    /// Same as [`GridIndex::neighbors_both`].
    pub fn neighbors_both_into(
        &self,
        pair: &StatePair,
        j: DeviceId,
        radius: f64,
        out: &mut Vec<DeviceId>,
    ) {
        assert_eq!(pair.dim(), self.dim, "state pair dimension mismatch");
        let center = pair.before().position(j).coords();
        let reach = (radius / self.cell_side).ceil() as isize;
        out.clear();
        // Per-axis scratch on the stack for every realistic dimension (`d`
        // is the number of services a device consumes).
        const STACK_DIMS: usize = 8;
        let mut axes_buf = [0isize; STACK_DIMS];
        let mut offsets_buf = [0isize; STACK_DIMS];
        let (mut axes_vec, mut offsets_vec);
        let (axes, offsets): (&mut [isize], &mut [isize]) = if self.dim <= STACK_DIMS {
            (&mut axes_buf[..self.dim], &mut offsets_buf[..self.dim])
        } else {
            axes_vec = vec![0isize; self.dim];
            offsets_vec = vec![0isize; self.dim];
            (&mut axes_vec[..], &mut offsets_vec[..])
        };
        // Enumerate the hyper-box of cells within `reach` of j's cell.
        for (a, &c) in axes.iter_mut().zip(center) {
            *a = ((c / self.cell_side) as isize).min(self.cells_per_axis as isize - 1);
        }
        offsets.fill(-reach);
        'outer: loop {
            // Compute the flattened index of the current neighbour cell.
            let mut idx = 0usize;
            let mut valid = true;
            for (a, off) in axes.iter().zip(offsets.iter()) {
                let axis = a + off;
                if axis < 0 || axis >= self.cells_per_axis as isize {
                    valid = false;
                    break;
                }
                idx = idx * self.cells_per_axis + axis as usize;
            }
            if valid {
                for &cand in &self.buckets[idx] {
                    if cand != j && pair.pairwise_motion_distance(j, cand) <= radius {
                        out.push(cand);
                    }
                }
            }
            // Advance the offset odometer.
            for i in (0..self.dim).rev() {
                offsets[i] += 1;
                if offsets[i] <= reach {
                    continue 'outer;
                }
                offsets[i] = -reach;
            }
            break;
        }
        out.sort_unstable();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::Snapshot;
    use crate::space::QosSpace;
    use proptest::prelude::*;

    fn pair_from(rows_before: Vec<Vec<f64>>, rows_after: Vec<Vec<f64>>) -> StatePair {
        let dim = rows_before[0].len();
        let space = QosSpace::new(dim).unwrap();
        StatePair::new(
            Snapshot::from_rows(&space, rows_before).unwrap(),
            Snapshot::from_rows(&space, rows_after).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn matches_linear_scan_on_small_example() {
        let pair = pair_from(
            vec![
                vec![0.1, 0.1],
                vec![0.12, 0.11],
                vec![0.9, 0.9],
                vec![0.13, 0.13],
            ],
            vec![
                vec![0.4, 0.4],
                vec![0.42, 0.41],
                vec![0.9, 0.8],
                vec![0.8, 0.8],
            ],
        );
        let index = GridIndex::build(&pair, 0.06);
        for j in pair.device_ids() {
            let mut expected = pair.neighbors_both(j, 0.06);
            expected.sort_unstable();
            assert_eq!(index.neighbors_both(&pair, j, 0.06), expected);
        }
    }

    #[test]
    fn expand_cells_covers_the_chebyshev_ring() {
        let pair = pair_from(
            vec![vec![0.5, 0.5], vec![0.1, 0.1]],
            vec![vec![0.5, 0.5], vec![0.1, 0.1]],
        );
        let index = GridIndex::build(&pair, 0.1); // 10 cells per axis
        let n = index.cells_per_axis();
        assert_eq!(n, 10);
        let center = index.cell_index(&[0.55, 0.55]); // cell (5, 5)
        let dirty: std::collections::BTreeSet<usize> = [center].into_iter().collect();

        // rings = 0 is the identity.
        assert_eq!(index.expand_cells(&dirty, 0), dirty);

        // rings = 2 is the full 5x5 Chebyshev box around (5, 5).
        let expanded = index.expand_cells(&dirty, 2);
        let mut expected = std::collections::BTreeSet::new();
        for x in 3..=7usize {
            for y in 3..=7usize {
                expected.insert(x * n + y);
            }
        }
        assert_eq!(expanded, expected);
    }

    #[test]
    fn expand_cells_clamps_at_the_domain_border() {
        let pair = pair_from(vec![vec![0.05, 0.05]], vec![vec![0.05, 0.05]]);
        let index = GridIndex::build(&pair, 0.1);
        let n = index.cells_per_axis();
        let corner = index.cell_index(&[0.0, 0.0]); // cell (0, 0)
        let dirty: std::collections::BTreeSet<usize> = [corner].into_iter().collect();
        let expanded = index.expand_cells(&dirty, 2);
        let mut expected = std::collections::BTreeSet::new();
        for x in 0..=2usize {
            for y in 0..=2usize {
                expected.insert(x * n + y);
            }
        }
        assert_eq!(expanded, expected);
        // Out-of-range cells are ignored rather than decoded nonsensically.
        let bogus: std::collections::BTreeSet<usize> = [n * n + 7].into_iter().collect();
        assert!(index.expand_cells(&bogus, 2).is_empty());
    }

    #[test]
    fn expand_cells_merges_overlapping_neighbourhoods() {
        let pair = pair_from(vec![vec![0.5, 0.5]], vec![vec![0.5, 0.5]]);
        let index = GridIndex::build(&pair, 0.1);
        let a = index.cell_index(&[0.45, 0.45]);
        let b = index.cell_index(&[0.55, 0.45]); // adjacent along axis 0
        let dirty: std::collections::BTreeSet<usize> = [a, b].into_iter().collect();
        let expanded = index.expand_cells(&dirty, 1);
        // Two adjacent 3x3 boxes overlap into a 4x3 box: 12 distinct cells.
        assert_eq!(expanded.len(), 12);
        for &cell in &dirty {
            assert!(expanded.contains(&cell));
        }
    }

    #[test]
    fn handles_boundary_coordinates() {
        let pair = pair_from(
            vec![vec![0.0, 0.0], vec![1.0, 1.0], vec![0.02, 0.0]],
            vec![vec![0.0, 0.0], vec![1.0, 1.0], vec![0.02, 0.0]],
        );
        let index = GridIndex::build(&pair, 0.05);
        assert_eq!(
            index.neighbors_both(&pair, DeviceId(0), 0.05),
            vec![DeviceId(2)]
        );
        assert!(index.neighbors_both(&pair, DeviceId(1), 0.05).is_empty());
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn rejects_zero_cell_side() {
        let pair = pair_from(vec![vec![0.5]], vec![vec![0.5]]);
        GridIndex::build(&pair, 0.0);
    }

    #[test]
    fn rebuild_matches_fresh_build_across_instants() {
        let first = pair_from(
            vec![vec![0.1, 0.1], vec![0.5, 0.5], vec![0.9, 0.9]],
            vec![vec![0.2, 0.1], vec![0.5, 0.6], vec![0.9, 0.8]],
        );
        let second = pair_from(
            vec![
                vec![0.3, 0.3],
                vec![0.31, 0.3],
                vec![0.7, 0.7],
                vec![0.72, 0.7],
            ],
            vec![
                vec![0.4, 0.4],
                vec![0.41, 0.4],
                vec![0.7, 0.6],
                vec![0.72, 0.6],
            ],
        );
        let mut reused = GridIndex::build(&first, 0.06);
        reused.rebuild(&second, 0.08);
        let fresh = GridIndex::build(&second, 0.08);
        assert_eq!(reused.cells_per_axis(), fresh.cells_per_axis());
        for j in second.device_ids() {
            assert_eq!(
                reused.neighbors_both(&second, j, 0.08),
                fresh.neighbors_both(&second, j, 0.08),
            );
        }
    }

    #[test]
    fn rebuild_survives_population_and_resolution_changes() {
        // Coarse -> fine -> coarse, with different populations each time.
        let pairs = [
            pair_from(vec![vec![0.5]], vec![vec![0.5]]),
            pair_from(
                vec![vec![0.1], vec![0.12], vec![0.9]],
                vec![vec![0.2], vec![0.22], vec![0.9]],
            ),
        ];
        let mut index = GridIndex::build(&pairs[0], 0.5);
        for (pair, side) in [(&pairs[1], 0.01), (&pairs[0], 0.3), (&pairs[1], 0.06)] {
            index.rebuild(pair, side);
            let fresh = GridIndex::build(pair, side);
            for j in pair.device_ids() {
                assert_eq!(
                    index.neighbors_both(pair, j, side),
                    fresh.neighbors_both(pair, j, side),
                );
            }
        }
    }

    #[test]
    fn one_dimensional_space_works() {
        let pair = pair_from(
            vec![vec![0.1], vec![0.14], vec![0.5]],
            vec![vec![0.2], vec![0.24], vec![0.9]],
        );
        let index = GridIndex::build(&pair, 0.06);
        assert_eq!(
            index.neighbors_both(&pair, DeviceId(0), 0.06),
            vec![DeviceId(1)]
        );
    }

    /// Applies `moves` (old pair -> new pair, positional diff of the before
    /// snapshots) and asserts the result equals a fresh build.
    fn assert_apply_matches_fresh(old: &StatePair, new: &StatePair, side: f64, radius: f64) {
        let mut index = GridIndex::build(old, side);
        let moves: Vec<(DeviceId, Point, Point)> = old
            .before()
            .iter()
            .zip(new.before().iter())
            .filter(|((_, a), (_, b))| a != b)
            .map(|((id, a), (_, b))| (id, a.clone(), b.clone()))
            .collect();
        index.apply_moves(new, side, &moves);
        let fresh = GridIndex::build(new, side);
        for j in new.device_ids() {
            assert_eq!(
                index.neighbors_both(new, j, radius),
                fresh.neighbors_both(new, j, radius),
                "device {j:?} disagrees after apply_moves"
            );
        }
    }

    #[test]
    fn apply_moves_rebuckets_boundary_crossers() {
        let old = pair_from(
            vec![vec![0.10, 0.10], vec![0.50, 0.50], vec![0.90, 0.90]],
            vec![vec![0.12, 0.10], vec![0.50, 0.52], vec![0.90, 0.88]],
        );
        // Device 0 crosses several cells, device 1 stays put, device 2
        // nudges within its cell.
        let new = pair_from(
            vec![vec![0.45, 0.45], vec![0.50, 0.50], vec![0.905, 0.90]],
            vec![vec![0.46, 0.45], vec![0.50, 0.51], vec![0.91, 0.90]],
        );
        assert_apply_matches_fresh(&old, &new, 0.06, 0.06);
    }

    #[test]
    fn apply_moves_reports_incremental_outcome_and_counts() {
        let old = pair_from(vec![vec![0.1], vec![0.9]], vec![vec![0.1], vec![0.9]]);
        let new = pair_from(vec![vec![0.6], vec![0.9]], vec![vec![0.6], vec![0.9]]);
        let mut index = GridIndex::build(&old, 0.1);
        let moves = vec![(
            DeviceId(0),
            old.before().position(DeviceId(0)).clone(),
            new.before().position(DeviceId(0)).clone(),
        )];
        assert_eq!(
            index.apply_moves(&new, 0.1, &moves),
            GridUpdate::Incremental { rebucketed: 1 }
        );
        // A no-op move (same cell) is not counted.
        assert_eq!(
            index.apply_moves(&new, 0.1, &[]),
            GridUpdate::Incremental { rebucketed: 0 }
        );
    }

    #[test]
    fn apply_moves_falls_back_to_rebuild_on_cell_side_change() {
        let pair = pair_from(
            vec![vec![0.1], vec![0.5], vec![0.9]],
            vec![vec![0.1], vec![0.5], vec![0.9]],
        );
        let mut index = GridIndex::build(&pair, 0.1);
        // A different resolution cannot be patched in place.
        assert_eq!(index.apply_moves(&pair, 0.3, &[]), GridUpdate::Rebuilt);
        assert_eq!(
            index.cells_per_axis(),
            GridIndex::build(&pair, 0.3).cells_per_axis()
        );
    }

    #[test]
    fn apply_moves_falls_back_to_rebuild_on_population_change() {
        let old = pair_from(vec![vec![0.1], vec![0.9]], vec![vec![0.1], vec![0.9]]);
        let new = pair_from(
            vec![vec![0.1], vec![0.5], vec![0.9]],
            vec![vec![0.1], vec![0.5], vec![0.9]],
        );
        let mut index = GridIndex::build(&old, 0.1);
        assert_eq!(index.apply_moves(&new, 0.1, &[]), GridUpdate::Rebuilt);
        let fresh = GridIndex::build(&new, 0.1);
        for j in new.device_ids() {
            assert_eq!(
                index.neighbors_both(&new, j, 0.1),
                fresh.neighbors_both(&new, j, 0.1),
            );
        }
    }

    #[test]
    #[should_panic(expected = "disagrees with the cell")]
    fn apply_moves_rejects_inconsistent_move_lists() {
        let pair = pair_from(vec![vec![0.1]], vec![vec![0.1]]);
        let mut index = GridIndex::build(&pair, 0.1);
        // Claims device 0 was at 0.9 (wrong cell).
        let lie = vec![(
            DeviceId(0),
            Point::new_unchecked(vec![0.9]),
            Point::new_unchecked(vec![0.1]),
        )];
        index.apply_moves(&pair, 0.1, &lie);
    }

    /// The axis-resolution cap engages for `min_cell_side` far below
    /// `1 / max_axis(dim)`; a caller detecting cell crossings through
    /// [`GridIndex::cell_index`] (the monitor's staged-move filter) must
    /// stay consistent with `apply_moves`' own capped geometry.
    #[test]
    fn cell_index_crossing_filter_matches_apply_moves_under_the_cap() {
        // dim 3: uncapped would be 1000 cells/axis, capped at 64.
        let rows: Vec<Vec<f64>> = (0..12)
            .map(|i| vec![0.08 * i as f64, 0.07 * i as f64, 0.05 * i as f64])
            .collect();
        let old = pair_from(rows.clone(), rows.clone());
        let side = 0.001;
        let mut index = GridIndex::build(&old, side);
        assert_eq!(index.cells_per_axis(), 64, "the dim-3 cap must engage");
        // Every device nudges; some cross capped cells, some only cross
        // cells of the *uncapped* resolution (the desync hazard: filtering
        // with the wrong geometry would drop or fabricate moves).
        let new_rows: Vec<Vec<f64>> = rows
            .iter()
            .enumerate()
            .map(|(i, row)| {
                let nudge = if i % 3 == 0 { 0.002 } else { 0.11 };
                row.iter().map(|c| (c + nudge).min(1.0)).collect()
            })
            .collect();
        let new = pair_from(new_rows, rows.clone());
        // The monitor's filter: keep only moves whose *capped* cell differs.
        let moves: Vec<(DeviceId, Point, Point)> = old
            .before()
            .iter()
            .zip(new.before().iter())
            .filter(|((_, a), (_, b))| index.cell_index(a.coords()) != index.cell_index(b.coords()))
            .map(|((id, a), (_, b))| (id, a.clone(), b.clone()))
            .collect();
        assert!(
            moves.len() < old.len(),
            "some nudges must stay within their capped cell"
        );
        assert_eq!(
            index.apply_moves(&new, side, &moves),
            GridUpdate::Incremental {
                rebucketed: moves.len()
            }
        );
        let fresh = GridIndex::build(&new, side);
        for j in new.device_ids() {
            for radius in [0.02, 0.12] {
                assert_eq!(
                    index.neighbors_both(&new, j, radius),
                    fresh.neighbors_both(&new, j, radius),
                    "device {j:?} at radius {radius}"
                );
            }
        }
    }

    #[test]
    fn the_axis_cap_depends_on_the_dimension() {
        for (dim, expected) in [(1usize, 4096), (2, 512), (3, 64), (4, 16), (6, 16)] {
            let rows = vec![vec![0.5; dim], vec![0.25; dim]];
            let pair = pair_from(rows.clone(), rows);
            let index = GridIndex::build(&pair, 1e-9);
            assert_eq!(index.cells_per_axis(), expected, "dim {dim}");
            // The capped cell side is what cell_index actually uses.
            assert!((index.cell_side() - 1.0 / expected as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn neighbors_both_into_reuses_the_buffer() {
        let pair = pair_from(
            vec![vec![0.1, 0.1], vec![0.12, 0.11], vec![0.9, 0.9]],
            vec![vec![0.4, 0.4], vec![0.42, 0.41], vec![0.9, 0.8]],
        );
        let index = GridIndex::build(&pair, 0.06);
        let mut buf = Vec::new();
        index.neighbors_both_into(&pair, DeviceId(0), 0.06, &mut buf);
        assert_eq!(buf, vec![DeviceId(1)]);
        let cap = buf.capacity();
        index.neighbors_both_into(&pair, DeviceId(2), 0.06, &mut buf);
        assert!(buf.is_empty());
        assert_eq!(buf.capacity(), cap, "buffer capacity is reused");
    }

    proptest! {
        /// The grid query is exactly equivalent to the linear scan, for any
        /// population and radius.
        #[test]
        fn grid_equals_linear_scan(
            rows in proptest::collection::vec(
                proptest::collection::vec(0.0..=1.0f64, 2), 1..40),
            rows_after in proptest::collection::vec(
                proptest::collection::vec(0.0..=1.0f64, 2), 1..40),
            radius in 0.01..0.3f64,
        ) {
            let n = rows.len().min(rows_after.len());
            let pair = pair_from(rows[..n].to_vec(), rows_after[..n].to_vec());
            let index = GridIndex::build(&pair, radius);
            for j in pair.device_ids() {
                let mut expected = pair.neighbors_both(j, radius);
                expected.sort_unstable();
                prop_assert_eq!(index.neighbors_both(&pair, j, radius), expected);
            }
        }

        /// In the capped-resolution regime (dim 3, radii far below the
        /// 1/64 capped cell side) the incremental path must still agree
        /// with a fresh build — both when handed the full positional diff
        /// and when handed only the moves that cross a *capped* cell, the
        /// filter the monitor's sealing path applies via `cell_index`.
        #[test]
        fn apply_moves_equals_fresh_build_when_the_axis_cap_engages(
            rows in proptest::collection::vec(
                proptest::collection::vec(0.0..=1.0f64, 3), 1..25),
            moved in proptest::collection::vec(
                proptest::collection::vec(0.0..=1.0f64, 3), 1..25),
            radius in 0.0003..0.02f64,
        ) {
            let n = rows.len().min(moved.len());
            let before = rows[..n].to_vec();
            let old = pair_from(before.clone(), before.clone());
            let new_before: Vec<Vec<f64>> = before
                .iter()
                .enumerate()
                .map(|(i, row)| if i % 2 == 0 { moved[i].clone() } else { row.clone() })
                .collect();
            let new = pair_from(new_before, moved[..n].to_vec());
            prop_assert!(GridIndex::build(&old, radius).cells_per_axis() <= 64);
            // Full positional diff.
            assert_apply_matches_fresh(&old, &new, radius, radius);
            // Capped-cell-crossing filter only (the monitor's batch).
            let mut index = GridIndex::build(&old, radius);
            let moves: Vec<(DeviceId, Point, Point)> = old
                .before()
                .iter()
                .zip(new.before().iter())
                .filter(|((_, a), (_, b))| {
                    index.cell_index(a.coords()) != index.cell_index(b.coords())
                })
                .map(|((id, a), (_, b))| (id, a.clone(), b.clone()))
                .collect();
            index.apply_moves(&new, radius, &moves);
            let fresh = GridIndex::build(&new, radius);
            for j in new.device_ids() {
                prop_assert_eq!(
                    index.neighbors_both(&new, j, radius),
                    fresh.neighbors_both(&new, j, radius)
                );
            }
        }

        /// Applying a randomized batch of moves is equivalent to a fresh
        /// build over the moved-to state, for any population and radius —
        /// including devices crossing cell boundaries.
        #[test]
        fn apply_moves_equals_fresh_build(
            rows in proptest::collection::vec(
                proptest::collection::vec(0.0..=1.0f64, 2), 1..30),
            moved in proptest::collection::vec(
                proptest::collection::vec(0.0..=1.0f64, 2), 1..30),
            radius in 0.01..0.3f64,
        ) {
            let n = rows.len().min(moved.len());
            let before = rows[..n].to_vec();
            let old = pair_from(before.clone(), before.clone());
            // Move a deterministic subset (every other device) to a fresh
            // random position; the rest stay put.
            let new_before: Vec<Vec<f64>> = before
                .iter()
                .enumerate()
                .map(|(i, row)| if i % 2 == 0 { moved[i].clone() } else { row.clone() })
                .collect();
            let new = pair_from(new_before, moved[..n].to_vec());
            assert_apply_matches_fresh(&old, &new, radius, radius);
        }
    }
}
