//! QoS-space geometry substrate for anomaly characterization.
//!
//! This crate models the *QoS space* `E = [0,1]^d` of the DSN 2014 paper
//! "Anomaly Characterization in Large Scale Networks" (Anceaume et al.):
//! every monitored device continuously consumes `d` services, and the
//! end-to-end quality of each service is a value in `[0,1]`, so the state of
//! a device at discrete time `k` is a point `p_k(j) ∈ E`.
//!
//! Provided building blocks:
//!
//! * [`Point`] / [`DeviceId`] — positions of devices in `E`.
//! * [`norm`] — the uniform (L∞) norm used throughout the paper, plus L1/L2
//!   for completeness (all norms on `E` are equivalent, Section III-B).
//! * [`QosSpace`] — dimension-checked construction and containment.
//! * [`Snapshot`] / [`StatePair`] — the system states `S_{k-1}`, `S_k`.
//! * [`Trajectory`] — a device's motion between two successive snapshots.
//! * [`GridIndex`] — a uniform-grid spatial index answering the vicinity
//!   queries `N(j)` (all devices within `2r` of `j` at *both* times) that the
//!   local characterization algorithms rely on.
//!
//! # Example
//!
//! ```
//! use anomaly_qos::{Point, QosSpace, Snapshot, StatePair, DeviceId};
//!
//! let space = QosSpace::new(2).unwrap();
//! let before = Snapshot::from_rows(&space, vec![vec![0.10, 0.20], vec![0.12, 0.21]]).unwrap();
//! let after  = Snapshot::from_rows(&space, vec![vec![0.50, 0.60], vec![0.52, 0.61]]).unwrap();
//! let pair = StatePair::new(before, after).unwrap();
//! // Devices 0 and 1 moved together: their trajectories stay within 2r of
//! // each other for r = 0.02 at both times.
//! let d = pair.pairwise_motion_distance(DeviceId(0), DeviceId(1));
//! assert!(d <= 2.0 * 0.02);
//! ```

#![forbid(unsafe_code)]
#![deny(warnings)]
#![warn(missing_docs)]

mod error;
mod grid;
pub mod norm;
mod point;
mod snapshot;
mod space;
mod trajectory;

pub use error::QosError;
pub use grid::{GridIndex, GridUpdate};
pub use norm::{l1_distance, l2_distance, uniform_distance, Norm, NormKind};
pub use point::{DeviceId, Point};
pub use snapshot::{Snapshot, StatePair};
pub use space::QosSpace;
pub use trajectory::Trajectory;

/// Upper bound (exclusive) of the valid consistency-impact radius `r`.
///
/// Definition 1 of the paper requires `r ∈ [0, 1/4)`.
pub const MAX_RADIUS: f64 = 0.25;

/// Validates a consistency-impact radius `r ∈ [0, 1/4)`.
///
/// # Errors
///
/// Returns [`QosError::InvalidRadius`] if `r` is negative, not finite, or
/// `>= 1/4`.
///
/// # Example
///
/// ```
/// assert!(anomaly_qos::validate_radius(0.03).is_ok());
/// assert!(anomaly_qos::validate_radius(0.25).is_err());
/// ```
pub fn validate_radius(r: f64) -> Result<f64, QosError> {
    if r.is_finite() && (0.0..MAX_RADIUS).contains(&r) {
        Ok(r)
    } else {
        Err(QosError::InvalidRadius { radius: r })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn radius_accepts_paper_value() {
        assert_eq!(validate_radius(0.03).unwrap(), 0.03);
    }

    #[test]
    fn radius_accepts_zero() {
        assert_eq!(validate_radius(0.0).unwrap(), 0.0);
    }

    #[test]
    fn radius_rejects_quarter_and_above() {
        assert!(validate_radius(0.25).is_err());
        assert!(validate_radius(0.7).is_err());
    }

    #[test]
    fn radius_rejects_negative_and_nan() {
        assert!(validate_radius(-0.01).is_err());
        assert!(validate_radius(f64::NAN).is_err());
        assert!(validate_radius(f64::INFINITY).is_err());
    }
}
