//! Norms on the QoS space.
//!
//! The paper uses the uniform norm `‖x‖ = max_i |x_i|` throughout
//! (Section III-B), noting that on a finite-dimensional space all norms are
//! equivalent up to a constant factor. We expose the uniform norm as the
//! default along with L1 and L2 for experimentation, behind the [`Norm`]
//! trait so the characterization core stays norm-generic where it matters.

use crate::point::Point;

/// Distance under the uniform (L∞, Chebyshev) norm.
///
/// # Panics
///
/// Panics if the two slices have different lengths.
///
/// # Example
///
/// ```
/// let d = anomaly_qos::uniform_distance(&[0.1, 0.5], &[0.2, 0.1]);
/// assert!((d - 0.4).abs() < 1e-12);
/// ```
pub fn uniform_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "distance requires equal dimensions");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// Distance under the L1 (Manhattan) norm.
///
/// # Panics
///
/// Panics if the two slices have different lengths.
pub fn l1_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "distance requires equal dimensions");
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

/// Distance under the L2 (Euclidean) norm.
///
/// # Panics
///
/// Panics if the two slices have different lengths.
pub fn l2_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "distance requires equal dimensions");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// A norm-induced distance on the QoS space.
///
/// This trait is sealed in spirit — the characterization theorems are stated
/// for the uniform norm, so downstream code should default to
/// [`NormKind::Uniform`]; the other kinds exist for sensitivity experiments.
pub trait Norm {
    /// Distance between two coordinate slices.
    ///
    /// # Panics
    ///
    /// Implementations panic if the slices have different lengths.
    fn distance(&self, a: &[f64], b: &[f64]) -> f64;

    /// Distance between two points.
    fn point_distance(&self, a: &Point, b: &Point) -> f64 {
        self.distance(a.coords(), b.coords())
    }
}

/// The concrete norms shipped with this crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum NormKind {
    /// Uniform (L∞) norm — the norm the paper's theorems are stated in.
    #[default]
    Uniform,
    /// Manhattan (L1) norm.
    L1,
    /// Euclidean (L2) norm.
    L2,
}

impl Norm for NormKind {
    fn distance(&self, a: &[f64], b: &[f64]) -> f64 {
        match self {
            NormKind::Uniform => uniform_distance(a, b),
            NormKind::L1 => l1_distance(a, b),
            NormKind::L2 => l2_distance(a, b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn uniform_is_max_abs_diff() {
        assert_eq!(uniform_distance(&[0.0, 0.0], &[0.3, -0.7]), 0.7);
    }

    #[test]
    fn l1_is_sum_abs_diff() {
        assert!((l1_distance(&[0.0, 0.0], &[0.3, -0.7]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn l2_is_euclidean() {
        assert!((l2_distance(&[0.0, 0.0], &[3.0, 4.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn norm_kind_dispatches() {
        let a = [0.1, 0.2];
        let b = [0.4, 0.6];
        assert_eq!(NormKind::Uniform.distance(&a, &b), uniform_distance(&a, &b));
        assert_eq!(NormKind::L1.distance(&a, &b), l1_distance(&a, &b));
        assert_eq!(NormKind::L2.distance(&a, &b), l2_distance(&a, &b));
    }

    #[test]
    fn point_distance_matches_slice_distance() {
        let p = Point::new_unchecked(vec![0.2, 0.4]);
        let q = Point::new_unchecked(vec![0.25, 0.1]);
        let d = NormKind::Uniform.point_distance(&p, &q);
        assert!((d - 0.3).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "equal dimensions")]
    fn mismatched_dimensions_panic() {
        uniform_distance(&[0.0], &[0.0, 1.0]);
    }

    proptest! {
        /// Norm equivalence on finite-dimensional spaces (Section III-B):
        /// `L∞ ≤ L2 ≤ L1 ≤ d · L∞`.
        #[test]
        fn norm_equivalence(a in proptest::collection::vec(0.0..1.0f64, 1..6),
                            b in proptest::collection::vec(0.0..1.0f64, 1..6)) {
            let d = a.len().min(b.len());
            let (a, b) = (&a[..d], &b[..d]);
            let li = uniform_distance(a, b);
            let l1 = l1_distance(a, b);
            let l2 = l2_distance(a, b);
            prop_assert!(li <= l2 + 1e-12);
            prop_assert!(l2 <= l1 + 1e-12);
            prop_assert!(l1 <= d as f64 * li + 1e-12);
        }

        /// Triangle inequality for the uniform norm.
        #[test]
        fn uniform_triangle_inequality(
            a in proptest::collection::vec(0.0..1.0f64, 3),
            b in proptest::collection::vec(0.0..1.0f64, 3),
            c in proptest::collection::vec(0.0..1.0f64, 3),
        ) {
            let ab = uniform_distance(&a, &b);
            let bc = uniform_distance(&b, &c);
            let ac = uniform_distance(&a, &c);
            prop_assert!(ac <= ab + bc + 1e-12);
        }

        /// Symmetry and identity of indiscernibles (up to fp equality).
        #[test]
        fn uniform_symmetry(a in proptest::collection::vec(0.0..1.0f64, 4),
                            b in proptest::collection::vec(0.0..1.0f64, 4)) {
            prop_assert_eq!(uniform_distance(&a, &b), uniform_distance(&b, &a));
            prop_assert_eq!(uniform_distance(&a, &a), 0.0);
        }
    }
}
