use std::fmt;
use std::ops::Index;

/// Identifier of a monitored device, i.e. an index into a snapshot.
///
/// The paper ranges devices over `[[1, n]]`; we use `0..n` indices. The
/// newtype prevents mixing device ids with other integers (sizes, counts).
///
/// # Example
///
/// ```
/// use anomaly_qos::DeviceId;
/// let j = DeviceId(3);
/// assert_eq!(j.index(), 3);
/// assert_eq!(j.to_string(), "d3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct DeviceId(pub u32);

impl DeviceId {
    /// Returns the id as a `usize` index into snapshot storage.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

impl From<u32> for DeviceId {
    fn from(value: u32) -> Self {
        DeviceId(value)
    }
}

impl From<DeviceId> for u32 {
    fn from(value: DeviceId) -> Self {
        value.0
    }
}

/// A position in the QoS space `E = [0,1]^d`.
///
/// Coordinates are the end-to-end QoS measurements `q_{i,k}(j)` of the `d`
/// services consumed by a device (Section III-A of the paper).
///
/// Construction through [`crate::QosSpace::point`] validates that every
/// coordinate lies in `[0,1]`; [`Point::new_unchecked`] skips validation for
/// internal hot paths (it is safe — out-of-range coordinates only degrade
/// semantics, never memory safety).
///
/// # Example
///
/// ```
/// use anomaly_qos::{Point, QosSpace};
/// let space = QosSpace::new(2)?;
/// let p = space.point(vec![0.3, 0.8])?;
/// assert_eq!(p.dim(), 2);
/// assert_eq!(p[0], 0.3);
/// # Ok::<(), anomaly_qos::QosError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Point {
    coords: Vec<f64>,
}

impl Point {
    /// Creates a point without validating coordinate ranges.
    ///
    /// Prefer [`crate::QosSpace::point`] at API boundaries.
    pub fn new_unchecked(coords: Vec<f64>) -> Self {
        Point { coords }
    }

    /// Number of coordinates (the space dimension `d`).
    pub fn dim(&self) -> usize {
        self.coords.len()
    }

    /// Coordinate accessor returning `None` out of bounds.
    pub fn get(&self, i: usize) -> Option<f64> {
        self.coords.get(i).copied()
    }

    /// Coordinates as a slice.
    pub fn coords(&self) -> &[f64] {
        &self.coords
    }

    /// Consumes the point, returning its coordinate vector.
    pub fn into_coords(self) -> Vec<f64> {
        self.coords
    }

    /// Overwrites this point's coordinates with `src`'s, reusing the
    /// existing allocation — the buffer-recycling primitive behind
    /// [`crate::Snapshot::copy_row_from`].
    ///
    /// # Panics
    ///
    /// Panics if the dimensions disagree.
    pub fn copy_from(&mut self, src: &Point) {
        assert_eq!(
            self.coords.len(),
            src.coords.len(),
            "point dimensions must match to copy in place"
        );
        self.coords.copy_from_slice(&src.coords);
    }

    /// Returns the point translated by `delta`, clamped into `[0,1]^d`.
    ///
    /// # Panics
    ///
    /// Panics if `delta.len() != self.dim()`.
    pub fn translated_clamped(&self, delta: &[f64]) -> Point {
        assert_eq!(
            delta.len(),
            self.dim(),
            "translation vector dimension must match point dimension"
        );
        let coords = self
            .coords
            .iter()
            .zip(delta)
            .map(|(c, d)| (c + d).clamp(0.0, 1.0))
            .collect();
        Point { coords }
    }

    /// True if every coordinate lies in `[0,1]` and is finite.
    pub fn is_in_unit_cube(&self) -> bool {
        self.coords
            .iter()
            .all(|c| c.is_finite() && (0.0..=1.0).contains(c))
    }
}

impl Index<usize> for Point {
    type Output = f64;

    fn index(&self, index: usize) -> &f64 {
        &self.coords[index]
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.coords.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c:.4}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<f64>> for Point {
    fn from(coords: Vec<f64>) -> Self {
        Point::new_unchecked(coords)
    }
}

impl AsRef<[f64]> for Point {
    fn as_ref(&self) -> &[f64] {
        &self.coords
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_id_roundtrip() {
        let id = DeviceId::from(7u32);
        assert_eq!(u32::from(id), 7);
        assert_eq!(id.index(), 7);
    }

    #[test]
    fn point_accessors() {
        let p = Point::new_unchecked(vec![0.1, 0.9]);
        assert_eq!(p.dim(), 2);
        assert_eq!(p.get(0), Some(0.1));
        assert_eq!(p.get(2), None);
        assert_eq!(p[1], 0.9);
        assert_eq!(p.coords(), &[0.1, 0.9]);
    }

    #[test]
    fn translation_clamps_to_unit_cube() {
        let p = Point::new_unchecked(vec![0.9, 0.1]);
        let q = p.translated_clamped(&[0.3, -0.3]);
        assert_eq!(q.coords(), &[1.0, 0.0]);
        assert!(q.is_in_unit_cube());
    }

    #[test]
    #[should_panic(expected = "translation vector dimension")]
    fn translation_rejects_wrong_dimension() {
        Point::new_unchecked(vec![0.5]).translated_clamped(&[0.1, 0.2]);
    }

    #[test]
    fn unit_cube_check() {
        assert!(Point::new_unchecked(vec![0.0, 1.0]).is_in_unit_cube());
        assert!(!Point::new_unchecked(vec![-0.1]).is_in_unit_cube());
        assert!(!Point::new_unchecked(vec![f64::NAN]).is_in_unit_cube());
    }

    #[test]
    fn display_formats_coordinates() {
        let p = Point::new_unchecked(vec![0.25, 0.5]);
        assert_eq!(p.to_string(), "(0.2500, 0.5000)");
    }
}
