use crate::error::QosError;
use crate::norm::uniform_distance;
use crate::point::{DeviceId, Point};
use crate::space::QosSpace;
use crate::trajectory::Trajectory;

/// The system state `S_k` at one discrete time: the position of every device.
///
/// # Example
///
/// ```
/// use anomaly_qos::{QosSpace, Snapshot, DeviceId};
/// let space = QosSpace::new(2)?;
/// let snap = Snapshot::from_rows(&space, vec![vec![0.1, 0.2], vec![0.3, 0.4]])?;
/// assert_eq!(snap.len(), 2);
/// assert_eq!(snap.position(DeviceId(1)).coords(), &[0.3, 0.4]);
/// # Ok::<(), anomaly_qos::QosError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    dim: usize,
    positions: Vec<Point>,
}

impl Snapshot {
    /// Builds a snapshot from validated points.
    ///
    /// # Errors
    ///
    /// Returns [`QosError::DimensionMismatch`] if any point disagrees with the
    /// space dimension, or [`QosError::CoordinateOutOfRange`] if a point lies
    /// outside the unit cube.
    pub fn new(space: &QosSpace, positions: Vec<Point>) -> Result<Self, QosError> {
        for p in &positions {
            if p.dim() != space.dim() {
                return Err(QosError::DimensionMismatch {
                    expected: space.dim(),
                    actual: p.dim(),
                });
            }
            if !p.is_in_unit_cube() {
                let (index, value) = p
                    .coords()
                    .iter()
                    .enumerate()
                    .find(|(_, c)| !c.is_finite() || !(0.0..=1.0).contains(*c))
                    .map(|(i, c)| (i, *c))
                    .unwrap_or((0, f64::NAN));
                return Err(QosError::CoordinateOutOfRange { index, value });
            }
        }
        Ok(Snapshot {
            dim: space.dim(),
            positions,
        })
    }

    /// Builds a snapshot from raw coordinate rows, validating each row.
    ///
    /// # Errors
    ///
    /// Same as [`Snapshot::new`].
    pub fn from_rows(space: &QosSpace, rows: Vec<Vec<f64>>) -> Result<Self, QosError> {
        let positions = rows
            .into_iter()
            .map(|row| space.point(row))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Snapshot {
            dim: space.dim(),
            positions,
        })
    }

    /// Number of devices `n` in the snapshot.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// True when the snapshot holds no devices.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Space dimension `d`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Position of device `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of bounds; use [`Snapshot::try_position`] for a
    /// fallible accessor.
    pub fn position(&self, j: DeviceId) -> &Point {
        &self.positions[j.index()]
    }

    /// Fallible position accessor.
    ///
    /// # Errors
    ///
    /// Returns [`QosError::UnknownDevice`] when `j` is out of bounds.
    pub fn try_position(&self, j: DeviceId) -> Result<&Point, QosError> {
        self.positions
            .get(j.index())
            .ok_or(QosError::UnknownDevice {
                id: j.0,
                population: self.positions.len(),
            })
    }

    /// Iterates over `(DeviceId, &Point)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (DeviceId, &Point)> {
        self.positions
            .iter()
            .enumerate()
            .map(|(i, p)| (DeviceId(i as u32), p))
    }

    /// All device ids in the snapshot.
    pub fn device_ids(&self) -> impl Iterator<Item = DeviceId> {
        (0..self.positions.len() as u32).map(DeviceId)
    }

    /// Uniform-norm distance between two devices in this snapshot.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of bounds.
    pub fn distance(&self, a: DeviceId, b: DeviceId) -> f64 {
        uniform_distance(self.position(a).coords(), self.position(b).coords())
    }

    /// Extracts the sub-snapshot of `ids`, in the given order: output device
    /// `i` is input device `ids[i]`.
    ///
    /// This is the membership-churn primitive: when a fleet gains or loses
    /// devices between two sampling instants, the characterization interval
    /// is defined on the *surviving cohort* — select the survivors (in a
    /// common order) from both snapshots and pair the results.
    ///
    /// # Errors
    ///
    /// Returns [`QosError::UnknownDevice`] when any id is out of bounds.
    ///
    /// # Example
    ///
    /// ```
    /// use anomaly_qos::{DeviceId, QosSpace, Snapshot};
    /// let space = QosSpace::new(1)?;
    /// let snap = Snapshot::from_rows(&space, vec![vec![0.1], vec![0.2], vec![0.3]])?;
    /// let cohort = snap.select(&[DeviceId(2), DeviceId(0)])?;
    /// assert_eq!(cohort.position(DeviceId(0)).coords(), &[0.3]);
    /// assert_eq!(cohort.position(DeviceId(1)).coords(), &[0.1]);
    /// # Ok::<(), anomaly_qos::QosError>(())
    /// ```
    pub fn select(&self, ids: &[DeviceId]) -> Result<Snapshot, QosError> {
        let positions = ids
            .iter()
            .map(|&id| self.try_position(id).cloned())
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Snapshot {
            dim: self.dim,
            positions,
        })
    }

    /// Replaces the position of device `j` (used by simulators between steps).
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of bounds or the point dimension disagrees.
    pub fn set_position(&mut self, j: DeviceId, p: Point) {
        assert_eq!(p.dim(), self.dim, "point dimension must match snapshot");
        self.positions[j.index()] = p;
    }

    /// Consumes the snapshot, returning its positions in dense-id order —
    /// e.g. to feed every row of a pre-assembled matrix into a streaming
    /// ingestion path without cloning each point.
    pub fn into_positions(self) -> Vec<Point> {
        self.positions
    }

    /// Copies row `id` from `src` into this snapshot in place, reusing the
    /// row's existing allocation (no allocation, one `memcpy` of `d`
    /// floats). This is the buffer-recycling half of delta-style snapshot
    /// assembly: a stale buffer is brought up to date row by row instead of
    /// being re-cloned wholesale.
    ///
    /// # Panics
    ///
    /// Panics if the snapshots disagree on dimension or `id` is out of
    /// bounds for either snapshot.
    pub fn copy_row_from(&mut self, src: &Snapshot, id: DeviceId) {
        assert_eq!(self.dim, src.dim, "snapshot dimensions must match");
        self.positions[id.index()].copy_from(&src.positions[id.index()]);
    }

    /// Edits rows in place: every `(id, point)` patch replaces device
    /// `id`'s position, leaving all other rows (and their allocations)
    /// untouched. Duplicate ids are legal; the last patch wins.
    ///
    /// This is the churn-tolerant delta primitive behind streaming epoch
    /// sealing: a fleet where only a few devices reported this instant
    /// patches exactly those rows — O(changed devices), not O(population).
    /// Validation is all-or-nothing: every patch is checked (id in bounds,
    /// dimension, unit cube) before the first row is written, so a
    /// malformed batch can never leave the snapshot half-patched.
    ///
    /// # Errors
    ///
    /// [`QosError::UnknownDevice`] for an out-of-bounds id,
    /// [`QosError::DimensionMismatch`] or
    /// [`QosError::CoordinateOutOfRange`] for an invalid point.
    ///
    /// # Example
    ///
    /// ```
    /// use anomaly_qos::{DeviceId, Point, QosSpace, Snapshot};
    /// let space = QosSpace::new(1)?;
    /// let mut snap = Snapshot::from_rows(&space, vec![vec![0.1], vec![0.2], vec![0.3]])?;
    /// snap.patch_rows(vec![(DeviceId(2), Point::new_unchecked(vec![0.9]))])?;
    /// assert_eq!(snap.position(DeviceId(2)).coords(), &[0.9]);
    /// assert_eq!(snap.position(DeviceId(0)).coords(), &[0.1]);
    /// # Ok::<(), anomaly_qos::QosError>(())
    /// ```
    pub fn patch_rows(
        &mut self,
        patches: impl IntoIterator<Item = (DeviceId, Point)>,
    ) -> Result<(), QosError> {
        let patches: Vec<(DeviceId, Point)> = patches.into_iter().collect();
        for (id, p) in &patches {
            if id.index() >= self.positions.len() {
                return Err(QosError::UnknownDevice {
                    id: id.0,
                    population: self.positions.len(),
                });
            }
            if p.dim() != self.dim {
                return Err(QosError::DimensionMismatch {
                    expected: self.dim,
                    actual: p.dim(),
                });
            }
            if !p.is_in_unit_cube() {
                let (index, value) = p
                    .coords()
                    .iter()
                    .enumerate()
                    .find(|(_, c)| !c.is_finite() || !(0.0..=1.0).contains(*c))
                    .map(|(i, c)| (i, *c))
                    .unwrap_or((0, f64::NAN));
                return Err(QosError::CoordinateOutOfRange { index, value });
            }
        }
        for (id, p) in patches {
            self.positions[id.index()] = p;
        }
        Ok(())
    }
}

/// A pair of successive system states `(S_{k-1}, S_k)`.
///
/// Every notion of the paper — consistent motions, anomaly partitions,
/// characterization — is defined on the time interval `[k-1, k]`, i.e. on a
/// `StatePair`.
#[derive(Debug, Clone, PartialEq)]
pub struct StatePair {
    before: Snapshot,
    after: Snapshot,
}

impl StatePair {
    /// Pairs two snapshots.
    ///
    /// # Errors
    ///
    /// Returns [`QosError::SnapshotMismatch`] if the two snapshots disagree on
    /// population size or dimension.
    pub fn new(before: Snapshot, after: Snapshot) -> Result<Self, QosError> {
        if before.len() != after.len() {
            return Err(QosError::SnapshotMismatch {
                reason: format!(
                    "population differs: {} before vs {} after",
                    before.len(),
                    after.len()
                ),
            });
        }
        if before.dim() != after.dim() {
            return Err(QosError::SnapshotMismatch {
                reason: format!(
                    "dimension differs: {} before vs {} after",
                    before.dim(),
                    after.dim()
                ),
            });
        }
        Ok(StatePair { before, after })
    }

    /// The earlier snapshot `S_{k-1}`.
    pub fn before(&self) -> &Snapshot {
        &self.before
    }

    /// The later snapshot `S_k`.
    pub fn after(&self) -> &Snapshot {
        &self.after
    }

    /// Number of devices `n`.
    pub fn len(&self) -> usize {
        self.before.len()
    }

    /// True when the pair holds no devices.
    pub fn is_empty(&self) -> bool {
        self.before.is_empty()
    }

    /// Space dimension `d`.
    pub fn dim(&self) -> usize {
        self.before.dim()
    }

    /// The trajectory of device `j` in `[k-1, k]`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of bounds.
    pub fn trajectory(&self, j: DeviceId) -> Trajectory {
        Trajectory::new(
            j,
            self.before.position(j).clone(),
            self.after.position(j).clone(),
        )
    }

    /// The *motion distance* between devices `a` and `b`: the larger of their
    /// uniform distances at `k-1` and at `k`.
    ///
    /// Two devices can belong to a common r-consistent motion only if this
    /// quantity is at most `2r` (Definitions 1 and 3).
    ///
    /// # Panics
    ///
    /// Panics if either id is out of bounds.
    pub fn pairwise_motion_distance(&self, a: DeviceId, b: DeviceId) -> f64 {
        self.before.distance(a, b).max(self.after.distance(a, b))
    }

    /// Devices (other than `j`) within uniform distance `radius` of `j` at
    /// **both** times — the neighbourhood `N(j) = N_{k-1}(j) ∩ N_k(j)` that
    /// Algorithm 2 of the paper takes as input, computed by linear scan.
    ///
    /// For large populations prefer [`crate::GridIndex::neighbors_both`].
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of bounds.
    pub fn neighbors_both(&self, j: DeviceId, radius: f64) -> Vec<DeviceId> {
        self.before
            .device_ids()
            .filter(|&other| other != j && self.pairwise_motion_distance(j, other) <= radius)
            .collect()
    }

    /// All device ids.
    pub fn device_ids(&self) -> impl Iterator<Item = DeviceId> {
        self.before.device_ids()
    }

    /// Consumes the pair, returning `(before, after)` — e.g. to retain one
    /// snapshot across instants without re-cloning it.
    pub fn into_parts(self) -> (Snapshot, Snapshot) {
        (self.before, self.after)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space2() -> QosSpace {
        QosSpace::new(2).unwrap()
    }

    #[test]
    fn snapshot_accessors() {
        let s = Snapshot::from_rows(&space2(), vec![vec![0.1, 0.2], vec![0.3, 0.4]]).unwrap();
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert_eq!(s.dim(), 2);
        assert_eq!(s.position(DeviceId(0)).coords(), &[0.1, 0.2]);
        assert!(s.try_position(DeviceId(5)).is_err());
        assert_eq!(s.iter().count(), 2);
    }

    #[test]
    fn snapshot_rejects_out_of_cube_point() {
        let err = Snapshot::new(&space2(), vec![Point::new_unchecked(vec![0.1, 1.4])]).unwrap_err();
        assert!(matches!(err, QosError::CoordinateOutOfRange { .. }));
    }

    #[test]
    fn snapshot_rejects_wrong_dim_point() {
        let err = Snapshot::new(&space2(), vec![Point::new_unchecked(vec![0.1])]).unwrap_err();
        assert!(matches!(err, QosError::DimensionMismatch { .. }));
    }

    #[test]
    fn snapshot_distance_uses_uniform_norm() {
        let s = Snapshot::from_rows(&space2(), vec![vec![0.1, 0.2], vec![0.3, 0.9]]).unwrap();
        assert!((s.distance(DeviceId(0), DeviceId(1)) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn select_reorders_and_validates() {
        let s = Snapshot::from_rows(
            &space2(),
            vec![vec![0.1, 0.2], vec![0.3, 0.4], vec![0.5, 0.6]],
        )
        .unwrap();
        let cohort = s.select(&[DeviceId(2), DeviceId(0)]).unwrap();
        assert_eq!(cohort.len(), 2);
        assert_eq!(cohort.position(DeviceId(0)).coords(), &[0.5, 0.6]);
        assert_eq!(cohort.position(DeviceId(1)).coords(), &[0.1, 0.2]);
        assert!(matches!(
            s.select(&[DeviceId(3)]),
            Err(QosError::UnknownDevice { id: 3, .. })
        ));
        // Empty cohorts are legal (a fully churned fleet).
        assert!(s.select(&[]).unwrap().is_empty());
    }

    #[test]
    fn patch_rows_edits_in_place_last_write_wins() {
        let mut s = Snapshot::from_rows(
            &space2(),
            vec![vec![0.1, 0.2], vec![0.3, 0.4], vec![0.5, 0.6]],
        )
        .unwrap();
        s.patch_rows(vec![
            (DeviceId(1), Point::new_unchecked(vec![0.7, 0.7])),
            (DeviceId(1), Point::new_unchecked(vec![0.8, 0.9])),
        ])
        .unwrap();
        assert_eq!(s.position(DeviceId(1)).coords(), &[0.8, 0.9]);
        assert_eq!(s.position(DeviceId(0)).coords(), &[0.1, 0.2]);
        // Empty patch sets are legal no-ops.
        s.patch_rows(Vec::new()).unwrap();
    }

    #[test]
    fn patch_rows_is_all_or_nothing() {
        let mut s = Snapshot::from_rows(&space2(), vec![vec![0.1, 0.2], vec![0.3, 0.4]]).unwrap();
        // A valid patch followed by an invalid one: nothing is applied.
        let err = s
            .patch_rows(vec![
                (DeviceId(0), Point::new_unchecked(vec![0.9, 0.9])),
                (DeviceId(1), Point::new_unchecked(vec![1.4, 0.0])),
            ])
            .unwrap_err();
        assert!(matches!(err, QosError::CoordinateOutOfRange { .. }));
        assert_eq!(s.position(DeviceId(0)).coords(), &[0.1, 0.2]);
        let err = s
            .patch_rows(vec![(DeviceId(5), Point::new_unchecked(vec![0.5, 0.5]))])
            .unwrap_err();
        assert!(matches!(err, QosError::UnknownDevice { id: 5, .. }));
        let err = s
            .patch_rows(vec![(DeviceId(0), Point::new_unchecked(vec![0.5]))])
            .unwrap_err();
        assert!(matches!(err, QosError::DimensionMismatch { .. }));
    }

    #[test]
    fn copy_row_from_reuses_the_allocation() {
        let src = Snapshot::from_rows(&space2(), vec![vec![0.9, 0.8], vec![0.7, 0.6]]).unwrap();
        let mut dst = Snapshot::from_rows(&space2(), vec![vec![0.1, 0.1], vec![0.2, 0.2]]).unwrap();
        dst.copy_row_from(&src, DeviceId(1));
        assert_eq!(dst.position(DeviceId(1)).coords(), &[0.7, 0.6]);
        assert_eq!(dst.position(DeviceId(0)).coords(), &[0.1, 0.1]);
    }

    #[test]
    fn into_positions_preserves_dense_order() {
        let s = Snapshot::from_rows(&space2(), vec![vec![0.1, 0.2], vec![0.3, 0.4]]).unwrap();
        let points = s.into_positions();
        assert_eq!(points.len(), 2);
        assert_eq!(points[1].coords(), &[0.3, 0.4]);
    }

    #[test]
    fn state_pair_rejects_population_mismatch() {
        let a = Snapshot::from_rows(&space2(), vec![vec![0.1, 0.2]]).unwrap();
        let b = Snapshot::from_rows(&space2(), vec![vec![0.1, 0.2], vec![0.3, 0.4]]).unwrap();
        assert!(StatePair::new(a, b).is_err());
    }

    #[test]
    fn state_pair_rejects_dimension_mismatch() {
        let a = Snapshot::from_rows(&space2(), vec![vec![0.1, 0.2]]).unwrap();
        let s1 = QosSpace::new(1).unwrap();
        let b = Snapshot::from_rows(&s1, vec![vec![0.1]]).unwrap();
        assert!(StatePair::new(a, b).is_err());
    }

    #[test]
    fn motion_distance_is_max_over_times() {
        let before = Snapshot::from_rows(&space2(), vec![vec![0.1, 0.1], vec![0.15, 0.1]]).unwrap();
        let after = Snapshot::from_rows(&space2(), vec![vec![0.5, 0.5], vec![0.9, 0.5]]).unwrap();
        let pair = StatePair::new(before, after).unwrap();
        // distance 0.05 before, 0.4 after -> max 0.4
        assert!((pair.pairwise_motion_distance(DeviceId(0), DeviceId(1)) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn neighbors_both_requires_closeness_at_both_times() {
        let before = Snapshot::from_rows(
            &space2(),
            vec![vec![0.1, 0.1], vec![0.12, 0.1], vec![0.12, 0.1]],
        )
        .unwrap();
        let after = Snapshot::from_rows(
            &space2(),
            vec![vec![0.5, 0.5], vec![0.52, 0.5], vec![0.9, 0.9]],
        )
        .unwrap();
        let pair = StatePair::new(before, after).unwrap();
        // Device 1 stays close to 0 at both times; device 2 only before.
        assert_eq!(pair.neighbors_both(DeviceId(0), 0.06), vec![DeviceId(1)]);
    }

    #[test]
    fn trajectory_links_positions() {
        let before = Snapshot::from_rows(&space2(), vec![vec![0.1, 0.1]]).unwrap();
        let after = Snapshot::from_rows(&space2(), vec![vec![0.4, 0.1]]).unwrap();
        let pair = StatePair::new(before, after).unwrap();
        let t = pair.trajectory(DeviceId(0));
        assert!((t.displacement_norm() - 0.3).abs() < 1e-12);
    }
}
