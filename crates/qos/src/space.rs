use crate::error::QosError;
use crate::point::Point;

/// The QoS space `E = [0,1]^d` (Section III-A of the paper).
///
/// A `QosSpace` owns only its dimension; it is the validating constructor for
/// [`Point`]s and the authority on dimension agreement.
///
/// # Example
///
/// ```
/// use anomaly_qos::QosSpace;
/// let space = QosSpace::new(2)?;
/// assert_eq!(space.dim(), 2);
/// let p = space.point(vec![0.5, 0.25])?;
/// assert!(space.contains(&p));
/// # Ok::<(), anomaly_qos::QosError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QosSpace {
    dim: usize,
}

impl QosSpace {
    /// Creates a QoS space of dimension `d` (the number of monitored services).
    ///
    /// # Errors
    ///
    /// Returns [`QosError::ZeroDimension`] when `d == 0`.
    pub fn new(dim: usize) -> Result<Self, QosError> {
        if dim == 0 {
            Err(QosError::ZeroDimension)
        } else {
            Ok(QosSpace { dim })
        }
    }

    /// The dimension `d` of the space.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Validates and constructs a point of this space.
    ///
    /// # Errors
    ///
    /// * [`QosError::DimensionMismatch`] if `coords.len() != self.dim()`.
    /// * [`QosError::CoordinateOutOfRange`] if any coordinate is not a finite
    ///   value in `[0,1]`.
    pub fn point(&self, coords: Vec<f64>) -> Result<Point, QosError> {
        if coords.len() != self.dim {
            return Err(QosError::DimensionMismatch {
                expected: self.dim,
                actual: coords.len(),
            });
        }
        for (index, &value) in coords.iter().enumerate() {
            if !value.is_finite() || !(0.0..=1.0).contains(&value) {
                return Err(QosError::CoordinateOutOfRange { index, value });
            }
        }
        Ok(Point::new_unchecked(coords))
    }

    /// True if `p` has this space's dimension and lies inside `[0,1]^d`.
    pub fn contains(&self, p: &Point) -> bool {
        p.dim() == self.dim && p.is_in_unit_cube()
    }

    /// The center of the space, `(1/2, …, 1/2)`.
    pub fn center(&self) -> Point {
        Point::new_unchecked(vec![0.5; self.dim])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_zero_dimension() {
        assert_eq!(QosSpace::new(0).unwrap_err(), QosError::ZeroDimension);
    }

    #[test]
    fn validates_dimension() {
        let space = QosSpace::new(2).unwrap();
        let err = space.point(vec![0.1]).unwrap_err();
        assert_eq!(
            err,
            QosError::DimensionMismatch {
                expected: 2,
                actual: 1
            }
        );
    }

    #[test]
    fn validates_range() {
        let space = QosSpace::new(2).unwrap();
        let err = space.point(vec![0.1, 1.2]).unwrap_err();
        assert_eq!(
            err,
            QosError::CoordinateOutOfRange {
                index: 1,
                value: 1.2
            }
        );
        assert!(space.point(vec![0.0, 1.0]).is_ok());
    }

    #[test]
    fn rejects_nan_coordinate() {
        let space = QosSpace::new(1).unwrap();
        assert!(space.point(vec![f64::NAN]).is_err());
    }

    #[test]
    fn contains_checks_dimension_and_cube() {
        let space = QosSpace::new(2).unwrap();
        assert!(space.contains(&Point::new_unchecked(vec![0.2, 0.3])));
        assert!(!space.contains(&Point::new_unchecked(vec![0.2])));
        assert!(!space.contains(&Point::new_unchecked(vec![0.2, 1.3])));
    }

    #[test]
    fn center_is_half_everywhere() {
        let space = QosSpace::new(3).unwrap();
        assert_eq!(space.center().coords(), &[0.5, 0.5, 0.5]);
    }
}
