use crate::norm::uniform_distance;
use crate::point::{DeviceId, Point};

/// The motion of one device between two successive snapshots.
///
/// The paper models the temporal evolution of a device's QoS as a trajectory
/// in `E`; an *abnormal* trajectory (flagged by the error-detection function
/// `a_k(j)`) is the unit of anomaly characterization.
///
/// # Example
///
/// ```
/// use anomaly_qos::{Trajectory, Point, DeviceId};
/// let t = Trajectory::new(
///     DeviceId(0),
///     Point::new_unchecked(vec![0.1, 0.1]),
///     Point::new_unchecked(vec![0.6, 0.1]),
/// );
/// assert!((t.displacement_norm() - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Trajectory {
    device: DeviceId,
    before: Point,
    after: Point,
}

impl Trajectory {
    /// Creates a trajectory from the positions at `k-1` and `k`.
    ///
    /// # Panics
    ///
    /// Panics if the two points have different dimensions.
    pub fn new(device: DeviceId, before: Point, after: Point) -> Self {
        assert_eq!(
            before.dim(),
            after.dim(),
            "trajectory endpoints must share a dimension"
        );
        Trajectory {
            device,
            before,
            after,
        }
    }

    /// The device this trajectory belongs to.
    pub fn device(&self) -> DeviceId {
        self.device
    }

    /// Position at time `k-1`.
    pub fn before(&self) -> &Point {
        &self.before
    }

    /// Position at time `k`.
    pub fn after(&self) -> &Point {
        &self.after
    }

    /// The displacement vector `p_k(j) - p_{k-1}(j)`.
    pub fn displacement(&self) -> Vec<f64> {
        self.after
            .coords()
            .iter()
            .zip(self.before.coords())
            .map(|(a, b)| a - b)
            .collect()
    }

    /// Uniform norm of the displacement.
    pub fn displacement_norm(&self) -> f64 {
        uniform_distance(self.after.coords(), self.before.coords())
    }

    /// The *motion distance* to another trajectory: the larger of the
    /// uniform distances at the two times. Two trajectories can share an
    /// r-consistent motion only if this is at most `2r`.
    ///
    /// # Panics
    ///
    /// Panics if the trajectories have different dimensions.
    pub fn motion_distance(&self, other: &Trajectory) -> f64 {
        let db = uniform_distance(self.before.coords(), other.before.coords());
        let da = uniform_distance(self.after.coords(), other.after.coords());
        db.max(da)
    }

    /// The trajectory viewed as a single point in the concatenated
    /// `2d`-dimensional space (positions at `k-1` followed by positions at
    /// `k`).
    ///
    /// A set of trajectories forms an r-consistent motion **iff** the
    /// corresponding concatenated points have L∞ diameter at most `2r` — this
    /// reduction is what the maximal-motion enumeration in `anomaly-core`
    /// exploits.
    pub fn concatenated(&self) -> Vec<f64> {
        let mut v = Vec::with_capacity(self.before.dim() * 2);
        v.extend_from_slice(self.before.coords());
        v.extend_from_slice(self.after.coords());
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traj(id: u32, b: Vec<f64>, a: Vec<f64>) -> Trajectory {
        Trajectory::new(
            DeviceId(id),
            Point::new_unchecked(b),
            Point::new_unchecked(a),
        )
    }

    #[test]
    fn displacement_and_norm() {
        let t = traj(0, vec![0.1, 0.5], vec![0.4, 0.3]);
        assert_eq!(t.displacement(), vec![0.30000000000000004, -0.2]);
        assert!((t.displacement_norm() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn motion_distance_is_max_of_endpoint_distances() {
        let t0 = traj(0, vec![0.1, 0.1], vec![0.5, 0.5]);
        let t1 = traj(1, vec![0.15, 0.1], vec![0.8, 0.5]);
        assert!((t0.motion_distance(&t1) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn concatenated_agrees_with_motion_distance() {
        let t0 = traj(0, vec![0.1, 0.1], vec![0.5, 0.5]);
        let t1 = traj(1, vec![0.15, 0.2], vec![0.8, 0.5]);
        let c0 = t0.concatenated();
        let c1 = t1.concatenated();
        let d = crate::norm::uniform_distance(&c0, &c1);
        assert!((d - t0.motion_distance(&t1)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "share a dimension")]
    fn rejects_mismatched_endpoints() {
        traj(0, vec![0.1], vec![0.1, 0.2]);
    }
}
