//! Operator-facing alert state: severity ladder, acknowledgement
//! lifecycle, notification actions, and the token-bucket rate limiter.
//!
//! An [`Alert`] is the deduplicated, operator-visible unit: one alert per
//! inferred root cause, folding every recurrence of the same failure in.
//! [`AlertAction`]s are the notification stream the daemon emits — pages,
//! escalations, recurrences, resolutions, and the suppressions recorded
//! when the rate limiter is dry.
//!
//! Everything is logical-time: ticks are sealed-epoch instants, never wall
//! clock, so the whole layer replays deterministically.

use crate::signature::Signature;
use anomaly_core::AnomalyClass;
use anomaly_network::NodeId;

/// Stable identity of one deduplicated alert, assigned in creation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AlertId(pub u64);

impl std::fmt::Display for AlertId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "A{}", self.0)
    }
}

/// Operator-facing severity, derived from class × affected-device count ×
/// duration bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Single-device or indefinite impact; ticket-grade.
    Minor,
    /// Collective or sustained impact.
    Major,
    /// Collective *and* wide or sustained: page-grade.
    Critical,
}

impl Severity {
    fn as_str(self) -> &'static str {
        match self {
            Severity::Minor => "minor",
            Severity::Major => "major",
            Severity::Critical => "critical",
        }
    }
}

/// Derives the severity of an alert from its class, cumulative
/// affected-device count, and observed duration in epochs.
///
/// The ladder is additive: massive class contributes 2 points and
/// isolated 1; nine or more devices add 1, as does a duration of four
/// or more epochs. `0–1` points → [`Severity::Minor`], `2` →
/// [`Severity::Major`], `3+` → [`Severity::Critical`].
pub fn severity(class: AnomalyClass, affected: usize, duration_epochs: u64) -> Severity {
    let mut score = match class {
        AnomalyClass::Massive => 2u32,
        AnomalyClass::Isolated => 1,
        AnomalyClass::Unresolved => 0,
    };
    if affected >= 9 {
        score += 1;
    }
    if duration_epochs >= 4 {
        score += 1;
    }
    match score {
        0 | 1 => Severity::Minor,
        2 => Severity::Major,
        _ => Severity::Critical,
    }
}

/// Acknowledgement lifecycle of an alert.
///
/// ```text
///   Open ──ack──▶ Acknowledged
///    │ ▲              │
///    │ └─recurrence─┐ │ all events closed
///    ▼              │ ▼
///   Resolved ───────┘
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertPhase {
    /// Firing, not yet acknowledged by an operator.
    Open,
    /// An operator has taken ownership; recurrences still fold in.
    Acknowledged,
    /// Every event behind the alert has closed. A recurrence within the
    /// dedup window re-opens the same alert.
    Resolved,
}

impl AlertPhase {
    fn as_str(self) -> &'static str {
        match self {
            AlertPhase::Open => "open",
            AlertPhase::Acknowledged => "acknowledged",
            AlertPhase::Resolved => "resolved",
        }
    }
}

/// One deduplicated, operator-facing alert.
#[derive(Debug, Clone, PartialEq)]
pub struct Alert {
    /// The alert's id (creation order).
    pub id: AlertId,
    /// Inferred root-cause element (narrowest covering node), when the
    /// affected devices map into the topology.
    pub root: Option<NodeId>,
    /// Peak class over every folded-in event lifecycle.
    pub class: AnomalyClass,
    /// Current severity (monotone non-decreasing while open).
    pub severity: Severity,
    /// Acknowledgement phase.
    pub phase: AlertPhase,
    /// Epoch the alert first fired.
    pub opened_at: u64,
    /// Most recent epoch with activity on any folded-in event.
    pub last_seen: u64,
    /// Epoch the last open event behind the alert closed, while resolved.
    pub resolved_at: Option<u64>,
    /// Event lifecycles folded into this alert (1 = never recurred).
    pub occurrences: u64,
    /// Notifications suppressed by the rate limiter.
    pub suppressed: u64,
    /// Largest cumulative affected-device count over occurrences.
    pub devices: usize,
    /// Canonical root-cause signature of the most recently closed
    /// lifecycle — `None` until the first close.
    pub signature: Option<Signature>,
}

impl Alert {
    /// Renders the alert as one stable-key-order JSON object.
    pub fn to_json(&self) -> String {
        let root = match self.root {
            Some(node) => node.0.to_string(),
            None => "null".to_string(),
        };
        let resolved = match self.resolved_at {
            Some(epoch) => epoch.to_string(),
            None => "null".to_string(),
        };
        let signature = match self.signature {
            Some(sig) => format!("\"{sig}\""),
            None => "null".to_string(),
        };
        format!(
            "{{\"id\":{},\"root\":{root},\"class\":\"{}\",\"severity\":\"{}\",\
             \"phase\":\"{}\",\"opened_at\":{},\"last_seen\":{},\"resolved_at\":{resolved},\
             \"occurrences\":{},\"suppressed\":{},\"devices\":{},\"signature\":{signature}}}",
            self.id.0,
            self.class,
            self.severity.as_str(),
            self.phase.as_str(),
            self.opened_at,
            self.last_seen,
            self.occurrences,
            self.suppressed,
            self.devices,
        )
    }
}

/// What kind of notification an [`AlertAction`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertActionKind {
    /// A new root cause fired for the first time.
    Page,
    /// An open alert's severity rose.
    Escalate,
    /// A known root cause fired again and was folded in (dedup).
    Recur,
    /// Every event behind the alert closed.
    Resolve,
    /// A page/escalate/recur notification was dropped: the token bucket
    /// was dry. The alert state still advanced.
    Suppress,
}

impl AlertActionKind {
    fn as_str(self) -> &'static str {
        match self {
            AlertActionKind::Page => "page",
            AlertActionKind::Escalate => "escalate",
            AlertActionKind::Recur => "recur",
            AlertActionKind::Resolve => "resolve",
            AlertActionKind::Suppress => "suppress",
        }
    }
}

/// One emitted notification — the serve loop's output stream.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertAction {
    /// Sealed-epoch instant the action fired at.
    pub epoch: u64,
    /// The alert it concerns.
    pub alert: AlertId,
    /// Notification kind.
    pub kind: AlertActionKind,
    /// Alert severity at emission time.
    pub severity: Severity,
    /// Alert class at emission time.
    pub class: AnomalyClass,
    /// Inferred root-cause element, when mapped.
    pub root: Option<NodeId>,
    /// Canonical signature, once the lifecycle has closed
    /// ([`AlertActionKind::Resolve`] actions carry it).
    pub signature: Option<Signature>,
}

impl AlertAction {
    /// Renders the action as one stable-key-order JSON object.
    pub fn to_json(&self) -> String {
        let root = match self.root {
            Some(node) => node.0.to_string(),
            None => "null".to_string(),
        };
        let signature = match self.signature {
            Some(sig) => format!("\"{sig}\""),
            None => "null".to_string(),
        };
        format!(
            "{{\"epoch\":{},\"alert\":{},\"kind\":\"{}\",\"severity\":\"{}\",\
             \"class\":\"{}\",\"root\":{root},\"signature\":{signature}}}",
            self.epoch,
            self.alert.0,
            self.kind.as_str(),
            self.severity.as_str(),
            self.class,
        )
    }
}

/// Renders a slice of actions as a JSON array — the byte-comparable form
/// the determinism tests pin.
pub fn actions_to_json(actions: &[AlertAction]) -> String {
    let mut out = String::from("[");
    for (i, action) in actions.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&action.to_json());
    }
    out.push(']');
    out
}

/// Deterministic token-bucket rate limiter over logical ticks.
///
/// Tokens are integer milli-tokens: the bucket refills by a fixed amount
/// per sealed epoch and every notification costs 1000. No wall clock, no
/// floats — refill and spend replay identically everywhere.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TokenBucket {
    capacity_millis: u64,
    refill_millis: u64,
    level_millis: u64,
}

impl TokenBucket {
    /// A bucket holding at most `capacity` tokens, starting full,
    /// refilling `refill_millitokens` (thousandths of a token) per tick.
    pub fn new(capacity: u32, refill_millitokens: u32) -> Self {
        let capacity_millis = u64::from(capacity) * 1000;
        TokenBucket {
            capacity_millis,
            refill_millis: u64::from(refill_millitokens),
            level_millis: capacity_millis,
        }
    }

    /// Advances one logical tick: adds the refill, clamped to capacity.
    pub fn tick(&mut self) {
        self.level_millis = (self.level_millis + self.refill_millis).min(self.capacity_millis);
    }

    /// Spends one token if available.
    pub fn try_take(&mut self) -> bool {
        if self.level_millis >= 1000 {
            self.level_millis -= 1000;
            true
        } else {
            false
        }
    }

    /// Current level in milli-tokens.
    pub fn level_millitokens(&self) -> u64 {
        self.level_millis
    }

    /// Overwrites the level from a checkpoint, clamped to capacity so a
    /// payload from a larger-bucket configuration cannot mint tokens.
    pub(crate) fn set_level_millitokens(&mut self, level: u64) {
        self.level_millis = level.min(self.capacity_millis);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_ladder() {
        assert_eq!(severity(AnomalyClass::Unresolved, 1, 1), Severity::Minor);
        assert_eq!(severity(AnomalyClass::Isolated, 1, 1), Severity::Minor);
        assert_eq!(severity(AnomalyClass::Isolated, 9, 1), Severity::Major);
        assert_eq!(severity(AnomalyClass::Massive, 2, 1), Severity::Major);
        assert_eq!(severity(AnomalyClass::Massive, 16, 1), Severity::Critical);
        assert_eq!(severity(AnomalyClass::Massive, 16, 4), Severity::Critical);
        assert_eq!(severity(AnomalyClass::Massive, 2, 4), Severity::Critical);
    }

    #[test]
    fn token_bucket_refills_and_clamps() {
        let mut bucket = TokenBucket::new(2, 500);
        assert!(bucket.try_take());
        assert!(bucket.try_take());
        assert!(!bucket.try_take(), "empty after capacity spends");
        bucket.tick();
        assert!(!bucket.try_take(), "500 millitokens is not a full token");
        bucket.tick();
        assert!(bucket.try_take(), "two ticks refill one token");
        for _ in 0..100 {
            bucket.tick();
        }
        assert_eq!(bucket.level_millitokens(), 2000, "clamped at capacity");
    }

    #[test]
    fn json_is_stable() {
        let action = AlertAction {
            epoch: 5,
            alert: AlertId(0),
            kind: AlertActionKind::Page,
            severity: Severity::Critical,
            class: AnomalyClass::Massive,
            root: Some(NodeId(3)),
            signature: None,
        };
        assert_eq!(
            action.to_json(),
            "{\"epoch\":5,\"alert\":0,\"kind\":\"page\",\"severity\":\"critical\",\
             \"class\":\"massive\",\"root\":3,\"signature\":null}"
        );
        assert_eq!(actions_to_json(&[]), "[]");
    }
}
