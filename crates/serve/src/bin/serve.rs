//! The alerting daemon smoke binary: drives a `ServeLoop` against a
//! simulated ISP network with a scripted incident timeline, then
//! self-checks the alert stream.
//!
//! The timeline injects two distinct DSLAM outages (two distinct alert
//! streams), re-faults the first DSLAM (a recurrence that must dedup
//! into the existing alert), adds CPE faults, and ends with a fault
//! burst sized to drain the token bucket (at least one suppressed
//! notification). The whole run is replayed a second time from scratch
//! and the two action streams must be byte-identical — the
//! checkpointless-restart guarantee.
//!
//! Environment knobs:
//!
//! * `SERVE_TICKS` — collection rounds to drive (default 40).
//! * `SERVE_SEED` — network / measurement-jitter seed (default 7).
//! * `SERVE_SEAL_EVERY` — rounds per seal tick (default 1).
//! * `SERVE_OUT` — output JSON path (default `BENCH_serve.json`).

#![forbid(unsafe_code)]
#![deny(warnings)]

use anomaly_characterization::pipeline::MonitorBuilder;
use anomaly_core::Params;
use anomaly_detectors::{ThresholdDetector, VectorDetector};
use anomaly_network::{FaultTarget, Incident, IncidentSchedule, NetworkConfig, NetworkSimulation};
use anomaly_serve::{actions_to_json, AlertAction, AlertConfig, AlertSink, KeyMap, ServeLoop};
use std::error::Error;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Counters the smoke run asserts on and reports.
struct RunSummary {
    actions: Vec<AlertAction>,
    alerts_created: u64,
    pages_emitted: u64,
    recurrences: u64,
    suppressed: u64,
    resolved: u64,
    distinct_signatures: usize,
    alerts_json: String,
}

/// The scripted incident timeline: distinct roots, a recurrence, and a
/// closing burst that outruns the token bucket.
fn schedule(net: &NetworkSimulation) -> IncidentSchedule {
    let dslams = net.topology().dslams().to_vec();
    let gateways = net.topology().gateways().to_vec();
    let node = |list: &[anomaly_network::NodeId], i: usize| list.get(i).copied();
    let mut incidents = Vec::new();
    if let Some(d0) = node(&dslams, 0) {
        // The first outage...
        incidents.push(Incident {
            starts_at: 4,
            duration: Some(4),
            fault: FaultTarget::Node {
                node: d0,
                severity: 0.6,
            },
        });
        // ...and its re-fault: the dedup case.
        incidents.push(Incident {
            starts_at: 16,
            duration: Some(3),
            fault: FaultTarget::Node {
                node: d0,
                severity: 0.6,
            },
        });
    }
    if let Some(d1) = node(&dslams, 1) {
        // A second, distinct DSLAM: its own alert stream. Starts the
        // epoch *after* d0's repair so the recovery trajectory and the
        // new outage stay separate tracker events.
        incidents.push(Incident {
            starts_at: 9,
            duration: Some(4),
            fault: FaultTarget::Node {
                node: d1,
                severity: 0.6,
            },
        });
    }
    if let Some(gw) = node(&gateways, 33) {
        // A CPE fault: isolated, ticket-grade. On a gateway outside the
        // faulted DSLAM subtrees of this window, so the d0 re-fault at 16
        // folds into d0's alert rather than growing this event.
        incidents.push(Incident {
            starts_at: 12,
            duration: Some(3),
            fault: FaultTarget::Gateway {
                gateway: gw,
                severity: 0.7,
            },
        });
    }
    // The burst: three fresh roots in quick succession to drain the
    // bucket (capacity 2, half-token refill per tick).
    if let Some(d2) = node(&dslams, 2) {
        incidents.push(Incident {
            starts_at: 24,
            duration: Some(2),
            fault: FaultTarget::Node {
                node: d2,
                severity: 0.6,
            },
        });
    }
    if let Some(d3) = node(&dslams, 3) {
        incidents.push(Incident {
            starts_at: 25,
            duration: Some(2),
            fault: FaultTarget::Node {
                node: d3,
                severity: 0.6,
            },
        });
    }
    if let Some(gw) = node(&gateways, 10) {
        incidents.push(Incident {
            starts_at: 26,
            duration: Some(2),
            fault: FaultTarget::Gateway {
                gateway: gw,
                severity: 0.7,
            },
        });
    }
    IncidentSchedule::new(incidents)
}

/// One full daemon run from a cold start. Called twice: identical inputs
/// must produce identical outputs.
fn run(seed: u64, ticks: u64, seal_every: u32) -> Result<RunSummary, Box<dyn Error>> {
    let mut net = NetworkSimulation::new(NetworkConfig::small(seed))?;
    let mut timeline = schedule(&net);
    let services = net.services().len();
    let keys: Vec<u64> = net
        .topology()
        .gateways()
        .iter()
        .map(|g| u64::from(g.0))
        .collect();
    let monitor = MonitorBuilder::new()
        .params(Params::new(0.02, 3)?)
        .services(services)
        .debounce(1)
        .history(64)
        .detector_factory(move |_| {
            Box::new(VectorDetector::homogeneous(services, || {
                ThresholdDetector::with_delta(0.1)
            }))
        })
        .devices(keys)
        .build()?;
    let sink = AlertSink::new(
        net.topology().clone(),
        KeyMap::NodeIds,
        AlertConfig {
            dedup_window: 16,
            bucket_capacity: 2,
            refill_millitokens: 250,
        },
    );
    let mut serve = ServeLoop::new(monitor, sink, seal_every);
    let mut actions = Vec::new();
    for _ in 0..ticks {
        timeline.advance(&mut net);
        for update in net.measure_stream() {
            serve.ingest(update.key, update.qos)?;
        }
        if let Some((_report, mut fired)) = serve.round()? {
            actions.append(&mut fired);
        }
    }
    // Clean shutdown: drain still-open events into resolutions.
    actions.extend(serve.shutdown());
    let sink = serve.sink();
    Ok(RunSummary {
        alerts_created: sink.alerts_created(),
        pages_emitted: sink.pages_emitted(),
        recurrences: sink.recurrences(),
        suppressed: sink.suppressed(),
        resolved: sink.resolved(),
        distinct_signatures: sink.distinct_signatures(),
        alerts_json: sink.alerts_json(),
        actions,
    })
}

fn main() -> Result<(), Box<dyn Error>> {
    let ticks = env_u64("SERVE_TICKS", 40);
    let seed = env_u64("SERVE_SEED", 7);
    let seal_every = env_u64("SERVE_SEAL_EVERY", 1).min(u64::from(u32::MAX)) as u32;
    let out = std::env::var("SERVE_OUT").unwrap_or_else(|_| "BENCH_serve.json".to_string());

    let first = run(seed, ticks, seal_every)?;
    let second = run(seed, ticks, seal_every)?;
    let stream = actions_to_json(&first.actions);
    assert_eq!(
        stream,
        actions_to_json(&second.actions),
        "a checkpointless restart must reproduce the alert stream byte-for-byte"
    );

    println!(
        "serve: ticks={ticks} seed={seed} alerts={} pages={} recurrences={} \
         suppressed={} resolved={} distinct_signatures={}",
        first.alerts_created,
        first.pages_emitted,
        first.recurrences,
        first.suppressed,
        first.resolved,
        first.distinct_signatures,
    );

    // The timeline is scripted, the pipeline deterministic: the alert
    // stream is a fixed property of (seed, ticks). Assert the structural
    // claims the smoke exists for, on the default configuration.
    if ticks >= 30 && seed == 7 && seal_every == 1 {
        assert_eq!(
            first.alerts_created, 6,
            "six distinct root causes in the timeline: d0, d1, cpe33, d2, d3, cpe10"
        );
        assert!(
            first.recurrences >= 3,
            "the d0 re-fault and the repair recoveries must dedup into existing alerts"
        );
        assert!(
            first.suppressed >= 1,
            "the closing burst must exercise the rate limiter"
        );
        assert!(
            first.distinct_signatures >= 2,
            "massive DSLAM outages and isolated CPE faults reduce to different signatures"
        );
    }

    let json = format!(
        "{{\n  \"bench\": \"serve\",\n  \"ticks\": {ticks},\n  \"seed\": {seed},\n  \
         \"seal_every\": {seal_every},\n  \"alerts\": {},\n  \"pages\": {},\n  \
         \"recurrences\": {},\n  \"suppressed\": {},\n  \"resolved\": {},\n  \
         \"distinct_signatures\": {},\n  \"alerts_detail\": {},\n  \"actions\": {}\n}}\n",
        first.alerts_created,
        first.pages_emitted,
        first.recurrences,
        first.suppressed,
        first.resolved,
        first.distinct_signatures,
        first.alerts_json,
        stream,
    );
    std::fs::write(&out, json)?;
    println!("serve: wrote {out}");
    Ok(())
}
