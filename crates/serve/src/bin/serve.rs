//! The alerting daemon smoke binary: drives a `ServeLoop` against a
//! simulated ISP network with a scripted incident timeline, then
//! self-checks the alert stream.
//!
//! The timeline injects two distinct DSLAM outages (two distinct alert
//! streams), re-faults the first DSLAM (a recurrence that must dedup
//! into the existing alert), adds CPE faults, and ends with a fault
//! burst sized to drain the token bucket (at least one suppressed
//! notification). The run is then repeated with a kill/restore in the
//! middle: the daemon appends every sealed epoch to a binary store log,
//! checkpoints into it halfway through, and is torn down; the log is
//! compacted (pre-checkpoint epoch records pruned) and a fresh loop is
//! rebuilt from the compacted image via the real `ServeLoop::restore`
//! path. The restarted run's action stream must be byte-identical to
//! the uninterrupted one — the durable-restart guarantee, measured
//! (checkpoint write / restore latency, raw and compacted log size) and
//! reported in the output JSON.
//!
//! Environment knobs:
//!
//! * `SERVE_TICKS` — collection rounds to drive (default 40).
//! * `SERVE_SEED` — network / measurement-jitter seed (default 7).
//! * `SERVE_SEAL_EVERY` — rounds per seal tick (default 1).
//! * `SERVE_OUT` — output JSON path (default `BENCH_serve.json`).

#![forbid(unsafe_code)]
#![deny(warnings)]

use anomaly_characterization::pipeline::{EventLog, MonitorBuilder};
use anomaly_core::Params;
use anomaly_detectors::{ThresholdDetector, VectorDetector};
use anomaly_network::{FaultTarget, Incident, IncidentSchedule, NetworkConfig, NetworkSimulation};
use anomaly_serve::{actions_to_json, AlertAction, AlertConfig, AlertSink, KeyMap, ServeLoop};
use anomaly_store::LogWriter;
use std::error::Error;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Counters the smoke run asserts on and reports.
struct RunSummary {
    actions: Vec<AlertAction>,
    alerts_created: u64,
    pages_emitted: u64,
    recurrences: u64,
    suppressed: u64,
    resolved: u64,
    distinct_signatures: usize,
    alerts_json: String,
}

/// The scripted incident timeline: distinct roots, a recurrence, and a
/// closing burst that outruns the token bucket.
fn schedule(net: &NetworkSimulation) -> IncidentSchedule {
    let dslams = net.topology().dslams().to_vec();
    let gateways = net.topology().gateways().to_vec();
    let node = |list: &[anomaly_network::NodeId], i: usize| list.get(i).copied();
    let mut incidents = Vec::new();
    if let Some(d0) = node(&dslams, 0) {
        // The first outage...
        incidents.push(Incident {
            starts_at: 4,
            duration: Some(4),
            fault: FaultTarget::Node {
                node: d0,
                severity: 0.6,
            },
        });
        // ...and its re-fault: the dedup case.
        incidents.push(Incident {
            starts_at: 16,
            duration: Some(3),
            fault: FaultTarget::Node {
                node: d0,
                severity: 0.6,
            },
        });
    }
    if let Some(d1) = node(&dslams, 1) {
        // A second, distinct DSLAM: its own alert stream. Starts the
        // epoch *after* d0's repair so the recovery trajectory and the
        // new outage stay separate tracker events.
        incidents.push(Incident {
            starts_at: 9,
            duration: Some(4),
            fault: FaultTarget::Node {
                node: d1,
                severity: 0.6,
            },
        });
    }
    if let Some(gw) = node(&gateways, 33) {
        // A CPE fault: isolated, ticket-grade. On a gateway outside the
        // faulted DSLAM subtrees of this window, so the d0 re-fault at 16
        // folds into d0's alert rather than growing this event.
        incidents.push(Incident {
            starts_at: 12,
            duration: Some(3),
            fault: FaultTarget::Gateway {
                gateway: gw,
                severity: 0.7,
            },
        });
    }
    // The burst: three fresh roots in quick succession to drain the
    // bucket (capacity 2, half-token refill per tick).
    if let Some(d2) = node(&dslams, 2) {
        incidents.push(Incident {
            starts_at: 24,
            duration: Some(2),
            fault: FaultTarget::Node {
                node: d2,
                severity: 0.6,
            },
        });
    }
    if let Some(d3) = node(&dslams, 3) {
        incidents.push(Incident {
            starts_at: 25,
            duration: Some(2),
            fault: FaultTarget::Node {
                node: d3,
                severity: 0.6,
            },
        });
    }
    if let Some(gw) = node(&gateways, 10) {
        incidents.push(Incident {
            starts_at: 26,
            duration: Some(2),
            fault: FaultTarget::Gateway {
                gateway: gw,
                severity: 0.7,
            },
        });
    }
    IncidentSchedule::new(incidents)
}

/// The monitor configuration every run (and every restore) uses. Initial
/// devices are added by the caller — a restoring builder must leave the
/// fleet to the checkpoint.
fn builder_for(services: usize) -> Result<MonitorBuilder, Box<dyn Error>> {
    Ok(MonitorBuilder::new()
        .params(Params::new(0.02, 3)?)
        .services(services)
        .debounce(1)
        .history(64)
        .detector_factory(move |_| {
            Box::new(VectorDetector::homogeneous(services, || {
                ThresholdDetector::with_delta(0.1)
            }))
        }))
}

/// The sink tuning of the smoke run: a small bucket with a slow refill,
/// so the closing burst exercises the rate limiter.
fn sink_config() -> AlertConfig {
    AlertConfig {
        dedup_window: 16,
        bucket_capacity: 2,
        refill_millitokens: 250,
    }
}

fn summarize(serve: &ServeLoop, actions: Vec<AlertAction>) -> RunSummary {
    let sink = serve.sink();
    RunSummary {
        alerts_created: sink.alerts_created(),
        pages_emitted: sink.pages_emitted(),
        recurrences: sink.recurrences(),
        suppressed: sink.suppressed(),
        resolved: sink.resolved(),
        distinct_signatures: sink.distinct_signatures(),
        alerts_json: sink.alerts_json(),
        actions,
    }
}

/// One full daemon run from a cold start: the reference stream.
fn run(seed: u64, ticks: u64, seal_every: u32) -> Result<RunSummary, Box<dyn Error>> {
    let mut net = NetworkSimulation::new(NetworkConfig::small(seed))?;
    let mut timeline = schedule(&net);
    let services = net.services().len();
    let keys: Vec<u64> = net
        .topology()
        .gateways()
        .iter()
        .map(|g| u64::from(g.0))
        .collect();
    let monitor = builder_for(services)?.devices(keys).build()?;
    let sink = AlertSink::new(net.topology().clone(), KeyMap::NodeIds, sink_config());
    let mut serve = ServeLoop::new(monitor, sink, seal_every);
    let mut actions = Vec::new();
    for _ in 0..ticks {
        timeline.advance(&mut net);
        for update in net.measure_stream() {
            serve.ingest(update.key, update.qos)?;
        }
        if let Some((_report, mut fired)) = serve.round()? {
            actions.append(&mut fired);
        }
    }
    // Clean shutdown: drain still-open events into resolutions.
    actions.extend(serve.shutdown());
    Ok(summarize(&serve, actions))
}

/// What the kill/restore cycle measured.
struct RestartMetrics {
    checkpoint_write_micros: u128,
    restore_micros: u128,
    log_bytes: u64,
    compacted_log_bytes: u64,
}

/// The same run with a mid-flight daemon restart: the daemon keeps a
/// running epoch log (one summary record per seal, one event record per
/// close); halfway through, the loop appends its checkpoint to that log
/// and is dropped. The log is then **compacted** — every epoch record
/// before the checkpoint is pruned — and a fresh loop is restored from
/// the compacted image and drives the rest of the timeline. The network
/// keeps running across the restart — only the daemon dies.
fn run_restarted(
    seed: u64,
    ticks: u64,
    seal_every: u32,
) -> Result<(RunSummary, RestartMetrics), Box<dyn Error>> {
    let mut net = NetworkSimulation::new(NetworkConfig::small(seed))?;
    let mut timeline = schedule(&net);
    let services = net.services().len();
    let keys: Vec<u64> = net
        .topology()
        .gateways()
        .iter()
        .map(|g| u64::from(g.0))
        .collect();
    let monitor = builder_for(services)?.devices(keys).build()?;
    let sink = AlertSink::new(net.topology().clone(), KeyMap::NodeIds, sink_config());
    let mut serve = ServeLoop::new(monitor, sink, seal_every);
    let mut log = EventLog::create(Vec::new())?;
    let mut actions = Vec::new();
    let cut = ticks / 2;
    for _ in 0..cut {
        timeline.advance(&mut net);
        for update in net.measure_stream() {
            serve.ingest(update.key, update.qos)?;
        }
        if let Some((report, mut fired)) = serve.round()? {
            log.record_seal(serve.monitor(), &report)?;
            actions.append(&mut fired);
        }
    }
    // Kill: append the checkpoint to the running epoch log, drop the
    // loop, and compact — every epoch record before the checkpoint is
    // subsumed by it for restore purposes and gets pruned.
    // conformance: allow(C3, reason = "bench-only latency metric; never feeds pipeline decisions")
    let write_started = std::time::Instant::now();
    serve.checkpoint_into(&mut log)?;
    let checkpoint_write_micros = write_started.elapsed().as_micros();
    drop(serve);
    let full = log.into_inner()?;
    let log_bytes = full.len() as u64;
    let compacted = LogWriter::compact(&full).map_err(|err| format!("compact: {err}"))?;
    let compacted_log_bytes = compacted.len() as u64;
    assert!(
        compacted_log_bytes < log_bytes,
        "compaction must prune the pre-checkpoint epoch records \
         ({compacted_log_bytes} vs {log_bytes})"
    );
    // Restore: a fresh loop from nothing but the *compacted* log and the
    // static constructor arguments.
    // conformance: allow(C3, reason = "bench-only latency metric; never feeds pipeline decisions")
    let restore_started = std::time::Instant::now();
    let mut serve = ServeLoop::restore(
        &compacted,
        builder_for(services)?,
        net.topology().clone(),
        KeyMap::NodeIds,
        sink_config(),
    )?;
    let restore_micros = restore_started.elapsed().as_micros();
    for _ in cut..ticks {
        timeline.advance(&mut net);
        for update in net.measure_stream() {
            serve.ingest(update.key, update.qos)?;
        }
        if let Some((_report, mut fired)) = serve.round()? {
            actions.append(&mut fired);
        }
    }
    actions.extend(serve.shutdown());
    let metrics = RestartMetrics {
        checkpoint_write_micros,
        restore_micros,
        log_bytes,
        compacted_log_bytes,
    };
    Ok((summarize(&serve, actions), metrics))
}

fn main() -> Result<(), Box<dyn Error>> {
    let ticks = env_u64("SERVE_TICKS", 40);
    let seed = env_u64("SERVE_SEED", 7);
    let seal_every = env_u64("SERVE_SEAL_EVERY", 1).min(u64::from(u32::MAX)) as u32;
    let out = std::env::var("SERVE_OUT").unwrap_or_else(|_| "BENCH_serve.json".to_string());

    let first = run(seed, ticks, seal_every)?;
    let (restarted, metrics) = run_restarted(seed, ticks, seal_every)?;
    let stream = actions_to_json(&first.actions);
    assert_eq!(
        stream,
        actions_to_json(&restarted.actions),
        "a checkpoint/kill/restore cycle must reproduce the alert stream byte-for-byte"
    );
    assert_eq!(
        first.alerts_json, restarted.alerts_json,
        "the restored sink must end with the identical alert table"
    );

    println!(
        "serve: ticks={ticks} seed={seed} alerts={} pages={} recurrences={} \
         suppressed={} resolved={} distinct_signatures={} restart_identical=true \
         log_bytes={} compacted_log_bytes={}",
        first.alerts_created,
        first.pages_emitted,
        first.recurrences,
        first.suppressed,
        first.resolved,
        first.distinct_signatures,
        metrics.log_bytes,
        metrics.compacted_log_bytes,
    );

    // The timeline is scripted, the pipeline deterministic: the alert
    // stream is a fixed property of (seed, ticks). Assert the structural
    // claims the smoke exists for, on the default configuration.
    if ticks >= 30 && seed == 7 && seal_every == 1 {
        assert_eq!(
            first.alerts_created, 6,
            "six distinct root causes in the timeline: d0, d1, cpe33, d2, d3, cpe10"
        );
        assert!(
            first.recurrences >= 3,
            "the d0 re-fault and the repair recoveries must dedup into existing alerts"
        );
        assert!(
            first.suppressed >= 1,
            "the closing burst must exercise the rate limiter"
        );
        assert!(
            first.distinct_signatures >= 2,
            "massive DSLAM outages and isolated CPE faults reduce to different signatures"
        );
    }

    let json = format!(
        "{{\n  \"bench\": \"serve\",\n  \"ticks\": {ticks},\n  \"seed\": {seed},\n  \
         \"seal_every\": {seal_every},\n  \"alerts\": {},\n  \"pages\": {},\n  \
         \"recurrences\": {},\n  \"suppressed\": {},\n  \"resolved\": {},\n  \
         \"distinct_signatures\": {},\n  \"restart_identical\": true,\n  \
         \"checkpoint_write_micros\": {},\n  \"restore_micros\": {},\n  \
         \"log_bytes\": {},\n  \"compacted_log_bytes\": {},\n  \
         \"alerts_detail\": {},\n  \"actions\": {}\n}}\n",
        first.alerts_created,
        first.pages_emitted,
        first.recurrences,
        first.suppressed,
        first.resolved,
        first.distinct_signatures,
        metrics.checkpoint_write_micros,
        metrics.restore_micros,
        metrics.log_bytes,
        metrics.compacted_log_bytes,
        first.alerts_json,
        stream,
    );
    std::fs::write(&out, json)?;
    println!("serve: wrote {out}");
    Ok(())
}
