//! The serve loop: a long-running monitor + alert-sink pair driven by
//! per-gateway measurement updates, sealing on a configurable tick.
//!
//! ```text
//!   MeasurementUpdate ──ingest──▶ Monitor ──seal every N rounds──▶ Report
//!                                                                   │
//!                         AlertAction stream ◀──fold── AlertSink ◀──┘
//! ```
//!
//! Time is logical: one "round" is one full collection sweep of the
//! fleet, and the loop seals every `seal_every` rounds. Nothing reads a
//! wall clock, so a run replays byte-identically from the same inputs —
//! a checkpointless restart reproduces the same alert stream and the
//! same canonical signature IDs.

use crate::alerts::AlertAction;
use crate::sink::{AlertConfig, AlertSink, KeyMap};
use anomaly_characterization::pipeline::{
    read_log, EventLog, Monitor, MonitorBuilder, MonitorError, Report,
};
use anomaly_network::Topology;
use anomaly_store::{Dec, Enc};
use std::io::Write;

/// `Aux` record tag identifying the serve loop's side state inside a
/// persisted log (first four payload bytes, per the [`EventLog`]
/// convention).
const SERVE_AUX_TAG: &[u8; 4] = b"SRV1";

/// A monitor and an alert sink behind one ingest/tick surface.
#[derive(Debug)]
pub struct ServeLoop {
    monitor: Monitor,
    sink: AlertSink,
    seal_every: u32,
    rounds: u32,
    last_epoch: u64,
}

impl ServeLoop {
    /// Wires a monitor to a sink, sealing every `seal_every` collection
    /// rounds (clamped to at least 1).
    pub fn new(monitor: Monitor, sink: AlertSink, seal_every: u32) -> Self {
        ServeLoop {
            monitor,
            sink,
            seal_every: seal_every.max(1),
            rounds: 0,
            last_epoch: 0,
        }
    }

    /// Feeds one device's measurement into the open epoch.
    ///
    /// # Errors
    ///
    /// Everything `Monitor::ingest` returns (unknown key, bad row).
    pub fn ingest(&mut self, key: u64, qos: Vec<f64>) -> Result<(), MonitorError> {
        self.monitor.ingest(key, qos)
    }

    /// Marks one collection round complete. When `seal_every` rounds have
    /// accumulated, seals the epoch, folds the report into the sink, and
    /// returns the report plus the triggered notifications.
    ///
    /// # Errors
    ///
    /// Everything `Monitor::seal` returns (e.g. staleness rejections).
    pub fn round(&mut self) -> Result<Option<(Report, Vec<AlertAction>)>, MonitorError> {
        self.rounds += 1;
        if self.rounds < self.seal_every {
            return Ok(None);
        }
        self.rounds = 0;
        let report = self.monitor.seal()?;
        self.last_epoch = report.instant();
        let actions = self.sink.observe(&report);
        Ok(Some((report, actions)))
    }

    /// Shuts the pipeline down cleanly: resets the monitor and feeds the
    /// synthetic close deltas through the sink, so every open alert
    /// resolves instead of leaking. Returns the final notifications.
    pub fn shutdown(&mut self) -> Vec<AlertAction> {
        let deltas = self.monitor.reset();
        self.sink.fold_deltas(self.last_epoch + 1, &deltas, &[])
    }

    /// Writes the loop's full resumable state to `sink` as one store log:
    /// a monitor checkpoint record plus an `SRV1` aux record holding the
    /// round phase, the last sealed epoch, the seal cadence, and the
    /// alert sink's state. Returns the bytes written.
    ///
    /// A loop rebuilt from it via [`ServeLoop::restore`] continues the
    /// alert action stream byte-identically to an uninterrupted run.
    ///
    /// # Errors
    ///
    /// [`MonitorError::Persist`] on I/O failure.
    pub fn checkpoint<W: Write>(&self, sink: W) -> Result<u64, MonitorError> {
        let mut log = EventLog::create(sink)?;
        self.checkpoint_into(&mut log)?;
        let bytes = log.bytes_written();
        log.into_inner()?;
        Ok(bytes)
    }

    /// Appends the loop's resumable state — the monitor checkpoint record
    /// plus the `SRV1` aux record — to an already-open [`EventLog`], e.g.
    /// a running epoch log the daemon has been
    /// [`record_seal`](EventLog::record_seal)ing into. Everything before
    /// the appended checkpoint becomes prunable history:
    /// `LogWriter::compact` drops it while [`ServeLoop::restore`] keeps
    /// producing the byte-identical loop.
    ///
    /// # Errors
    ///
    /// [`MonitorError::Persist`] on I/O failure.
    pub fn checkpoint_into<W: Write>(&self, log: &mut EventLog<W>) -> Result<(), MonitorError> {
        log.checkpoint(&self.monitor)?;
        let mut enc = Enc::new();
        enc.bytes(SERVE_AUX_TAG);
        enc.u32(self.seal_every);
        enc.u32(self.rounds);
        enc.u64(self.last_epoch);
        enc.bytes(&self.sink.save());
        log.append_aux(&enc.into_bytes())
    }

    /// Rebuilds a serve loop from a [`ServeLoop::checkpoint`] log.
    ///
    /// `builder` must describe the monitor configuration the checkpoint
    /// was written under (see [`Monitor::restore`]); `topology`, `keymap`,
    /// and `config` are the sink's constructor arguments and are
    /// reconciled against the saved state (see [`AlertSink::load`]). The
    /// seal cadence and mid-tick round phase come from the log itself.
    ///
    /// # Errors
    ///
    /// [`MonitorError::CheckpointMismatch`] on any disagreeing knob,
    /// [`MonitorError::Persist`] on corrupt or incomplete logs.
    pub fn restore(
        log: &[u8],
        builder: MonitorBuilder,
        topology: Topology,
        keymap: KeyMap,
        config: AlertConfig,
    ) -> Result<ServeLoop, MonitorError> {
        let monitor = Monitor::restore(log, builder)?;
        let persisted = read_log(log)?;
        let aux = persisted
            .aux
            .iter()
            .rev()
            .find(|payload| {
                let mut dec = Dec::new(payload);
                dec.bytes("aux.tag").is_ok_and(|tag| tag == SERVE_AUX_TAG)
            })
            .ok_or_else(|| MonitorError::Persist {
                detail: "log holds no serve-loop aux record".to_string(),
            })?;
        let mut dec = Dec::new(aux);
        let _tag = dec.bytes("aux.tag")?;
        let seal_every = dec.u32("serve.seal_every")?;
        let rounds = dec.u32("serve.rounds")?;
        let last_epoch = dec.u64("serve.last_epoch")?;
        let sink_bytes = dec.bytes("serve.sink")?;
        let sink = AlertSink::load(topology, keymap, config, sink_bytes)?;
        dec.finish("serve-aux")?;
        Ok(ServeLoop {
            monitor,
            sink,
            seal_every: seal_every.max(1),
            rounds,
            last_epoch,
        })
    }

    /// The underlying monitor.
    pub fn monitor(&self) -> &Monitor {
        &self.monitor
    }

    /// The underlying monitor, mutably (joins/leaves under churn).
    pub fn monitor_mut(&mut self) -> &mut Monitor {
        &mut self.monitor
    }

    /// The alert sink.
    pub fn sink(&self) -> &AlertSink {
        &self.sink
    }

    /// The alert sink, mutably (acknowledgements).
    pub fn sink_mut(&mut self) -> &mut AlertSink {
        &mut self.sink
    }
}
