//! The serve loop: a long-running monitor + alert-sink pair driven by
//! per-gateway measurement updates, sealing on a configurable tick.
//!
//! ```text
//!   MeasurementUpdate ──ingest──▶ Monitor ──seal every N rounds──▶ Report
//!                                                                   │
//!                         AlertAction stream ◀──fold── AlertSink ◀──┘
//! ```
//!
//! Time is logical: one "round" is one full collection sweep of the
//! fleet, and the loop seals every `seal_every` rounds. Nothing reads a
//! wall clock, so a run replays byte-identically from the same inputs —
//! a checkpointless restart reproduces the same alert stream and the
//! same canonical signature IDs.

use crate::alerts::AlertAction;
use crate::sink::AlertSink;
use anomaly_characterization::pipeline::{Monitor, MonitorError, Report};

/// A monitor and an alert sink behind one ingest/tick surface.
#[derive(Debug)]
pub struct ServeLoop {
    monitor: Monitor,
    sink: AlertSink,
    seal_every: u32,
    rounds: u32,
    last_epoch: u64,
}

impl ServeLoop {
    /// Wires a monitor to a sink, sealing every `seal_every` collection
    /// rounds (clamped to at least 1).
    pub fn new(monitor: Monitor, sink: AlertSink, seal_every: u32) -> Self {
        ServeLoop {
            monitor,
            sink,
            seal_every: seal_every.max(1),
            rounds: 0,
            last_epoch: 0,
        }
    }

    /// Feeds one device's measurement into the open epoch.
    ///
    /// # Errors
    ///
    /// Everything `Monitor::ingest` returns (unknown key, bad row).
    pub fn ingest(&mut self, key: u64, qos: Vec<f64>) -> Result<(), MonitorError> {
        self.monitor.ingest(key, qos)
    }

    /// Marks one collection round complete. When `seal_every` rounds have
    /// accumulated, seals the epoch, folds the report into the sink, and
    /// returns the report plus the triggered notifications.
    ///
    /// # Errors
    ///
    /// Everything `Monitor::seal` returns (e.g. staleness rejections).
    pub fn round(&mut self) -> Result<Option<(Report, Vec<AlertAction>)>, MonitorError> {
        self.rounds += 1;
        if self.rounds < self.seal_every {
            return Ok(None);
        }
        self.rounds = 0;
        let report = self.monitor.seal()?;
        self.last_epoch = report.instant();
        let actions = self.sink.observe(&report);
        Ok(Some((report, actions)))
    }

    /// Shuts the pipeline down cleanly: resets the monitor and feeds the
    /// synthetic close deltas through the sink, so every open alert
    /// resolves instead of leaking. Returns the final notifications.
    pub fn shutdown(&mut self) -> Vec<AlertAction> {
        let deltas = self.monitor.reset();
        self.sink.fold_deltas(self.last_epoch + 1, &deltas, &[])
    }

    /// The underlying monitor.
    pub fn monitor(&self) -> &Monitor {
        &self.monitor
    }

    /// The underlying monitor, mutably (joins/leaves under churn).
    pub fn monitor_mut(&mut self) -> &mut Monitor {
        &mut self.monitor
    }

    /// The alert sink.
    pub fn sink(&self) -> &AlertSink {
        &self.sink
    }

    /// The alert sink, mutably (acknowledgements).
    pub fn sink_mut(&mut self) -> &mut AlertSink {
        &mut self.sink
    }
}
