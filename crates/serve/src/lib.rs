//! Alerting daemon over the anomaly-characterization pipeline.
//!
//! The monitor turns per-epoch QoS snapshots into [`Report`]s with
//! event deltas; this crate turns that stream into what an operator
//! actually consumes: deduplicated, severity-ranked, rate-limited,
//! acknowledgeable **alerts**, each keyed by a canonical root-cause
//! [`Signature`].
//!
//! * [`signature`]: the deterministic normal-form reduction from an
//!   event lifecycle (class transitions, topology spread, duration,
//!   straggler overlap) to a stable versioned signature ID.
//! * [`alerts`]: severity ladder, acknowledgement lifecycle, the emitted
//!   [`AlertAction`] stream, and the deterministic token-bucket rate
//!   limiter.
//! * [`sink`]: the pure fold from [`Report`]s to alert state — usable
//!   live behind a daemon or offline over collected reports.
//! * [`daemon`]: the [`ServeLoop`] tying a `Monitor` and an [`AlertSink`]
//!   behind one ingest/round surface, plus the `serve` binary driving it
//!   against a simulated ISP network.
//!
//! Everything is logical-time and fully deterministic: the same
//! measurement stream produces a byte-identical alert stream across
//! engines, worker counts, grid-maintenance modes, and checkpointless
//! restarts.
//!
//! [`Report`]: anomaly_characterization::pipeline::Report

#![forbid(unsafe_code)]
#![deny(warnings)]
#![warn(missing_docs)]

pub mod alerts;
pub mod daemon;
pub mod signature;
pub mod sink;

pub use alerts::{
    actions_to_json, severity, Alert, AlertAction, AlertActionKind, AlertId, AlertPhase, Severity,
    TokenBucket,
};
pub use daemon::ServeLoop;
pub use signature::{
    affected_bucket, duration_bucket, Signature, SignatureAtoms, TopologySpread, SIGNATURE_VERSION,
};
pub use sink::{AlertConfig, AlertSink, KeyMap, SINK_STATE_VERSION};
