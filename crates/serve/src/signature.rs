//! Canonical root-cause signatures: a deterministic normal-form reduction
//! from an event's lifecycle to a stable, versioned signature ID.
//!
//! Deduplication and "same incident class again" tracking need a key that
//! is *stable* — the same physical failure mode must reduce to the same ID
//! across runs, engines, worker counts, and restarts of the serve loop —
//! and *canonical* — superficially different descriptions of the same
//! lifecycle (e.g. "opened isolated, peaked massive" vs "massive with an
//! isolated onset") must collapse to one representative before hashing.
//!
//! The reduction mirrors a normal-form computation: the lifecycle is first
//! projected onto a small schema of boolean/bucketed atoms
//! ([`SignatureAtoms`]), the rewrite rules R1–R4 below canonicalize the
//! atoms, and the canonical word is mixed with [`SIGNATURE_VERSION`] into
//! a 64-bit [`Signature`]. Every step is branch-deterministic integer
//! arithmetic on `Copy` data — no allocation, no floats, no ordering
//! sensitivity — so the reducer is safe on the per-epoch hot path.
//!
//! Rewrite rules (applied by [`SignatureAtoms::normal_form`]):
//!
//! * **R1 — peak dominance**: the lifecycle class is the peak over the
//!   whole lifetime, ranked `Massive > Isolated > Unresolved`; the onset
//!   class never outranks the peak.
//! * **R2 — transition derivation**: the "class transitioned" atom is
//!   *derived* (`onset ≠ peak` after R1), never stored, so inconsistent
//!   inputs cannot produce two signatures for one lifecycle.
//! * **R3 — spread consistency**: an `Isolated` lifecycle affects one
//!   gateway by definition, so its spread is forced to
//!   [`TopologySpread::Gateway`]; a `Massive` lifecycle is collective, so
//!   its spread is floored at [`TopologySpread::Dslam`].
//! * **R4 — bucket saturation**: duration and affected-device counts are
//!   reduced to saturating buckets, so unbounded lifecycles still land in
//!   a finite schema.
//!
//! Bump [`SIGNATURE_VERSION`] whenever the schema, the rules, or the
//! packing change: old and new IDs must never collide silently.
//!
//! # Version history
//!
//! * **v1** — class/spread/duration/affected/straggler word only.
//! * **v2** — adds the component-scoped [`SignatureAtoms::component_root`]
//!   atom: the topology node id of the *lifecycle's own* blast-radius
//!   root, mixed into the ID as a second hashed lane. Two simultaneous
//!   spatially-disjoint outages of the same shape (e.g. two DSLAMs dark
//!   for the same number of epochs) now reduce to two distinct
//!   signatures, one per faulty subtree, instead of colliding on the
//!   shape word alone.

use anomaly_core::AnomalyClass;

/// Version of the atom schema, rewrite rules, and packing. Mixed into
/// every [`Signature`], so IDs from different schema generations never
/// compare equal.
pub const SIGNATURE_VERSION: u32 = 2;

/// The narrowest ISP-tree layer whose single element covers every device
/// an event affected — the blast radius of the inferred root cause.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TopologySpread {
    /// One home gateway (CPE-local fault).
    Gateway,
    /// One DSLAM subtree.
    Dslam,
    /// One aggregation subtree.
    Aggregation,
    /// Crosses aggregations: only a core covers the affected set.
    Core,
}

impl TopologySpread {
    fn rank(self) -> u64 {
        match self {
            TopologySpread::Gateway => 0,
            TopologySpread::Dslam => 1,
            TopologySpread::Aggregation => 2,
            TopologySpread::Core => 3,
        }
    }
}

/// Rank used by R1: `Massive > Isolated > Unresolved`.
pub(crate) fn class_rank(class: AnomalyClass) -> u64 {
    match class {
        AnomalyClass::Unresolved => 0,
        AnomalyClass::Isolated => 1,
        AnomalyClass::Massive => 2,
    }
}

/// Saturating duration bucket (R4): `≤1`, `2–3`, `4–7`, `8+` epochs.
pub fn duration_bucket(epochs: u64) -> u64 {
    match epochs {
        0 | 1 => 0,
        2..=3 => 1,
        4..=7 => 2,
        _ => 3,
    }
}

/// Saturating affected-device bucket (R4): `≤1`, `2–8`, `9–64`, `65+`.
pub fn affected_bucket(devices: usize) -> u64 {
    match devices {
        0 | 1 => 0,
        2..=8 => 1,
        9..=64 => 2,
        _ => 3,
    }
}

/// The boolean/bucketed atom schema describing one event lifecycle —
/// the input of the signature reduction. All fields are `Copy`; building
/// and reducing atoms never allocates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SignatureAtoms {
    /// Class at onset (first epoch with a verdict).
    pub onset_class: AnomalyClass,
    /// Peak class over the whole lifecycle.
    pub peak_class: AnomalyClass,
    /// Topology spread of the affected-device set.
    pub spread: TopologySpread,
    /// Observed lifetime in epochs (`end - onset`).
    pub duration_epochs: u64,
    /// Cumulative affected-device count.
    pub affected_devices: usize,
    /// Whether the lifecycle overlapped staleness-bridged (straggler)
    /// epochs — detection quality was degraded by silent devices.
    pub straggler_overlap: bool,
    /// Topology node id of the narrowest node covering the lifecycle's
    /// *own* devices — its spatial component's blast-radius root, not the
    /// merged root of whatever alert it folded into. `None` when no
    /// device maps into the topology. Node ids are deterministic per
    /// topology shape, so the atom is stable across runs and engines.
    pub component_root: Option<u32>,
}

impl SignatureAtoms {
    /// Applies the rewrite rules R1–R3, returning the canonical
    /// representative of this lifecycle. Idempotent: normalizing a
    /// normal form is the identity.
    pub fn normal_form(self) -> SignatureAtoms {
        let mut n = self;
        // R1: the peak dominates; the onset never outranks it.
        if class_rank(n.onset_class) > class_rank(n.peak_class) {
            n.peak_class = n.onset_class;
        }
        // R3: isolated lifecycles are single-gateway by definition;
        // massive lifecycles are collective, so at least a DSLAM subtree.
        match n.peak_class {
            AnomalyClass::Isolated => n.spread = TopologySpread::Gateway,
            AnomalyClass::Massive => {
                if n.spread == TopologySpread::Gateway {
                    n.spread = TopologySpread::Dslam;
                }
            }
            AnomalyClass::Unresolved => {}
        }
        n
    }

    /// Reduces the atoms to their canonical [`Signature`]: normal form,
    /// then a fixed-layout packing of the canonical word, mixed with
    /// [`SIGNATURE_VERSION`]. Same lifecycle in, same ID out — always.
    ///
    /// The component root rides in a second hashed lane XORed onto the
    /// shape word's mix: lifecycles with identical shapes but disjoint
    /// spatial roots get distinct IDs, while a rootless lifecycle
    /// (`component_root == None`) reduces exactly like a pure shape word.
    pub fn reduce(self) -> Signature {
        let n = self.normal_form();
        // R2: the transition atom is derived after R1.
        let transitioned = (n.onset_class != n.peak_class) as u64;
        let word = class_rank(n.peak_class)
            | transitioned << 2
            | n.spread.rank() << 3
            | duration_bucket(n.duration_epochs) << 5
            | affected_bucket(n.affected_devices) << 7
            | (n.straggler_overlap as u64) << 9
            | (SIGNATURE_VERSION as u64) << 32;
        // The spatial lane: `root + 1` so node id 0 is distinct from the
        // absent root, mixed independently so the two lanes never cancel.
        let spatial = match n.component_root {
            None => 0,
            Some(root) => mix(u64::from(root) + 1),
        };
        Signature(mix(word) ^ spatial)
    }
}

/// SplitMix64 finalizer: a fixed bijective mixer, so distinct canonical
/// words always map to distinct IDs and the IDs spread over the full
/// 64-bit space.
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// A canonical root-cause signature ID. Stable across runs, engines,
/// worker counts, and serve-loop restarts; versioned via
/// [`SIGNATURE_VERSION`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Signature(pub u64);

impl std::fmt::Display for Signature {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atoms() -> SignatureAtoms {
        SignatureAtoms {
            onset_class: AnomalyClass::Isolated,
            peak_class: AnomalyClass::Massive,
            spread: TopologySpread::Dslam,
            duration_epochs: 5,
            affected_devices: 16,
            straggler_overlap: false,
            component_root: Some(7),
        }
    }

    #[test]
    fn normal_form_is_idempotent() {
        let n = atoms().normal_form();
        assert_eq!(n, n.normal_form());
    }

    #[test]
    fn reduction_is_deterministic() {
        assert_eq!(atoms().reduce(), atoms().reduce());
    }

    #[test]
    fn r1_peak_dominates_onset() {
        let mut a = atoms();
        a.onset_class = AnomalyClass::Massive;
        a.peak_class = AnomalyClass::Isolated;
        // R3 then forces Gateway→Dslam exactly like the canonical form.
        assert_eq!(a.normal_form().peak_class, AnomalyClass::Massive);
    }

    #[test]
    fn r3_forces_spread_consistency() {
        let mut a = atoms();
        a.onset_class = AnomalyClass::Isolated;
        a.peak_class = AnomalyClass::Isolated;
        a.spread = TopologySpread::Aggregation;
        assert_eq!(a.normal_form().spread, TopologySpread::Gateway);
        let mut b = atoms();
        b.spread = TopologySpread::Gateway;
        assert_eq!(b.normal_form().spread, TopologySpread::Dslam);
    }

    #[test]
    fn equivalent_descriptions_share_one_id() {
        // "Massive that started isolated" with a gateway-level spread is
        // the same failure mode as its canonical DSLAM-level form.
        let mut raw = atoms();
        raw.spread = TopologySpread::Gateway;
        assert_eq!(raw.reduce(), atoms().reduce());
    }

    #[test]
    fn distinct_failure_modes_get_distinct_ids() {
        let base = atoms().reduce();
        let mut longer = atoms();
        longer.duration_epochs = 40;
        let mut wider = atoms();
        wider.spread = TopologySpread::Core;
        let mut lone = atoms();
        lone.onset_class = AnomalyClass::Isolated;
        lone.peak_class = AnomalyClass::Isolated;
        lone.affected_devices = 1;
        assert_ne!(base, longer.reduce());
        assert_ne!(base, wider.reduce());
        assert_ne!(base, lone.reduce());
        assert_ne!(longer.reduce(), wider.reduce());
    }

    /// Two same-shape lifecycles rooted at disjoint subtrees must page as
    /// two distinct root causes — the point of the v2 spatial lane.
    #[test]
    fn disjoint_component_roots_get_distinct_ids() {
        let mut other = atoms();
        other.component_root = Some(8);
        assert_ne!(atoms().reduce(), other.reduce());
        let mut rootless = atoms();
        rootless.component_root = None;
        assert_ne!(atoms().reduce(), rootless.reduce());
    }

    /// Node id 0 is a real root, not the absent-root sentinel.
    #[test]
    fn root_zero_is_distinct_from_no_root() {
        let mut zero = atoms();
        zero.component_root = Some(0);
        let mut none = atoms();
        none.component_root = None;
        assert_ne!(zero.reduce(), none.reduce());
    }

    /// Golden value: pins the version-2 schema, rules, and packing. If
    /// this changes, the schema changed — bump [`SIGNATURE_VERSION`].
    #[test]
    fn version_2_signature_is_pinned() {
        let got = atoms().reduce();
        assert_eq!(got, Signature(0x4f79_1c94_eab4_8c71));
        assert_eq!(format!("{got}"), "4f791c94eab48c71");
    }
}
