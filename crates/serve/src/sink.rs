//! The alert sink: a pure, deterministic fold from the monitor's
//! per-epoch [`Report`] stream to deduplicated, rate-limited operator
//! alerts.
//!
//! The sink consumes only [`Report::event_deltas`] (plus the straggler
//! list), so it can run behind a live serve loop or over an
//! already-collected report vector — the evaluation workbench uses the
//! latter. Deltas referencing events first seen before the sink attached
//! (mid-stream attach, checkpointless restart) are adopted as fresh
//! lifecycles; unknown closes are ignored.
//!
//! Determinism: deltas are folded in ascending event-id order (the order
//! the tracker emits), every index is a `BTreeMap`, and time is the
//! sealed-epoch instant — the emitted action stream is byte-identical
//! across engines, worker counts, and grid-maintenance modes.

use crate::alerts::{
    severity, Alert, AlertAction, AlertActionKind, AlertId, AlertPhase, Severity, TokenBucket,
};
use crate::signature::{class_rank, Signature, SignatureAtoms, TopologySpread};
use anomaly_characterization::pipeline::{
    DeviceKey, EventDelta, EventDeltaKind, EventId, MonitorError, Report,
};
use anomaly_core::AnomalyClass;
use anomaly_network::{NodeId, NodeKind, Topology};
use anomaly_store::{Dec, DecodeError, Enc};
use std::collections::{BTreeMap, BTreeSet};

/// How pipeline [`DeviceKey`]s translate back to topology gateways.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyMap {
    /// Keys are raw topology node ids — the `MeasurementUpdate::key`
    /// convention of `anomaly-network`'s streaming collection.
    NodeIds,
    /// Keys are dense gateway indices `0..gateways.len()` — the
    /// convention of the evaluation workloads.
    GatewayIndex,
}

/// Tuning of the alert fold.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlertConfig {
    /// Epochs after resolution during which a recurrence of the same
    /// root cause folds into the existing alert instead of paging anew.
    pub dedup_window: u64,
    /// Token-bucket capacity, in whole notifications.
    pub bucket_capacity: u32,
    /// Token-bucket refill per sealed epoch, in milli-tokens
    /// (1000 = one notification per epoch).
    pub refill_millitokens: u32,
}

impl Default for AlertConfig {
    fn default() -> Self {
        AlertConfig {
            dedup_window: 16,
            bucket_capacity: 4,
            refill_millitokens: 500,
        }
    }
}

/// Dedup-index key for an alert's root node; unmapped roots share one
/// sentinel bucket.
fn root_key(root: Option<NodeId>) -> u32 {
    match root {
        Some(node) => node.0,
        None => u32::MAX,
    }
}

/// The lifecycle the sink tracks per open event id.
#[derive(Debug, Clone)]
struct EventLife {
    onset: u64,
    last: u64,
    onset_class: AnomalyClass,
    peak: AnomalyClass,
    devices: BTreeSet<DeviceKey>,
    straggler_overlap: bool,
    /// The alert this lifecycle folded into; `None` until routed.
    alert: Option<AlertId>,
}

/// Folds event deltas into deduplicated, rate-limited, acknowledgeable
/// alerts keyed by canonical root-cause signatures.
#[derive(Debug, Clone)]
pub struct AlertSink {
    topology: Topology,
    keymap: KeyMap,
    config: AlertConfig,
    bucket: TokenBucket,
    /// DeviceKey raw value → gateway node, per the [`KeyMap`].
    gateway_of: BTreeMap<u64, NodeId>,
    next_alert: u64,
    lives: BTreeMap<EventId, EventLife>,
    alerts: BTreeMap<AlertId, Alert>,
    /// Still-open event lifecycles per alert; an alert resolves when its
    /// count returns to zero.
    open_counts: BTreeMap<AlertId, u64>,
    /// Root-cause dedup index (last writer wins on re-rooting).
    by_root: BTreeMap<u32, AlertId>,
    /// Canonical signature → closed-lifecycle occurrences: the "same
    /// incident class again" registry.
    seen: BTreeMap<Signature, u64>,
    alerts_created: u64,
    pages_emitted: u64,
    recurrences: u64,
    suppressed_total: u64,
    resolved_total: u64,
}

impl AlertSink {
    /// A sink over `topology`, translating keys per `keymap`.
    pub fn new(topology: Topology, keymap: KeyMap, config: AlertConfig) -> Self {
        let mut gateway_of = BTreeMap::new();
        for (index, &gw) in topology.gateways().iter().enumerate() {
            let key = match keymap {
                KeyMap::NodeIds => u64::from(gw.0),
                KeyMap::GatewayIndex => index as u64,
            };
            gateway_of.insert(key, gw);
        }
        let bucket = TokenBucket::new(config.bucket_capacity, config.refill_millitokens);
        AlertSink {
            topology,
            keymap,
            config,
            bucket,
            gateway_of,
            next_alert: 0,
            lives: BTreeMap::new(),
            alerts: BTreeMap::new(),
            open_counts: BTreeMap::new(),
            by_root: BTreeMap::new(),
            seen: BTreeMap::new(),
            alerts_created: 0,
            pages_emitted: 0,
            recurrences: 0,
            suppressed_total: 0,
            resolved_total: 0,
        }
    }

    /// Folds one sealed epoch's report in, returning the notifications it
    /// triggered in deterministic order.
    pub fn observe(&mut self, report: &Report) -> Vec<AlertAction> {
        let stragglers: Vec<DeviceKey> = if report.straggler_count() > 0 {
            let mut keys = report.stragglers().to_vec();
            keys.sort_unstable();
            keys
        } else {
            Vec::new()
        };
        self.fold_deltas(report.instant(), report.event_deltas(), &stragglers)
    }

    /// The raw fold: one epoch's deltas plus the sorted straggler keys.
    /// [`AlertSink::observe`] wraps it; `ServeLoop::shutdown` feeds the
    /// synthetic close deltas a `Monitor::reset` returns through it.
    pub fn fold_deltas(
        &mut self,
        epoch: u64,
        deltas: &[EventDelta],
        stragglers: &[DeviceKey],
    ) -> Vec<AlertAction> {
        self.bucket.tick();
        let mut actions = Vec::new();
        for delta in deltas {
            match delta.kind {
                EventDeltaKind::Opened | EventDeltaKind::Updated => {
                    self.on_activity(epoch, delta, stragglers, &mut actions);
                }
                EventDeltaKind::Closed => self.on_close(epoch, delta, &mut actions),
            }
        }
        actions
    }

    fn on_activity(
        &mut self,
        epoch: u64,
        delta: &EventDelta,
        stragglers: &[DeviceKey],
        actions: &mut Vec<AlertAction>,
    ) {
        let mut life = self.lives.remove(&delta.id).unwrap_or_else(|| EventLife {
            onset: epoch,
            last: epoch,
            onset_class: delta.class,
            peak: delta.class,
            devices: BTreeSet::new(),
            straggler_overlap: false,
            alert: None,
        });
        life.last = epoch;
        if class_rank(delta.class) > class_rank(life.peak) {
            life.peak = delta.class;
        }
        for &key in &delta.joined {
            life.devices.insert(key);
        }
        if !life.straggler_overlap && !stragglers.is_empty() {
            life.straggler_overlap = life
                .devices
                .iter()
                .any(|key| stragglers.binary_search(key).is_ok());
        }
        let root = self.root_of(&life.devices);
        match life.alert {
            None => {
                let aid = self.route(epoch, &life, root, actions);
                life.alert = Some(aid);
            }
            Some(aid) => {
                self.continue_alert(epoch, &life, root, aid, !delta.joined.is_empty(), actions);
            }
        }
        self.lives.insert(delta.id, life);
    }

    /// Routes a newly seen lifecycle: folds it into a live (or recently
    /// resolved) alert with the same root cause, or pages a new one.
    fn route(
        &mut self,
        epoch: u64,
        life: &EventLife,
        root: Option<NodeId>,
        actions: &mut Vec<AlertAction>,
    ) -> AlertId {
        let key = root_key(root);
        let fold_into = self.by_root.get(&key).copied().filter(|aid| {
            self.alerts.get(aid).is_some_and(|alert| match alert.phase {
                AlertPhase::Open | AlertPhase::Acknowledged => true,
                AlertPhase::Resolved => alert
                    .resolved_at
                    .is_some_and(|at| at + self.config.dedup_window >= epoch),
            })
        });
        let duration = life.last - life.onset + 1;
        match fold_into {
            Some(aid) => {
                if let Some(alert) = self.alerts.get_mut(&aid) {
                    alert.occurrences += 1;
                    alert.last_seen = epoch;
                    if alert.phase == AlertPhase::Resolved {
                        alert.phase = AlertPhase::Open;
                        alert.resolved_at = None;
                    }
                    if class_rank(life.peak) > class_rank(alert.class) {
                        alert.class = life.peak;
                    }
                    alert.devices = alert.devices.max(life.devices.len());
                    let sev = severity(alert.class, alert.devices, duration);
                    if sev > alert.severity {
                        alert.severity = sev;
                    }
                }
                *self.open_counts.entry(aid).or_insert(0) += 1;
                self.recurrences += 1;
                self.notify(epoch, aid, AlertActionKind::Recur, actions);
                aid
            }
            None => {
                let aid = AlertId(self.next_alert);
                self.next_alert += 1;
                self.alerts_created += 1;
                let alert = Alert {
                    id: aid,
                    root,
                    class: life.peak,
                    severity: severity(life.peak, life.devices.len(), duration),
                    phase: AlertPhase::Open,
                    opened_at: epoch,
                    last_seen: epoch,
                    resolved_at: None,
                    occurrences: 1,
                    suppressed: 0,
                    devices: life.devices.len(),
                    signature: None,
                };
                self.alerts.insert(aid, alert);
                self.by_root.insert(key, aid);
                self.open_counts.insert(aid, 1);
                self.notify(epoch, aid, AlertActionKind::Page, actions);
                aid
            }
        }
    }

    /// Continuing activity on an already-routed lifecycle: grow the
    /// alert, re-root it if the affected set widened, escalate severity.
    fn continue_alert(
        &mut self,
        epoch: u64,
        life: &EventLife,
        root: Option<NodeId>,
        aid: AlertId,
        joined: bool,
        actions: &mut Vec<AlertAction>,
    ) {
        let mut escalated = false;
        if let Some(alert) = self.alerts.get_mut(&aid) {
            alert.last_seen = epoch;
            if class_rank(life.peak) > class_rank(alert.class) {
                alert.class = life.peak;
            }
            alert.devices = alert.devices.max(life.devices.len());
            if joined && root.is_some() && root != alert.root {
                let old = root_key(alert.root);
                if self.by_root.get(&old) == Some(&aid) {
                    self.by_root.remove(&old);
                }
                self.by_root.insert(root_key(root), aid);
                alert.root = root;
            }
            let duration = epoch - life.onset + 1;
            let sev = severity(alert.class, alert.devices, duration);
            if sev > alert.severity {
                alert.severity = sev;
                escalated = true;
            }
        }
        if escalated {
            self.notify(epoch, aid, AlertActionKind::Escalate, actions);
        }
    }

    fn on_close(&mut self, epoch: u64, delta: &EventDelta, actions: &mut Vec<AlertAction>) {
        let Some(life) = self.lives.remove(&delta.id) else {
            return; // closed before the sink attached: nothing to resolve
        };
        let Some(aid) = life.alert else {
            return;
        };
        // Component-scoped: the signature describes the lifecycle's own
        // spatial component — root and spread come from *its* device set,
        // not from the (possibly wider) alert it folded into, so two
        // coincident outages under one alert still close with two
        // distinct root-cause signatures.
        let root = self.root_of(&life.devices);
        let spread = match root {
            Some(node) => self.spread_of(node),
            None => TopologySpread::Core,
        };
        let atoms = SignatureAtoms {
            onset_class: life.onset_class,
            peak_class: life.peak,
            spread,
            duration_epochs: life.last - life.onset + 1,
            affected_devices: life.devices.len(),
            straggler_overlap: life.straggler_overlap,
            component_root: root.map(|node| node.0),
        };
        let sig = atoms.reduce();
        *self.seen.entry(sig).or_insert(0) += 1;
        let open = self.open_counts.entry(aid).or_insert(1);
        *open = open.saturating_sub(1);
        let all_closed = *open == 0;
        if let Some(alert) = self.alerts.get_mut(&aid) {
            alert.signature = Some(sig);
            if all_closed && alert.phase != AlertPhase::Resolved {
                alert.phase = AlertPhase::Resolved;
                alert.resolved_at = Some(epoch);
                self.resolved_total += 1;
                actions.push(AlertAction {
                    epoch,
                    alert: aid,
                    kind: AlertActionKind::Resolve,
                    severity: alert.severity,
                    class: alert.class,
                    root: alert.root,
                    signature: Some(sig),
                });
            }
        }
    }

    /// Emits one rate-limited notification, or a suppression record when
    /// the bucket is dry. Resolutions bypass this: closing out an alert
    /// is always delivered.
    fn notify(
        &mut self,
        epoch: u64,
        aid: AlertId,
        kind: AlertActionKind,
        actions: &mut Vec<AlertAction>,
    ) {
        let delivered = self.bucket.try_take();
        let Some(alert) = self.alerts.get_mut(&aid) else {
            return;
        };
        let kind = if delivered {
            if kind == AlertActionKind::Page {
                self.pages_emitted += 1;
            }
            kind
        } else {
            alert.suppressed += 1;
            self.suppressed_total += 1;
            AlertActionKind::Suppress
        };
        actions.push(AlertAction {
            epoch,
            alert: aid,
            kind,
            severity: alert.severity,
            class: alert.class,
            root: alert.root,
            signature: alert.signature,
        });
    }

    /// Narrowest topology node covering every device of a lifecycle, via
    /// the key map; `None` when no device maps to a gateway.
    fn root_of(&self, devices: &BTreeSet<DeviceKey>) -> Option<NodeId> {
        let mut root: Option<NodeId> = None;
        for key in devices {
            let Some(&gw) = self.gateway_of.get(&key.0) else {
                continue;
            };
            root = match root {
                None => Some(gw),
                Some(current) => self.common_ancestor(current, gw),
            };
        }
        root
    }

    /// Lowest common ancestor of two in-topology nodes.
    fn common_ancestor(&self, a: NodeId, b: NodeId) -> Option<NodeId> {
        if a == b {
            return Some(a);
        }
        let chain_a = self.topology.route_to_core(a);
        self.topology
            .route_to_core(b)
            .into_iter()
            .find(|node| chain_a.contains(node))
    }

    fn spread_of(&self, node: NodeId) -> TopologySpread {
        match self.topology.kind(node) {
            NodeKind::Gateway => TopologySpread::Gateway,
            NodeKind::Dslam => TopologySpread::Dslam,
            NodeKind::Aggregation => TopologySpread::Aggregation,
            NodeKind::Core => TopologySpread::Core,
        }
    }

    /// Acknowledges an open alert. Returns `false` when the alert does
    /// not exist or is not [`AlertPhase::Open`].
    pub fn ack(&mut self, id: AlertId) -> bool {
        match self.alerts.get_mut(&id) {
            Some(alert) if alert.phase == AlertPhase::Open => {
                alert.phase = AlertPhase::Acknowledged;
                true
            }
            _ => false,
        }
    }

    /// Every alert ever created, in id order.
    pub fn alerts(&self) -> impl Iterator<Item = &Alert> {
        self.alerts.values()
    }

    /// One alert by id.
    pub fn alert(&self, id: AlertId) -> Option<&Alert> {
        self.alerts.get(&id)
    }

    /// Alerts not yet resolved.
    pub fn open_alerts(&self) -> usize {
        self.alerts
            .values()
            .filter(|alert| alert.phase != AlertPhase::Resolved)
            .count()
    }

    /// Deduplicated alerts created over the sink's lifetime.
    pub fn alerts_created(&self) -> u64 {
        self.alerts_created
    }

    /// Page notifications actually delivered (post rate limit).
    pub fn pages_emitted(&self) -> u64 {
        self.pages_emitted
    }

    /// Lifecycles folded into existing alerts instead of paging anew.
    pub fn recurrences(&self) -> u64 {
        self.recurrences
    }

    /// Notifications dropped by the rate limiter.
    pub fn suppressed(&self) -> u64 {
        self.suppressed_total
    }

    /// Alerts that reached [`AlertPhase::Resolved`] (re-opens can make
    /// this exceed the current resolved count).
    pub fn resolved(&self) -> u64 {
        self.resolved_total
    }

    /// Distinct canonical signatures observed across closed lifecycles.
    pub fn distinct_signatures(&self) -> usize {
        self.seen.len()
    }

    /// Closed lifecycles that reduced to `sig` — the "same incident
    /// class again" counter.
    pub fn signature_occurrences(&self, sig: Signature) -> u64 {
        self.seen.get(&sig).copied().unwrap_or(0)
    }

    /// Current rate-limiter level, in milli-tokens.
    pub fn bucket_level_millitokens(&self) -> u64 {
        self.bucket.level_millitokens()
    }

    /// Every alert as a JSON array in id order, stable key order.
    pub fn alerts_json(&self) -> String {
        let mut out = String::from("[");
        for (i, alert) in self.alerts.values().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&alert.to_json());
        }
        out.push(']');
        out
    }
}

/// Version of the sink's checkpoint payload layout. Bump on any change to
/// [`AlertSink::save`]'s field order or widths — old payloads must fail
/// typed, never misparse.
pub const SINK_STATE_VERSION: u32 = 1;

fn class_code(class: AnomalyClass) -> u8 {
    match class {
        AnomalyClass::Isolated => 0,
        AnomalyClass::Massive => 1,
        AnomalyClass::Unresolved => 2,
    }
}

fn decode_sink_class(dec: &mut Dec<'_>, field: &'static str) -> Result<AnomalyClass, DecodeError> {
    Ok(match dec.tag(field, 3)? {
        0 => AnomalyClass::Isolated,
        1 => AnomalyClass::Massive,
        _ => AnomalyClass::Unresolved,
    })
}

fn severity_code(sev: Severity) -> u8 {
    match sev {
        Severity::Minor => 0,
        Severity::Major => 1,
        Severity::Critical => 2,
    }
}

fn decode_severity(dec: &mut Dec<'_>) -> Result<Severity, DecodeError> {
    Ok(match dec.tag("alert.severity", 3)? {
        0 => Severity::Minor,
        1 => Severity::Major,
        _ => Severity::Critical,
    })
}

fn phase_code(phase: AlertPhase) -> u8 {
    match phase {
        AlertPhase::Open => 0,
        AlertPhase::Acknowledged => 1,
        AlertPhase::Resolved => 2,
    }
}

fn decode_phase(dec: &mut Dec<'_>) -> Result<AlertPhase, DecodeError> {
    Ok(match dec.tag("alert.phase", 3)? {
        0 => AlertPhase::Open,
        1 => AlertPhase::Acknowledged,
        _ => AlertPhase::Resolved,
    })
}

fn keymap_code(keymap: KeyMap) -> u8 {
    match keymap {
        KeyMap::NodeIds => 0,
        KeyMap::GatewayIndex => 1,
    }
}

fn decode_node(dec: &mut Dec<'_>, field: &'static str) -> Result<Option<NodeId>, MonitorError> {
    match dec.opt_u64(field)? {
        None => Ok(None),
        Some(raw) => {
            let id = u32::try_from(raw).map_err(|_| MonitorError::Persist {
                detail: format!("checkpointed node id {raw} does not fit a topology id"),
            })?;
            Ok(Some(NodeId(id)))
        }
    }
}

impl AlertSink {
    /// Serializes the sink's resumable state — everything except the
    /// topology, key map, and [`AlertConfig`], which the restoring side
    /// supplies to [`AlertSink::load`] and which the payload records only
    /// to reconcile against.
    pub fn save(&self) -> Vec<u8> {
        let mut enc = Enc::new();
        enc.u32(SINK_STATE_VERSION);
        // Configuration echo, reconciled on load (deny-by-default).
        enc.u64(self.config.dedup_window);
        enc.u32(self.config.bucket_capacity);
        enc.u32(self.config.refill_millitokens);
        enc.u8(keymap_code(self.keymap));
        enc.usize(self.gateway_of.len());
        // Resumable state proper.
        enc.u64(self.bucket.level_millitokens());
        enc.u64(self.next_alert);
        enc.usize(self.lives.len());
        for (id, life) in &self.lives {
            enc.u64(id.0);
            enc.u64(life.onset);
            enc.u64(life.last);
            enc.u8(class_code(life.onset_class));
            enc.u8(class_code(life.peak));
            let devices: Vec<u64> = life.devices.iter().map(|k| k.0).collect();
            enc.u64s(&devices);
            enc.bool(life.straggler_overlap);
            enc.opt_u64(life.alert.map(|a| a.0));
        }
        enc.usize(self.alerts.len());
        for alert in self.alerts.values() {
            enc.u64(alert.id.0);
            enc.opt_u64(alert.root.map(|n| u64::from(n.0)));
            enc.u8(class_code(alert.class));
            enc.u8(severity_code(alert.severity));
            enc.u8(phase_code(alert.phase));
            enc.u64(alert.opened_at);
            enc.u64(alert.last_seen);
            enc.opt_u64(alert.resolved_at);
            enc.u64(alert.occurrences);
            enc.u64(alert.suppressed);
            enc.usize(alert.devices);
            enc.opt_u64(alert.signature.map(|s| s.0));
        }
        enc.usize(self.open_counts.len());
        for (aid, count) in &self.open_counts {
            enc.u64(aid.0);
            enc.u64(*count);
        }
        enc.usize(self.by_root.len());
        for (root, aid) in &self.by_root {
            enc.u32(*root);
            enc.u64(aid.0);
        }
        enc.usize(self.seen.len());
        for (sig, count) in &self.seen {
            enc.u64(sig.0);
            enc.u64(*count);
        }
        enc.u64(self.alerts_created);
        enc.u64(self.pages_emitted);
        enc.u64(self.recurrences);
        enc.u64(self.suppressed_total);
        enc.u64(self.resolved_total);
        enc.into_bytes()
    }

    /// Rebuilds a sink from a [`AlertSink::save`] payload plus the
    /// constructor arguments of the original.
    ///
    /// Restore is deny-by-default: a `config`, `keymap`, or topology
    /// gateway count that disagrees with what the payload was saved under
    /// fails with [`MonitorError::CheckpointMismatch`] naming the knob —
    /// resuming dedup windows or rate limits under different tuning would
    /// silently diverge from the run that saved the state.
    ///
    /// # Errors
    ///
    /// [`MonitorError::CheckpointMismatch`] on a disagreeing constructor
    /// argument; [`MonitorError::Persist`] on a payload that is corrupt,
    /// truncated, from another [`SINK_STATE_VERSION`], or that holds an
    /// impossible value.
    pub fn load(
        topology: Topology,
        keymap: KeyMap,
        config: AlertConfig,
        payload: &[u8],
    ) -> Result<AlertSink, MonitorError> {
        let mut dec = Dec::new(payload);
        let version = dec.u32("alert.version")?;
        if version != SINK_STATE_VERSION {
            return Err(MonitorError::Persist {
                detail: format!(
                    "alert sink state version {version} is not supported \
                     (this build reads version {SINK_STATE_VERSION})"
                ),
            });
        }
        if dec.u64("alert.dedup_window")? != config.dedup_window {
            return Err(MonitorError::CheckpointMismatch {
                field: "alert.dedup_window",
            });
        }
        if dec.u32("alert.bucket_capacity")? != config.bucket_capacity {
            return Err(MonitorError::CheckpointMismatch {
                field: "alert.bucket_capacity",
            });
        }
        if dec.u32("alert.refill_millitokens")? != config.refill_millitokens {
            return Err(MonitorError::CheckpointMismatch {
                field: "alert.refill_millitokens",
            });
        }
        if dec.tag("alert.keymap", 2)? != keymap_code(keymap) {
            return Err(MonitorError::CheckpointMismatch {
                field: "alert.keymap",
            });
        }
        let mut sink = AlertSink::new(topology, keymap, config);
        if dec.usize("alert.gateways")? != sink.gateway_of.len() {
            return Err(MonitorError::CheckpointMismatch {
                field: "alert.topology",
            });
        }
        let level = dec.u64("alert.bucket_level")?;
        sink.bucket.set_level_millitokens(level);
        sink.next_alert = dec.u64("alert.next_alert")?;
        let lives_n = dec.seq_len("alert.lives")?;
        for _ in 0..lives_n {
            let id = EventId(dec.u64("alert.lives")?);
            let onset = dec.u64("alert.lives")?;
            let last = dec.u64("alert.lives")?;
            let onset_class = decode_sink_class(&mut dec, "alert.lives")?;
            let peak = decode_sink_class(&mut dec, "alert.lives")?;
            let devices: BTreeSet<DeviceKey> = dec
                .u64s("alert.lives")?
                .into_iter()
                .map(DeviceKey)
                .collect();
            let straggler_overlap = dec.bool("alert.lives")?;
            let alert = dec.opt_u64("alert.lives")?.map(AlertId);
            sink.lives.insert(
                id,
                EventLife {
                    onset,
                    last,
                    onset_class,
                    peak,
                    devices,
                    straggler_overlap,
                    alert,
                },
            );
        }
        let alerts_n = dec.seq_len("alert.alerts")?;
        for _ in 0..alerts_n {
            let id = AlertId(dec.u64("alert.id")?);
            let root = decode_node(&mut dec, "alert.root")?;
            let class = decode_sink_class(&mut dec, "alert.class")?;
            let severity = decode_severity(&mut dec)?;
            let phase = decode_phase(&mut dec)?;
            let opened_at = dec.u64("alert.opened_at")?;
            let last_seen = dec.u64("alert.last_seen")?;
            let resolved_at = dec.opt_u64("alert.resolved_at")?;
            let occurrences = dec.u64("alert.occurrences")?;
            let suppressed = dec.u64("alert.suppressed")?;
            let devices = dec.usize("alert.devices")?;
            let signature = dec.opt_u64("alert.signature")?.map(Signature);
            sink.alerts.insert(
                id,
                Alert {
                    id,
                    root,
                    class,
                    severity,
                    phase,
                    opened_at,
                    last_seen,
                    resolved_at,
                    occurrences,
                    suppressed,
                    devices,
                    signature,
                },
            );
        }
        let open_n = dec.seq_len("alert.open_counts")?;
        for _ in 0..open_n {
            let aid = AlertId(dec.u64("alert.open_counts")?);
            let count = dec.u64("alert.open_counts")?;
            sink.open_counts.insert(aid, count);
        }
        let roots_n = dec.seq_len("alert.by_root")?;
        for _ in 0..roots_n {
            let root = dec.u32("alert.by_root")?;
            let aid = AlertId(dec.u64("alert.by_root")?);
            sink.by_root.insert(root, aid);
        }
        let seen_n = dec.seq_len("alert.seen")?;
        for _ in 0..seen_n {
            let sig = Signature(dec.u64("alert.seen")?);
            let count = dec.u64("alert.seen")?;
            sink.seen.insert(sig, count);
        }
        sink.alerts_created = dec.u64("alert.alerts_created")?;
        sink.pages_emitted = dec.u64("alert.pages_emitted")?;
        sink.recurrences = dec.u64("alert.recurrences")?;
        sink.suppressed_total = dec.u64("alert.suppressed_total")?;
        sink.resolved_total = dec.u64("alert.resolved_total")?;
        dec.finish("alert-sink")?;
        Ok(sink)
    }
}
