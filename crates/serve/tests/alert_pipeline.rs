//! End-to-end checks for the alert pipeline: distinct faults produce
//! distinct alert streams, recurrences of the same root cause fold into
//! one alert, a checkpointless restart reproduces the stream byte for
//! byte, and the signature reducer is canonical under random atoms.

use anomaly_characterization::pipeline::MonitorBuilder;
use anomaly_core::{AnomalyClass, Params};
use anomaly_detectors::{ThresholdDetector, VectorDetector};
use anomaly_network::{FaultTarget, Incident, IncidentSchedule, NetworkConfig, NetworkSimulation};
use anomaly_serve::{
    actions_to_json, AlertConfig, AlertSink, KeyMap, ServeLoop, Signature, SignatureAtoms,
    TopologySpread,
};

/// Counters plus the serialized action stream from one daemon run.
struct Outcome {
    alerts_created: u64,
    recurrences: u64,
    resolved: u64,
    roots: Vec<u32>,
    max_occurrences: u64,
    stream: String,
}

/// Drives the daemon over a timeline with two distinct DSLAM outages and
/// a re-fault of the first: d0 at epoch 4, d1 at epoch 9 (after d0's
/// repair, so the recovery and the new outage stay separate events), and
/// d0 again at epoch 16.
fn run_two_fault_scenario(seed: u64) -> Outcome {
    let mut net =
        NetworkSimulation::new(NetworkConfig::small(seed)).expect("small topology is valid");
    let dslams = net.topology().dslams().to_vec();
    let mut timeline = IncidentSchedule::new(vec![
        Incident {
            starts_at: 4,
            duration: Some(4),
            fault: FaultTarget::Node {
                node: dslams[0],
                severity: 0.6,
            },
        },
        Incident {
            starts_at: 9,
            duration: Some(4),
            fault: FaultTarget::Node {
                node: dslams[1],
                severity: 0.6,
            },
        },
        Incident {
            starts_at: 16,
            duration: Some(3),
            fault: FaultTarget::Node {
                node: dslams[0],
                severity: 0.6,
            },
        },
    ]);
    let services = net.services().len();
    let keys: Vec<u64> = net
        .topology()
        .gateways()
        .iter()
        .map(|g| u64::from(g.0))
        .collect();
    let monitor = MonitorBuilder::new()
        .params(Params::new(0.02, 3).expect("valid params"))
        .services(services)
        .debounce(1)
        .history(64)
        .detector_factory(move |_| {
            Box::new(VectorDetector::homogeneous(services, || {
                ThresholdDetector::with_delta(0.1)
            }))
        })
        .devices(keys)
        .build()
        .expect("monitor builds");
    let sink = AlertSink::new(
        net.topology().clone(),
        KeyMap::NodeIds,
        AlertConfig::default(),
    );
    let mut serve = ServeLoop::new(monitor, sink, 1);
    let mut actions = Vec::new();
    for _ in 0..24 {
        timeline.advance(&mut net);
        for update in net.measure_stream() {
            serve.ingest(update.key, update.qos).expect("known key");
        }
        if let Some((_, mut fired)) = serve.round().expect("seal succeeds") {
            actions.append(&mut fired);
        }
    }
    actions.extend(serve.shutdown());
    let sink = serve.sink();
    Outcome {
        alerts_created: sink.alerts_created(),
        recurrences: sink.recurrences(),
        resolved: sink.resolved(),
        roots: sink.alerts().filter_map(|a| a.root).map(|n| n.0).collect(),
        max_occurrences: sink.alerts().map(|a| a.occurrences).max().unwrap_or(0),
        stream: actions_to_json(&actions),
    }
}

#[test]
fn distinct_faults_distinct_alerts_and_refault_dedups() {
    let out = run_two_fault_scenario(7);
    assert_eq!(
        out.alerts_created, 2,
        "two distinct DSLAM root causes must open exactly two alerts"
    );
    assert_eq!(out.roots.len(), 2);
    assert_ne!(out.roots[0], out.roots[1], "alerts carry distinct roots");
    assert!(
        out.max_occurrences >= 2,
        "the d0 re-fault must fold into the existing d0 alert"
    );
    assert!(
        out.recurrences >= 2,
        "re-fault plus repair recoveries arrive as recurrences, not new pages"
    );
    assert!(
        out.resolved >= out.alerts_created,
        "every alert eventually resolves (shutdown drains the rest)"
    );
}

/// The spatial-split acceptance case: two DSLAMs fault on the *same*
/// epoch. The dense motions are spatially disjoint, so characterization
/// partitions them into two components, the tracker opens two
/// `AnomalyEvent`s with distinct component ids, and the sink pages two
/// alerts whose canonical signatures differ — two outages, two pages,
/// never one merged blur.
#[test]
fn simultaneous_disjoint_outages_split_events_and_signatures() {
    let mut net = NetworkSimulation::new(NetworkConfig::small(7)).expect("small topology is valid");
    let dslams = net.topology().dslams().to_vec();
    // Distinct severities: two independent faults degrade by different
    // amounts, so the subtrees move to different QoS cells. Identical
    // trajectories would pool into one τ-dense motion (components live in
    // trajectory space, not topology space).
    let mut timeline = IncidentSchedule::new(
        [(dslams[0], 0.4), (dslams[1], 0.8)]
            .iter()
            .map(|&(node, severity)| Incident {
                starts_at: 4,
                duration: Some(4),
                fault: FaultTarget::Node { node, severity },
            })
            .collect(),
    );
    let services = net.services().len();
    let keys: Vec<u64> = net
        .topology()
        .gateways()
        .iter()
        .map(|g| u64::from(g.0))
        .collect();
    let monitor = MonitorBuilder::new()
        .params(Params::new(0.02, 3).expect("valid params"))
        .services(services)
        .debounce(1)
        .history(64)
        .detector_factory(move |_| {
            Box::new(VectorDetector::homogeneous(services, || {
                ThresholdDetector::with_delta(0.1)
            }))
        })
        .devices(keys)
        .build()
        .expect("monitor builds");
    let sink = AlertSink::new(
        net.topology().clone(),
        KeyMap::NodeIds,
        AlertConfig::default(),
    );
    let mut serve = ServeLoop::new(monitor, sink, 1);
    // (event id, component) pairs of epochs where two massive events were
    // simultaneously open.
    let mut coincident_splits: Vec<Vec<(u64, Option<u32>)>> = Vec::new();
    for _ in 0..16 {
        timeline.advance(&mut net);
        for update in net.measure_stream() {
            serve.ingest(update.key, update.qos).expect("known key");
        }
        serve.round().expect("seal succeeds");
        let massive_open: Vec<(u64, Option<u32>)> = serve
            .monitor()
            .events()
            .open()
            .iter()
            .filter(|e| e.class == AnomalyClass::Massive)
            .map(|e| (e.id.0, e.component))
            .collect();
        if massive_open.len() >= 2 {
            coincident_splits.push(massive_open);
        }
    }
    serve.shutdown();

    // Two simultaneous spatially-disjoint outages: two events open at
    // once, each with its own spatial component.
    assert!(
        !coincident_splits.is_empty(),
        "both outages must be open as events at the same time"
    );
    for open in &coincident_splits {
        assert_eq!(open.len(), 2, "exactly two massive events: {open:?}");
        assert!(
            open.iter().all(|&(_, c)| c.is_some()),
            "both events carry a spatial component: {open:?}"
        );
        assert_ne!(
            open[0].1, open[1].1,
            "disjoint outages occupy distinct components: {open:?}"
        );
    }

    // ...and two alerts with distinct roots and distinct canonical
    // signatures — the pager sees two incidents, not one.
    let sink = serve.sink();
    assert_eq!(sink.alerts_created(), 2, "one alert per outage");
    let roots: Vec<Option<u32>> = sink.alerts().map(|a| a.root.map(|n| n.0)).collect();
    assert_eq!(roots.len(), 2);
    assert_ne!(roots[0], roots[1], "alerts carry distinct roots: {roots:?}");
    let signatures: Vec<Signature> = sink.alerts().filter_map(|a| a.signature).collect();
    assert_eq!(signatures.len(), 2, "both lifecycles closed and signed");
    assert_ne!(
        signatures[0], signatures[1],
        "component-scoped signatures keep simultaneous outages distinct"
    );
    assert_eq!(sink.distinct_signatures(), 2);
}

#[test]
fn checkpointless_restart_reproduces_alert_stream() {
    let first = run_two_fault_scenario(7);
    let second = run_two_fault_scenario(7);
    assert_eq!(
        first.stream, second.stream,
        "same inputs must yield a byte-identical action stream"
    );
}

fn class_of(raw: u64) -> AnomalyClass {
    match raw % 3 {
        0 => AnomalyClass::Unresolved,
        1 => AnomalyClass::Isolated,
        _ => AnomalyClass::Massive,
    }
}

fn spread_of(raw: u64) -> TopologySpread {
    match raw % 4 {
        0 => TopologySpread::Gateway,
        1 => TopologySpread::Dslam,
        2 => TopologySpread::Aggregation,
        _ => TopologySpread::Core,
    }
}

proptest::proptest! {
    /// The reducer is a function of the canonical form only: reducing
    /// twice gives the same ID, normalizing first changes nothing, and
    /// normalization itself is idempotent.
    #[test]
    fn signature_reduction_is_canonical(
        onset in 0u64..3,
        peak in 0u64..3,
        spread in 0u64..4,
        duration in 0u64..1_000,
        devices in 0usize..10_000,
        straggler in 0u64..2,
        // 0 encodes an absent root; r maps to node id r - 1.
        root in 0u64..257,
    ) {
        let root = root.checked_sub(1).map(|r| r as u32);
        let atoms = SignatureAtoms {
            onset_class: class_of(onset),
            peak_class: class_of(peak),
            spread: spread_of(spread),
            duration_epochs: duration,
            affected_devices: devices,
            straggler_overlap: straggler == 1,
            component_root: root,
        };

        let id = atoms.reduce();
        proptest::prop_assert_eq!(id, atoms.reduce());
        proptest::prop_assert_eq!(id, atoms.normal_form().reduce());
        proptest::prop_assert_eq!(atoms.normal_form(), atoms.normal_form().normal_form());
        // The version field occupies the packed word's high half, so a
        // v1 ID is never the mix of an unversioned word.
        proptest::prop_assert_ne!(id, Signature(0));
    }
}
