//! Durable-restart checks for the serve daemon: a mid-run
//! checkpoint/kill/restore cycle continues the alert action stream
//! byte-identically, restores reject mismatched sink tuning with the
//! disagreeing knob named, and corrupt or incomplete payloads fail typed
//! instead of panicking.

use anomaly_characterization::pipeline::{MonitorBuilder, MonitorError};
use anomaly_core::Params;
use anomaly_detectors::{ThresholdDetector, VectorDetector};
use anomaly_network::{FaultTarget, Incident, IncidentSchedule, NetworkConfig, NetworkSimulation};
use anomaly_serve::{actions_to_json, AlertAction, AlertConfig, AlertSink, KeyMap, ServeLoop};

const TICKS: u64 = 24;

fn network(seed: u64) -> (NetworkSimulation, IncidentSchedule) {
    let net = NetworkSimulation::new(NetworkConfig::small(seed)).expect("small topology is valid");
    let dslams = net.topology().dslams().to_vec();
    let timeline = IncidentSchedule::new(vec![
        Incident {
            starts_at: 4,
            duration: Some(4),
            fault: FaultTarget::Node {
                node: dslams[0],
                severity: 0.6,
            },
        },
        Incident {
            starts_at: 9,
            duration: Some(4),
            fault: FaultTarget::Node {
                node: dslams[1],
                severity: 0.6,
            },
        },
        Incident {
            starts_at: 16,
            duration: Some(3),
            fault: FaultTarget::Node {
                node: dslams[0],
                severity: 0.6,
            },
        },
    ]);
    (net, timeline)
}

/// The shared monitor configuration; the restore side must pass the same
/// builder *without* initial devices.
fn builder(services: usize) -> MonitorBuilder {
    MonitorBuilder::new()
        .params(Params::new(0.02, 3).expect("valid params"))
        .services(services)
        .debounce(1)
        .history(64)
        .detector_factory(move |_| {
            Box::new(VectorDetector::homogeneous(services, || {
                ThresholdDetector::with_delta(0.1)
            }))
        })
}

fn config() -> AlertConfig {
    AlertConfig {
        dedup_window: 16,
        bucket_capacity: 2,
        refill_millitokens: 250,
    }
}

fn fresh_loop(net: &NetworkSimulation) -> ServeLoop {
    let services = net.services().len();
    let keys: Vec<u64> = net
        .topology()
        .gateways()
        .iter()
        .map(|g| u64::from(g.0))
        .collect();
    let monitor = builder(services)
        .devices(keys)
        .build()
        .expect("monitor builds");
    let sink = AlertSink::new(net.topology().clone(), KeyMap::NodeIds, config());
    ServeLoop::new(monitor, sink, 1)
}

fn drive(
    serve: &mut ServeLoop,
    net: &mut NetworkSimulation,
    timeline: &mut IncidentSchedule,
    ticks: u64,
    actions: &mut Vec<AlertAction>,
) {
    for _ in 0..ticks {
        timeline.advance(net);
        for update in net.measure_stream() {
            serve.ingest(update.key, update.qos).expect("known key");
        }
        if let Some((_, mut fired)) = serve.round().expect("seal succeeds") {
            actions.append(&mut fired);
        }
    }
}

/// One uninterrupted run: the reference stream.
fn uninterrupted(seed: u64) -> Vec<AlertAction> {
    let (mut net, mut timeline) = network(seed);
    let mut serve = fresh_loop(&net);
    let mut actions = Vec::new();
    drive(&mut serve, &mut net, &mut timeline, TICKS, &mut actions);
    actions.extend(serve.shutdown());
    actions
}

/// The same run killed at `cut` and restored from its checkpoint log.
fn restarted(seed: u64, cut: u64) -> Vec<AlertAction> {
    let (mut net, mut timeline) = network(seed);
    let mut serve = fresh_loop(&net);
    let mut actions = Vec::new();
    drive(&mut serve, &mut net, &mut timeline, cut, &mut actions);
    let mut log = Vec::new();
    let written = serve.checkpoint(&mut log).expect("checkpoint writes");
    assert_eq!(written, log.len() as u64, "byte count matches the sink");
    drop(serve);
    let services = net.services().len();
    let mut serve = ServeLoop::restore(
        &log,
        builder(services),
        net.topology().clone(),
        KeyMap::NodeIds,
        config(),
    )
    .expect("restore succeeds");
    drive(
        &mut serve,
        &mut net,
        &mut timeline,
        TICKS - cut,
        &mut actions,
    );
    actions.extend(serve.shutdown());
    actions
}

#[test]
fn kill_and_restore_continues_the_action_stream_byte_identically() {
    let reference = actions_to_json(&uninterrupted(7));
    // Cuts landing before, inside, and after the incident windows — the
    // mid-incident cuts restore open alerts, partial lifecycles, and a
    // partially drained token bucket.
    for cut in [3, 6, 11, 17, 21] {
        assert_eq!(
            reference,
            actions_to_json(&restarted(7, cut)),
            "restore at tick {cut} must continue the stream byte-for-byte"
        );
    }
}

#[test]
fn restore_rejects_mismatched_sink_tuning_naming_the_knob() {
    let (mut net, mut timeline) = network(7);
    let mut serve = fresh_loop(&net);
    let mut actions = Vec::new();
    drive(&mut serve, &mut net, &mut timeline, 11, &mut actions);
    let mut log = Vec::new();
    serve.checkpoint(&mut log).expect("checkpoint writes");
    let services = net.services().len();
    let cases: Vec<(&str, AlertConfig, KeyMap)> = vec![
        (
            "alert.dedup_window",
            AlertConfig {
                dedup_window: 8,
                ..config()
            },
            KeyMap::NodeIds,
        ),
        (
            "alert.bucket_capacity",
            AlertConfig {
                bucket_capacity: 4,
                ..config()
            },
            KeyMap::NodeIds,
        ),
        (
            "alert.refill_millitokens",
            AlertConfig {
                refill_millitokens: 1000,
                ..config()
            },
            KeyMap::NodeIds,
        ),
        ("alert.keymap", config(), KeyMap::GatewayIndex),
    ];
    for (field, bad_config, keymap) in cases {
        let err = ServeLoop::restore(
            &log,
            builder(services),
            net.topology().clone(),
            keymap,
            bad_config,
        )
        .expect_err("mismatched tuning must fail");
        assert_eq!(
            err,
            MonitorError::CheckpointMismatch { field },
            "restore must name the disagreeing knob"
        );
    }
}

#[test]
fn logs_without_a_serve_aux_record_fail_typed() {
    let (mut net, mut timeline) = network(7);
    let mut serve = fresh_loop(&net);
    let mut actions = Vec::new();
    drive(&mut serve, &mut net, &mut timeline, 8, &mut actions);
    // A bare monitor checkpoint: restorable as a monitor, but it carries
    // no serve-loop side state.
    let mut log = Vec::new();
    serve.monitor().checkpoint(&mut log).expect("checkpoint");
    let services = net.services().len();
    let err = ServeLoop::restore(
        &log,
        builder(services),
        net.topology().clone(),
        KeyMap::NodeIds,
        config(),
    )
    .expect_err("a monitor-only log is not a serve checkpoint");
    assert!(matches!(err, MonitorError::Persist { .. }));
    assert!(err.to_string().contains("aux"), "{err}");
}

#[test]
fn corrupted_or_truncated_sink_payloads_fail_typed_never_panic() {
    let (mut net, mut timeline) = network(7);
    let mut serve = fresh_loop(&net);
    let mut actions = Vec::new();
    drive(&mut serve, &mut net, &mut timeline, 11, &mut actions);
    let payload = serve.sink().save();
    // Sanity: the pristine payload loads, and the clone's observable
    // state matches the original.
    let loaded = AlertSink::load(net.topology().clone(), KeyMap::NodeIds, config(), &payload)
        .expect("pristine payload loads");
    assert_eq!(loaded.alerts_json(), serve.sink().alerts_json());
    assert_eq!(loaded.alerts_created(), serve.sink().alerts_created());
    assert_eq!(loaded.suppressed(), serve.sink().suppressed());
    assert_eq!(
        loaded.bucket_level_millitokens(),
        serve.sink().bucket_level_millitokens()
    );
    assert_eq!(
        loaded.distinct_signatures(),
        serve.sink().distinct_signatures()
    );
    // Every truncation fails typed.
    for len in 0..payload.len() {
        let err = AlertSink::load(
            net.topology().clone(),
            KeyMap::NodeIds,
            config(),
            &payload[..len],
        )
        .expect_err("truncated payloads must fail");
        match err {
            MonitorError::Persist { .. } | MonitorError::CheckpointMismatch { .. } => {}
            other => panic!("unexpected error variant: {other:?}"),
        }
    }
    // Flipping any single byte either fails typed or decodes to *some*
    // sink — it must never panic. (Some flips only touch counters, which
    // decode fine; the framing checksum upstream catches those in a real
    // log. Here we exercise the raw payload decoder.)
    for i in 0..payload.len() {
        let mut bent = payload.clone();
        bent[i] ^= 0x55;
        let _ = AlertSink::load(net.topology().clone(), KeyMap::NodeIds, config(), &bent);
    }
}
