//! Adversarial devices — the paper's future work (Section VIII), built.
//!
//! *"As future work, we plan to extend our characterization to take into
//! account malicious devices. In particular, we will study the presence of
//! collusion of malicious devices whose aim would be to prevent an impacted
//! device to be detected by the monitoring application."*
//!
//! The attack: a victim device is hit by an **isolated** error (it should
//! call the operator). A coalition of `c` malicious devices fabricates
//! trajectories that shadow the victim's motion, so the victim appears to
//! belong to a τ-dense motion and self-classifies as **massive** — silently
//! swallowing its report. [`run_attack`] mounts the attack and
//! [`AttackReport`] measures when it succeeds, quantifying how large a
//! coalition must be and how the density threshold `τ` trades robustness
//! against sensitivity.

use crate::config::{ScenarioConfig, SimulationError};
use crate::generator::Simulation;
use anomaly_core::{Analyzer, AnomalyClass, TrajectoryTable};
use anomaly_qos::{DeviceId, Point, StatePair};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Outcome of one collusion attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttackReport {
    /// The targeted (honest, isolated-error) device.
    pub victim: DeviceId,
    /// Coalition size used.
    pub coalition: usize,
    /// The victim's verdict *without* the coalition.
    pub verdict_clean: AnomalyClass,
    /// The victim's verdict *with* the fabricated trajectories.
    pub verdict_attacked: AnomalyClass,
}

impl AttackReport {
    /// True when the coalition flipped an isolated verdict away from
    /// isolated (the report was suppressed).
    pub fn suppressed(&self) -> bool {
        self.verdict_clean == AnomalyClass::Isolated
            && self.verdict_attacked != AnomalyClass::Isolated
    }
}

/// Mounts a shadowing attack on a simulated step.
///
/// Runs one simulation step, picks as victim a device hit by a
/// **singleton** isolated error (a lone victim, so the attack cost is the
/// coalition's alone — a victim with event co-members needs
/// correspondingly fewer shadows), and appends `coalition` fabricated
/// devices whose trajectories sit within `jitter ≤ r/2` of the victim's at
/// both times. Returns `None` when the step produced no such victim.
///
/// # Errors
///
/// Propagates configuration validation failures.
pub fn run_attack(
    config: &ScenarioConfig,
    coalition: usize,
    seed: u64,
) -> Result<Option<AttackReport>, SimulationError> {
    let mut sim = Simulation::new(config.clone())?;
    let outcome = sim.step();
    let Some(victim) = outcome
        .truth
        .events()
        .iter()
        .find(|e| e.impacted.len() == 1)
        .and_then(|e| e.impacted.iter().next())
    else {
        return Ok(None);
    };
    let abnormal: Vec<DeviceId> = outcome.abnormal().iter().collect();
    Ok(Some(attack_on_pair(
        &outcome.pair,
        &abnormal,
        victim,
        coalition,
        config,
        seed,
    )))
}

/// The attack core, exposed for tests and sweeps: fabricates `coalition`
/// shadow trajectories around `victim` and re-characterizes.
pub fn attack_on_pair(
    pair: &StatePair,
    abnormal: &[DeviceId],
    victim: DeviceId,
    coalition: usize,
    config: &ScenarioConfig,
    seed: u64,
) -> AttackReport {
    let params = config.params;
    let clean_table = TrajectoryTable::from_state_pair(pair, abnormal);
    let clean = Analyzer::new(&clean_table, params)
        .characterize_full(victim)
        .class();

    // Fabricated devices get ids above the honest population.
    let mut rng = StdRng::seed_from_u64(seed);
    let jitter = params.radius() / 2.0;
    let before_v = pair.before().position(victim).clone();
    let after_v = pair.after().position(victim).clone();
    let mut rows: Vec<(DeviceId, Vec<f64>)> = abnormal
        .iter()
        .map(|&id| {
            let mut v = pair.before().position(id).coords().to_vec();
            v.extend_from_slice(pair.after().position(id).coords());
            (id, v)
        })
        .collect();
    let base_id = pair.len() as u32;
    for i in 0..coalition {
        let shadow = |p: &Point, rng: &mut StdRng| -> Vec<f64> {
            p.coords()
                .iter()
                .map(|c| (c + rng.gen_range(-jitter..=jitter)).clamp(0.0, 1.0))
                .collect()
        };
        let mut row = shadow(&before_v, &mut rng);
        row.extend(shadow(&after_v, &mut rng));
        rows.push((DeviceId(base_id + i as u32), row));
    }
    let attacked_table = TrajectoryTable::from_concatenated(pair.dim(), rows);
    let attacked = Analyzer::new(&attacked_table, params)
        .characterize_full(victim)
        .class();

    AttackReport {
        victim,
        coalition,
        verdict_clean: clean,
        verdict_attacked: attacked,
    }
}

/// Minimum coalition size that suppresses the victim's report, swept from 0
/// to `max_coalition`; `None` when even the largest coalition fails (or no
/// isolated victim arose).
///
/// # Errors
///
/// Propagates configuration validation failures.
pub fn minimum_winning_coalition(
    config: &ScenarioConfig,
    max_coalition: usize,
    seed: u64,
) -> Result<Option<usize>, SimulationError> {
    for c in 0..=max_coalition {
        match run_attack(config, c, seed)? {
            Some(report) if report.suppressed() => return Ok(Some(c)),
            Some(_) => continue,
            None => return Ok(None),
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(seed: u64) -> ScenarioConfig {
        let mut c = ScenarioConfig::paper_defaults(seed);
        c.n = 400;
        c.errors_per_step = 6;
        c.isolated_prob = 0.9; // make isolated victims plentiful
                               // Uniform destinations: the victim lands in empty space, so the
                               // flip (if any) is the coalition's doing alone.
        c.destination = crate::DestinationModel::Uniform;
        c
    }

    #[test]
    fn no_coalition_means_no_suppression() {
        let report = run_attack(&config(1), 0, 99)
            .unwrap()
            .expect("victim exists");
        assert_eq!(report.verdict_clean, report.verdict_attacked);
        assert!(!report.suppressed());
    }

    #[test]
    fn tau_shadows_flip_the_victim() {
        // τ = 3: a coalition of τ devices makes the victim's motion have
        // τ + 1 members — a dense motion — so the isolated verdict flips.
        let cfg = config(2);
        let tau = cfg.params.tau();
        let report = run_attack(&cfg, tau, 7).unwrap().expect("victim exists");
        assert_eq!(report.verdict_clean, AnomalyClass::Isolated);
        assert!(
            report.suppressed(),
            "a τ-strong coalition must suppress the report: {report:?}"
        );
    }

    #[test]
    fn minimum_coalition_is_tau() {
        // Fewer than τ shadows leave every motion sparse (victim + c ≤ τ);
        // exactly τ is the tipping point. Whether a step yields a singleton
        // isolated victim depends on the scenario seed, so scan a few.
        let min = (3..35)
            .find_map(|s| minimum_winning_coalition(&config(s), 6, 11).unwrap())
            .expect("some seed yields an isolated victim");
        assert_eq!(min, config(3).params.tau());
    }

    #[test]
    fn larger_tau_needs_larger_coalitions() {
        let mut cfg = config(4);
        let min3 = minimum_winning_coalition(&cfg, 10, 13).unwrap().unwrap();
        cfg.params = anomaly_core::Params::new(0.03, 6).unwrap();
        let min6 = minimum_winning_coalition(&cfg, 10, 13).unwrap().unwrap();
        assert!(
            min6 > min3,
            "raising tau must raise the attack cost ({min3} -> {min6})"
        );
    }

    #[test]
    fn attack_is_deterministic() {
        let a = run_attack(&config(5), 3, 21).unwrap();
        let b = run_attack(&config(5), 3, 21).unwrap();
        assert_eq!(a, b);
    }
}
