use anomaly_core::{Params, ParamsError};
use std::error::Error;
use std::fmt;

/// Where impacted groups are displaced to.
///
/// The paper says groups move "to another location uniformly chosen in E".
/// With fully uniform destinations, two anomalies almost never land within
/// `2r` of each other, so the motion superpositions behind the paper's
/// unresolved-configuration counts (Table II: 8.72%) cannot arise at the
/// reported rate. [`DestinationModel::Degradation`] biases destinations
/// toward the low-QoS corner — faults degrade service, they do not teleport
/// it to random quality levels — which recreates the superposition regime;
/// see EXPERIMENTS.md for the calibration discussion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DestinationModel {
    /// Destinations uniform over the whole space (the paper's literal text).
    Uniform,
    /// Destinations concentrated in `[0, scale]^d` with density increasing
    /// toward 0 (cubic bias): degraded QoS clusters near the bottom.
    Degradation {
        /// Upper edge of the degraded region, in `(0, 1]`.
        scale: f64,
    },
}

/// Parameters of one simulated scenario (Section VII-A of the paper).
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioConfig {
    /// Population size `n`.
    pub n: usize,
    /// Number of services `d` (the QoS space dimension).
    pub dim: usize,
    /// Number of errors `A` generated between two snapshots.
    pub errors_per_step: usize,
    /// Probability `G` that an error is isolated (impacts `≤ τ` devices).
    pub isolated_prob: f64,
    /// Characterization parameters `r` and `τ`.
    pub params: Params,
    /// Destination model for displaced groups.
    pub destination: DestinationModel,
    /// When true, isolated errors re-draw their destination if they would
    /// coincidentally land inside a dense motion of other impacted devices —
    /// i.e. the generator *enforces* restriction R3. Figures 8 and 9 study
    /// the `false` setting.
    pub enforce_r3: bool,
    /// RNG seed (runs are deterministic given the config).
    pub seed: u64,
}

/// Errors raised when building a simulation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimulationError {
    /// Fewer than two devices, or fewer devices than `τ + 2`.
    PopulationTooSmall {
        /// Configured population.
        n: usize,
    },
    /// `G` outside `[0,1]`.
    InvalidProbability {
        /// Offending value.
        value: f64,
    },
    /// Zero dimension.
    ZeroDimension,
    /// Invalid `r`/`τ`.
    Params(ParamsError),
}

impl fmt::Display for SimulationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimulationError::PopulationTooSmall { n } => {
                write!(f, "population {n} is too small to simulate anomalies")
            }
            SimulationError::InvalidProbability { value } => {
                write!(f, "isolated-error probability {value} is not in [0,1]")
            }
            SimulationError::ZeroDimension => write!(f, "QoS space dimension must be positive"),
            SimulationError::Params(e) => write!(f, "invalid characterization parameters: {e}"),
        }
    }
}

impl Error for SimulationError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimulationError::Params(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParamsError> for SimulationError {
    fn from(e: ParamsError) -> Self {
        SimulationError::Params(e)
    }
}

impl ScenarioConfig {
    /// The paper's operating point: `n = 1000`, `d = 2`, `A = 20`,
    /// `r = 0.03`, `τ = 3`, mostly-massive errors (`G = 0.05`), R3 enforced.
    pub fn paper_defaults(seed: u64) -> Self {
        ScenarioConfig {
            n: 1000,
            dim: 2,
            errors_per_step: 20,
            isolated_prob: 0.08,
            params: Params::new(0.03, 3)
                .unwrap_or_else(|_| unreachable!("paper parameters are valid")),
            destination: DestinationModel::Degradation { scale: 0.20 },
            enforce_r3: true,
            seed,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// See [`SimulationError`].
    pub fn validate(&self) -> Result<(), SimulationError> {
        if self.dim == 0 {
            return Err(SimulationError::ZeroDimension);
        }
        if self.n < self.params.tau() + 2 {
            return Err(SimulationError::PopulationTooSmall { n: self.n });
        }
        if !self.isolated_prob.is_finite() || !(0.0..=1.0).contains(&self.isolated_prob) {
            return Err(SimulationError::InvalidProbability {
                value: self.isolated_prob,
            });
        }
        if let DestinationModel::Degradation { scale } = self.destination {
            if !scale.is_finite() || !(0.0..=1.0).contains(&scale) || scale == 0.0 {
                return Err(SimulationError::InvalidProbability { value: scale });
            }
        }
        Ok(())
    }

    /// Returns a copy with a different error count `A` (sweep helper).
    pub fn with_errors_per_step(&self, a: usize) -> Self {
        ScenarioConfig {
            errors_per_step: a,
            ..self.clone()
        }
    }

    /// Returns a copy with a different isolated probability `G`.
    pub fn with_isolated_prob(&self, g: f64) -> Self {
        ScenarioConfig {
            isolated_prob: g,
            ..self.clone()
        }
    }

    /// Returns a copy with R3 enforcement toggled.
    pub fn with_enforce_r3(&self, enforce: bool) -> Self {
        ScenarioConfig {
            enforce_r3: enforce,
            ..self.clone()
        }
    }

    /// Returns a copy with a different seed.
    pub fn with_seed(&self, seed: u64) -> Self {
        ScenarioConfig {
            seed,
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_validate() {
        assert!(ScenarioConfig::paper_defaults(1).validate().is_ok());
    }

    #[test]
    fn rejects_tiny_population() {
        let mut c = ScenarioConfig::paper_defaults(1);
        c.n = 3;
        assert!(matches!(
            c.validate(),
            Err(SimulationError::PopulationTooSmall { .. })
        ));
    }

    #[test]
    fn rejects_bad_probability() {
        let mut c = ScenarioConfig::paper_defaults(1);
        c.isolated_prob = 1.5;
        assert!(matches!(
            c.validate(),
            Err(SimulationError::InvalidProbability { .. })
        ));
    }

    #[test]
    fn rejects_zero_dimension() {
        let mut c = ScenarioConfig::paper_defaults(1);
        c.dim = 0;
        assert_eq!(c.validate(), Err(SimulationError::ZeroDimension));
    }

    #[test]
    fn builder_helpers_change_one_field() {
        let c = ScenarioConfig::paper_defaults(1);
        assert_eq!(c.with_errors_per_step(40).errors_per_step, 40);
        assert_eq!(c.with_isolated_prob(0.7).isolated_prob, 0.7);
        assert!(!c.with_enforce_r3(false).enforce_r3);
        assert_eq!(c.with_seed(9).seed, 9);
    }

    #[test]
    fn error_display_and_source() {
        use std::error::Error;
        let e = SimulationError::Params(anomaly_core::Params::new(0.9, 1).unwrap_err());
        assert!(e.to_string().contains("invalid"));
        assert!(e.source().is_some());
        assert!(SimulationError::ZeroDimension.source().is_none());
    }
}
