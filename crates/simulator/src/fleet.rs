//! Large-fleet snapshot generator for engine benchmarking.
//!
//! [`Simulation`](crate::Simulation) reproduces the paper's Section VII-A
//! protocol faithfully — per-event group construction, restriction
//! enforcement, repairs — which is exactly right for accuracy studies and
//! exactly wrong for load generation: its bookkeeping drowns out the system
//! under test at 100k+ devices. [`FleetSpec`] trades protocol fidelity for
//! volume: a calm, jittering population seeded i.i.d. uniformly, plus a
//! configurable anomaly mix of co-moving clusters (massive events) and lone
//! jumpers (isolated events), emitted as chained snapshots ready to feed
//! `Monitor::observe` (`anomaly-characterization`) unmodified.
//!
//! Runs are deterministic for a given spec (seeded RNG), so engine
//! configurations can be compared on byte-identical inputs.

use crate::config::SimulationError;
use crate::ground_truth::{ErrorEvent, GroundTruth};
use anomaly_qos::{DeviceId, QosSpace, Snapshot};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shape of a benchmark fleet and its per-instant anomaly mix.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSpec {
    /// Population size `n` (the point of this generator is `n ≥ 100_000`).
    pub devices: usize,
    /// Services per device (QoS space dimension `d`).
    pub services: usize,
    /// Co-moving clusters injected per instant (each one massive when
    /// `cluster_size > τ`).
    pub massive_clusters: usize,
    /// Devices per cluster.
    pub cluster_size: usize,
    /// Lone jumpers injected per instant (isolated events).
    pub isolated: usize,
    /// Maximum pairwise spread of a cluster at both instants; keep it at or
    /// below the monitor's `2r` window so clusters register as consistent
    /// motions (hence massive anomalies when `cluster_size > τ`).
    pub cohesion: f64,
    /// Fraction of calm devices whose reading changes at all between two
    /// instants. Deployed QoS metrics are quantized and mostly stable
    /// sample-to-sample, so most healthy devices report the exact same
    /// position; `1.0` makes the whole fleet jitter every instant (the
    /// worst case for incremental index maintenance).
    pub calm_activity: f64,
    /// Peak-to-peak amplitude of the calm population's per-instant jitter;
    /// keep it below the detector's flag threshold.
    pub jitter: f64,
    /// Minimum jump magnitude of anomalous devices; keep it above the
    /// detector's flag threshold.
    pub shift: f64,
    /// RNG seed.
    pub seed: u64,
}

impl FleetSpec {
    /// A 100k-device, 2-service fleet with a mixed anomaly load — the
    /// configuration behind `BENCH_engine.json`.
    pub fn large(seed: u64) -> Self {
        FleetSpec {
            devices: 100_000,
            services: 2,
            massive_clusters: 10,
            cluster_size: 12,
            isolated: 60,
            cohesion: 0.05,
            calm_activity: 0.1,
            jitter: 0.02,
            shift: 0.3,
            seed,
        }
    }

    /// Upper bound on devices flagged per instant under this mix (clusters
    /// may come up short when the population is too sparse to supply
    /// `cluster_size` co-located devices).
    pub fn flagged_per_instant(&self) -> usize {
        self.massive_clusters * self.cluster_size + self.isolated
    }

    /// Checks the mix fits the population and the magnitudes make sense.
    ///
    /// # Errors
    ///
    /// [`SimulationError::PopulationTooSmall`] when the anomaly mix needs
    /// more devices than the fleet has, [`SimulationError::ZeroDimension`]
    /// for zero services, [`SimulationError::InvalidProbability`] for
    /// non-finite or negative `jitter`/`shift`.
    pub fn validate(&self) -> Result<(), SimulationError> {
        if self.services == 0 {
            return Err(SimulationError::ZeroDimension);
        }
        if self.devices < self.flagged_per_instant().max(2) {
            return Err(SimulationError::PopulationTooSmall { n: self.devices });
        }
        for magnitude in [self.jitter, self.shift, self.cohesion, self.calm_activity] {
            if !magnitude.is_finite() || !(0.0..=1.0).contains(&magnitude) {
                return Err(SimulationError::InvalidProbability { value: magnitude });
            }
        }
        Ok(())
    }
}

/// One simulated instant: the snapshot to feed the monitor, plus the ground
/// truth of which devices were made anomalous while producing it.
#[derive(Debug, Clone)]
pub struct FleetInstant {
    /// Positions of every device at this instant.
    pub snapshot: Snapshot,
    /// Devices that jumped (cluster members and lone jumpers), sorted by
    /// id. Empty for the initial placement.
    pub flagged: Vec<DeviceId>,
    /// The real scenario of the interval ending at this instant: one event
    /// per injected cluster (intended massive) and per lone jumper
    /// (intended isolated). Empty for the initial placement.
    pub truth: GroundTruth,
}

/// Generates `steps + 1` chained snapshots: an initial calm placement, then
/// `steps` instants each carrying the spec's anomaly mix.
///
/// Consecutive instants share no allocation but describe one continuous
/// fleet history — feed them to a monitor in order. Calm devices take a
/// uniform jitter step of amplitude `jitter` (clamped to the unit cube);
/// each cluster picks a fresh co-located group and moves it coherently by
/// at least `shift`; lone jumpers move individually by at least `shift`.
/// Anomalous groups are disjoint within one instant.
///
/// # Errors
///
/// Propagates [`FleetSpec::validate`] failures.
pub fn generate_fleet(
    spec: &FleetSpec,
    steps: usize,
) -> Result<Vec<FleetInstant>, SimulationError> {
    spec.validate()?;
    let space = QosSpace::new(spec.services)
        .unwrap_or_else(|_| unreachable!("validate checked services >= 1"));
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let dim = spec.services;
    let n = spec.devices;

    let mut rows: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..dim).map(|_| rng.gen::<f64>()).collect())
        .collect();
    let mut out = Vec::with_capacity(steps + 1);
    out.push(FleetInstant {
        snapshot: Snapshot::from_rows(&space, rows.clone())
            .unwrap_or_else(|_| unreachable!("generated rows are in range")),
        flagged: Vec::new(),
        truth: GroundTruth::default(),
    });

    for _ in 0..steps {
        // Pick this instant's victims: per cluster, a spatially co-located
        // group (so the members form a consistent motion at k−1), plus lone
        // jumpers, all disjoint.
        let mut is_flagged = vec![false; n];
        let mut flagged: Vec<DeviceId> = Vec::with_capacity(spec.flagged_per_instant());
        let mut clusters: Vec<Vec<usize>> = Vec::with_capacity(spec.massive_clusters);
        for _ in 0..spec.massive_clusters {
            let members = pick_cluster(&mut rng, &rows, &mut is_flagged, spec);
            flagged.extend(members.iter().map(|&i| DeviceId(i as u32)));
            clusters.push(members);
        }
        let loners = pick_disjoint(&mut rng, &mut is_flagged, n, spec.isolated);
        flagged.extend(loners.iter().map(|&i| DeviceId(i as u32)));
        flagged.sort_unstable();
        // Ground truth mirrors the injection: clusters are intended-massive
        // events (effectively massive only when they found > τ co-located
        // members), loners are intended-isolated singletons. The disjoint
        // draws above guarantee restriction R1.
        let mut events: Vec<ErrorEvent> = clusters
            .iter()
            .filter(|members| !members.is_empty())
            .map(|members| ErrorEvent {
                impacted: members.iter().map(|&i| DeviceId(i as u32)).collect(),
                intended_isolated: false,
            })
            .collect();
        events.extend(loners.iter().map(|&i| ErrorEvent {
            impacted: std::iter::once(DeviceId(i as u32)).collect(),
            intended_isolated: true,
        }));
        let truth = GroundTruth::new(events);

        // Calm motion: a `calm_activity` fraction of the healthy fleet takes
        // a uniform jitter step (clamped to the cube); the rest report the
        // exact same reading, as quantized QoS metrics mostly do.
        for (i, row) in rows.iter_mut().enumerate() {
            if is_flagged[i] || !rng.gen_bool(spec.calm_activity) {
                continue;
            }
            for c in row.iter_mut() {
                *c = (*c + (rng.gen::<f64>() - 0.5) * spec.jitter).clamp(0.0, 1.0);
            }
        }
        // Each cluster co-moves: members land jittered around a common
        // destination, staying within `cohesion` of each other at arrival.
        let spread = spec.cohesion.min(spec.jitter) / 2.0;
        for members in &clusters {
            let dest: Vec<f64> = (0..dim).map(|_| rng.gen::<f64>()).collect();
            for &i in members {
                let target = shifted_from(&mut rng, &rows[i], &dest, spec.shift, spread);
                rows[i] = target;
            }
        }
        // Lone jumpers move individually.
        for &i in &loners {
            let dest: Vec<f64> = (0..dim).map(|_| rng.gen::<f64>()).collect();
            let target = shifted_from(&mut rng, &rows[i], &dest, spec.shift, 0.0);
            rows[i] = target;
        }
        out.push(FleetInstant {
            snapshot: Snapshot::from_rows(&space, rows.clone())
                .unwrap_or_else(|_| unreachable!("generated rows are in range")),
            flagged,
            truth,
        });
    }
    Ok(out)
}

/// Draws `count` not-yet-flagged device indices, marking them flagged.
fn pick_disjoint(rng: &mut StdRng, is_flagged: &mut [bool], n: usize, count: usize) -> Vec<usize> {
    let mut members = Vec::with_capacity(count);
    while members.len() < count {
        let i = rng.gen_range(0..n);
        if !is_flagged[i] {
            is_flagged[i] = true;
            members.push(i);
        }
    }
    members
}

/// Picks up to `cluster_size` unflagged devices within `cohesion/2` (L∞) of
/// a random seed device, marking them flagged. Tries a few seeds and keeps
/// the most populous neighbourhood, so sparse fleets yield smaller (but
/// still co-located) clusters rather than scattered ones.
fn pick_cluster(
    rng: &mut StdRng,
    rows: &[Vec<f64>],
    is_flagged: &mut [bool],
    spec: &FleetSpec,
) -> Vec<usize> {
    let radius = spec.cohesion / 2.0;
    let mut best: Vec<usize> = Vec::new();
    for _ in 0..8 {
        let seed = rng.gen_range(0..rows.len());
        if is_flagged[seed] {
            continue;
        }
        let center = &rows[seed];
        let mut members: Vec<usize> = Vec::with_capacity(spec.cluster_size);
        for (i, row) in rows.iter().enumerate() {
            if is_flagged[i] {
                continue;
            }
            let dist = row
                .iter()
                .zip(center)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            if dist <= radius {
                members.push(i);
                if members.len() == spec.cluster_size {
                    break;
                }
            }
        }
        if members.len() > best.len() {
            best = members;
        }
        if best.len() == spec.cluster_size {
            break;
        }
    }
    for &i in &best {
        is_flagged[i] = true;
    }
    best
}

/// A point near `dest` (within `spread` per axis) whose uniform distance
/// from `from` is at least `min_shift`; re-aims at the opposite corner when
/// `dest` happens to be too close.
fn shifted_from(
    rng: &mut StdRng,
    from: &[f64],
    dest: &[f64],
    min_shift: f64,
    spread: f64,
) -> Vec<f64> {
    let mut target: Vec<f64> = dest
        .iter()
        .map(|&c| (c + (rng.gen::<f64>() - 0.5) * spread).clamp(0.0, 1.0))
        .collect();
    let far_enough = |t: &[f64]| {
        t.iter()
            .zip(from)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
            >= min_shift
    };
    if !far_enough(&target) {
        // Deterministic fallback: push the first axis to whichever edge is
        // farther from the origin coordinate.
        let axis = if from[0] < 0.5 { 1.0 } else { 0.0 };
        target[0] = axis;
    }
    target
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> FleetSpec {
        FleetSpec {
            devices: 500,
            services: 2,
            massive_clusters: 2,
            cluster_size: 5,
            isolated: 3,
            cohesion: 0.2,
            calm_activity: 0.5,
            jitter: 0.02,
            shift: 0.3,
            seed: 7,
        }
    }

    #[test]
    fn generates_chained_instants_with_the_requested_mix() {
        let spec = small_spec();
        let fleet = generate_fleet(&spec, 3).unwrap();
        assert_eq!(fleet.len(), 4);
        assert!(fleet[0].flagged.is_empty());
        for instant in &fleet[1..] {
            assert_eq!(instant.snapshot.len(), 500);
            assert!(instant.flagged.len() <= spec.flagged_per_instant());
            assert!(
                instant.flagged.len() >= spec.isolated + spec.massive_clusters,
                "only {} flagged",
                instant.flagged.len()
            );
            assert!(
                instant.flagged.windows(2).all(|w| w[0] < w[1]),
                "sorted, disjoint"
            );
        }
    }

    #[test]
    fn flagged_devices_jump_and_calm_devices_jitter() {
        let spec = small_spec();
        let fleet = generate_fleet(&spec, 1).unwrap();
        let (before, after) = (&fleet[0].snapshot, &fleet[1].snapshot);
        for id in before.device_ids() {
            let dist = before
                .position(id)
                .coords()
                .iter()
                .zip(after.position(id).coords())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            if fleet[1].flagged.binary_search(&id).is_ok() {
                assert!(dist >= spec.shift, "flagged {id:?} moved only {dist}");
            } else {
                assert!(dist <= spec.jitter, "calm {id:?} moved {dist}");
            }
        }
    }

    #[test]
    fn cluster_members_stay_coherent() {
        let spec = small_spec();
        let fleet = generate_fleet(&spec, 1).unwrap();
        // The first cluster_size flagged-generation entries per cluster
        // co-moved; verify that *some* pair of flagged devices is close at
        // the destination (co-movers), which a pure loner mix would not be.
        let after = &fleet[1].snapshot;
        let flagged = &fleet[1].flagged;
        let close_pairs = flagged
            .iter()
            .flat_map(|&a| flagged.iter().map(move |&b| (a, b)))
            .filter(|&(a, b)| a < b)
            .filter(|&(a, b)| after.distance(a, b) <= spec.jitter)
            .count();
        assert!(close_pairs > 0, "no co-located flagged pair after the move");
    }

    #[test]
    fn truth_mirrors_flagged_and_respects_r1() {
        let spec = small_spec();
        let fleet = generate_fleet(&spec, 2).unwrap();
        assert!(fleet[0].truth.events().is_empty());
        for instant in &fleet[1..] {
            let mut from_truth: Vec<DeviceId> = instant.truth.abnormal_devices().iter().collect();
            from_truth.sort_unstable();
            assert_eq!(from_truth, instant.flagged, "truth covers the flagged set");
            let isolated_events = instant
                .truth
                .events()
                .iter()
                .filter(|e| e.intended_isolated)
                .count();
            assert_eq!(isolated_events, spec.isolated, "one event per loner");
            for e in instant
                .truth
                .events()
                .iter()
                .filter(|e| e.intended_isolated)
            {
                assert_eq!(e.impacted.len(), 1);
            }
        }
    }

    #[test]
    fn deterministic_for_a_seed() {
        let spec = small_spec();
        let a = generate_fleet(&spec, 2).unwrap();
        let b = generate_fleet(&spec, 2).unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.snapshot, y.snapshot);
            assert_eq!(x.flagged, y.flagged);
        }
    }

    #[test]
    fn validation_rejects_impossible_specs() {
        let mut spec = small_spec();
        spec.devices = 10;
        assert_eq!(
            spec.validate(),
            Err(SimulationError::PopulationTooSmall { n: 10 })
        );
        let mut spec = small_spec();
        spec.services = 0;
        assert_eq!(spec.validate(), Err(SimulationError::ZeroDimension));
        let mut spec = small_spec();
        spec.shift = f64::NAN;
        assert!(matches!(
            spec.validate(),
            Err(SimulationError::InvalidProbability { .. })
        ));
    }

    #[test]
    fn large_preset_is_valid_and_100k() {
        let spec = FleetSpec::large(1);
        assert!(spec.validate().is_ok());
        assert!(spec.devices >= 100_000);
        assert!(spec.flagged_per_instant() >= 100);
    }
}
