use crate::config::{DestinationModel, ScenarioConfig, SimulationError};
use crate::ground_truth::{ErrorEvent, GroundTruth};
use anomaly_core::DeviceSet;
use anomaly_qos::{DeviceId, Point, QosSpace, Snapshot, StatePair};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Maximum destination re-draws when enforcing restriction R3.
const R3_RETRIES: usize = 50;

/// The evolving device population (Section VII-A generator).
///
/// Deterministic for a given [`ScenarioConfig`] (seeded RNG).
#[derive(Debug, Clone)]
pub struct Simulation {
    config: ScenarioConfig,
    space: QosSpace,
    rng: StdRng,
    current: Snapshot,
    /// Devices impacted in the previous step: they are repaired during the
    /// next interval (moved back to a fresh uniform position, unflagged),
    /// keeping the population density stationary instead of letting
    /// degraded devices pile up in the low-QoS corner forever.
    recovering: DeviceSet,
    step_count: u64,
}

/// Result of one simulated interval `[k−1, k]`.
#[derive(Debug, Clone)]
pub struct StepOutcome {
    /// The two snapshots `S_{k−1}`, `S_k`.
    pub pair: StatePair,
    /// The real scenario `R_k`.
    pub truth: GroundTruth,
    /// Devices repaired during this interval (impacted in the previous one):
    /// they moved back to a healthy position but raised no flag.
    pub recovered: DeviceSet,
    /// The configuration that produced this step.
    pub config: ScenarioConfig,
}

impl StepOutcome {
    /// The flagged devices `A_k` (all devices impacted by some error).
    pub fn abnormal(&self) -> DeviceSet {
        self.truth.abnormal_devices()
    }
}

impl Simulation {
    /// Creates a simulation with devices placed i.i.d. uniformly in `E`.
    ///
    /// # Errors
    ///
    /// Propagates [`ScenarioConfig::validate`] failures.
    pub fn new(config: ScenarioConfig) -> Result<Self, SimulationError> {
        config.validate()?;
        let space = QosSpace::new(config.dim).map_err(|_| SimulationError::ZeroDimension)?;
        let mut rng = StdRng::seed_from_u64(config.seed);
        let rows: Vec<Vec<f64>> = (0..config.n)
            .map(|_| (0..config.dim).map(|_| rng.gen::<f64>()).collect())
            .collect();
        let current = Snapshot::from_rows(&space, rows)
            .unwrap_or_else(|_| unreachable!("generated rows are in range"));
        Ok(Simulation {
            config,
            space,
            rng,
            current,
            recovering: DeviceSet::new(),
            step_count: 0,
        })
    }

    /// The configuration in force.
    pub fn config(&self) -> &ScenarioConfig {
        &self.config
    }

    /// Number of completed steps.
    pub fn step_count(&self) -> u64 {
        self.step_count
    }

    /// The current snapshot `S_k`.
    pub fn current(&self) -> &Snapshot {
        &self.current
    }

    /// The QoS space devices live in.
    pub fn space(&self) -> &QosSpace {
        &self.space
    }

    /// Advances one interval: injects `A` errors per the paper's protocol
    /// and returns the two snapshots plus the ground truth.
    pub fn step(&mut self) -> StepOutcome {
        let before = self.current.clone();
        let mut after = self.current.clone();
        // Repair last interval's victims: move them to fresh uniform
        // positions. They are excluded from this interval's error selection
        // (mid-repair) and raise no abnormality flag.
        let recovered = std::mem::take(&mut self.recovering);
        for id in &recovered {
            let coords: Vec<f64> = (0..self.config.dim).map(|_| self.rng.gen()).collect();
            after.set_position(id, Point::new_unchecked(coords));
        }
        let mut impacted_all = DeviceSet::new();
        // Members (with their post-move positions implied by `after`) of
        // already-placed events, split by effective class, for R3
        // enforcement.
        let mut placed_isolated: Vec<DeviceId> = Vec::new();
        let mut events = Vec::new();

        for _ in 0..self.config.errors_per_step {
            let Some(event) = self.inject_error(
                &before,
                &mut after,
                &impacted_all,
                &recovered,
                &placed_isolated,
            ) else {
                break; // population exhausted
            };
            for id in &event.impacted {
                impacted_all.insert(id);
            }
            if !event.is_massive(self.config.params.tau()) {
                placed_isolated.extend(event.impacted.iter());
            }
            events.push(event);
        }

        self.current = after.clone();
        self.recovering = impacted_all;
        self.step_count += 1;
        StepOutcome {
            pair: StatePair::new(before, after)
                .unwrap_or_else(|_| unreachable!("snapshots share shape")),
            truth: GroundTruth::new(events),
            recovered,
            config: self.config.clone(),
        }
    }

    /// Injects one error: picks an epicentre, draws the impacted set from
    /// the ball of radius `r`, and moves it rigidly to a uniform target.
    fn inject_error(
        &mut self,
        before: &Snapshot,
        after: &mut Snapshot,
        impacted_all: &DeviceSet,
        recovering: &DeviceSet,
        placed_isolated: &[DeviceId],
    ) -> Option<ErrorEvent> {
        let tau = self.config.params.tau();
        let r = self.config.params.radius();
        // Epicentre: uniform among devices not yet impacted (R1) and not
        // mid-repair.
        let free: Vec<DeviceId> = before
            .device_ids()
            .filter(|id| !impacted_all.contains(*id) && !recovering.contains(*id))
            .collect();
        if free.is_empty() {
            return None;
        }
        let intended_isolated = self.rng.gen_bool(self.config.isolated_prob);

        // Ball of radius r around the epicentre at time k−1, free devices
        // only. An intended-massive error needs more than τ candidates, so
        // it retries a few epicentres and keeps the most populous ball —
        // faults hit where there is something to hit.
        let ball_of = |rng_epicentre: DeviceId, free: &[DeviceId]| -> Vec<DeviceId> {
            let center = before.position(rng_epicentre);
            free.iter()
                .copied()
                .filter(|&id| {
                    anomaly_qos::uniform_distance(before.position(id).coords(), center.coords())
                        <= r
                })
                .collect()
        };
        let epicentre_tries = if intended_isolated { 1 } else { 4 };
        let mut ball: Vec<DeviceId> = Vec::new();
        for _ in 0..epicentre_tries {
            let candidate = free[self.rng.gen_range(0..free.len())];
            let candidate_ball = ball_of(candidate, &free);
            if candidate_ball.len() > ball.len() {
                ball = candidate_ball;
            }
            if ball.len() > tau {
                break;
            }
        }
        ball.shuffle(&mut self.rng);
        let t = if intended_isolated {
            self.rng.gen_range(1..=tau.min(ball.len()))
        } else if ball.len() > tau {
            // Cap massive impact sizes so the mean event matches the
            // population density of the paper's runs (|A_k|/A ≈ 4.8).
            self.rng.gen_range(tau + 1..=ball.len().min(2 * tau + 1))
        } else {
            ball.len() // intended massive, too few candidates
        };
        let members: Vec<DeviceId> = ball[..t].to_vec();

        // Common displacement (R2): all members move rigidly so that the
        // group lands uniformly in E while preserving relative positions.
        let dim = self.config.dim;
        let mut lo = vec![f64::INFINITY; dim];
        let mut hi = vec![f64::NEG_INFINITY; dim];
        for &m in &members {
            for (i, &c) in before.position(m).coords().iter().enumerate() {
                lo[i] = lo[i].min(c);
                hi[i] = hi[i].max(c);
            }
        }
        let effective_isolated = members.len() <= tau;
        let must_avoid = self.config.enforce_r3 && !placed_isolated.is_empty();
        let mut displacement = vec![0.0; dim];
        for attempt in 0..R3_RETRIES {
            for i in 0..dim {
                displacement[i] = match self.config.destination {
                    // Valid range keeps every member inside [0,1].
                    DestinationModel::Uniform => self.rng.gen_range(-lo[i]..=(1.0 - hi[i])),
                    DestinationModel::Degradation { scale } => {
                        // Land the group's lower corner near the degraded
                        // region: cubic bias toward 0, clamped to the
                        // range that keeps the group inside E.
                        let u: f64 = self.rng.gen();
                        let target = scale * u * u * u;
                        (target - lo[i]).clamp(-lo[i], 1.0 - hi[i])
                    }
                };
            }
            if !must_avoid || attempt == R3_RETRIES - 1 {
                break;
            }
            // R3 enforcement: the event must not land in motion-proximity of
            // any member of an already-placed isolated event (that would let
            // isolated devices join dense motions). Only relevant when this
            // event or the placed one is isolated-sized; massive-massive
            // superpositions are allowed (they drive Figure 7).
            if self.avoids_isolated_members(
                before,
                after,
                &members,
                &displacement,
                placed_isolated,
                effective_isolated,
            ) {
                break;
            }
        }

        for &m in &members {
            let new_pos: Vec<f64> = before
                .position(m)
                .coords()
                .iter()
                .zip(&displacement)
                .map(|(c, d)| (c + d).clamp(0.0, 1.0))
                .collect();
            after.set_position(m, Point::new_unchecked(new_pos));
        }
        Some(ErrorEvent {
            impacted: members.into_iter().collect(),
            intended_isolated,
        })
    }

    /// True when, under `displacement`, no member of this event sits within
    /// motion distance `2r` of a previously placed isolated-event member.
    #[allow(clippy::too_many_arguments)]
    fn avoids_isolated_members(
        &self,
        before: &Snapshot,
        after: &Snapshot,
        members: &[DeviceId],
        displacement: &[f64],
        placed_isolated: &[DeviceId],
        effective_isolated: bool,
    ) -> bool {
        let window = self.config.params.window();
        // A massive event only threatens R3 through isolated members it
        // lands next to; an isolated event additionally must not land next
        // to *any* impacted device, but checking against isolated members
        // covers the dominant effect at modest cost.
        let _ = effective_isolated;
        for &m in members {
            let b_m = before.position(m).coords();
            let a_m: Vec<f64> = b_m
                .iter()
                .zip(displacement)
                .map(|(c, d)| (c + d).clamp(0.0, 1.0))
                .collect();
            for &p in placed_isolated {
                let close_before =
                    anomaly_qos::uniform_distance(b_m, before.position(p).coords()) <= window;
                let close_after =
                    anomaly_qos::uniform_distance(&a_m, after.position(p).coords()) <= window;
                if close_before && close_after {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anomaly_core::{motion, TrajectoryTable};

    fn small_config(seed: u64) -> ScenarioConfig {
        let mut c = ScenarioConfig::paper_defaults(seed);
        c.n = 300;
        c.errors_per_step = 8;
        c
    }

    #[test]
    fn simulation_is_deterministic_for_a_seed() {
        let mut a = Simulation::new(small_config(7)).unwrap();
        let mut b = Simulation::new(small_config(7)).unwrap();
        let oa = a.step();
        let ob = b.step();
        assert_eq!(oa.pair, ob.pair);
        assert_eq!(oa.truth, ob.truth);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Simulation::new(small_config(1)).unwrap();
        let mut b = Simulation::new(small_config(2)).unwrap();
        assert_ne!(a.step().pair, b.step().pair);
    }

    #[test]
    fn events_are_disjoint_and_flagged_devices_moved() {
        let mut sim = Simulation::new(small_config(11)).unwrap();
        let out = sim.step();
        let mut seen = DeviceSet::new();
        for e in out.truth.events() {
            for id in &e.impacted {
                assert!(seen.insert(id), "device {id} impacted twice (R1)");
            }
        }
        // Devices not in A_k did not move (except recovering ones).
        let abnormal = out.abnormal();
        for id in out.pair.device_ids() {
            let moved = out.pair.before().position(id) != out.pair.after().position(id);
            if moved {
                assert!(
                    abnormal.contains(id) || out.recovered.contains(id),
                    "unflagged device {id} moved"
                );
            }
        }
    }

    #[test]
    fn impacted_groups_follow_consistent_motions_r2() {
        let mut sim = Simulation::new(small_config(13)).unwrap();
        let out = sim.step();
        let abnormal: Vec<DeviceId> = out.abnormal().iter().collect();
        let table = TrajectoryTable::from_state_pair(&out.pair, &abnormal);
        let window = out.config.params.window();
        for e in out.truth.events() {
            assert!(
                motion::is_consistent_motion(&table, &e.impacted, window),
                "event members must share an r-consistent motion (R2): {:?}",
                e.impacted
            );
        }
    }

    #[test]
    fn positions_stay_in_unit_cube() {
        let mut sim = Simulation::new(small_config(17)).unwrap();
        for _ in 0..5 {
            let out = sim.step();
            for (_, p) in out.pair.after().iter() {
                assert!(p.is_in_unit_cube());
            }
        }
    }

    #[test]
    fn isolated_probability_one_yields_only_small_events() {
        let mut config = small_config(19);
        config.isolated_prob = 1.0;
        let mut sim = Simulation::new(config).unwrap();
        let out = sim.step();
        assert!(!out.truth.events().is_empty());
        for e in out.truth.events() {
            assert!(e.intended_isolated);
            assert!(e.impacted.len() <= out.config.params.tau());
        }
    }

    #[test]
    fn isolated_probability_zero_yields_intended_massive_events() {
        let mut config = small_config(23);
        config.isolated_prob = 0.0;
        let mut sim = Simulation::new(config).unwrap();
        let out = sim.step();
        assert!(!out.truth.events().is_empty());
        for e in out.truth.events() {
            assert!(!e.intended_isolated);
        }
    }

    #[test]
    fn massive_events_exceed_tau_when_density_allows() {
        // A dense population guarantees balls larger than τ.
        let mut config = ScenarioConfig::paper_defaults(29);
        config.n = 4000;
        config.errors_per_step = 5;
        config.isolated_prob = 0.0;
        let mut sim = Simulation::new(config).unwrap();
        let out = sim.step();
        let tau = out.config.params.tau();
        assert!(
            out.truth.events().iter().any(|e| e.impacted.len() > tau),
            "at n = 4000 at least one massive event should exceed τ"
        );
    }

    #[test]
    fn step_count_advances_and_population_is_stable() {
        let mut sim = Simulation::new(small_config(31)).unwrap();
        assert_eq!(sim.step_count(), 0);
        let out = sim.step();
        assert_eq!(sim.step_count(), 1);
        assert_eq!(out.pair.len(), 300);
        assert_eq!(sim.current().len(), 300);
    }
}
