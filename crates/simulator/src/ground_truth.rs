use anomaly_core::DeviceSet;

/// One injected error and the devices it impacted — an element of the real
/// scenario `R_k`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorEvent {
    /// Devices whose trajectory this error caused.
    pub impacted: DeviceSet,
    /// Whether the *generator* intended this error as isolated; the
    /// effective class follows from `impacted.len()` (an intended-massive
    /// error in a sparse neighbourhood may impact `≤ τ` devices).
    pub intended_isolated: bool,
}

impl ErrorEvent {
    /// True when the error effectively impacted more than `τ` devices —
    /// i.e. it belongs to `M_{R_k}` in the real scenario.
    pub fn is_massive(&self, tau: usize) -> bool {
        self.impacted.len() > tau
    }
}

/// The real scenario `R_k` for one step: every injected error with its
/// impacted devices. Events are pairwise disjoint (restriction R1).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GroundTruth {
    events: Vec<ErrorEvent>,
}

impl GroundTruth {
    /// Wraps a list of events.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if events overlap — the generator upholds
    /// restriction R1.
    pub fn new(events: Vec<ErrorEvent>) -> Self {
        debug_assert!(
            {
                let mut seen = DeviceSet::new();
                events
                    .iter()
                    .all(|e| e.impacted.iter().all(|id| seen.insert(id)))
            },
            "error events must be pairwise disjoint (R1)"
        );
        GroundTruth { events }
    }

    /// The injected errors.
    pub fn events(&self) -> &[ErrorEvent] {
        &self.events
    }

    /// All impacted devices — the ground-truth `A_k`.
    pub fn abnormal_devices(&self) -> DeviceSet {
        self.events.iter().flat_map(|e| e.impacted.iter()).collect()
    }

    /// Devices impacted by effectively-massive errors (`M_{R_k}`).
    pub fn massive_devices(&self, tau: usize) -> DeviceSet {
        self.events
            .iter()
            .filter(|e| e.is_massive(tau))
            .flat_map(|e| e.impacted.iter())
            .collect()
    }

    /// Devices impacted by effectively-isolated errors (`I_{R_k}`).
    pub fn isolated_devices(&self, tau: usize) -> DeviceSet {
        self.events
            .iter()
            .filter(|e| !e.is_massive(tau))
            .flat_map(|e| e.impacted.iter())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(ids: &[u32], intended_isolated: bool) -> ErrorEvent {
        ErrorEvent {
            impacted: DeviceSet::from(ids),
            intended_isolated,
        }
    }

    #[test]
    fn classification_by_effective_size() {
        let e = event(&[1, 2, 3, 4], false);
        assert!(e.is_massive(3));
        assert!(!e.is_massive(4));
    }

    #[test]
    fn truth_splits_massive_and_isolated() {
        let truth = GroundTruth::new(vec![
            event(&[1, 2, 3, 4], false),
            event(&[5], true),
            event(&[6, 7], false), // intended massive, effectively isolated
        ]);
        assert_eq!(truth.abnormal_devices().len(), 7);
        assert_eq!(truth.massive_devices(3), DeviceSet::from([1, 2, 3, 4]));
        assert_eq!(truth.isolated_devices(3), DeviceSet::from([5, 6, 7]));
        assert_eq!(truth.events().len(), 3);
    }

    #[test]
    #[should_panic(expected = "pairwise disjoint")]
    #[cfg(debug_assertions)]
    fn overlapping_events_panic_in_debug() {
        GroundTruth::new(vec![event(&[1, 2], false), event(&[2, 3], false)]);
    }
}
