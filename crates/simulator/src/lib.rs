//! Monte-Carlo simulator reproducing the evaluation protocol of Section VII
//! of the DSN 2014 paper.
//!
//! The generator follows the paper's description exactly:
//!
//! * `n` devices are placed i.i.d. uniformly in `E = [0,1]^d` (`d = 2` in
//!   the paper);
//! * at every step, `A` errors occur. Each error picks an epicentre device
//!   `j`; with probability `G` it is **isolated** and impacts at most `τ`
//!   devices drawn from the ball of radius `r` around `j`, otherwise it is
//!   **massive** and impacts `t ∈ [τ+1, |ball|]` of them;
//! * all devices impacted by one error undergo the **same displacement**
//!   towards a uniformly chosen target (restriction R2 makes the impacted
//!   set follow a common r-consistent motion by construction), and their
//!   error-detection flag `a_k` is raised;
//! * impacted sets of distinct errors are disjoint (restriction R1).
//!
//! The [`GroundTruth`] of each step records the real scenario `R_k`;
//! [`runner`] characterizes the flagged devices with the local algorithms of
//! `anomaly-core` and scores them against it; [`sweep`] drives the parameter
//! sweeps behind Tables II/III and Figures 7–9.
//!
//! # Example
//!
//! ```
//! use anomaly_simulator::{ScenarioConfig, Simulation, runner::analyze_step};
//!
//! let config = ScenarioConfig::paper_defaults(42);
//! let mut sim = Simulation::new(config)?;
//! let outcome = sim.step();
//! let report = analyze_step(&outcome, true);
//! assert_eq!(
//!     report.isolated + report.massive_thm6 + report.massive_thm7 + report.unresolved,
//!     report.abnormal,
//! );
//! # Ok::<(), anomaly_simulator::SimulationError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(warnings)]
#![warn(missing_docs)]

pub mod adversary;
mod config;
pub mod fleet;
mod generator;
mod ground_truth;
pub mod runner;
pub mod score;
pub mod sweep;
pub mod trace;

pub use config::{DestinationModel, ScenarioConfig, SimulationError};
pub use fleet::{generate_fleet, FleetInstant, FleetSpec};
pub use generator::{Simulation, StepOutcome};
pub use ground_truth::{ErrorEvent, GroundTruth};
pub use score::{Confusion, EventConfusion, EventSpan, Prediction, TruthClass};
