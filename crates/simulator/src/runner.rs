//! Characterization of simulated steps and scoring against ground truth.
//!
//! Feeds the flagged devices of a [`StepOutcome`] to the local algorithms of
//! `anomaly-core` and reports the per-class populations, the operation
//! costs (Table III), and the confusion against the real scenario `R_k`
//! (Figure 8's missed-detection measure).

use crate::generator::StepOutcome;
use anomaly_core::{Analyzer, AnomalyClass, Rule, TrajectoryTable};
use anomaly_qos::DeviceId;

/// Per-step characterization summary.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StepReport {
    /// `|A_k|` — flagged devices.
    pub abnormal: usize,
    /// Devices isolated by Theorem 5.
    pub isolated: usize,
    /// Devices massive by Theorem 6 (Algorithm 3 fast path).
    pub massive_thm6: usize,
    /// Devices massive only via the Theorem 7 NSC (0 when `full` is false).
    pub massive_thm7: usize,
    /// Devices left unresolved (Corollary 8 when `full`, Algorithm 3
    /// otherwise).
    pub unresolved: usize,
    /// Devices impacted by an effectively-isolated error but classified
    /// massive — the Figure 8 measure (restriction R3 misfires).
    pub missed_isolated_as_massive: usize,
    /// Average `|M(j)|` over Theorem 5 devices (Table III, col. 1).
    pub avg_motions_isolated: f64,
    /// Average `|W̄(j)|` over Theorem 6 devices (Table III, col. 2).
    pub avg_dense_massive6: f64,
    /// Average collections tested over Corollary 8 devices (Table III, col. 3).
    pub avg_collections_unresolved: f64,
    /// Average collections tested over Theorem 7 devices (Table III, col. 4).
    pub avg_collections_massive7: f64,
}

impl StepReport {
    /// `|U_k| / |A_k|`, the Figures 7/9 ratio (0 when `A_k` is empty).
    pub fn unresolved_ratio(&self) -> f64 {
        if self.abnormal == 0 {
            0.0
        } else {
            self.unresolved as f64 / self.abnormal as f64
        }
    }

    /// Missed-detection rate: isolated-truth devices classified massive,
    /// over `|A_k|` (Figure 8's y-axis).
    pub fn missed_rate(&self) -> f64 {
        if self.abnormal == 0 {
            0.0
        } else {
            self.missed_isolated_as_massive as f64 / self.abnormal as f64
        }
    }
}

/// Characterizes every flagged device of `outcome`.
///
/// With `full = true` the exact NSC of Theorem 7 resolves the Algorithm 3
/// fall-through (the paper's full pipeline); with `false` only the cheap
/// conditions run.
pub fn analyze_step(outcome: &StepOutcome, full: bool) -> StepReport {
    let abnormal: Vec<DeviceId> = outcome.abnormal().iter().collect();
    let table = TrajectoryTable::from_state_pair(&outcome.pair, &abnormal);
    let analyzer = Analyzer::new(&table, outcome.config.params);
    let tau = outcome.config.params.tau();
    let truth_isolated = outcome.truth.isolated_devices(tau);

    let mut report = StepReport {
        abnormal: abnormal.len(),
        ..StepReport::default()
    };
    let mut sum_motions_isolated = 0u64;
    let mut sum_dense_massive6 = 0u64;
    let mut sum_coll_unresolved = 0u64;
    let mut sum_coll_massive7 = 0u64;

    for &j in &abnormal {
        let c = if full {
            analyzer.characterize_full(j)
        } else {
            analyzer.characterize(j)
        };
        match (c.class(), c.rule()) {
            (AnomalyClass::Isolated, _) => {
                report.isolated += 1;
                sum_motions_isolated += c.cost().maximal_motions as u64;
            }
            (AnomalyClass::Massive, Rule::Theorem6) => {
                report.massive_thm6 += 1;
                sum_dense_massive6 += c.cost().dense_motions as u64;
            }
            (AnomalyClass::Massive, _) => {
                report.massive_thm7 += 1;
                sum_coll_massive7 += c.cost().collections_tested;
            }
            (AnomalyClass::Unresolved, _) => {
                report.unresolved += 1;
                sum_coll_unresolved += c.cost().collections_tested;
            }
        }
        if c.class() == AnomalyClass::Massive && truth_isolated.contains(j) {
            report.missed_isolated_as_massive += 1;
        }
    }

    report.avg_motions_isolated = mean(sum_motions_isolated, report.isolated);
    report.avg_dense_massive6 = mean(sum_dense_massive6, report.massive_thm6);
    report.avg_collections_unresolved = mean(sum_coll_unresolved, report.unresolved);
    report.avg_collections_massive7 = mean(sum_coll_massive7, report.massive_thm7);
    report
}

fn mean(sum: u64, count: usize) -> f64 {
    if count == 0 {
        0.0
    } else {
        sum as f64 / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ScenarioConfig;
    use crate::generator::Simulation;

    fn run_one(seed: u64, full: bool) -> StepReport {
        let mut config = ScenarioConfig::paper_defaults(seed);
        config.n = 400;
        config.errors_per_step = 10;
        let mut sim = Simulation::new(config).unwrap();
        analyze_step(&sim.step(), full)
    }

    #[test]
    fn classes_partition_the_abnormal_set() {
        for seed in [1u64, 2, 3] {
            for full in [false, true] {
                let r = run_one(seed, full);
                assert_eq!(
                    r.isolated + r.massive_thm6 + r.massive_thm7 + r.unresolved,
                    r.abnormal,
                    "seed {seed} full {full}"
                );
            }
        }
    }

    #[test]
    fn quick_mode_never_uses_theorem_7() {
        let r = run_one(5, false);
        assert_eq!(r.massive_thm7, 0);
    }

    #[test]
    fn full_mode_has_no_more_unresolved_than_quick() {
        for seed in [7u64, 8, 9] {
            let quick = run_one(seed, false);
            let full = run_one(seed, true);
            assert!(full.unresolved <= quick.unresolved);
            assert_eq!(full.abnormal, quick.abnormal);
        }
    }

    #[test]
    fn mostly_massive_scenario_classifies_mostly_massive() {
        // Dense population, G ≈ 0: the bulk of A_k should be massive
        // (Table II's regime: ~88% via Theorem 6).
        let mut config = ScenarioConfig::paper_defaults(11);
        config.n = 2000;
        config.errors_per_step = 10;
        config.isolated_prob = 0.0;
        let mut sim = Simulation::new(config).unwrap();
        let r = analyze_step(&sim.step(), true);
        assert!(r.abnormal > 0);
        let massive = r.massive_thm6 + r.massive_thm7;
        assert!(
            massive as f64 > 0.5 * r.abnormal as f64,
            "expected mostly massive, got {r:?}"
        );
    }

    #[test]
    fn only_isolated_scenario_classifies_mostly_isolated() {
        let mut config = ScenarioConfig::paper_defaults(13);
        config.n = 400;
        config.errors_per_step = 10;
        config.isolated_prob = 1.0;
        let mut sim = Simulation::new(config).unwrap();
        let r = analyze_step(&sim.step(), true);
        assert!(r.abnormal > 0);
        assert!(
            r.isolated as f64 > 0.8 * r.abnormal as f64,
            "expected mostly isolated, got {r:?}"
        );
    }

    #[test]
    fn ratios_are_well_defined() {
        let r = StepReport::default();
        assert_eq!(r.unresolved_ratio(), 0.0);
        assert_eq!(r.missed_rate(), 0.0);
        let r = StepReport {
            abnormal: 10,
            unresolved: 2,
            missed_isolated_as_massive: 1,
            ..StepReport::default()
        };
        assert!((r.unresolved_ratio() - 0.2).abs() < 1e-12);
        assert!((r.missed_rate() - 0.1).abs() < 1e-12);
    }
}
