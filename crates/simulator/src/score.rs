//! Scoring primitives: predicted verdicts against the real scenario `R_k`.
//!
//! A device impacted by an error belongs to exactly one [`TruthClass`]
//! (its event's effective size against `τ`); a method answers with a
//! [`Prediction`]. [`Confusion`] accumulates the full per-class confusion
//! matrix plus precision/recall/F1, and is the common currency of the
//! baseline comparison harness (`anomaly-baselines`) and the scenario
//! evaluation subsystem (`anomaly-eval`).
//!
//! Two deliberate conventions:
//!
//! * **Unresolved is not a mistake.** The paper's local conditions abstain
//!   on genuinely undecidable configurations; [`Prediction::Unresolved`] is
//!   counted in its own column, hurting recall but never precision.
//! * **Spurious verdicts are diagnostics, not confusion entries.** A
//!   verdict on a device outside the ground-truth abnormal set (a detector
//!   fluke, a repair rebound) is recorded via
//!   [`Confusion::record_spurious`] and reported separately: the confusion
//!   matrix measures *characterization* quality over the real scenario,
//!   which is the quantity comparable across methods that are handed the
//!   abnormal set directly.

use crate::ground_truth::GroundTruth;
use anomaly_core::{AnomalyClass, DeviceSet};
use anomaly_qos::DeviceId;
use std::fmt::Write as _;

/// The real class of an impacted device, from its event's effective size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TruthClass {
    /// The device's error impacted `≤ τ` devices (`I_{R_k}`).
    Isolated,
    /// The device's error impacted `> τ` devices (`M_{R_k}`).
    Massive,
}

/// What a method said about one ground-truth abnormal device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Prediction {
    /// Classified isolated.
    Isolated,
    /// Classified massive.
    Massive,
    /// The method abstained (the paper's honest "cannot know").
    Unresolved,
    /// The method produced no verdict at all for the device (not flagged by
    /// its detector, or still warming after a join).
    Missing,
}

impl From<AnomalyClass> for Prediction {
    fn from(class: AnomalyClass) -> Self {
        match class {
            AnomalyClass::Isolated => Prediction::Isolated,
            AnomalyClass::Massive => Prediction::Massive,
            AnomalyClass::Unresolved => Prediction::Unresolved,
        }
    }
}

const TRUTHS: [TruthClass; 2] = [TruthClass::Isolated, TruthClass::Massive];
const PREDICTIONS: [Prediction; 4] = [
    Prediction::Isolated,
    Prediction::Massive,
    Prediction::Unresolved,
    Prediction::Missing,
];

fn truth_index(t: TruthClass) -> usize {
    match t {
        TruthClass::Isolated => 0,
        TruthClass::Massive => 1,
    }
}

fn prediction_index(p: Prediction) -> usize {
    match p {
        Prediction::Isolated => 0,
        Prediction::Massive => 1,
        Prediction::Unresolved => 2,
        Prediction::Missing => 3,
    }
}

/// Per-class confusion counts of one method on one or more scored steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Confusion {
    /// `counts[truth][prediction]`.
    counts: [[u64; 4]; 2],
    /// Verdicts on devices outside the ground-truth abnormal set, by
    /// predicted class (isolated, massive, unresolved).
    spurious: [u64; 3],
}

impl Confusion {
    /// An empty matrix.
    pub fn new() -> Self {
        Confusion::default()
    }

    /// Records one scored device.
    pub fn record(&mut self, truth: TruthClass, prediction: Prediction) {
        self.counts[truth_index(truth)][prediction_index(prediction)] += 1;
    }

    /// Records a verdict on a device that is in no ground-truth event.
    pub fn record_spurious(&mut self, class: AnomalyClass) {
        self.spurious[prediction_index(Prediction::from(class))] += 1;
    }

    /// One confusion cell.
    pub fn count(&self, truth: TruthClass, prediction: Prediction) -> u64 {
        self.counts[truth_index(truth)][prediction_index(prediction)]
    }

    /// Spurious verdicts of one predicted class.
    pub fn spurious(&self, class: AnomalyClass) -> u64 {
        self.spurious[prediction_index(Prediction::from(class))]
    }

    /// All spurious verdicts.
    pub fn spurious_total(&self) -> u64 {
        self.spurious.iter().sum()
    }

    /// Ground-truth devices of one class.
    pub fn truth_total(&self, truth: TruthClass) -> u64 {
        self.counts[truth_index(truth)].iter().sum()
    }

    /// All scored ground-truth devices.
    pub fn total(&self) -> u64 {
        TRUTHS.iter().map(|&t| self.truth_total(t)).sum()
    }

    /// Correctly classified devices (isolated as isolated, massive as
    /// massive).
    pub fn correct(&self) -> u64 {
        self.count(TruthClass::Isolated, Prediction::Isolated)
            + self.count(TruthClass::Massive, Prediction::Massive)
    }

    /// Hard misclassifications (isolated as massive or massive as isolated).
    pub fn mistaken(&self) -> u64 {
        self.count(TruthClass::Isolated, Prediction::Massive)
            + self.count(TruthClass::Massive, Prediction::Isolated)
    }

    /// Abstentions plus devices that never received a verdict.
    pub fn undecided(&self) -> u64 {
        TRUTHS
            .iter()
            .map(|&t| self.count(t, Prediction::Unresolved) + self.count(t, Prediction::Missing))
            .sum()
    }

    /// `correct / total` over every scored device (0 when nothing was
    /// scored). Abstentions count against accuracy — a method that never
    /// answers scores 0.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.correct() as f64 / total as f64
        }
    }

    fn predicted_total(&self, prediction: Prediction) -> u64 {
        TRUTHS.iter().map(|&t| self.count(t, prediction)).sum()
    }

    /// Precision of one class: of the devices *predicted* that class, the
    /// fraction that truly were. 1.0 when the class was never predicted
    /// (no claims, no false claims). Spurious verdicts are excluded by
    /// convention (see the module docs).
    pub fn precision(&self, class: TruthClass) -> f64 {
        let as_prediction = match class {
            TruthClass::Isolated => Prediction::Isolated,
            TruthClass::Massive => Prediction::Massive,
        };
        let claimed = self.predicted_total(as_prediction);
        if claimed == 0 {
            1.0
        } else {
            self.count(class, as_prediction) as f64 / claimed as f64
        }
    }

    /// Recall of one class: of the devices truly of that class, the
    /// fraction predicted as such. 1.0 when the class never occurred.
    /// Unresolved and missing devices count against recall.
    pub fn recall(&self, class: TruthClass) -> f64 {
        let truth = self.truth_total(class);
        if truth == 0 {
            1.0
        } else {
            let as_prediction = match class {
                TruthClass::Isolated => Prediction::Isolated,
                TruthClass::Massive => Prediction::Massive,
            };
            self.count(class, as_prediction) as f64 / truth as f64
        }
    }

    /// Harmonic mean of precision and recall for one class (0 when both
    /// vanish).
    pub fn f1(&self, class: TruthClass) -> f64 {
        let p = self.precision(class);
        let r = self.recall(class);
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Unweighted mean of the isolated and massive F1 scores — the headline
    /// number of the evaluation workbench.
    pub fn macro_f1(&self) -> f64 {
        (self.f1(TruthClass::Isolated) + self.f1(TruthClass::Massive)) / 2.0
    }

    /// Adds another matrix's counts into this one.
    pub fn merge(&mut self, other: &Confusion) {
        for t in 0..2 {
            for p in 0..4 {
                self.counts[t][p] += other.counts[t][p];
            }
        }
        for s in 0..3 {
            self.spurious[s] += other.spurious[s];
        }
    }

    /// Stable JSON rendering (no external dependencies): the raw matrix,
    /// the spurious counters, and the derived per-class metrics.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"matrix\":{");
        for (ti, &t) in TRUTHS.iter().enumerate() {
            if ti > 0 {
                out.push(',');
            }
            let tname = match t {
                TruthClass::Isolated => "isolated",
                TruthClass::Massive => "massive",
            };
            let _ = write!(out, "\"{tname}\":{{");
            for (pi, &p) in PREDICTIONS.iter().enumerate() {
                if pi > 0 {
                    out.push(',');
                }
                let pname = match p {
                    Prediction::Isolated => "isolated",
                    Prediction::Massive => "massive",
                    Prediction::Unresolved => "unresolved",
                    Prediction::Missing => "missing",
                };
                let _ = write!(out, "\"{pname}\":{}", self.count(t, p));
            }
            out.push('}');
        }
        let _ = write!(
            out,
            concat!(
                "}},\"spurious\":{{\"isolated\":{},\"massive\":{},\"unresolved\":{}}},",
                "\"precision_isolated\":{:.6},\"recall_isolated\":{:.6},\"f1_isolated\":{:.6},",
                "\"precision_massive\":{:.6},\"recall_massive\":{:.6},\"f1_massive\":{:.6},",
                "\"macro_f1\":{:.6},\"accuracy\":{:.6}}}"
            ),
            self.spurious[0],
            self.spurious[1],
            self.spurious[2],
            self.precision(TruthClass::Isolated),
            self.recall(TruthClass::Isolated),
            self.f1(TruthClass::Isolated),
            self.precision(TruthClass::Massive),
            self.recall(TruthClass::Massive),
            self.f1(TruthClass::Massive),
            self.macro_f1(),
            self.accuracy(),
        );
        out
    }
}

/// One anomaly event in **step coordinates**: the unit of event-level
/// scoring, on either side of the comparison.
///
/// Ground-truth spans come from [`link_truth_events`] (per-step
/// [`GroundTruth`] events chained across consecutive steps by device
/// overlap); predicted spans come from a monitor's event-delta stream or
/// from [`link_event_spans`] over a classifier's per-step verdict groups.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventSpan {
    /// First step the event was observed at.
    pub onset: usize,
    /// Last step the event was observed at (inclusive).
    pub last: usize,
    /// Every device the event affected over its lifetime.
    pub devices: DeviceSet,
    /// True when the event was massive (impacted `> τ` devices) at any
    /// step of its life — its peak class.
    pub massive: bool,
}

impl EventSpan {
    /// True when the two spans overlap in time.
    pub fn overlaps(&self, other: &EventSpan) -> bool {
        self.onset <= other.last && other.onset <= self.last
    }

    /// True when `other` is the same anomaly: same peak class, overlapping
    /// steps, and at least one shared device.
    pub fn matches(&self, other: &EventSpan) -> bool {
        self.massive == other.massive
            && self.overlaps(other)
            && !self.devices.is_disjoint(&other.devices)
    }
}

/// Chains per-step event groups into [`EventSpan`]s: a group at step `s`
/// continues a span that was active at step `s-1` and shares a device with
/// it; otherwise it opens a new span. Each group is `(devices, massive)`.
///
/// The chaining is deterministic (steps in order, groups in their given
/// order, candidate spans in creation order) and gap-free: one quiet step
/// ends a span — mirroring a tracker debounce of one bridging epoch, which
/// is exactly what the evaluation monitors run with.
///
/// Component-blind: every group carries an absent spatial component, so
/// any same-step groups that overlap one span all fold into it. When the
/// groups carry spatial component ids, use [`link_component_event_spans`].
pub fn link_event_spans<'a, I, S>(steps: I) -> Vec<EventSpan>
where
    I: IntoIterator<Item = S>,
    S: IntoIterator<Item = &'a (DeviceSet, bool)>,
{
    link_spans_impl(steps.into_iter().map(|groups| {
        groups
            .into_iter()
            .map(|(devices, massive)| (devices, *massive, None))
            .collect()
    }))
}

/// Component-aware [`link_event_spans`]: each group is
/// `(devices, massive, component)`, where the component is the group's
/// epoch-local spatial component rank (or `None` for component-blind
/// groups, which behave exactly as under [`link_event_spans`]).
///
/// Component ids are **epoch-local** — rank `0` this step and rank `0`
/// next step need not be the same blob — so the ids never link *across*
/// steps (device overlap still does that). They split *within* a step: a
/// span extended by a group of component `c` at step `s` is claimed for
/// `c` at `s`, and a same-step group of a different component must open
/// its own span even when it overlaps the span's historical device set.
/// Two coincident spatially-disjoint outages therefore score as two
/// predicted events, never one.
pub fn link_component_event_spans<'a, I, S>(steps: I) -> Vec<EventSpan>
where
    I: IntoIterator<Item = S>,
    S: IntoIterator<Item = &'a (DeviceSet, bool, Option<u32>)>,
{
    link_spans_impl(steps.into_iter().map(|groups| {
        groups
            .into_iter()
            .map(|(devices, massive, component)| (devices, *massive, *component))
            .collect()
    }))
}

/// The shared chaining core: per-step groups with optional spatial
/// components, a per-step claim table enforcing the same-component rule.
fn link_spans_impl<'a>(
    steps: impl IntoIterator<Item = Vec<(&'a DeviceSet, bool, Option<u32>)>>,
) -> Vec<EventSpan> {
    let mut spans: Vec<EventSpan> = Vec::new();
    for (step, groups) in steps.into_iter().enumerate() {
        // Span index → the component that extended it at this step; a
        // claimed span only accepts further same-step groups of the same
        // component (`None` claims preserve the component-blind merge).
        let mut claimed: std::collections::BTreeMap<usize, Option<u32>> =
            std::collections::BTreeMap::new();
        for (devices, massive, component) in groups {
            let continued = spans.iter().enumerate().position(|(idx, span)| {
                (span.last + 1 == step || span.last == step)
                    && !span.devices.is_disjoint(devices)
                    && claimed.get(&idx).is_none_or(|&prev| prev == component)
            });
            match continued {
                Some(idx) => {
                    let span = &mut spans[idx];
                    span.last = step;
                    span.devices = span.devices.union(devices);
                    span.massive |= massive;
                    claimed.insert(idx, component);
                }
                None => {
                    claimed.insert(spans.len(), component);
                    spans.push(EventSpan {
                        onset: step,
                        last: step,
                        devices: devices.clone(),
                        massive,
                    });
                }
            }
        }
    }
    spans
}

/// [`link_event_spans`] over a run's per-step ground truth: each step's
/// [`ErrorEvent`](crate::ErrorEvent)s become groups classified by their
/// effective size against `tau`.
pub fn link_truth_events<'a>(
    steps: impl IntoIterator<Item = &'a GroundTruth>,
    tau: usize,
) -> Vec<EventSpan> {
    let grouped: Vec<Vec<(DeviceSet, bool)>> = steps
        .into_iter()
        .map(|truth| {
            truth
                .events()
                .iter()
                .map(|e| (e.impacted.clone(), e.is_massive(tau)))
                .collect()
        })
        .collect();
    link_event_spans(grouped.iter().map(|g| g.iter()))
}

/// Event-level comparison of predicted spans against ground-truth spans:
/// the temporal counterpart of the per-device [`Confusion`].
///
/// A predicted span *matches* a truth span when the peak classes agree,
/// the step ranges overlap, and the device sets intersect
/// ([`EventSpan::matches`]). Precision is over predicted events, recall
/// over truth events, and detection latency is the gap (in steps) between
/// a truth event's onset and the onset of its earliest matching
/// prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EventConfusion {
    /// Ground-truth events scored.
    pub truth_events: u64,
    /// Predicted events scored.
    pub predicted_events: u64,
    /// Truth events with at least one matching prediction.
    pub matched_truth: u64,
    /// Predicted events matching at least one truth event (the rest are
    /// spurious).
    pub matched_predicted: u64,
    /// Sum over matched truth events of the onset gap to their earliest
    /// matching prediction (clamped at zero for early predictions).
    pub latency_steps: u64,
}

impl EventConfusion {
    /// Of the predicted events, the fraction matching a real one. 1.0 when
    /// nothing was predicted (no claims, no false claims).
    pub fn precision(&self) -> f64 {
        if self.predicted_events == 0 {
            1.0
        } else {
            self.matched_predicted as f64 / self.predicted_events as f64
        }
    }

    /// Of the real events, the fraction detected. 1.0 when nothing real
    /// happened.
    pub fn recall(&self) -> f64 {
        if self.truth_events == 0 {
            1.0
        } else {
            self.matched_truth as f64 / self.truth_events as f64
        }
    }

    /// Harmonic mean of event precision and recall (0 when both vanish).
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Mean detection latency over the matched truth events, in steps
    /// (0 when nothing matched).
    pub fn mean_latency(&self) -> f64 {
        if self.matched_truth == 0 {
            0.0
        } else {
            self.latency_steps as f64 / self.matched_truth as f64
        }
    }

    /// Stable JSON rendering: the raw counters and the derived metrics.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"truth_events\":{},\"predicted_events\":{},",
                "\"matched_truth\":{},\"matched_predicted\":{},",
                "\"latency_steps\":{},",
                "\"event_precision\":{:.6},\"event_recall\":{:.6},",
                "\"event_f1\":{:.6},\"mean_detection_latency\":{:.6}}}"
            ),
            self.truth_events,
            self.predicted_events,
            self.matched_truth,
            self.matched_predicted,
            self.latency_steps,
            self.precision(),
            self.recall(),
            self.f1(),
            self.mean_latency(),
        )
    }
}

/// Scores predicted event spans against ground-truth spans — see
/// [`EventConfusion`] for the matching rule and the derived metrics.
pub fn score_events(truth: &[EventSpan], predicted: &[EventSpan]) -> EventConfusion {
    let mut confusion = EventConfusion {
        truth_events: truth.len() as u64,
        predicted_events: predicted.len() as u64,
        ..EventConfusion::default()
    };
    let mut predicted_matched = vec![false; predicted.len()];
    for t in truth {
        let mut earliest: Option<usize> = None;
        for (pi, p) in predicted.iter().enumerate() {
            if p.matches(t) {
                predicted_matched[pi] = true;
                earliest = Some(match earliest {
                    Some(onset) => onset.min(p.onset),
                    None => p.onset,
                });
            }
        }
        if let Some(onset) = earliest {
            confusion.matched_truth += 1;
            confusion.latency_steps += onset.saturating_sub(t.onset) as u64;
        }
    }
    confusion.matched_predicted = predicted_matched.iter().filter(|&&m| m).count() as u64;
    confusion
}

/// Scores every ground-truth abnormal device of one step: looks each one up
/// through `class_of` (`None` = no verdict, recorded as
/// [`Prediction::Missing`]) and records it against its event's effective
/// class under `tau`.
///
/// Spurious verdicts — devices the method classified that appear in no
/// event — must be recorded by the caller via
/// [`Confusion::record_spurious`], since only the caller knows the full
/// verdict list.
pub fn score_step<F>(confusion: &mut Confusion, truth: &GroundTruth, tau: usize, mut class_of: F)
where
    F: FnMut(DeviceId) -> Option<AnomalyClass>,
{
    for event in truth.events() {
        let truth_class = if event.is_massive(tau) {
            TruthClass::Massive
        } else {
            TruthClass::Isolated
        };
        for id in &event.impacted {
            let prediction = class_of(id)
                .map(Prediction::from)
                .unwrap_or(Prediction::Missing);
            confusion.record(truth_class, prediction);
        }
    }
}

/// [`score_step`] over a flat verdict list, the form every classifier and
/// report produces: builds the id lookup once (later duplicates win, like
/// repeated map inserts) and scores each ground-truth device.
pub fn score_step_classes(
    confusion: &mut Confusion,
    truth: &GroundTruth,
    tau: usize,
    classes: &[(DeviceId, AnomalyClass)],
) {
    let by_id: std::collections::BTreeMap<DeviceId, AnomalyClass> =
        classes.iter().copied().collect();
    score_step(confusion, truth, tau, |id| by_id.get(&id).copied());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ground_truth::ErrorEvent;
    use anomaly_core::DeviceSet;

    fn truth() -> GroundTruth {
        GroundTruth::new(vec![
            ErrorEvent {
                impacted: DeviceSet::from([0, 1, 2, 3]),
                intended_isolated: false,
            },
            ErrorEvent {
                impacted: DeviceSet::from([7]),
                intended_isolated: true,
            },
        ])
    }

    #[test]
    fn score_step_records_every_truth_device() {
        let mut c = Confusion::new();
        // Device 2 abstains, device 3 gets no verdict, 7 is misclassified.
        score_step(&mut c, &truth(), 3, |id| match id.0 {
            0 | 1 => Some(AnomalyClass::Massive),
            2 => Some(AnomalyClass::Unresolved),
            7 => Some(AnomalyClass::Massive),
            _ => None,
        });
        assert_eq!(c.total(), 5);
        assert_eq!(c.correct(), 2);
        assert_eq!(c.count(TruthClass::Massive, Prediction::Unresolved), 1);
        assert_eq!(c.count(TruthClass::Massive, Prediction::Missing), 1);
        assert_eq!(c.count(TruthClass::Isolated, Prediction::Massive), 1);
        assert_eq!(c.mistaken(), 1);
        assert_eq!(c.undecided(), 2);
    }

    #[test]
    fn metrics_follow_the_definitions() {
        let mut c = Confusion::new();
        // 3 massive right, 1 massive called isolated, 1 isolated called
        // massive, 1 isolated right.
        for _ in 0..3 {
            c.record(TruthClass::Massive, Prediction::Massive);
        }
        c.record(TruthClass::Massive, Prediction::Isolated);
        c.record(TruthClass::Isolated, Prediction::Massive);
        c.record(TruthClass::Isolated, Prediction::Isolated);
        assert!((c.precision(TruthClass::Massive) - 0.75).abs() < 1e-12);
        assert!((c.recall(TruthClass::Massive) - 0.75).abs() < 1e-12);
        assert!((c.f1(TruthClass::Massive) - 0.75).abs() < 1e-12);
        assert!((c.precision(TruthClass::Isolated) - 0.5).abs() < 1e-12);
        assert!((c.accuracy() - 4.0 / 6.0).abs() < 1e-12);
        let expected_macro = (c.f1(TruthClass::Isolated) + c.f1(TruthClass::Massive)) / 2.0;
        assert!((c.macro_f1() - expected_macro).abs() < 1e-12);
    }

    #[test]
    fn degenerate_metrics_are_well_defined() {
        let c = Confusion::new();
        assert_eq!(c.accuracy(), 0.0);
        assert_eq!(c.precision(TruthClass::Massive), 1.0);
        assert_eq!(c.recall(TruthClass::Massive), 1.0);
        // Never predicted, never occurred: vacuous perfection.
        assert_eq!(c.f1(TruthClass::Isolated), 1.0);
    }

    #[test]
    fn spurious_counts_are_separate() {
        let mut c = Confusion::new();
        c.record(TruthClass::Massive, Prediction::Massive);
        c.record_spurious(AnomalyClass::Isolated);
        c.record_spurious(AnomalyClass::Isolated);
        c.record_spurious(AnomalyClass::Massive);
        assert_eq!(c.spurious(AnomalyClass::Isolated), 2);
        assert_eq!(c.spurious(AnomalyClass::Massive), 1);
        assert_eq!(c.spurious_total(), 3);
        // They do not move precision: the matrix is truth-set only.
        assert_eq!(c.precision(TruthClass::Isolated), 1.0);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Confusion::new();
        a.record(TruthClass::Isolated, Prediction::Isolated);
        let mut b = Confusion::new();
        b.record(TruthClass::Isolated, Prediction::Isolated);
        b.record(TruthClass::Massive, Prediction::Unresolved);
        b.record_spurious(AnomalyClass::Unresolved);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.correct(), 2);
        assert_eq!(a.spurious(AnomalyClass::Unresolved), 1);
    }

    #[test]
    fn json_is_stable_and_complete() {
        let mut c = Confusion::new();
        c.record(TruthClass::Massive, Prediction::Massive);
        c.record_spurious(AnomalyClass::Isolated);
        let json = c.to_json();
        assert!(json.contains("\"matrix\""));
        assert!(json.contains("\"macro_f1\""));
        assert!(json.contains("\"spurious\":{\"isolated\":1"));
        assert_eq!(json, c.to_json());
    }

    fn event(ids: &[u32], intended_isolated: bool) -> ErrorEvent {
        ErrorEvent {
            impacted: DeviceSet::from(ids),
            intended_isolated,
        }
    }

    fn span(onset: usize, last: usize, ids: &[u32], massive: bool) -> EventSpan {
        EventSpan {
            onset,
            last,
            devices: DeviceSet::from(ids),
            massive,
        }
    }

    #[test]
    fn truth_linking_chains_overlapping_consecutive_steps() {
        // Steps 0-2: the same cluster degrades; step 1 adds a lone fault;
        // step 3 is quiet; step 4 re-faults the cluster's devices.
        let steps = [
            GroundTruth::new(vec![event(&[0, 1, 2, 3], false)]),
            GroundTruth::new(vec![event(&[1, 2, 3, 4], false), event(&[9], true)]),
            GroundTruth::new(vec![event(&[2, 3, 4, 5], false)]),
            GroundTruth::new(vec![]),
            GroundTruth::new(vec![event(&[0, 1, 2, 3], false)]),
        ];
        let spans = link_truth_events(steps.iter(), 3);
        assert_eq!(spans.len(), 3);
        // The cluster chains across steps 0..=2 with a growing device set.
        assert_eq!(spans[0], span(0, 2, &[0, 1, 2, 3, 4, 5], true));
        // The lone fault is its own single-step span.
        assert_eq!(spans[1], span(1, 1, &[9], false));
        // The quiet step 3 breaks the chain: step 4 is a new span.
        assert_eq!(spans[2], span(4, 4, &[0, 1, 2, 3], true));
    }

    #[test]
    fn effective_class_follows_the_peak_size() {
        // An intended-massive event that only ever impacts 2 devices is
        // effectively isolated; growth past tau flips the span to massive.
        let steps = [
            GroundTruth::new(vec![event(&[0, 1], false)]),
            GroundTruth::new(vec![event(&[0, 1, 2, 3], false)]),
        ];
        let spans = link_truth_events(steps.iter(), 3);
        assert_eq!(spans.len(), 1);
        assert!(spans[0].massive, "peak size 4 > tau 3");
        let spans = link_truth_events(steps[..1].iter(), 3);
        assert!(!spans[0].massive);
    }

    #[test]
    fn same_step_groups_with_distinct_components_split_spans() {
        // Step 0: one blob (component 0). Step 1: two groups that BOTH
        // overlap the blob's historical devices but carry distinct
        // components — the second must open its own span instead of
        // folding into the claimed one.
        let steps = [
            vec![(DeviceSet::from([0u32, 1, 2, 3]), true, Some(0))],
            vec![
                (DeviceSet::from([0u32, 1]), true, Some(0)),
                (DeviceSet::from([2u32, 3, 4]), true, Some(1)),
            ],
        ];
        let spans = link_component_event_spans(steps.iter().map(|g| g.iter()));
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0], span(0, 1, &[0, 1, 2, 3], true));
        assert_eq!(spans[1], span(1, 1, &[2, 3, 4], true));
    }

    #[test]
    fn components_are_epoch_local_and_never_link_across_steps() {
        // The same physical blob gets rank 0 at step 0 and rank 5 at
        // step 1 (an unrelated component vanished): device overlap still
        // chains it into one span — ranks only arbitrate within a step.
        let steps = [
            vec![(DeviceSet::from([0u32, 1]), true, Some(0))],
            vec![(DeviceSet::from([1u32, 2]), true, Some(5))],
        ];
        let spans = link_component_event_spans(steps.iter().map(|g| g.iter()));
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0], span(0, 1, &[0, 1, 2], true));
    }

    #[test]
    fn componentless_groups_link_like_the_blind_linker() {
        let blind = [
            vec![(DeviceSet::from([0u32, 1]), true)],
            vec![
                (DeviceSet::from([1u32, 2]), true),
                (DeviceSet::from([2u32, 9]), false),
            ],
        ];
        let aware: Vec<Vec<(DeviceSet, bool, Option<u32>)>> = blind
            .iter()
            .map(|g| g.iter().map(|(d, m)| (d.clone(), *m, None)).collect())
            .collect();
        assert_eq!(
            link_event_spans(blind.iter().map(|g| g.iter())),
            link_component_event_spans(aware.iter().map(|g| g.iter())),
        );
    }

    #[test]
    fn event_matching_needs_class_time_and_device_overlap() {
        let truth = vec![span(2, 6, &[0, 1, 2, 3], true), span(4, 4, &[9], false)];
        // Matches the cluster two steps late; wrong class on the loner.
        let predicted = vec![
            span(4, 6, &[1, 2, 3], true),
            span(4, 4, &[9], true),
            span(0, 0, &[7], false),
        ];
        let c = score_events(&truth, &predicted);
        assert_eq!(c.truth_events, 2);
        assert_eq!(c.predicted_events, 3);
        assert_eq!(c.matched_truth, 1);
        assert_eq!(c.matched_predicted, 1);
        assert_eq!(c.latency_steps, 2);
        assert!((c.precision() - 1.0 / 3.0).abs() < 1e-12);
        assert!((c.recall() - 0.5).abs() < 1e-12);
        assert!((c.mean_latency() - 2.0).abs() < 1e-12);
        assert!(c.f1() > 0.0);
    }

    #[test]
    fn early_predictions_have_zero_latency_and_empty_sides_are_vacuous() {
        let truth = vec![span(3, 5, &[0], false)];
        let predicted = vec![span(1, 5, &[0], false)];
        let c = score_events(&truth, &predicted);
        assert_eq!(c.latency_steps, 0, "early onset clamps to zero");
        let empty = score_events(&[], &[]);
        assert_eq!(empty.precision(), 1.0);
        assert_eq!(empty.recall(), 1.0);
        assert_eq!(empty.f1(), 1.0);
        assert_eq!(empty.mean_latency(), 0.0);
    }

    #[test]
    fn event_json_is_stable() {
        let c = score_events(
            &[span(0, 2, &[0, 1, 2, 3], true)],
            &[span(1, 2, &[0, 1], true)],
        );
        let json = c.to_json();
        assert!(json.contains("\"event_f1\":1.000000"), "{json}");
        assert!(
            json.contains("\"mean_detection_latency\":1.000000"),
            "{json}"
        );
        assert_eq!(json, c.to_json());
    }
}
