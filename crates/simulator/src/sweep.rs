//! Parameter sweeps behind Tables II/III and Figures 7–9.
//!
//! Each sweep runs many seeded steps per `(A, G)` grid point, aggregates
//! with [`OnlineStats`], and reports the ratios the paper plots.

use crate::config::{ScenarioConfig, SimulationError};
use crate::generator::Simulation;
use crate::runner::{analyze_step, StepReport};
use anomaly_analytic::OnlineStats;

/// Aggregate measurements for one `(A, G)` grid point.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Errors per step `A`.
    pub errors_per_step: usize,
    /// Isolated-error probability `G`.
    pub isolated_prob: f64,
    /// Steps aggregated.
    pub steps: u64,
    /// Total flagged devices across steps.
    pub total_abnormal: u64,
    /// Total unresolved devices across steps.
    pub total_unresolved: u64,
    /// Total isolated-truth devices classified massive (Figure 8 numerator).
    pub total_missed: u64,
    /// Per-step `|U_k|/|A_k|` statistics.
    pub u_ratio: OnlineStats,
    /// Per-step missed-detection-rate statistics.
    pub missed_rate: OnlineStats,
}

impl SweepPoint {
    /// Pooled `Σ|U_k| / Σ|A_k|` (the Figures 7/9 y-value), as a percentage.
    pub fn pooled_u_ratio_pct(&self) -> f64 {
        if self.total_abnormal == 0 {
            0.0
        } else {
            100.0 * self.total_unresolved as f64 / self.total_abnormal as f64
        }
    }

    /// Pooled missed-detection rate (Figure 8 y-value), as a percentage.
    pub fn pooled_missed_pct(&self) -> f64 {
        if self.total_abnormal == 0 {
            0.0
        } else {
            100.0 * self.total_missed as f64 / self.total_abnormal as f64
        }
    }
}

/// Runs `steps` simulation intervals per `(A, G)` point and aggregates.
///
/// `full` selects exact characterization (Theorem 7 NSC); the figure
/// harness uses `true`. Each grid point gets an independent deterministic
/// seed derived from `base.seed`.
///
/// # Errors
///
/// Propagates configuration validation failures.
pub fn sweep_grid(
    base: &ScenarioConfig,
    a_values: &[usize],
    g_values: &[f64],
    steps: u64,
    full: bool,
) -> Result<Vec<SweepPoint>, SimulationError> {
    let mut out = Vec::with_capacity(a_values.len() * g_values.len());
    for (ai, &a) in a_values.iter().enumerate() {
        for (gi, &g) in g_values.iter().enumerate() {
            let seed = base
                .seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add((ai as u64) << 32 | gi as u64);
            let config = base
                .with_errors_per_step(a)
                .with_isolated_prob(g)
                .with_seed(seed);
            let mut sim = Simulation::new(config)?;
            let mut point = SweepPoint {
                errors_per_step: a,
                isolated_prob: g,
                steps,
                total_abnormal: 0,
                total_unresolved: 0,
                total_missed: 0,
                u_ratio: OnlineStats::new(),
                missed_rate: OnlineStats::new(),
            };
            for _ in 0..steps {
                let report: StepReport = analyze_step(&sim.step(), full);
                point.total_abnormal += report.abnormal as u64;
                point.total_unresolved += report.unresolved as u64;
                point.total_missed += report.missed_isolated_as_massive as u64;
                point.u_ratio.push(report.unresolved_ratio());
                point.missed_rate.push(report.missed_rate());
            }
            out.push(point);
        }
    }
    Ok(out)
}

/// One point of the sampling-granularity experiment (Section VII-C).
#[derive(Debug, Clone, PartialEq)]
pub struct GranularityPoint {
    /// Snapshots taken per epoch (the sampling frequency).
    pub frequency: usize,
    /// Errors landing in each snapshot interval (`a_total / frequency`).
    pub errors_per_interval: usize,
    /// Pooled `Σ|U_k| / Σ|A_k|` over the epoch, in percent.
    pub unresolved_pct: f64,
}

/// The sampling-granularity experiment of Section VII-C: a fixed workload of
/// `a_total` errors per epoch is observed at different sampling frequencies.
/// Sampling `f` times per epoch means each interval carries `a_total / f`
/// errors; the paper's claim — *"by sampling sufficiently often one's
/// neighbourhood, the number of unresolved configurations drastically
/// shrinks"* — shows up as `unresolved_pct` decreasing in `f`.
///
/// # Errors
///
/// Propagates configuration validation failures.
///
/// # Panics
///
/// Panics if `a_total == 0` or any frequency is 0.
pub fn granularity_sweep(
    base: &ScenarioConfig,
    a_total: usize,
    frequencies: &[usize],
    epochs: u64,
    full: bool,
) -> Result<Vec<GranularityPoint>, SimulationError> {
    assert!(a_total > 0, "the epoch must carry at least one error");
    let mut out = Vec::with_capacity(frequencies.len());
    for &f in frequencies {
        assert!(f > 0, "sampling frequency must be positive");
        let per_interval = (a_total / f).max(1);
        let config = base
            .with_errors_per_step(per_interval)
            .with_seed(base.seed.wrapping_add(f as u64 * 7919));
        let mut sim = Simulation::new(config)?;
        let (mut unresolved, mut abnormal) = (0u64, 0u64);
        for _ in 0..epochs {
            for _ in 0..f {
                let report = analyze_step(&sim.step(), full);
                unresolved += report.unresolved as u64;
                abnormal += report.abnormal as u64;
            }
        }
        out.push(GranularityPoint {
            frequency: f,
            errors_per_interval: per_interval,
            unresolved_pct: if abnormal == 0 {
                0.0
            } else {
                100.0 * unresolved as f64 / abnormal as f64
            },
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> ScenarioConfig {
        let mut c = ScenarioConfig::paper_defaults(99);
        c.n = 300;
        c
    }

    #[test]
    fn grid_covers_all_points() {
        let points = sweep_grid(&base(), &[5, 10], &[0.0, 1.0], 2, false).unwrap();
        assert_eq!(points.len(), 4);
        for p in &points {
            assert_eq!(p.steps, 2);
            assert!(p.total_abnormal > 0);
        }
    }

    #[test]
    fn pooled_ratios_are_percentages() {
        let points = sweep_grid(&base(), &[8], &[0.5], 3, true).unwrap();
        let p = &points[0];
        assert!((0.0..=100.0).contains(&p.pooled_u_ratio_pct()));
        assert!((0.0..=100.0).contains(&p.pooled_missed_pct()));
    }

    #[test]
    fn sweep_is_deterministic() {
        let a = sweep_grid(&base(), &[6], &[0.3], 2, false).unwrap();
        let b = sweep_grid(&base(), &[6], &[0.3], 2, false).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn granularity_points_cover_frequencies() {
        let points = granularity_sweep(&base(), 12, &[1, 3], 1, false).unwrap();
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].errors_per_interval, 12);
        assert_eq!(points[1].errors_per_interval, 4);
    }

    #[test]
    fn single_error_per_interval_has_no_unresolved() {
        // Frequency equal to the workload: one error per snapshot, hence no
        // superposition and no unresolved configurations.
        let points = granularity_sweep(&base(), 6, &[6], 2, true).unwrap();
        assert_eq!(points[0].unresolved_pct, 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one error")]
    fn granularity_rejects_empty_epoch() {
        let _ = granularity_sweep(&base(), 0, &[1], 1, false);
    }

    #[test]
    fn zero_abnormal_is_handled() {
        let p = SweepPoint {
            errors_per_step: 0,
            isolated_prob: 0.0,
            steps: 0,
            total_abnormal: 0,
            total_unresolved: 0,
            total_missed: 0,
            u_ratio: OnlineStats::new(),
            missed_rate: OnlineStats::new(),
        };
        assert_eq!(p.pooled_u_ratio_pct(), 0.0);
        assert_eq!(p.pooled_missed_pct(), 0.0);
    }
}
