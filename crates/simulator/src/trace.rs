//! Scenario traces: record simulated steps to a portable text format and
//! replay them later — regression fixtures, cross-machine comparisons, and
//! "send me the scenario that broke" workflows.
//!
//! The format is line-oriented and human-inspectable:
//!
//! ```text
//! anomaly-trace v1
//! n 6 dim 1 r 0.03 tau 3
//! step
//! before 0.9 0.91 0.92 0.93 0.94 0.92
//! after 0.4 0.41 0.42 0.43 0.44 0.1
//! event isolated 5
//! event massive 0 1 2 3 4
//! end
//! ```

use crate::generator::StepOutcome;
use crate::ground_truth::{ErrorEvent, GroundTruth};
use anomaly_core::{DeviceSet, Params};
use anomaly_qos::{DeviceId, QosSpace, Snapshot, StatePair};
use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

/// A recorded scenario: parameters plus a sequence of steps.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// Population size.
    pub n: usize,
    /// QoS space dimension.
    pub dim: usize,
    /// Characterization parameters.
    pub params: Params,
    /// Recorded steps.
    pub steps: Vec<TraceStep>,
}

/// One recorded interval.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStep {
    /// Snapshots before/after.
    pub pair: StatePair,
    /// Ground-truth events.
    pub truth: GroundTruth,
}

/// Errors raised when parsing a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TraceError {
    /// Missing or wrong magic header.
    BadHeader,
    /// A line failed to parse.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        reason: String,
    },
    /// The trace body was structurally inconsistent.
    Inconsistent {
        /// Description of the inconsistency.
        reason: String,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::BadHeader => write!(f, "not an anomaly-trace v1 file"),
            TraceError::BadLine { line, reason } => write!(f, "line {line}: {reason}"),
            TraceError::Inconsistent { reason } => write!(f, "inconsistent trace: {reason}"),
        }
    }
}

impl Error for TraceError {}

impl Trace {
    /// Starts an empty trace for a population of `n` devices in `dim`
    /// services, characterized with `params`.
    pub fn new(n: usize, dim: usize, params: Params) -> Self {
        Trace {
            n,
            dim,
            params,
            steps: Vec::new(),
        }
    }

    /// Appends a simulated step.
    ///
    /// # Panics
    ///
    /// Panics if the outcome disagrees with the trace's population or
    /// dimension.
    pub fn record(&mut self, outcome: &StepOutcome) {
        assert_eq!(outcome.pair.len(), self.n, "population mismatch");
        assert_eq!(outcome.pair.dim(), self.dim, "dimension mismatch");
        self.steps.push(TraceStep {
            pair: outcome.pair.clone(),
            truth: outcome.truth.clone(),
        });
    }

    /// A sub-trace holding the steps of `range`, with the same parameters.
    ///
    /// Out-of-bounds indices are clamped to the recorded step count. Useful
    /// for replaying a scenario in segments — e.g. reproducing fleet
    /// membership changes that happened between two recording sessions.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Trace {
        let end = range.end.min(self.steps.len());
        let start = range.start.min(end);
        Trace {
            n: self.n,
            dim: self.dim,
            params: self.params,
            steps: self.steps[start..end].to_vec(),
        }
    }

    /// Serializes to the v1 text format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str("anomaly-trace v1\n");
        let _ = writeln!(
            out,
            "n {} dim {} r {} tau {}",
            self.n,
            self.dim,
            self.params.radius(),
            self.params.tau()
        );
        for step in &self.steps {
            out.push_str("step\n");
            for (label, snap) in [("before", step.pair.before()), ("after", step.pair.after())] {
                out.push_str(label);
                for (_, p) in snap.iter() {
                    for c in p.coords() {
                        let _ = write!(out, " {c}");
                    }
                }
                out.push('\n');
            }
            for event in step.truth.events() {
                out.push_str("event ");
                out.push_str(if event.intended_isolated {
                    "isolated"
                } else {
                    "massive"
                });
                for id in &event.impacted {
                    let _ = write!(out, " {}", id.0);
                }
                out.push('\n');
            }
            out.push_str("end\n");
        }
        out
    }

    /// Parses the v1 text format.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError`] describing the first problem found.
    pub fn from_text(text: &str) -> Result<Self, TraceError> {
        let mut lines = text.lines().enumerate();
        let Some((_, magic)) = lines.next() else {
            return Err(TraceError::BadHeader);
        };
        if magic.trim() != "anomaly-trace v1" {
            return Err(TraceError::BadHeader);
        }
        let Some((lineno, header)) = lines.next() else {
            return Err(TraceError::BadHeader);
        };
        let fields: Vec<&str> = header.split_whitespace().collect();
        let bad = |line: usize, reason: &str| TraceError::BadLine {
            line: line + 1,
            reason: reason.to_string(),
        };
        if fields.len() != 8
            || fields[0] != "n"
            || fields[2] != "dim"
            || fields[4] != "r"
            || fields[6] != "tau"
        {
            return Err(bad(lineno, "expected `n <n> dim <d> r <r> tau <tau>`"));
        }
        let n: usize = fields[1].parse().map_err(|_| bad(lineno, "bad n"))?;
        let dim: usize = fields[3].parse().map_err(|_| bad(lineno, "bad dim"))?;
        let r: f64 = fields[5].parse().map_err(|_| bad(lineno, "bad r"))?;
        let tau: usize = fields[7].parse().map_err(|_| bad(lineno, "bad tau"))?;
        let params = Params::new(r, tau).map_err(|e| TraceError::Inconsistent {
            reason: e.to_string(),
        })?;
        let space = QosSpace::new(dim).map_err(|e| TraceError::Inconsistent {
            reason: e.to_string(),
        })?;

        let mut trace = Trace::new(n, dim, params);
        let mut before: Option<Snapshot> = None;
        let mut after: Option<Snapshot> = None;
        let mut events: Vec<ErrorEvent> = Vec::new();
        let mut in_step = false;

        let parse_snapshot = |lineno: usize, rest: &str| -> Result<Snapshot, TraceError> {
            let values: Result<Vec<f64>, _> =
                rest.split_whitespace().map(str::parse::<f64>).collect();
            let values = values.map_err(|_| bad(lineno, "bad coordinate"))?;
            if values.len() != n * dim {
                return Err(bad(lineno, "wrong number of coordinates"));
            }
            let rows: Vec<Vec<f64>> = values.chunks(dim).map(<[f64]>::to_vec).collect();
            Snapshot::from_rows(&space, rows).map_err(|e| TraceError::Inconsistent {
                reason: e.to_string(),
            })
        };

        for (lineno, line) in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if line == "step" {
                if in_step {
                    return Err(bad(lineno, "nested step"));
                }
                in_step = true;
            } else if let Some(rest) = line.strip_prefix("before") {
                before = Some(parse_snapshot(lineno, rest)?);
            } else if let Some(rest) = line.strip_prefix("after") {
                after = Some(parse_snapshot(lineno, rest)?);
            } else if let Some(rest) = line.strip_prefix("event ") {
                let mut parts = rest.split_whitespace();
                let kind = parts
                    .next()
                    .ok_or_else(|| bad(lineno, "missing event kind"))?;
                let intended_isolated = match kind {
                    "isolated" => true,
                    "massive" => false,
                    _ => return Err(bad(lineno, "unknown event kind")),
                };
                let ids: Result<DeviceSet, _> = parts
                    .map(|p| p.parse::<u32>().map(DeviceId))
                    .collect::<Result<Vec<_>, _>>()
                    .map(|v| v.into_iter().collect());
                let impacted = ids.map_err(|_| bad(lineno, "bad device id"))?;
                events.push(ErrorEvent {
                    impacted,
                    intended_isolated,
                });
            } else if line == "end" {
                let (Some(b), Some(a)) = (before.take(), after.take()) else {
                    return Err(TraceError::Inconsistent {
                        reason: "step missing before/after snapshots".into(),
                    });
                };
                let pair = StatePair::new(b, a).map_err(|e| TraceError::Inconsistent {
                    reason: e.to_string(),
                })?;
                trace.steps.push(TraceStep {
                    pair,
                    truth: GroundTruth::new(std::mem::take(&mut events)),
                });
                in_step = false;
            } else {
                return Err(bad(lineno, "unrecognized line"));
            }
        }
        if in_step {
            return Err(TraceError::Inconsistent {
                reason: "unterminated step".into(),
            });
        }
        Ok(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ScenarioConfig;
    use crate::generator::Simulation;

    fn recorded(seed: u64, steps: usize) -> Trace {
        let mut config = ScenarioConfig::paper_defaults(seed);
        config.n = 50;
        config.errors_per_step = 3;
        let mut sim = Simulation::new(config.clone()).unwrap();
        let mut trace = Trace::new(config.n, config.dim, config.params);
        for _ in 0..steps {
            trace.record(&sim.step());
        }
        trace
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let trace = recorded(5, 3);
        let text = trace.to_text();
        let parsed = Trace::from_text(&text).unwrap();
        assert_eq!(trace, parsed);
    }

    #[test]
    fn slice_preserves_parameters_and_clamps() {
        let trace = recorded(8, 4);
        let mid = trace.slice(1..3);
        assert_eq!(mid.n, trace.n);
        assert_eq!(mid.params, trace.params);
        assert_eq!(mid.steps, trace.steps[1..3].to_vec());
        assert_eq!(trace.slice(2..99).steps.len(), 2);
        assert!(trace.slice(7..9).steps.is_empty());
    }

    #[test]
    fn header_is_validated() {
        assert_eq!(Trace::from_text(""), Err(TraceError::BadHeader));
        assert_eq!(
            Trace::from_text("something else\n"),
            Err(TraceError::BadHeader)
        );
    }

    #[test]
    fn bad_coordinate_is_reported_with_line() {
        let trace = recorded(6, 1);
        let text = trace.to_text().replace("step\nbefore ", "step\nbefore x");
        match Trace::from_text(&text) {
            Err(TraceError::BadLine { line, .. }) => assert!(line > 2),
            other => panic!("expected BadLine, got {other:?}"),
        }
    }

    #[test]
    fn unterminated_step_is_rejected() {
        let trace = recorded(7, 1);
        let mut text = trace.to_text();
        text = text.replace("end\n", "");
        assert!(matches!(
            Trace::from_text(&text),
            Err(TraceError::Inconsistent { .. })
        ));
    }

    #[test]
    fn replayed_steps_characterize_identically() {
        use crate::generator::StepOutcome;
        use crate::runner::analyze_step;
        let mut config = ScenarioConfig::paper_defaults(9);
        config.n = 80;
        config.errors_per_step = 4;
        let mut sim = Simulation::new(config.clone()).unwrap();
        let outcome = sim.step();
        let mut trace = Trace::new(config.n, config.dim, config.params);
        trace.record(&outcome);
        let parsed = Trace::from_text(&trace.to_text()).unwrap();
        let replayed = StepOutcome {
            pair: parsed.steps[0].pair.clone(),
            truth: parsed.steps[0].truth.clone(),
            recovered: DeviceSet::new(),
            config: config.clone(),
        };
        assert_eq!(analyze_step(&outcome, true), analyze_step(&replayed, true));
    }

    #[test]
    fn error_display() {
        let e = TraceError::BadLine {
            line: 3,
            reason: "oops".into(),
        };
        assert!(e.to_string().contains("line 3"));
    }
}
