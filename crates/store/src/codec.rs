//! Payload byte-building: the fixed-width little-endian encoding every
//! record payload is written in.
//!
//! [`Enc`] appends; [`Dec`] consumes, returning a typed [`DecodeError`]
//! on any shortfall instead of panicking. Floats travel as IEEE-754 bit
//! patterns (`f64::to_bits`), so every value — including NaN payloads and
//! signed zeros — round-trips exactly; nothing here formats or parses
//! decimal text.

use std::fmt;

/// A payload failed to decode: it ended early or held an impossible tag.
///
/// The `field` names what was being decoded — restore errors surface it
/// verbatim, so keep the labels stable and human-readable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// Byte position inside the payload where decoding stopped.
    pub offset: usize,
    /// What was being decoded when it failed.
    pub field: &'static str,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "payload decode failed at byte {} while reading {}",
            self.offset, self.field
        )
    }
}

impl std::error::Error for DecodeError {}

/// Append-only payload builder.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// An empty payload.
    pub fn new() -> Self {
        Enc::default()
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u64` (lengths, counts).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Appends an `f64` as its IEEE-754 bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends a `bool` as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Appends an optional `u64`: presence byte, then the value.
    pub fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(x) => {
                self.bool(true);
                self.u64(x);
            }
            None => self.bool(false),
        }
    }

    /// Appends a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) {
        self.usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Appends a length-prefixed slice of `u64`s.
    pub fn u64s(&mut self, v: &[u64]) {
        self.usize(v.len());
        for &x in v {
            self.u64(x);
        }
    }

    /// Appends a length-prefixed slice of `f64` bit patterns.
    pub fn f64s(&mut self, v: &[f64]) {
        self.usize(v.len());
        for &x in v {
            self.f64(x);
        }
    }

    /// Bytes encoded so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been encoded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The finished payload.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Forward-only payload consumer over a borrowed byte slice.
#[derive(Debug)]
pub struct Dec<'a> {
    data: &'a [u8],
    pos: usize,
}

/// Longest length prefix [`Dec`] honors for a single vector or byte
/// string — a corrupt length must not turn into a giant allocation.
const MAX_SEQ_LEN: u64 = 1 << 32;

impl<'a> Dec<'a> {
    /// A decoder positioned at the start of `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Dec { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len().saturating_sub(self.pos)
    }

    fn take(&mut self, n: usize, field: &'static str) -> Result<&'a [u8], DecodeError> {
        let end = self.pos.checked_add(n).ok_or(DecodeError {
            offset: self.pos,
            field,
        })?;
        let slice = self.data.get(self.pos..end).ok_or(DecodeError {
            offset: self.pos,
            field,
        })?;
        self.pos = end;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self, field: &'static str) -> Result<u8, DecodeError> {
        Ok(self.take(1, field)?.first().copied().unwrap_or(0))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self, field: &'static str) -> Result<u32, DecodeError> {
        let offset = self.pos;
        let bytes = self.take(4, field)?;
        let arr: [u8; 4] = bytes
            .try_into()
            .map_err(|_| DecodeError { offset, field })?;
        Ok(u32::from_le_bytes(arr))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self, field: &'static str) -> Result<u64, DecodeError> {
        let offset = self.pos;
        let bytes = self.take(8, field)?;
        let arr: [u8; 8] = bytes
            .try_into()
            .map_err(|_| DecodeError { offset, field })?;
        Ok(u64::from_le_bytes(arr))
    }

    /// Reads a `u64` written by [`Enc::usize`] back as a `usize`.
    pub fn usize(&mut self, field: &'static str) -> Result<usize, DecodeError> {
        let offset = self.pos;
        let v = self.u64(field)?;
        usize::try_from(v).map_err(|_| DecodeError { offset, field })
    }

    /// Reads an `f64` from its bit pattern.
    pub fn f64(&mut self, field: &'static str) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.u64(field)?))
    }

    /// Reads a `bool`; any byte other than 0 or 1 is a decode error.
    pub fn bool(&mut self, field: &'static str) -> Result<bool, DecodeError> {
        let offset = self.pos;
        match self.u8(field)? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(DecodeError { offset, field }),
        }
    }

    /// Reads a one-byte enum tag; any byte `>= variants` is a decode
    /// error at the tag's offset.
    pub fn tag(&mut self, field: &'static str, variants: u8) -> Result<u8, DecodeError> {
        let offset = self.pos;
        let v = self.u8(field)?;
        if v < variants {
            Ok(v)
        } else {
            Err(DecodeError { offset, field })
        }
    }

    /// Reads an optional `u64` written by [`Enc::opt_u64`].
    pub fn opt_u64(&mut self, field: &'static str) -> Result<Option<u64>, DecodeError> {
        if self.bool(field)? {
            Ok(Some(self.u64(field)?))
        } else {
            Ok(None)
        }
    }

    /// Reads a sequence length prefix, bounded by an allocation cap.
    pub fn seq_len(&mut self, field: &'static str) -> Result<usize, DecodeError> {
        let offset = self.pos;
        let n = self.u64(field)?;
        if n > MAX_SEQ_LEN {
            return Err(DecodeError { offset, field });
        }
        usize::try_from(n).map_err(|_| DecodeError { offset, field })
    }

    /// Reads a length-prefixed byte string.
    pub fn bytes(&mut self, field: &'static str) -> Result<&'a [u8], DecodeError> {
        let n = self.seq_len(field)?;
        self.take(n, field)
    }

    /// Reads a length-prefixed slice of `u64`s.
    pub fn u64s(&mut self, field: &'static str) -> Result<Vec<u64>, DecodeError> {
        let n = self.seq_len(field)?;
        let mut out = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            out.push(self.u64(field)?);
        }
        Ok(out)
    }

    /// Reads a length-prefixed slice of `f64`s.
    pub fn f64s(&mut self, field: &'static str) -> Result<Vec<f64>, DecodeError> {
        let n = self.seq_len(field)?;
        let mut out = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            out.push(self.f64(field)?);
        }
        Ok(out)
    }

    /// Asserts the payload was consumed exactly — trailing garbage means
    /// the writer and reader disagree on the schema.
    pub fn finish(self, field: &'static str) -> Result<(), DecodeError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(DecodeError {
                offset: self.pos,
                field,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip_exactly() {
        let mut enc = Enc::new();
        enc.u8(7);
        enc.u32(0xDEAD_BEEF);
        enc.u64(u64::MAX);
        enc.f64(-0.0);
        enc.f64(f64::NAN);
        enc.bool(true);
        enc.opt_u64(None);
        enc.opt_u64(Some(42));
        enc.bytes(b"abc");
        enc.f64s(&[1.5, -2.25]);
        enc.u64s(&[3, 4, 5]);
        let bytes = enc.into_bytes();

        let mut dec = Dec::new(&bytes);
        assert_eq!(dec.u8("a").unwrap(), 7);
        assert_eq!(dec.u32("b").unwrap(), 0xDEAD_BEEF);
        assert_eq!(dec.u64("c").unwrap(), u64::MAX);
        assert_eq!(dec.f64("d").unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(dec.f64("e").unwrap().is_nan());
        assert!(dec.bool("f").unwrap());
        assert_eq!(dec.opt_u64("g").unwrap(), None);
        assert_eq!(dec.opt_u64("h").unwrap(), Some(42));
        assert_eq!(dec.bytes("i").unwrap(), b"abc");
        assert_eq!(dec.f64s("j").unwrap(), vec![1.5, -2.25]);
        assert_eq!(dec.u64s("k").unwrap(), vec![3, 4, 5]);
        dec.finish("end").unwrap();
    }

    #[test]
    fn short_payloads_error_instead_of_panicking() {
        let mut dec = Dec::new(&[1, 2]);
        let err = dec.u64("needs-eight").unwrap_err();
        assert_eq!(err.field, "needs-eight");
        assert_eq!(err.offset, 0);
    }

    #[test]
    fn non_boolean_byte_is_a_decode_error() {
        let mut dec = Dec::new(&[9]);
        assert!(dec.bool("flag").is_err());
    }

    #[test]
    fn enum_tags_are_range_checked() {
        let mut dec = Dec::new(&[2, 3]);
        assert_eq!(dec.tag("ok", 3).unwrap(), 2);
        let err = dec.tag("class", 3).unwrap_err();
        assert_eq!(err.field, "class");
        assert_eq!(err.offset, 1);
    }

    #[test]
    fn trailing_garbage_fails_finish() {
        let dec = Dec::new(&[0]);
        assert!(dec.finish("end").is_err());
    }

    #[test]
    fn implausible_length_prefix_is_rejected() {
        let mut enc = Enc::new();
        enc.u64(u64::MAX); // absurd element count
        let bytes = enc.into_bytes();
        let mut dec = Dec::new(&bytes);
        assert!(dec.u64s("huge").is_err());
    }
}
