//! Typed failures of the log layer.
//!
//! Every way a log can disappoint a reader has its own variant — restore
//! paths must be able to tell "this is not a log" ([`StoreError::BadMagic`])
//! from "written by a newer build" ([`StoreError::UnsupportedVersion`]),
//! "bit rot" ([`StoreError::Corrupt`]) and "the process died mid-append"
//! ([`StoreError::TruncatedTail`]) apart, because the right reactions
//! (refuse, upgrade, restore from an older checkpoint, truncate and
//! continue) differ. Nothing in this crate panics on malformed input; the
//! conformance suite's C1 lint covers these sources.

use std::fmt;

/// Why a log could not be written or read.
#[derive(Debug)]
#[non_exhaustive]
pub enum StoreError {
    /// The file does not start with the log magic — not a store log.
    BadMagic,
    /// The log was written by a format this reader does not speak.
    UnsupportedVersion {
        /// Version found in the file header.
        found: u32,
        /// Newest version this build reads.
        supported: u32,
    },
    /// A record failed validation: checksum mismatch, unknown record
    /// kind, or an implausible length prefix.
    Corrupt {
        /// Byte offset of the offending record's frame header.
        offset: u64,
        /// What failed.
        reason: &'static str,
    },
    /// The log ends mid-record — the classic torn final append. Unlike
    /// [`StoreError::Corrupt`], every complete record before the tear is
    /// trustworthy.
    TruncatedTail {
        /// Byte offset of the incomplete record's frame header.
        offset: u64,
    },
    /// The underlying reader or writer failed.
    Io(std::io::Error),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::BadMagic => write!(f, "not a store log (bad magic)"),
            StoreError::UnsupportedVersion { found, supported } => write!(
                f,
                "log format version {found} is newer than supported version {supported}"
            ),
            StoreError::Corrupt { offset, reason } => {
                write!(f, "corrupt record at offset {offset}: {reason}")
            }
            StoreError::TruncatedTail { offset } => {
                write!(f, "log truncated mid-record at offset {offset}")
            }
            StoreError::Io(err) => write!(f, "log I/O failed: {err}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(err: std::io::Error) -> Self {
        StoreError::Io(err)
    }
}
