//! Versioned append-only log format for durable monitor state.
//!
//! `anomaly-store` is the persistence substrate of the pipeline: a
//! dependency-free binary log that a [`Monitor`] checkpoints into and a
//! restarted process restores from, and that accumulates closed anomaly
//! events and per-epoch report summaries for offline replay and scoring.
//! The crate itself knows nothing about monitors — it frames, checksums,
//! and versions opaque payloads; the typed encode/decode of pipeline
//! state lives next to the pipeline (`anomaly_characterization::
//! pipeline::persist`), which is what keeps the dependency arrow pointing
//! one way.
//!
//! # Format
//!
//! ```text
//!   ┌──────────────────────────────── file header ─────────────────────┐
//!   │ magic "ANOMLOG\0" (8 bytes) │ FORMAT_VERSION (u32 LE)            │
//!   ├──────────────────────────────── record 0 ────────────────────────┤
//!   │ kind (u8) │ len (u32 LE) │ fnv1a-64(payload) (u64 LE) │ payload  │
//!   ├──────────────────────────────── record 1 ────────────────────────┤
//!   │ ...                                                              │
//!   └──────────────────────────────────────────────────────────────────┘
//! ```
//!
//! * Records are appended, never rewritten; a log stays valid under
//!   `O_APPEND` semantics and a reader tolerates a torn final record
//!   (reported as [`StoreError::TruncatedTail`], distinct from
//!   corruption).
//! * Every payload carries its own FNV-1a 64 checksum; a flipped byte
//!   surfaces as [`StoreError::Corrupt`] with the record's file offset.
//! * [`FORMAT_VERSION`] follows the same bump rules as the serve crate's
//!   `SIGNATURE_VERSION`: any change to the framing or to a record
//!   payload's meaning bumps it, and readers refuse newer versions with
//!   [`StoreError::UnsupportedVersion`] instead of guessing.
//!
//! Payload byte-building lives in [`codec`] ([`Enc`]/[`Dec`]): fixed-width
//! little-endian integers, `f64` as IEEE-754 bits (exact round-trip, no
//! formatting), length-prefixed byte strings. Framing lives in [`log`]
//! ([`LogWriter`]/[`LogReader`]).
//!
//! [`Monitor`]: ../anomaly_characterization/pipeline/struct.Monitor.html

#![forbid(unsafe_code)]
#![deny(warnings)]
#![deny(missing_docs)]

pub mod codec;
pub mod error;
pub mod log;

pub use codec::{Dec, DecodeError, Enc};
pub use error::StoreError;
pub use log::{checksum, LogReader, LogWriter, Record, RecordKind, FORMAT_VERSION, MAGIC};
