//! Record framing: the length-prefixed, checksummed append-only log.
//!
//! A log is a fixed header (magic + [`FORMAT_VERSION`]) followed by zero
//! or more records. Each record frame is
//! `kind (u8) · len (u32 LE) · fnv1a64(payload) (u64 LE) · payload`.
//! Writers only ever append; readers validate every frame and classify
//! failures precisely (see [`StoreError`]). A reader hitting end-of-file
//! exactly on a frame boundary reports a clean end; anything else is a
//! [`StoreError::TruncatedTail`].

use crate::error::StoreError;
use std::io::{Read, Write};

/// First eight bytes of every log file.
pub const MAGIC: [u8; 8] = *b"ANOMLOG\0";

/// Current log format version.
///
/// Bump rules mirror the serve crate's `SIGNATURE_VERSION`: any change to
/// the frame layout **or** to the meaning of a record payload (field
/// added, reordered, re-encoded) increments this constant, and the
/// version history below gains a line. Readers refuse newer versions
/// ([`StoreError::UnsupportedVersion`]) rather than misinterpret bytes.
///
/// * **v1** — initial format: checkpoint / event / summary / aux records,
///   FNV-1a 64 payload checksums.
pub const FORMAT_VERSION: u32 = 1;

/// Longest payload a reader will allocate for. A corrupt length prefix
/// must surface as [`StoreError::Corrupt`], not an out-of-memory abort.
const MAX_RECORD_LEN: u32 = 1 << 30;

/// FNV-1a 64-bit checksum — dependency-free, deterministic, and plenty
/// for catching torn writes and bit rot in a local log (this is an
/// integrity check, not a cryptographic seal).
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The record families a log holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// A full serialized monitor state — the restore anchor. A log may
    /// hold many; restore uses the last complete one.
    Checkpoint,
    /// One closed (or final-flushed open) anomaly event.
    Event,
    /// One sealed epoch's report summary.
    Summary,
    /// Application-defined side state (e.g. the serve daemon's alert-sink
    /// fold), tagged by the first four payload bytes by convention.
    Aux,
}

impl RecordKind {
    fn to_byte(self) -> u8 {
        match self {
            RecordKind::Checkpoint => 1,
            RecordKind::Event => 2,
            RecordKind::Summary => 3,
            RecordKind::Aux => 4,
        }
    }

    fn from_byte(b: u8) -> Option<RecordKind> {
        match b {
            1 => Some(RecordKind::Checkpoint),
            2 => Some(RecordKind::Event),
            3 => Some(RecordKind::Summary),
            4 => Some(RecordKind::Aux),
            _ => None,
        }
    }
}

/// One validated record read back from a log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// The record family.
    pub kind: RecordKind,
    /// The checksum-verified payload.
    pub payload: Vec<u8>,
    /// Byte offset of the record's frame header in the log.
    pub offset: u64,
}

/// Appends framed records to an underlying writer.
#[derive(Debug)]
pub struct LogWriter<W: Write> {
    inner: W,
    bytes_written: u64,
}

impl<W: Write> LogWriter<W> {
    /// Starts a fresh log on `inner`: writes the header, ready to append.
    pub fn create(mut inner: W) -> Result<Self, StoreError> {
        inner.write_all(&MAGIC)?;
        inner.write_all(&FORMAT_VERSION.to_le_bytes())?;
        Ok(LogWriter {
            inner,
            bytes_written: (MAGIC.len() + 4) as u64,
        })
    }

    /// Appends one record.
    pub fn append(&mut self, kind: RecordKind, payload: &[u8]) -> Result<(), StoreError> {
        let len = u32::try_from(payload.len())
            .ok()
            .filter(|&n| n <= MAX_RECORD_LEN)
            .ok_or(StoreError::Corrupt {
                offset: self.bytes_written,
                reason: "record payload exceeds the maximum record length",
            })?;
        self.inner.write_all(&[kind.to_byte()])?;
        self.inner.write_all(&len.to_le_bytes())?;
        self.inner.write_all(&checksum(payload).to_le_bytes())?;
        self.inner.write_all(payload)?;
        self.bytes_written += 1 + 4 + 8 + u64::from(len);
        Ok(())
    }

    /// Total bytes written so far, header included — the log-size metric
    /// benches report.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Flushes the underlying writer.
    pub fn flush(&mut self) -> Result<(), StoreError> {
        self.inner.flush()?;
        Ok(())
    }

    /// Flushes and returns the underlying writer.
    pub fn into_inner(mut self) -> Result<W, StoreError> {
        self.inner.flush()?;
        Ok(self.inner)
    }
}

impl LogWriter<Vec<u8>> {
    /// Compacts a full log image: every record before the **last complete
    /// checkpoint** is dropped — the checkpoint subsumes them for restore
    /// purposes — and the checkpoint plus everything after it is re-framed
    /// into a fresh image. Restore anchors on the last checkpoint
    /// (`read_log` keeps that contract), so a compacted log restores to
    /// the byte-identical state the original would.
    ///
    /// Dropped pre-checkpoint `Event`/`Summary` records are gone for
    /// offline replay — compaction trades replay history for bounded log
    /// growth; callers that need the full history archive the image
    /// before compacting. A log without any checkpoint has no anchor to
    /// drop behind and compacts to itself (modulo re-framing, which is
    /// byte-identical for valid input).
    ///
    /// # Errors
    ///
    /// Whatever [`LogReader`] reports for a bad image: corrupt or
    /// truncated frames, a bad header, an unsupported version. Nothing is
    /// dropped on error.
    pub fn compact(bytes: &[u8]) -> Result<Vec<u8>, StoreError> {
        let mut reader = LogReader::open(bytes)?;
        let records = reader.read_to_end()?;
        let anchor = records
            .iter()
            .rposition(|r| r.kind == RecordKind::Checkpoint)
            .unwrap_or(0);
        let mut writer = LogWriter::create(Vec::new())?;
        for record in records.get(anchor..).unwrap_or(&[]) {
            writer.append(record.kind, &record.payload)?;
        }
        writer.into_inner()
    }
}

/// Reads and validates framed records from an underlying reader.
#[derive(Debug)]
pub struct LogReader<R: Read> {
    inner: R,
    offset: u64,
}

impl<R: Read> LogReader<R> {
    /// Opens a log on `inner`: reads and verifies the header.
    pub fn open(mut inner: R) -> Result<Self, StoreError> {
        let mut magic = [0u8; 8];
        if fill(&mut inner, &mut magic)? != magic.len() {
            return Err(StoreError::BadMagic);
        }
        if magic != MAGIC {
            return Err(StoreError::BadMagic);
        }
        let mut version = [0u8; 4];
        if fill(&mut inner, &mut version)? != version.len() {
            return Err(StoreError::TruncatedTail { offset: 8 });
        }
        let found = u32::from_le_bytes(version);
        if found > FORMAT_VERSION {
            return Err(StoreError::UnsupportedVersion {
                found,
                supported: FORMAT_VERSION,
            });
        }
        Ok(LogReader {
            inner,
            offset: (MAGIC.len() + 4) as u64,
        })
    }

    /// Reads the next record; `Ok(None)` at a clean end of log.
    pub fn next_record(&mut self) -> Result<Option<Record>, StoreError> {
        let frame_start = self.offset;
        let mut kind_byte = [0u8; 1];
        match fill(&mut self.inner, &mut kind_byte)? {
            0 => return Ok(None), // clean boundary
            n if n < kind_byte.len() => {
                return Err(StoreError::TruncatedTail {
                    offset: frame_start,
                })
            }
            _ => {}
        }
        let kind = kind_byte
            .first()
            .copied()
            .and_then(RecordKind::from_byte)
            .ok_or(StoreError::Corrupt {
                offset: frame_start,
                reason: "unknown record kind",
            })?;

        let mut len_bytes = [0u8; 4];
        if fill(&mut self.inner, &mut len_bytes)? != len_bytes.len() {
            return Err(StoreError::TruncatedTail {
                offset: frame_start,
            });
        }
        let len = u32::from_le_bytes(len_bytes);
        if len > MAX_RECORD_LEN {
            return Err(StoreError::Corrupt {
                offset: frame_start,
                reason: "record length prefix exceeds the maximum record length",
            });
        }

        let mut sum_bytes = [0u8; 8];
        if fill(&mut self.inner, &mut sum_bytes)? != sum_bytes.len() {
            return Err(StoreError::TruncatedTail {
                offset: frame_start,
            });
        }
        let expected = u64::from_le_bytes(sum_bytes);

        let mut payload = vec![0u8; len as usize];
        if fill(&mut self.inner, &mut payload)? != payload.len() {
            return Err(StoreError::TruncatedTail {
                offset: frame_start,
            });
        }
        if checksum(&payload) != expected {
            return Err(StoreError::Corrupt {
                offset: frame_start,
                reason: "payload checksum mismatch",
            });
        }

        self.offset += 1 + 4 + 8 + u64::from(len);
        Ok(Some(Record {
            kind,
            payload,
            offset: frame_start,
        }))
    }

    /// Reads every remaining record into memory.
    pub fn read_to_end(&mut self) -> Result<Vec<Record>, StoreError> {
        let mut records = Vec::new();
        while let Some(record) = self.next_record()? {
            records.push(record);
        }
        Ok(records)
    }
}

/// Reads until `buf` is full or the stream ends; returns the bytes read.
/// `Read::read_exact` conflates a torn tail with an I/O error — the log
/// layer needs to tell them apart.
fn fill<R: Read>(reader: &mut R, buf: &mut [u8]) -> Result<usize, StoreError> {
    let mut filled = 0;
    while filled < buf.len() {
        let slice = buf.get_mut(filled..).unwrap_or(&mut []);
        match reader.read(slice) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(err) if err.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(err) => return Err(StoreError::Io(err)),
        }
    }
    Ok(filled)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_log() -> Vec<u8> {
        let mut writer = LogWriter::create(Vec::new()).unwrap();
        writer.append(RecordKind::Summary, b"epoch-0").unwrap();
        writer.append(RecordKind::Event, b"event-7").unwrap();
        writer.append(RecordKind::Checkpoint, b"state").unwrap();
        writer.append(RecordKind::Aux, b"SINKdata").unwrap();
        writer.into_inner().unwrap()
    }

    #[test]
    fn records_round_trip_in_order() {
        let bytes = sample_log();
        let mut reader = LogReader::open(bytes.as_slice()).unwrap();
        let records = reader.read_to_end().unwrap();
        assert_eq!(records.len(), 4);
        assert_eq!(records[0].kind, RecordKind::Summary);
        assert_eq!(records[0].payload, b"epoch-0");
        assert_eq!(records[1].kind, RecordKind::Event);
        assert_eq!(records[2].kind, RecordKind::Checkpoint);
        assert_eq!(records[3].kind, RecordKind::Aux);
        assert!(records.windows(2).all(|w| w[0].offset < w[1].offset));
    }

    #[test]
    fn bytes_written_matches_the_file_size() {
        let mut writer = LogWriter::create(Vec::new()).unwrap();
        writer.append(RecordKind::Summary, b"abc").unwrap();
        let reported = writer.bytes_written();
        let bytes = writer.into_inner().unwrap();
        assert_eq!(reported, bytes.len() as u64);
    }

    #[test]
    fn bad_magic_is_typed() {
        let err = LogReader::open(&b"NOTALOG\0\x01\0\0\0"[..]).unwrap_err();
        assert!(matches!(err, StoreError::BadMagic));
        // Shorter than the magic itself is also BadMagic, not a panic.
        let err = LogReader::open(&b"AN"[..]).unwrap_err();
        assert!(matches!(err, StoreError::BadMagic));
    }

    #[test]
    fn newer_version_is_refused() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        let err = LogReader::open(bytes.as_slice()).unwrap_err();
        assert!(matches!(
            err,
            StoreError::UnsupportedVersion { found, supported }
                if found == FORMAT_VERSION + 1 && supported == FORMAT_VERSION
        ));
    }

    #[test]
    fn every_flipped_payload_byte_is_caught() {
        let clean = sample_log();
        let header = MAGIC.len() + 4;
        for i in header..clean.len() {
            let mut torn = clean.clone();
            torn[i] ^= 0xFF;
            let mut reader = match LogReader::open(torn.as_slice()) {
                Ok(reader) => reader,
                Err(_) => continue, // header flips caught at open
            };
            let outcome = reader.read_to_end();
            assert!(
                outcome.is_err(),
                "flipping byte {i} must not yield a clean read"
            );
        }
    }

    #[test]
    fn truncated_tail_is_distinguished_from_corruption() {
        let clean = sample_log();
        let header = MAGIC.len() + 4;
        // Every strict prefix that ends inside a record frame must report
        // TruncatedTail; prefixes on frame boundaries read cleanly.
        let mut clean_boundaries = 0;
        for end in header..clean.len() {
            let mut reader = LogReader::open(&clean[..end]).unwrap();
            match reader.read_to_end() {
                Ok(_) => clean_boundaries += 1,
                Err(StoreError::TruncatedTail { .. }) => {}
                Err(other) => panic!("prefix {end}: expected TruncatedTail, got {other}"),
            }
        }
        assert_eq!(
            clean_boundaries, 4,
            "the empty log plus three interior frame boundaries"
        );
    }

    #[test]
    fn unknown_record_kind_is_corrupt() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        bytes.push(99); // no such kind
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&checksum(b"").to_le_bytes());
        let mut reader = LogReader::open(bytes.as_slice()).unwrap();
        let err = reader.next_record().unwrap_err();
        assert!(matches!(
            err,
            StoreError::Corrupt {
                reason: "unknown record kind",
                ..
            }
        ));
    }

    #[test]
    fn implausible_length_prefix_is_corrupt() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        bytes.push(1);
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes());
        let mut reader = LogReader::open(bytes.as_slice()).unwrap();
        assert!(matches!(
            reader.next_record().unwrap_err(),
            StoreError::Corrupt { .. }
        ));
    }

    #[test]
    fn compact_drops_records_before_the_last_checkpoint() {
        let bytes = sample_log();
        let compacted = LogWriter::compact(&bytes).unwrap();
        assert!(compacted.len() < bytes.len());
        let mut reader = LogReader::open(compacted.as_slice()).unwrap();
        let records = reader.read_to_end().unwrap();
        assert_eq!(records.len(), 2, "checkpoint and everything after it");
        assert_eq!(records[0].kind, RecordKind::Checkpoint);
        assert_eq!(records[0].payload, b"state");
        assert_eq!(records[1].kind, RecordKind::Aux);
        assert_eq!(records[1].payload, b"SINKdata");
        // Compacting a compacted log is a fixed point.
        assert_eq!(LogWriter::compact(&compacted).unwrap(), compacted);
    }

    #[test]
    fn compact_anchors_on_the_last_of_many_checkpoints() {
        let mut writer = LogWriter::create(Vec::new()).unwrap();
        writer.append(RecordKind::Checkpoint, b"old").unwrap();
        writer.append(RecordKind::Event, b"stale").unwrap();
        writer.append(RecordKind::Checkpoint, b"new").unwrap();
        writer.append(RecordKind::Summary, b"tail").unwrap();
        let bytes = writer.into_inner().unwrap();
        let compacted = LogWriter::compact(&bytes).unwrap();
        let mut reader = LogReader::open(compacted.as_slice()).unwrap();
        let records = reader.read_to_end().unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].kind, RecordKind::Checkpoint);
        assert_eq!(records[0].payload, b"new", "restore anchors here");
        assert_eq!(records[1].payload, b"tail");
    }

    #[test]
    fn compact_without_a_checkpoint_is_the_identity() {
        let mut writer = LogWriter::create(Vec::new()).unwrap();
        writer.append(RecordKind::Summary, b"epoch-0").unwrap();
        writer.append(RecordKind::Event, b"event-1").unwrap();
        let bytes = writer.into_inner().unwrap();
        assert_eq!(LogWriter::compact(&bytes).unwrap(), bytes);
        // An empty log stays an empty log.
        let empty = LogWriter::create(Vec::new()).unwrap().into_inner().unwrap();
        assert_eq!(LogWriter::compact(&empty).unwrap(), empty);
    }

    #[test]
    fn compact_refuses_bad_input_instead_of_dropping_records() {
        let clean = sample_log();
        // Corrupt payload byte: typed error, no partial output.
        let mut torn = clean.clone();
        let last = torn.len() - 1;
        torn[last] ^= 0xFF;
        assert!(matches!(
            LogWriter::compact(&torn).unwrap_err(),
            StoreError::Corrupt { .. }
        ));
        // Truncated tail: also refused.
        assert!(matches!(
            LogWriter::compact(&clean[..clean.len() - 1]).unwrap_err(),
            StoreError::TruncatedTail { .. }
        ));
    }

    #[test]
    fn empty_log_reads_cleanly() {
        let writer = LogWriter::create(Vec::new()).unwrap();
        let bytes = writer.into_inner().unwrap();
        let mut reader = LogReader::open(bytes.as_slice()).unwrap();
        assert!(reader.next_record().unwrap().is_none());
    }
}
