//! Dimensioning r and tau for a deployment (Section VII-A / Figure 6).
//!
//! Before rolling the characterization out, an operator must pick the
//! consistency radius `r` and the density threshold `tau` so that
//! independent isolated errors almost never masquerade as a massive
//! anomaly. This example reproduces the paper's reasoning for a fleet of
//! 1000 devices and then re-dimensions for a 10x larger fleet.
//!
//! Run with: `cargo run --example dimensioning`

use anomaly_characterization::analytic::{
    prob_false_dense_exceeds, prob_vicinity_at_most, solve_tau, vicinity_probability_bulk,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (n, d, b) = (1000u64, 2usize, 0.005);

    // Step 1: pick r so the vicinity stays small (logarithmic in n).
    println!("vicinity size vs r (n = {n}):");
    for r in [0.02, 0.025, 0.03, 0.05, 0.1] {
        let q = vicinity_probability_bulk(r, d);
        let mean = q * (n - 1) as f64;
        println!(
            "  r = {r:<6} mean vicinity = {mean:>6.1} devices, P{{N <= 30}} = {:.4}",
            prob_vicinity_at_most(n, r, d, 30)
        );
    }
    let r = 0.03; // the paper's choice: ~14 devices, log-ish in n = 1000

    // Step 2: pick the smallest tau with negligible false-dense probability.
    let epsilon = 1e-4;
    let tau = solve_tau(n, r, d, b, epsilon)?;
    println!(
        "\nchosen: r = {r}, tau = {tau} (P{{F > tau}} = {:.2e} < {epsilon:.0e})",
        prob_false_dense_exceeds(n, r, d, b, tau)?
    );

    // Step 3: the same exercise for a 10x fleet — tau must grow a little.
    let big_n = 10_000;
    let big_tau = solve_tau(big_n, r, d, b, epsilon)?;
    println!(
        "for n = {big_n}: tau = {big_tau} (P{{F > tau}} = {:.2e})",
        prob_false_dense_exceeds(big_n, r, d, b, big_tau)?
    );
    assert!(big_tau >= tau);

    println!("\nuse MonitorBuilder::new().radius({r}).tau({tau}) for the n = {n} deployment.");
    Ok(())
}
