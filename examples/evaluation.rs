//! Scenario evaluation: score the paper's pipeline and both centralized
//! baselines on the same workloads, end to end.
//!
//! Run with `cargo run --example evaluation`.

use anomaly_baselines::{KMeansClassifier, TessellationClassifier};
use anomaly_characterization::pipeline::Engine;
use anomaly_eval::{
    evaluate_classifier, evaluate_monitor, NetworkFaultScenario, Scenario, ScenarioScore,
    SimScenario,
};
use anomaly_simulator::score::TruthClass;

fn print_score(score: &ScenarioScore) {
    println!(
        "  {:<28} accuracy {:>5.1}%  F1(isolated) {:.3}  F1(massive) {:.3}  macro F1 {:.3}",
        score.method,
        100.0 * score.confusion.accuracy(),
        score.confusion.f1(TruthClass::Isolated),
        score.confusion.f1(TruthClass::Massive),
        score.macro_f1(),
    );
}

fn evaluate(scenario: &dyn Scenario) -> Result<(), Box<dyn std::error::Error>> {
    let spec = scenario.spec();
    println!(
        "{} — {} devices, {} services, r = {}, tau = {}",
        spec.name,
        spec.population,
        spec.services,
        spec.params.radius(),
        spec.params.tau()
    );
    let paper = evaluate_monitor(scenario, Engine::Sequential)?;
    let kmeans = KMeansClassifier::new(8, spec.params.tau(), 1);
    let tess = TessellationClassifier::new(16, spec.params.tau());
    let km_score = evaluate_classifier(scenario, &kmeans)?;
    let tess_score = evaluate_classifier(scenario, &tess)?;
    print_score(&paper);
    print_score(&km_score);
    print_score(&tess_score);
    println!(
        "  per-instant (paper): {}",
        paper
            .instants
            .iter()
            .map(|i| format!("k{}:{}/{}", i.step, i.correct, i.abnormal))
            .collect::<Vec<_>>()
            .join(" ")
    );
    assert!(
        paper.macro_f1() + 1e-9 >= tess_score.macro_f1().min(km_score.macro_f1()),
        "the local method should not lose to the weaker baseline"
    );
    println!();
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An ISP access tree with one DSLAM outage and one CPE fault per step:
    // the paper's motivating deployment.
    evaluate(&NetworkFaultScenario::small_mixed("network-mixed", 42, 4))?;

    // The Section VII-A Monte-Carlo protocol at the paper's operating
    // point.
    evaluate(&SimScenario::paper("sim-paper", 42, 4))?;

    Ok(())
}
