//! Continuous monitoring with the v2 `Monitor`: the whole paper as one
//! object, with mid-run fleet churn.
//!
//! A fleet of 40 devices streams QoS snapshots. Over 100 sampling instants
//! we inject: nothing (warm-up), a network-level incident hitting 12
//! devices, a quiet period — during which two subscribers cancel and two
//! new ones join — then two independent local faults. The monitor raises
//! exactly the right operator notifications throughout.
//!
//! Run with: `cargo run --example fleet_monitor`

use anomaly_characterization::pipeline::{DeviceKey, Monitor, MonitorBuilder};

const FLEET: usize = 40;
const INCIDENT: std::ops::Range<u64> = 10..22; // devices #10..#21 share a path
const LOCAL_A: u64 = 3;
const LOCAL_B: u64 = 33;

/// QoS level of device `key` at instant `t`.
fn level(key: DeviceKey, t: usize) -> f64 {
    let wiggle = 0.003 * ((t as u64 * 11 + key.0 * 17) as f64).sin();
    let base = match t {
        // t = 40: shared incident degrades one subtree.
        40..=59 if INCIDENT.contains(&key.0) => 0.45 + 0.002 * (key.0 % 4) as f64,
        // t = 80: two unrelated CPE faults.
        80.. if key.0 == LOCAL_A => 0.12,
        80.. if key.0 == LOCAL_B => 0.22,
        _ => 0.90 + 0.002 * (key.0 % 5) as f64,
    };
    (base + wiggle).clamp(0.0, 1.0)
}

/// One row per current member, in the monitor's dense key order.
fn rows_at(monitor: &Monitor, t: usize) -> Vec<Vec<f64>> {
    monitor.keys().iter().map(|&k| vec![level(k, t)]).collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut monitor = MonitorBuilder::new()
        .radius(0.03)
        .tau(3)
        .capacity(FLEET + 2)
        .fleet(FLEET)
        .build()?;

    let mut isp_calls = Vec::new();
    let mut network_events = 0usize;
    for t in 0..100 {
        // t = 70: churn in the quiet period — two subscribers cancel, two
        // new gateways come online under fresh keys.
        if t == 70 {
            monitor.leave(7u64)?;
            monitor.leave(29u64)?;
            monitor.join(100u64)?;
            monitor.join(101u64)?;
        }
        let report = monitor.observe_rows(rows_at(&monitor, t))?;
        if report.has_network_event() {
            network_events += 1;
            println!(
                "t = {t:>3}: network-level event over {} devices (ISP calls suppressed)",
                report.verdicts().len()
            );
        }
        for key in report.operator_notifications() {
            println!("t = {t:>3}: device {key} calls the ISP");
            isp_calls.push((t, key));
        }
    }

    println!(
        "\nsummary: {} network-event instants, {} ISP calls {:?}",
        network_events,
        isp_calls.len(),
        isp_calls
            .iter()
            .map(|(_, k)| k.to_string())
            .collect::<Vec<_>>()
    );
    // Two network-level instants: the incident's onset at t = 40 and its
    // *recovery* at t = 60 — a collective QoS jump is itself a consistent
    // dense motion, which is exactly what an operator wants surfaced.
    assert_eq!(network_events, 2, "incident onset + recovery");
    assert_eq!(isp_calls.len(), 2, "exactly the two CPE faults call home");
    assert!(isp_calls.iter().any(|&(_, k)| k == DeviceKey(LOCAL_A)));
    assert!(isp_calls.iter().any(|&(_, k)| k == DeviceKey(LOCAL_B)));
    assert_eq!(monitor.population(), FLEET, "churn kept the fleet size");
    Ok(())
}
