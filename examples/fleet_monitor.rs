//! Continuous monitoring with [`FleetMonitor`]: the whole paper as one
//! object.
//!
//! A fleet of 40 devices streams QoS snapshots. Over 100 sampling instants
//! we inject: nothing (warm-up), a network-level incident hitting 12
//! devices, a quiet period, then two independent local faults. The monitor
//! raises exactly the right operator notifications.
//!
//! Run with: `cargo run --example fleet_monitor`

use anomaly_characterization::core::Params;
use anomaly_characterization::detectors::{EwmaDetector, VectorDetector};
use anomaly_characterization::pipeline::FleetMonitor;
use anomaly_characterization::qos::{QosSpace, Snapshot};

const FLEET: usize = 40;
const INCIDENT: std::ops::Range<usize> = 10..22; // devices 10..21 share a path
const LOCAL_A: usize = 3;
const LOCAL_B: usize = 33;

fn snapshot_at(space: &QosSpace, t: usize) -> Snapshot {
    let rows: Vec<Vec<f64>> = (0..FLEET)
        .map(|j| {
            let wiggle = 0.003 * ((t * 11 + j * 17) as f64).sin();
            let level = match t {
                // t = 40: shared incident degrades one subtree.
                40..=59 if INCIDENT.contains(&j) => 0.45 + 0.002 * (j % 4) as f64,
                // t = 80: two unrelated CPE faults.
                80.. if j == LOCAL_A => 0.12,
                80.. if j == LOCAL_B => 0.22,
                _ => 0.90 + 0.002 * (j % 5) as f64,
            };
            vec![(level + wiggle).clamp(0.0, 1.0)]
        })
        .collect();
    Snapshot::from_rows(space, rows).expect("rows in range")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let space = QosSpace::new(1)?;
    let mut monitor = FleetMonitor::new(
        Params::new(0.03, 3)?,
        (0..FLEET).map(|_| VectorDetector::homogeneous(1, || EwmaDetector::new(0.3, 4.0))),
    );

    let mut isp_calls = Vec::new();
    let mut network_events = 0usize;
    for t in 0..100 {
        let report = monitor.observe(snapshot_at(&space, t));
        if report.has_network_event() {
            network_events += 1;
            println!(
                "t = {t:>3}: network-level event over {} devices (ISP calls suppressed)",
                report.verdicts.len()
            );
        }
        for j in report.operator_notifications() {
            println!("t = {t:>3}: device {j} calls the ISP");
            isp_calls.push((t, j));
        }
    }

    println!(
        "\nsummary: {} network-event instants, {} ISP calls {:?}",
        network_events,
        isp_calls.len(),
        isp_calls.iter().map(|(_, j)| j.to_string()).collect::<Vec<_>>()
    );
    // Two network-level instants: the incident's onset at t = 40 and its
    // *recovery* at t = 60 — a collective QoS jump is itself a consistent
    // dense motion, which is exactly what an operator wants surfaced.
    assert_eq!(network_events, 2, "incident onset + recovery");
    assert_eq!(isp_calls.len(), 2, "exactly the two CPE faults call home");
    Ok(())
}
