//! The paper's motivating scenario: an ISP operating home gateways,
//! monitored end to end through the `Monitor`'s streaming front-end.
//!
//! A DSLAM fault degrades a whole neighbourhood while one customer's
//! gateway fails on its own. Every gateway streams its measured QoS as an
//! individual report (`NetworkSimulation::measure_stream` — the shape a
//! real collection pipeline delivers) into the monitor — keyed by its
//! topology node id — and decides autonomously whether to call the ISP
//! help desk. The paper's point: only the lone CPE fault should generate a
//! call, even though seventeen gateways saw their QoS collapse.
//!
//! Run with: `cargo run --example isp_gateways`

use anomaly_characterization::detectors::{EwmaDetector, VectorDetector};
use anomaly_characterization::network::{FaultTarget, NetworkConfig, NetworkSimulation};
use anomaly_characterization::pipeline::{DeviceKey, MonitorBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1 core, 2 aggregation switches, 4 DSLAMs, 64 gateways, 2 services.
    let mut net = NetworkSimulation::new(NetworkConfig::small(2024))?;
    let d = net.services().len();
    println!(
        "network: {} gateways behind {} DSLAMs, {d} services monitored",
        net.population(),
        net.topology().dslams().len(),
    );

    // One monitor for the whole fleet: gateways join under their stable
    // topology node ids; σ-gate wide enough for the ±0.005 measurement
    // jitter, r chosen above it.
    let mut monitor = MonitorBuilder::new()
        .radius(0.02)
        .tau(3)
        .services(d)
        .detector_factory(move |_key| {
            Box::new(VectorDetector::homogeneous(d, || {
                EwmaDetector::new(0.3, 6.0)
            }))
        })
        .devices(net.topology().gateways().iter().map(|g| g.0))
        .build()?;

    // Healthy warm-up: per-gateway reports stream in (here in reverse
    // collection order — arrival order never matters), each epoch is
    // sealed, and the detectors learn the baseline.
    for _ in 0..30 {
        let mut updates = net.measure_stream();
        updates.reverse();
        for update in updates {
            monitor.ingest(update.key, update.qos)?;
        }
        let report = monitor.seal()?;
        assert!(report.verdicts().is_empty());
    }

    // Tonight's incidents: DSLAM 2 degrades to half capacity, and one
    // customer on another DSLAM bricks their gateway with a bad firmware
    // update.
    let sick_dslam = net.topology().dslams()[2];
    let sick_gateway = net
        .topology()
        .downstream_gateways(net.topology().dslams()[0])[3];
    net.inject(FaultTarget::Node {
        node: sick_dslam,
        severity: 0.5,
    });
    net.inject(FaultTarget::Gateway {
        gateway: sick_gateway,
        severity: 0.8,
    });
    println!("faults injected: DSLAM {sick_dslam} (16 gateways) + CPE {sick_gateway}");

    // The next collection round streams both faults in; sealing the epoch
    // separates them.
    for update in net.measure_stream() {
        monitor.ingest(update.key, update.qos)?;
    }
    let report = monitor.seal()?;
    let isp_calls = report.operator_notifications();
    for v in report.massive() {
        println!("  {} -> network event (suppressed)", v.key);
    }
    for key in &isp_calls {
        println!("  {key} -> CALL ISP (isolated fault at the customer)");
    }
    println!(
        "\n{} gateways flagged; {} in a network-level event, {} real call(s)",
        report.verdicts().len(),
        report.massive().count(),
        isp_calls.len(),
    );
    assert!(report.has_network_event(), "the DSLAM outage must surface");
    assert_eq!(
        isp_calls,
        vec![DeviceKey(sick_gateway.0 as u64)],
        "exactly the CPE fault should call home"
    );
    Ok(())
}
