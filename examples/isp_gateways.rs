//! The paper's motivating scenario: an ISP operating home gateways.
//!
//! A DSLAM fault degrades a whole neighbourhood while one customer's gateway
//! fails on its own. Every impacted gateway runs the local characterization
//! and decides autonomously whether to call the ISP help desk — the paper's
//! point is that only the lone CPE fault should generate a call, even though
//! seventeen gateways saw their QoS collapse.
//!
//! Run with: `cargo run --example isp_gateways`

use anomaly_characterization::core::Params;
use anomaly_characterization::network::{
    gateway_reports, FaultTarget, NetworkConfig, NetworkSimulation, ReportAction,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1 core, 2 aggregation switches, 4 DSLAMs, 64 gateways, 2 services.
    let mut net = NetworkSimulation::new(NetworkConfig::small(2024))?;
    println!(
        "network: {} gateways behind {} DSLAMs, {} services monitored",
        net.population(),
        net.topology().dslams().len(),
        net.services().len()
    );

    // Tonight's incidents: DSLAM 2 degrades to half capacity, and one
    // customer on another DSLAM bricks their gateway with a bad firmware
    // update.
    let sick_dslam = net.topology().dslams()[2];
    let sick_gateway = net
        .topology()
        .downstream_gateways(net.topology().dslams()[0])[3];
    let outcome = net.step(vec![
        FaultTarget::Node {
            node: sick_dslam,
            severity: 0.5,
        },
        FaultTarget::Gateway {
            gateway: sick_gateway,
            severity: 0.8,
        },
    ]);
    println!(
        "faults injected: DSLAM {} (16 gateways) + CPE {}",
        sick_dslam, sick_gateway
    );

    // Each impacted gateway self-characterizes (r chosen above the ±0.005
    // measurement jitter, tau = 3).
    let params = Params::new(0.02, 3)?;
    let reports = gateway_reports(&outcome, params);

    let mut isp_calls = 0;
    let mut ott_notices = 0;
    for r in &reports {
        match r.action {
            ReportAction::NotifyIsp => {
                isp_calls += 1;
                println!("  {} -> CALL ISP (isolated fault at the customer)", r.device);
            }
            ReportAction::NotifyOtt => ott_notices += 1,
            ReportAction::Defer => println!("  {} -> defer (unresolved)", r.device),
        }
    }
    println!(
        "\n{} gateways flagged; {} suppressed ISP calls (network event), {} real call(s)",
        reports.len(),
        ott_notices,
        isp_calls
    );
    assert_eq!(isp_calls, 1, "exactly the CPE fault should call home");
    Ok(())
}
