//! The over-the-top operator's view (Section I, second use case).
//!
//! An OTT operator delivers content through an ISP it does not control.
//! When an aggregation switch degrades, thousands of clients blame the OTT —
//! so the OTT wants *network-level* events surfaced immediately, while
//! ignoring individual devices' local problems. This is the mirror image of
//! the ISP use case: here only **massive** verdicts are reported.
//!
//! Run with: `cargo run --example ott_monitoring`

use anomaly_characterization::core::{AnomalyClass, Params};
use anomaly_characterization::network::{
    gateway_reports, FaultTarget, NetworkConfig, NetworkSimulation,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut net = NetworkSimulation::new(NetworkConfig::small(31337))?;

    // Hour 1: a few customers have local trouble — the OTT should NOT page
    // anyone.
    let g1 = net.topology().gateways()[3];
    let g2 = net.topology().gateways()[40];
    let quiet_hour = net.step(vec![
        FaultTarget::Gateway { gateway: g1, severity: 0.6 },
        FaultTarget::Gateway { gateway: g2, severity: 0.7 },
    ]);
    let params = Params::new(0.02, 3)?;
    let network_events = |reports: &[anomaly_characterization::network::GatewayReport]| {
        reports
            .iter()
            .filter(|r| r.class == AnomalyClass::Massive)
            .count()
    };
    let quiet_reports = gateway_reports(&quiet_hour, params);
    println!(
        "hour 1: {} devices degraded, {} network-level events -> no page",
        quiet_reports.len(),
        network_events(&quiet_reports)
    );
    assert_eq!(network_events(&quiet_reports), 0);

    // Hour 2: an aggregation switch melts down — 32 clients degrade at once.
    net.repair_all();
    let agg = net.topology().aggregations()[1];
    let bad_hour = net.step(vec![FaultTarget::Node { node: agg, severity: 0.6 }]);
    let bad_reports = gateway_reports(&bad_hour, params);
    let events = network_events(&bad_reports);
    println!(
        "hour 2: {} devices degraded, {} of them in a network-level event -> PAGE THE NOC",
        bad_reports.len(),
        events
    );
    assert!(events >= 30, "the aggregation outage must be seen as massive");

    println!("\nthe OTT pages exactly when the network (not a customer) is at fault.");
    Ok(())
}
