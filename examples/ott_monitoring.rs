//! The over-the-top operator's view (Section I, second use case), on the
//! v2 `Monitor`.
//!
//! An OTT operator delivers content through an ISP it does not control.
//! When an aggregation switch degrades, thousands of clients blame the OTT —
//! so the OTT wants *network-level* events surfaced immediately, while
//! ignoring individual devices' local problems. This is the mirror image of
//! the ISP use case: here only **massive** verdicts page anyone.
//!
//! Run with: `cargo run --example ott_monitoring`

use anomaly_characterization::detectors::{EwmaDetector, VectorDetector};
use anomaly_characterization::network::{FaultTarget, NetworkConfig, NetworkSimulation};
use anomaly_characterization::pipeline::{MonitorBuilder, Report};

fn network_event_size(report: &Report) -> usize {
    report.massive().count()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut net = NetworkSimulation::new(NetworkConfig::small(31337))?;
    let d = net.services().len();
    let mut monitor = MonitorBuilder::new()
        .radius(0.02)
        .tau(3)
        .services(d)
        .detector_factory(move |_key| {
            Box::new(VectorDetector::homogeneous(d, || {
                EwmaDetector::new(0.3, 6.0)
            }))
        })
        .devices(net.topology().gateways().iter().map(|g| g.0))
        .build()?;
    // Warm-up: the σ-gates may fluke once or twice while their variance
    // estimates settle; what matters is that no *network-level* event ever
    // appears on a healthy network.
    for _ in 0..30 {
        let report = monitor.observe(net.snapshot())?;
        assert!(!report.has_network_event());
    }

    // Hour 1: a few customers have local trouble — the OTT should NOT page
    // anyone. (Both faulty gateways sit outside aggregation 1's subtree, so
    // hour 2 stays clean.)
    let g1 = net.topology().gateways()[3];
    let g2 = net.topology().gateways()[20];
    net.inject(FaultTarget::Gateway {
        gateway: g1,
        severity: 0.6,
    });
    net.inject(FaultTarget::Gateway {
        gateway: g2,
        severity: 0.7,
    });
    let quiet_hour = monitor.observe(net.snapshot())?;
    println!(
        "hour 1: {} devices degraded, {} in network-level events -> no page",
        quiet_hour.verdicts().len(),
        network_event_size(&quiet_hour),
    );
    assert_eq!(network_event_size(&quiet_hour), 0);

    // Hour 2: an aggregation switch melts down — 32 clients degrade at
    // once. (The two repaired gateways jump back up; a two-device motion is
    // sparse, so they cannot fake a network event either.)
    net.repair_all();
    let agg = net.topology().aggregations()[1];
    net.inject(FaultTarget::Node {
        node: agg,
        severity: 0.6,
    });
    let bad_hour = monitor.observe(net.snapshot())?;
    let events = network_event_size(&bad_hour);
    println!(
        "hour 2: {} devices degraded, {} of them in a network-level event -> PAGE THE NOC",
        bad_hour.verdicts().len(),
        events,
    );
    assert!(
        events >= 30,
        "the aggregation outage must be seen as massive"
    );

    println!("\nthe OTT pages exactly when the network (not a customer) is at fault.");
    Ok(())
}
