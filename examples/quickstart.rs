//! Quickstart: the v2 builder API in a dozen lines.
//!
//! Six devices stream QoS samples through a `Monitor`. A shared incident
//! hits five of them together (a network-level, *massive* anomaly) while
//! the sixth fails alone (an *isolated* fault). Each flagged device decides
//! locally which case it is in — only the lone fault should call the
//! operator.
//!
//! Run with: `cargo run --example quickstart`

use anomaly_characterization::core::AnomalyClass;
use anomaly_characterization::pipeline::{DeviceKey, MonitorBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's operating point (r = 0.03, τ = 3), one service per
    // device, EWMA detectors — all defaults. Six devices, keyed 0..6.
    let mut monitor = MonitorBuilder::new().fleet(6).build()?;

    // Healthy warm-up: the detectors learn the normal level.
    for _ in 0..30 {
        let report = monitor.observe_rows(vec![vec![0.9]; 6])?;
        assert!(report.is_quiet());
    }

    // The incident instant: devices 0..4 degrade together, device 5 alone.
    let rows = vec![
        vec![0.40],
        vec![0.41],
        vec![0.42],
        vec![0.43],
        vec![0.44],
        vec![0.10],
    ];
    let report = monitor.observe_rows(rows)?;

    println!("device  verdict     decided by");
    for v in report.verdicts() {
        println!(
            "{:>6}  {:<10}  {}",
            v.key.to_string(),
            v.class().to_string(),
            v.characterization.rule(),
        );
    }

    // The co-movers are massive, the loner isolated.
    assert_eq!(report.class_of(DeviceKey(0)), Some(AnomalyClass::Massive));
    assert_eq!(report.class_of(DeviceKey(5)), Some(AnomalyClass::Isolated));
    assert_eq!(report.operator_notifications(), vec![DeviceKey(5)]);
    println!("\nonly device #5 should call the operator.");
    println!("summary: {}", report.summary());
    Ok(())
}
