//! Quickstart: characterize a hand-built configuration in a dozen lines.
//!
//! Five devices move together (one network-level error) while a sixth jumps
//! on its own (a local fault). Each flagged device decides locally whether
//! it was hit by a massive or an isolated anomaly.
//!
//! Run with: `cargo run --example quickstart`

use anomaly_characterization::core::{Analyzer, Params, TrajectoryTable};
use anomaly_characterization::qos::{DeviceId, QosSpace, Snapshot, StatePair};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One monitored service -> a 1-dimensional QoS space.
    let space = QosSpace::new(1)?;

    // QoS of six devices at time k-1 ...
    let before = Snapshot::from_rows(
        &space,
        vec![
            vec![0.90], // devices 0..4: healthy, clustered
            vec![0.91],
            vec![0.92],
            vec![0.93],
            vec![0.94],
            vec![0.92], // device 5: healthy too
        ],
    )?;
    // ... and at time k: a shared degradation hits 0..4, device 5 fails alone.
    let after = Snapshot::from_rows(
        &space,
        vec![
            vec![0.40],
            vec![0.41],
            vec![0.42],
            vec![0.43],
            vec![0.44],
            vec![0.10],
        ],
    )?;
    let pair = StatePair::new(before, after)?;

    // Every device flagged its trajectory as abnormal (A_k = all six).
    let abnormal: Vec<DeviceId> = (0..6).map(DeviceId).collect();

    // The paper's operating point: consistency radius r = 0.03, density
    // threshold tau = 3 (more than 3 co-moving devices = massive).
    let params = Params::new(0.03, 3)?;
    let table = TrajectoryTable::from_state_pair(&pair, &abnormal);
    let analyzer = Analyzer::new(&table, params);

    println!("device  verdict     decided by");
    for &j in table.ids() {
        let c = analyzer.characterize_full(j);
        println!("{:>6}  {:<10}  {}", j.to_string(), c.class().to_string(), c.rule());
    }

    // The co-movers are massive, the loner isolated.
    use anomaly_characterization::core::AnomalyClass;
    assert_eq!(analyzer.characterize_full(DeviceId(0)).class(), AnomalyClass::Massive);
    assert_eq!(analyzer.characterize_full(DeviceId(5)).class(), AnomalyClass::Isolated);
    println!("\nonly device d5 should call the operator.");
    Ok(())
}
