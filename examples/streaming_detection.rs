//! End-to-end pipeline: raw QoS time series -> error-detection functions ->
//! abnormal-trajectory set A_k -> local characterization — all inside one
//! v2 `Monitor` with a custom detector factory.
//!
//! The paper assumes the detection functions `a_k(j)` exist (Section III-A,
//! citing Holt-Winters and CUSUM); this example actually runs them. Twelve
//! devices stream noisy QoS samples through per-device Holt-Winters
//! detectors; at some instant a shared incident hits eight of them and an
//! unrelated local fault hits one more. The detectors build A_k, then the
//! characterization separates the two incidents.
//!
//! Run with: `cargo run --example streaming_detection`

use anomaly_characterization::core::AnomalyClass;
use anomaly_characterization::detectors::HoltWintersDetector;
use anomaly_characterization::pipeline::{DeviceKey, MonitorBuilder};

const DEVICES: usize = 12;
const SHARED_INCIDENT: [u64; 8] = [0, 1, 2, 3, 4, 5, 6, 7];
const LOCAL_FAULT: u64 = 10;
const INCIDENT_AT: usize = 60;

/// Noisy QoS sample of device `j` at instant `t`.
fn qos(j: u64, t: usize) -> f64 {
    let wiggle = 0.004 * ((t as u64 * 7 + j * 13) as f64).sin();
    let healthy = 0.90 + 0.002 * (j % 5) as f64;
    let level = if t >= INCIDENT_AT && SHARED_INCIDENT.contains(&j) {
        healthy - 0.45 - 0.002 * (j % 3) as f64 // shared congestion level
    } else if t >= INCIDENT_AT && j == LOCAL_FAULT {
        0.15 // local hardware fault
    } else {
        healthy
    };
    (level + wiggle).clamp(0.0, 1.0)
}

fn rows_at(t: usize) -> Vec<Vec<f64>> {
    (0..DEVICES as u64).map(|j| vec![qos(j, t)]).collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One Holt-Winters detector per device (trend-aware forecasting).
    let mut monitor = MonitorBuilder::new()
        .radius(0.03)
        .tau(3)
        .detector_factory(|_key| Box::new(HoltWintersDetector::new(0.5, 0.2, 4.0)))
        .fleet(DEVICES)
        .build()?;

    // Stream the healthy prefix: detectors learn, nothing is flagged.
    for t in 0..INCIDENT_AT {
        let report = monitor.observe_rows(rows_at(t))?;
        assert!(report.is_quiet(), "false alarm at t = {t}");
    }

    // The incident instant: detectors raise a_k(j) for the impacted
    // devices and the characterization runs in the same call.
    let report = monitor.observe_rows(rows_at(INCIDENT_AT))?;
    println!(
        "detectors flagged {} devices (detection {:?}, characterization {:?})",
        report.verdicts().len(),
        report.detection_time(),
        report.characterization_time(),
    );
    assert_eq!(report.verdicts().len(), 9, "8 shared + 1 local fault");

    for v in report.verdicts() {
        println!(
            "  {} -> {} ({}), moved {:.3}, {} neighbours",
            v.key,
            v.class(),
            v.characterization.rule(),
            v.displacement,
            v.vicinity,
        );
    }
    assert_eq!(
        report.class_of(DeviceKey(LOCAL_FAULT)),
        Some(AnomalyClass::Isolated)
    );
    assert_eq!(report.class_of(DeviceKey(0)), Some(AnomalyClass::Massive));
    println!("\nshared congestion recognized as massive; device #10's fault stays local.");
    Ok(())
}
